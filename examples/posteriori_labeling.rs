//! A-posteriori labeling across patients of different difficulty.
//!
//! The paper's Table I shows that the labeling quality varies across patients:
//! patients with clean recordings are labeled within a few seconds while the
//! noisiest patient (patient 2) shows a much larger deviation caused by noise
//! bursts near the seizure. This example reproduces that contrast on a small
//! number of records and also prints the distance profile of Algorithm 1 for
//! one record so the "peak at the seizure" behaviour is visible.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example posteriori_labeling
//! ```

use selflearn_seizure::core::labeler::{LabelerConfig, PosterioriLabeler};
use selflearn_seizure::core::metric::{deviation_seconds, DeviationSummary};
use selflearn_seizure::data::cohort::Cohort;
use selflearn_seizure::data::sampler::SampleConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cohort = Cohort::chb_mit_like(42);
    let config = SampleConfig::new(600.0, 900.0, 128.0)?;
    let labeler = PosterioriLabeler::new(LabelerConfig::default());
    let samples_per_seizure = 2u64;

    println!("per-patient labeling quality (reduced-scale run)");
    println!("patient | seizures | mean delta (s) | gmean delta_norm");
    println!("--------|----------|----------------|-----------------");
    for patient in 0..cohort.patients().len() {
        let mut summary = DeviationSummary::new();
        let w = cohort.average_seizure_duration(patient)?;
        for seizure in 0..cohort.seizures_of(patient)?.len() {
            for sample in 0..samples_per_seizure {
                let record = cohort.sample_record(patient, seizure, &config, sample)?;
                let label = labeler.label_record(&record, w)?;
                summary.record(
                    (record.annotation().onset(), record.annotation().offset()),
                    label.as_interval(),
                    record.signal().duration_secs(),
                )?;
            }
        }
        println!(
            "   {}    |    {}     |     {:8.1}   |      {:.4}",
            patient + 1,
            cohort.seizures_of(patient)?.len(),
            summary.mean_delta().unwrap_or(f64::NAN),
            summary.geometric_mean_normalized().unwrap_or(f64::NAN),
        );
    }

    // Show the distance profile of Algorithm 1 on one record of the cleanest
    // patient (patient 8): the profile peaks where the seizure lies.
    let patient = 7;
    let record = cohort.sample_record(patient, 0, &config, 0)?;
    let w = cohort.average_seizure_duration(patient)?;
    let (label, detection) = labeler.label_signal_with_detection(record.signal(), w)?;
    let delta = deviation_seconds(
        (record.annotation().onset(), record.annotation().offset()),
        label.as_interval(),
    )?;
    println!();
    println!(
        "patient 8, seizure 1: ground truth [{:.0}, {:.0}] s, label [{:.0}, {:.0}] s, delta = {delta:.1} s",
        record.annotation().onset(),
        record.annotation().offset(),
        label.onset_secs(),
        label.offset_secs()
    );
    println!("distance profile of Algorithm 1 (one '#' per 2% of the peak):");
    let peak = detection.peak_distance();
    for (i, d) in detection.distances.iter().enumerate().step_by(20) {
        let bars = ((d / peak) * 50.0).round() as usize;
        println!("{:5} s | {}", i, "#".repeat(bars));
    }
    Ok(())
}
