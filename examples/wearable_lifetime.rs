//! Battery-lifetime analysis of the wearable platform (paper §VI-C,
//! Table III and Fig. 5).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example wearable_lifetime
//! ```

use selflearn_seizure::edge::energy::{EnergyModel, OperatingMode};
use selflearn_seizure::edge::memory::MemoryModel;
use selflearn_seizure::edge::platform::PlatformSpec;
use selflearn_seizure::edge::timing::TimingModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = PlatformSpec::stm32l151_default();
    println!(
        "platform: Cortex-M3 @ {:.0} MHz, {} KB RAM, {} KB Flash, {:.0} mAh battery",
        spec.cpu_frequency_hz / 1e6,
        spec.ram_bytes / 1024,
        spec.flash_bytes / 1024,
        spec.battery_mah
    );

    // Table III: worst case, one seizure per day, detection + labeling.
    let energy = EnergyModel::new(spec);
    let report = energy.lifetime(OperatingMode::Combined, 1.0)?;
    println!("\nTable III (worst case, one seizure per day)");
    println!("task                  | current (mA) | duty (%) | avg (mA) | energy (%)");
    println!("----------------------|--------------|----------|----------|-----------");
    let percentages = report.energy_percentages();
    for (task, pct) in report.tasks().tasks().iter().zip(percentages.iter()) {
        println!(
            "{:<22}| {:>12.3} | {:>8.2} | {:>8.3} | {:>9.2}",
            task.name,
            task.current_ma,
            task.duty_cycle * 100.0,
            task.average_current_ma(),
            pct
        );
    }
    println!(
        "battery lifetime: {:.2} days ({:.1} hours)",
        report.lifetime_days(),
        report.lifetime_hours()
    );

    // Lifetime sweep over the seizure frequency (one per month to one per day).
    println!("\nlifetime vs. seizure frequency");
    println!("seizures/day | labeling-only (days) | combined (days)");
    for report in energy.lifetime_sweep(OperatingMode::Combined, 1.0 / 30.0, 1.0, 6)? {
        let labeling = energy.lifetime(OperatingMode::LabelingOnly, report.seizures_per_day())?;
        println!(
            "   {:8.3} | {:>20.2} | {:>15.2}",
            report.seizures_per_day(),
            labeling.lifetime_days(),
            report.lifetime_days()
        );
    }

    // Memory budget of the one-hour history buffer.
    let memory = MemoryModel::new(spec);
    let budget = memory.budget(3600.0)?;
    println!(
        "\nmemory: one-hour history buffer {} KB (fits flash: {}), working set {} B (fits RAM: {})",
        budget.history_bytes / 1024,
        budget.fits_flash,
        budget.working_bytes,
        budget.fits_ram
    );

    // Real-time check of the labeling algorithm.
    let timing = TimingModel::new(spec);
    let cost = timing.labeling_cost(3600.0, 60.0, 10)?;
    println!(
        "labeling one hour of signal: {:.2e} operations, {:.0} s of CPU time ({:.2} s per signal second)",
        cost.operations, cost.seconds, cost.seconds_per_signal_second
    );
    Ok(())
}
