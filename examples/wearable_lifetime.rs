//! Battery-lifetime analysis of the wearable platform (paper §VI-C,
//! Table III and Fig. 5), followed by two multi-session lifetime demos:
//!
//! 1. **Full snapshots** — the self-learning pipeline saves its personalized
//!    state, "powers down" (the snapshot crosses a process boundary through
//!    a file), resumes, and keeps retraining node-identically to a device
//!    that never lost power.
//! 2. **Delta journal** — per-seizure saves append an O(batch) journal entry
//!    instead of re-writing the O(pool) snapshot, the device **crashes
//!    halfway through an append**, and the resume detects the torn entry,
//!    drops it, truncates the journal file and re-learns the lost seizure —
//!    ending node-identical to the uninterrupted device.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example wearable_lifetime
//! ```

use selflearn_seizure::core::labeler::LabelerConfig;
use selflearn_seizure::core::pipeline::{LabelSource, SelfLearningPipeline};
use selflearn_seizure::core::realtime::{QualityVerdict, RealTimeDetectorConfig};
use selflearn_seizure::core::workspace::FeatureWorkspace;
use selflearn_seizure::data::cohort::Cohort;
use selflearn_seizure::data::sampler::{EegRecord, SampleConfig};
use selflearn_seizure::data::synth::{degrade_signal, HostileScenario};
use selflearn_seizure::edge::energy::{EnergyModel, OperatingMode};
use selflearn_seizure::edge::memory::MemoryModel;
use selflearn_seizure::edge::platform::PlatformSpec;
use selflearn_seizure::edge::timing::TimingModel;
use selflearn_seizure::ml::forest::RandomForestConfig;
use selflearn_seizure::ml::persist::journal::{CompactionPolicy, DeltaSave};
use selflearn_seizure::ml::persist::store::{FaultyFlash, FlashGeometry, FlashStore, StoreSave};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = PlatformSpec::stm32l151_default();
    println!(
        "platform: Cortex-M3 @ {:.0} MHz, {} KB RAM, {} KB Flash, {:.0} mAh battery",
        spec.cpu_frequency_hz / 1e6,
        spec.ram_bytes / 1024,
        spec.flash_bytes / 1024,
        spec.battery_mah
    );

    // Table III: worst case, one seizure per day, detection + labeling.
    let energy = EnergyModel::new(spec);
    let report = energy.lifetime(OperatingMode::Combined, 1.0)?;
    println!("\nTable III (worst case, one seizure per day)");
    println!("task                  | current (mA) | duty (%) | avg (mA) | energy (%)");
    println!("----------------------|--------------|----------|----------|-----------");
    let percentages = report.energy_percentages();
    for (task, pct) in report.tasks().tasks().iter().zip(percentages.iter()) {
        println!(
            "{:<22}| {:>12.3} | {:>8.2} | {:>8.3} | {:>9.2}",
            task.name,
            task.current_ma,
            task.duty_cycle * 100.0,
            task.average_current_ma(),
            pct
        );
    }
    println!(
        "battery lifetime: {:.2} days ({:.1} hours)",
        report.lifetime_days(),
        report.lifetime_hours()
    );

    // Lifetime sweep over the seizure frequency (one per month to one per day).
    println!("\nlifetime vs. seizure frequency");
    println!("seizures/day | labeling-only (days) | combined (days)");
    for report in energy.lifetime_sweep(OperatingMode::Combined, 1.0 / 30.0, 1.0, 6)? {
        let labeling = energy.lifetime(OperatingMode::LabelingOnly, report.seizures_per_day())?;
        println!(
            "   {:8.3} | {:>20.2} | {:>15.2}",
            report.seizures_per_day(),
            labeling.lifetime_days(),
            report.lifetime_days()
        );
    }

    // Memory budget of the one-hour history buffer.
    let memory = MemoryModel::new(spec);
    let budget = memory.budget(3600.0)?;
    println!(
        "\nmemory: one-hour history buffer {} KB (fits flash: {}), working set {} B (fits RAM: {})",
        budget.history_bytes / 1024,
        budget.fits_flash,
        budget.working_bytes,
        budget.fits_ram
    );

    // Real-time check of the labeling algorithm.
    let timing = TimingModel::new(spec);
    let cost = timing.labeling_cost(3600.0, 60.0, 10)?;
    println!(
        "labeling one hour of signal: {:.2e} operations, {:.0} s of CPU time ({:.2} s per signal second)",
        cost.operations, cost.seconds, cost.seconds_per_signal_second
    );

    // Multi-session lifetime: the personalized pool survives a power cycle.
    println!("\nsession-resume persistence (save -> power cycle -> resume -> retrain)");
    let cohort = Cohort::chb_mit_like(5);
    let sample = SampleConfig::new(150.0, 200.0, 64.0)?;
    let patient = 8;
    let w = cohort.average_seizure_duration(patient)?;
    let detector_config = RealTimeDetectorConfig {
        forest: RandomForestConfig {
            n_trees: 10,
            max_depth: 6,
            ..RandomForestConfig::default()
        },
        ..RealTimeDetectorConfig::default()
    };

    // Day 1: the wearable learns from its first missed seizure, then powers
    // down — the snapshot is everything that survives.
    let snapshot_path = std::env::temp_dir().join("wearable_lifetime_session.snap");
    {
        let mut day1 = SelfLearningPipeline::new(LabelerConfig::default(), detector_config);
        let record = cohort.sample_record(patient, 0, &sample, 1)?;
        day1.observe_missed_seizure(&record, w, LabelSource::Algorithm)?;
        std::fs::write(&snapshot_path, day1.save())?;
        println!(
            "day 1: {} training windows collected, state saved to {}",
            day1.training_windows(),
            snapshot_path.display()
        );
    } // <- the day-1 process state is gone here

    // Day 2: a fresh process resumes from the snapshot and learns from the
    // next missed seizure.
    let mut day2 = SelfLearningPipeline::resume(&std::fs::read(&snapshot_path)?)?;
    let record = cohort.sample_record(patient, 1, &sample, 2)?;
    day2.observe_missed_seizure(&record, w, LabelSource::Algorithm)?;

    // Reference device that never lost power: both seizures in one process.
    let mut uninterrupted = SelfLearningPipeline::new(LabelerConfig::default(), detector_config);
    for (seizure, seed) in [(0usize, 1u64), (1, 2)] {
        let record = cohort.sample_record(patient, seizure, &sample, seed)?;
        uninterrupted.observe_missed_seizure(&record, w, LabelSource::Algorithm)?;
    }
    assert_eq!(
        day2.detector().flat_forest(),
        uninterrupted.detector().flat_forest(),
        "resumed retraining must be node-identical to the uninterrupted device"
    );
    let held_out = cohort.sample_record(patient, 2, &sample, 3)?;
    let resumed_report = day2.evaluate(&held_out)?;
    let reference_report = uninterrupted.evaluate(&held_out)?;
    assert_eq!(resumed_report, reference_report);
    println!(
        "day 2: resumed pool of {} windows retrained node-identically \
         (held-out gmean {:.3})",
        day2.training_windows(),
        resumed_report.geometric_mean
    );

    // And the snapshot fits the platform's Flash next to the history buffer.
    let snapshot_bytes = std::fs::metadata(&snapshot_path)?.len() as usize;
    std::fs::remove_file(&snapshot_path)?;
    let with_snapshot = memory.budget_with_snapshot(1200.0, snapshot_bytes)?;
    println!(
        "snapshot: {:.1} KB; 20-min history + snapshot = {} KB in flash (fits: {})",
        snapshot_bytes as f64 / 1024.0,
        with_snapshot.history_bytes / 1024,
        with_snapshot.fits_flash
    );
    assert!(with_snapshot.fits_flash);

    // Delta persistence: per-seizure saves append O(batch) journal entries
    // instead of re-writing the O(pool) snapshot — and a crash halfway
    // through an append is detected, dropped and recovered from.
    println!("\ndelta persistence (save -> crash mid-append -> resume -> re-learn)");
    let base_path = std::env::temp_dir().join("wearable_lifetime_delta.base");
    let journal_path = std::env::temp_dir().join("wearable_lifetime_delta.journal");
    // With one seizure in the base, the second batch is a large fraction of
    // the pool; a lenient compaction policy keeps this early-life demo on
    // the append path (the default would — legitimately — fold instead).
    let policy = CompactionPolicy {
        max_journal_fraction: 100.0,
        ..CompactionPolicy::default()
    };

    // Day 1: learn the first seizure; the first delta save is a full base.
    {
        let mut day1 = SelfLearningPipeline::new(LabelerConfig::default(), detector_config);
        let record = cohort.sample_record(patient, 0, &sample, 1)?;
        day1.observe_missed_seizure(&record, w, LabelSource::Algorithm)?;
        match day1.save_delta_with(policy) {
            DeltaSave::Full(base) => {
                println!(
                    "day 1: full base snapshot, {:.1} KB",
                    base.len() as f64 / 1024.0
                );
                std::fs::write(&base_path, base)?;
                std::fs::write(&journal_path, [])?;
            }
            other => panic!("first delta save must be full, got {other:?}"),
        }
    } // <- power cycle

    // Day 2: resume, learn the second seizure — but power fails halfway
    // through appending the journal entry.
    {
        let (mut day2, report) = SelfLearningPipeline::resume_with_journal(
            &std::fs::read(&base_path)?,
            &std::fs::read(&journal_path)?,
        )?;
        assert_eq!(report.entries_applied, 0);
        let record = cohort.sample_record(patient, 1, &sample, 2)?;
        day2.observe_missed_seizure(&record, w, LabelSource::Algorithm)?;
        match day2.save_delta_with(policy) {
            DeltaSave::Append(entry) => {
                let torn = &entry[..entry.len() / 2];
                let mut journal = std::fs::read(&journal_path)?;
                journal.extend_from_slice(torn);
                std::fs::write(&journal_path, journal)?;
                println!(
                    "day 2: O(batch) append of {:.1} KB — power lost after {:.1} KB",
                    entry.len() as f64 / 1024.0,
                    torn.len() as f64 / 1024.0
                );
            }
            other => panic!("steady-state delta save must append, got {other:?}"),
        }
    } // <- crash: the in-memory state and half the entry are gone

    // Day 3: the resume detects the torn entry, drops it, and tells the
    // device where to truncate the journal; the lost seizure is re-learned
    // from the hour buffer and saved again — cleanly this time.
    let base = std::fs::read(&base_path)?;
    let (mut day3, report) =
        SelfLearningPipeline::resume_with_journal(&base, &std::fs::read(&journal_path)?)?;
    assert_eq!(
        report.entries_applied, 0,
        "the torn entry must not be applied"
    );
    assert!(report.torn_bytes > 0);
    println!(
        "day 3: torn entry detected ({} bytes dropped), journal truncated to {} bytes",
        report.torn_bytes, report.valid_len
    );
    // Truncate the journal *file* to the valid prefix — the same `set_len`
    // a device performs on its Flash-backed file before appending anything
    // new, so the torn bytes can never alias a future entry.
    std::fs::OpenOptions::new()
        .write(true)
        .open(&journal_path)?
        .set_len(report.valid_len as u64)?;
    let record = cohort.sample_record(patient, 1, &sample, 2)?;
    day3.observe_missed_seizure(&record, w, LabelSource::Algorithm)?;
    let entry_bytes = match day3.save_delta_with(policy) {
        DeltaSave::Append(entry) => {
            use std::io::Write;
            std::fs::OpenOptions::new()
                .append(true)
                .open(&journal_path)?
                .write_all(&entry)?;
            entry.len()
        }
        other => panic!("the re-learned seizure must append, got {other:?}"),
    };
    let journal = std::fs::read(&journal_path)?;
    assert_eq!(
        journal.len(),
        report.valid_len + entry_bytes,
        "the truncated file plus the clean append is the whole journal"
    );

    // A final power cycle proves the recovered journal holds both seizures:
    // the resumed device equals the uninterrupted reference.
    let (day4, report) =
        SelfLearningPipeline::resume_with_journal(&base, &std::fs::read(&journal_path)?)?;
    assert_eq!(report.entries_applied, 1);
    assert_eq!(report.torn_bytes, 0);
    assert_eq!(day4.num_seizures_collected(), 2);
    assert_eq!(
        day4.detector().flat_forest(),
        uninterrupted.detector().flat_forest(),
        "journal recovery must be node-identical to the uninterrupted device"
    );
    assert_eq!(day4.evaluate(&held_out)?, reference_report);

    // The per-seizure Flash write is O(batch): the journal entry is a small
    // fraction of the full snapshot it replaces, and history + base +
    // journal still fit the platform's Flash.
    let with_journal = memory.budget_with_journal(1200.0, base.len(), journal.len())?;
    println!(
        "recovered: {} seizures from base + journal; per-seizure append {:.1} KB vs {:.1} KB \
         full snapshot — the batch is half this tiny pool; the gap widens with every seizure \
         (paper scale: see BENCH_persist.json); flash {} KB (fits: {})",
        day4.num_seizures_collected(),
        entry_bytes as f64 / 1024.0,
        base.len() as f64 / 1024.0,
        with_journal.history_bytes / 1024,
        with_journal.fits_flash
    );
    assert!(entry_bytes < base.len());
    assert!(with_journal.fits_flash);
    std::fs::remove_file(&base_path)?;
    std::fs::remove_file(&journal_path)?;

    // Crash-proof A/B store: the same pipeline, but saves go to a dual-slot
    // Flash image whose commit protocol survives power loss at *any* byte
    // (the file-based journal above trusts the filesystem for that). The
    // FaultyFlash device lets the demo actually pull the plug.
    println!("\ncrash-proof A/B flash store (power loss mid-save -> reboot -> resume)");
    let mut device = SelfLearningPipeline::new(LabelerConfig::default(), detector_config);
    let record = cohort.sample_record(patient, 0, &sample, 1)?;
    device.observe_missed_seizure(&record, w, LabelSource::Algorithm)?;
    let geometry = FlashGeometry::for_base(device.save().len() * 4, 64 * 1024);
    let mut store = device.init_store(FaultyFlash::new(geometry.total_bytes()), geometry)?;
    let record = cohort.sample_record(patient, 1, &sample, 2)?;
    device.observe_missed_seizure(&record, w, LabelSource::Algorithm)?;
    let save = device.save_to_store(&mut store)?;
    assert_eq!(
        save,
        StoreSave::Appended,
        "one seizure -> one journal entry"
    );
    println!(
        "seizure 2 saved ({save:?}): slot {:?} seq {}, {} journal entries",
        store.active_slot(),
        store.sequence(),
        store.journal_entries()
    );

    // Pull the plug 100 bytes into the next save. The write fails…
    let committed = device.save();
    let crashing = FaultyFlash::from_image(store.flash().image().to_vec()).power_loss_after(100);
    let (mut crashed_store, _) = FlashStore::mount(crashing, geometry)?;
    let record = cohort.sample_record(patient, 2, &sample, 3)?;
    device.observe_missed_seizure(&record, w, LabelSource::Algorithm)?;
    let died = device.save_to_store(&mut crashed_store);
    assert!(died.is_err(), "the armed power loss must kill the save");

    // …but the next boot mounts the committed state as if nothing happened:
    // the in-flight seizure is re-learned from the hour buffer, saved, and a
    // final power cycle confirms all three seizures are durable.
    let (store, mount) = FlashStore::mount(crashed_store.into_flash().reboot(), geometry)?;
    let (mut resumed, _) = SelfLearningPipeline::resume_from_store(&store)?;
    assert_eq!(
        resumed.save(),
        committed,
        "resume must be the pre-save state"
    );
    println!(
        "rebooted: slot {:?} seq {} intact, {} seizures resumed (fell back: {})",
        mount.active_slot,
        mount.sequence,
        resumed.num_seizures_collected(),
        mount.fell_back
    );
    let mut store = store;
    resumed.observe_missed_seizure(&record, w, LabelSource::Algorithm)?;
    resumed.save_to_store(&mut store)?;
    let (store, _) = FlashStore::mount(store.into_flash().reboot(), geometry)?;
    let (survivor, _) = SelfLearningPipeline::resume_from_store(&store)?;
    assert_eq!(survivor.num_seizures_collected(), 3);

    // Crash-proofing costs a second slot on the edge platform's Flash: the
    // day-1 base affords it, this 3-seizure pool no longer does — the budget
    // model is where a device draws its pool-growth line *before* a
    // compaction fails on a full part.
    let ab_grown = memory.budget_with_ab_store(1200.0, store.base_len(), geometry.journal_bytes)?;
    let ab_day1 = memory.budget_with_ab_store(1200.0, snapshot_bytes, geometry.journal_bytes)?;
    assert!(ab_day1.fits_flash);
    println!(
        "3 seizures durable; A/B store doubles the base slot: day-1 base {:.1} KB \
         crash-proofed fits the 384 KB part: {}; this {:.1} KB pool fits: {} — \
         budget_with_ab_store draws the pool-growth line before flash runs out",
        snapshot_bytes as f64 / 1024.0,
        ab_day1.fits_flash,
        store.base_len() as f64 / 1024.0,
        ab_grown.fits_flash
    );

    // Signal-quality gate: run one hostile segment end to end. A mains-hum-
    // swamped record is rejected window by window — alarms are suppressed
    // instead of flooding the caregiver — and the same record is turned away
    // from the self-learning pool before it can poison the personalized model.
    println!("\nsignal-quality gate (hostile segment -> suppressed alarms, quarantined learning)");
    let mut survivor = survivor;
    let hostile = EegRecord::new(
        degrade_signal(held_out.signal(), HostileScenario::MainsHum, 1.0, 0xBAD)?,
        *held_out.annotation(),
        held_out.patient_id(),
        held_out.seizure_index(),
    )?;
    let mut workspace = FeatureWorkspace::new();
    let (predictions, _) = survivor
        .detector()
        .detect_with_quality(held_out.signal(), &mut workspace)?;
    let clean_alarms = predictions.iter().filter(|&&p| p).count();
    let (predictions, verdicts) = survivor
        .detector()
        .detect_with_quality(hostile.signal(), &mut workspace)?;
    let hostile_alarms = predictions.iter().filter(|&&p| p).count();
    let rejected = verdicts
        .iter()
        .filter(|&&v| v == QualityVerdict::Reject)
        .count();
    println!(
        "hum-swamped segment: {}/{} windows rejected, {} alarm windows \
         (the clean segment raises {})",
        rejected,
        verdicts.len(),
        hostile_alarms,
        clean_alarms
    );
    assert!(rejected > verdicts.len() / 2);
    assert!(hostile_alarms < clean_alarms);

    // The same record offered to the self-learning loop is quarantined before
    // the a-posteriori labeler ever sees it.
    let pool_before = survivor.training_windows();
    let outcome = survivor.observe_missed_seizure(&hostile, w, LabelSource::Algorithm)?;
    assert!(outcome.is_none(), "the hostile record must be quarantined");
    assert_eq!(survivor.training_windows(), pool_before);
    println!(
        "self-learning: hostile record quarantined ({} quarantined so far), \
         training pool untouched at {} windows",
        survivor.num_quarantined(),
        survivor.training_windows()
    );
    Ok(())
}
