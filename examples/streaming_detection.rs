//! Streaming detection: feed a record to a trained detector one sample at a
//! time, as a wearable's ADC interrupt would, and compare the streamed
//! alarms against the batch `detect` pass.
//!
//! The streaming front end carries moments, ordinal-pattern tables and
//! wavelet coefficients across the 75 % window overlap instead of
//! recomputing each 4-second window from scratch; the batch extractor stays
//! the bit-exact reference (see the "Streaming extraction" section of the
//! README for the per-feature equivalence model).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example streaming_detection
//! ```

use std::time::Instant;

use selflearn_seizure::core::realtime::{QualityVerdict, RealTimeDetector, RealTimeDetectorConfig};
use selflearn_seizure::core::SeizureLabel;
use selflearn_seizure::data::cohort::Cohort;
use selflearn_seizure::data::sampler::SampleConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two records of the same patient: one to train on, one to stream.
    let cohort = Cohort::chb_mit_like(3);
    let sample = SampleConfig::new(120.0, 180.0, 64.0)?;
    let training_record = cohort.sample_record(4, 0, &sample, 11)?;
    let probe = cohort.sample_record(4, 1, &sample, 12)?;

    let truth = SeizureLabel::new(
        training_record.annotation().onset(),
        training_record.annotation().offset(),
    )?;
    let mut detector = RealTimeDetector::new(RealTimeDetectorConfig::default());
    let training = detector.build_training_windows(training_record.signal(), &truth)?;
    detector.train(&training)?;
    println!(
        "trained on {:.0} s of patient 5 ({} windows)",
        training_record.signal().duration_secs(),
        training.len(),
    );

    // The batch reference: whole-record extraction + classification.
    let batch_alarms = detector.detect(probe.signal())?;

    // The streaming path: one `push` per ADC tick. The detector emits one
    // detection per completed window (every hop once warmed up).
    let fs = probe.signal().sampling_frequency();
    let mut streaming = detector.streaming(fs)?;
    println!(
        "streaming state: {} bytes carried across {}-sample hops ({}-sample windows)",
        streaming.state_bytes(),
        streaming.step_samples(),
        streaming.window_samples(),
    );

    let f7t3 = probe.signal().f7t3();
    let f8t4 = probe.signal().f8t4();
    let started = Instant::now();
    let mut alarms = Vec::new();
    let mut rejected = 0usize;
    for (&a, &b) in f7t3.iter().zip(f8t4.iter()) {
        if let Some(detection) = streaming.push(a, b)? {
            if detection.verdict == QualityVerdict::Reject {
                rejected += 1;
            }
            if detection.alarm {
                let onset = detection.window_index as f64 * streaming.step_samples() as f64 / fs;
                println!(
                    "  alarm at window {:>3} (t = {onset:.0} s)",
                    detection.window_index
                );
            }
            alarms.push(detection.alarm);
        }
    }
    let elapsed = started.elapsed().as_secs_f64();

    assert_eq!(
        alarms, batch_alarms,
        "streamed alarms must match the batch detect pass"
    );
    let flagged = alarms.iter().filter(|&&a| a).count();
    println!(
        "streamed {:.0} s in {:.1} ms ({:.0}x real time): {} windows, {} alarms, {} rejected — identical to batch detect",
        probe.signal().duration_secs(),
        1e3 * elapsed,
        probe.signal().duration_secs() / elapsed,
        alarms.len(),
        flagged,
        rejected,
    );
    Ok(())
}
