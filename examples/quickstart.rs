//! Quickstart: label one missed seizure a posteriori and compare the label
//! against the ground truth.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use selflearn_seizure::core::labeler::{LabelerConfig, PosterioriLabeler};
use selflearn_seizure::core::metric::{deviation_seconds, normalized_deviation};
use selflearn_seizure::data::cohort::Cohort;
use selflearn_seizure::data::sampler::SampleConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The synthetic CHB-MIT-like cohort: 9 patients, 45 seizures.
    let cohort = Cohort::chb_mit_like(42);
    println!(
        "cohort: {} patients, {} seizures",
        cohort.patients().len(),
        cohort.total_seizures()
    );

    // One evaluation record: a 10–15 minute recording at 128 Hz containing a
    // single seizure of patient 1 (use `SampleConfig::paper_default()` for the
    // paper's 30–60 minute records at 256 Hz).
    let config = SampleConfig::new(600.0, 900.0, 128.0)?;
    let record = cohort.sample_record(0, 0, &config, 7)?;
    println!(
        "record: {:.0} s of two-channel EEG at {:.0} Hz",
        record.signal().duration_secs(),
        record.signal().sampling_frequency()
    );
    println!(
        "ground truth: seizure in [{:.1}, {:.1}] s",
        record.annotation().onset(),
        record.annotation().offset()
    );

    // The only supervision the algorithm needs: the patient's average seizure
    // duration, provided once by a medical expert.
    let average_seizure_secs = cohort.average_seizure_duration(0)?;

    // Run the a-posteriori minimally-supervised labeling (Algorithm 1).
    let labeler = PosterioriLabeler::new(LabelerConfig::default());
    let label = labeler.label_record(&record, average_seizure_secs)?;
    println!(
        "algorithm label: [{:.1}, {:.1}] s",
        label.onset_secs(),
        label.offset_secs()
    );

    // Measure the label quality with the paper's deviation metric.
    let truth = (record.annotation().onset(), record.annotation().offset());
    let delta = deviation_seconds(truth, label.as_interval())?;
    let delta_norm =
        normalized_deviation(truth, label.as_interval(), record.signal().duration_secs())?;
    println!("deviation       : delta = {delta:.1} s, delta_norm = {delta_norm:.4}");
    Ok(())
}
