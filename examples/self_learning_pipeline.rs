//! The full self-learning loop (paper Fig. 1): missed seizures are labeled a
//! posteriori, added to the personalized training set, and the real-time
//! random-forest detector is retrained after each one. The example compares
//! the resulting detector against one trained on expert labels — the
//! experiment behind the paper's Fig. 4.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example self_learning_pipeline
//! ```

use selflearn_seizure::core::labeler::LabelerConfig;
use selflearn_seizure::core::pipeline::{LabelSource, SelfLearningPipeline};
use selflearn_seizure::core::realtime::RealTimeDetectorConfig;
use selflearn_seizure::data::cohort::Cohort;
use selflearn_seizure::data::sampler::SampleConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cohort = Cohort::chb_mit_like(42);
    // Short records and a low sampling rate keep the example quick; the bench
    // harness (`cargo run -p seizure-bench --bin fig4`) runs the larger
    // configuration.
    let config = SampleConfig::new(300.0, 420.0, 64.0)?;
    let patient = 8; // patient 9: clean recordings, 7 seizures
    let w = cohort.average_seizure_duration(patient)?;
    let training_seizures = 3;
    let held_out: Vec<_> = (training_seizures..cohort.seizures_of(patient)?.len())
        .map(|s| cohort.sample_record(patient, s, &config, 100 + s as u64))
        .collect::<Result<_, _>>()?;

    for source in [LabelSource::Algorithm, LabelSource::Expert] {
        let mut pipeline =
            SelfLearningPipeline::new(LabelerConfig::default(), RealTimeDetectorConfig::default());
        println!("--- training with {source:?} labels ---");
        for seizure in 0..training_seizures {
            let record = cohort.sample_record(patient, seizure, &config, seizure as u64)?;
            let label = pipeline
                .observe_missed_seizure(&record, w, source)?
                .expect("clean synthetic records must pass the quality gate");
            println!(
                "missed seizure {} labeled as [{:6.1}, {:6.1}] s (truth [{:6.1}, {:6.1}] s); training windows: {}",
                seizure + 1,
                label.onset_secs(),
                label.offset_secs(),
                record.annotation().onset(),
                record.annotation().offset(),
                pipeline.training_windows()
            );
        }
        let report = pipeline.evaluate_all(&held_out)?;
        println!(
            "held-out evaluation over {} windows: sensitivity {:.3}, specificity {:.3}, geometric mean {:.3}",
            report.windows, report.sensitivity, report.specificity, report.geometric_mean
        );
        println!();
    }
    println!(
        "The geometric mean obtained with algorithm labels should track the expert-label \
         baseline closely (the paper reports a 2.35 % degradation)."
    );
    Ok(())
}
