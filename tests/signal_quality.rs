//! Cross-crate tests of the signal-quality front end: the gate must never
//! cost a detection on clean recordings, and its calibrated state must be as
//! crash-durable as the model it protects.

use proptest::prelude::*;
use selflearn_seizure::core::labeler::LabelerConfig;
use selflearn_seizure::core::pipeline::{LabelSource, SelfLearningPipeline};
use selflearn_seizure::core::realtime::{QualityGate, QualityVerdict, RealTimeDetectorConfig};
use selflearn_seizure::data::cohort::Cohort;
use selflearn_seizure::data::sampler::SampleConfig;
use selflearn_seizure::features::quality::QualityExtractor;
use selflearn_seizure::features::{FeatureMatrix, SlidingWindowConfig};
use selflearn_seizure::ml::forest::RandomForestConfig;
use selflearn_seizure::ml::persist::store::{FaultyFlash, FlashGeometry, FlashStore};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Safety invariant of the gate: on clean synthetic records — any
    /// patient, any seizure, any sampling draw — no window overlapping the
    /// annotated seizure is ever rejected. Rejecting artifacts must never
    /// cost a detection on a healthy signal.
    #[test]
    fn gate_never_rejects_an_annotated_seizure_window_on_clean_records(
        cohort_seed in 0u64..50,
        patient in 0usize..9,
        record_seed in 0u64..1000,
    ) {
        let cohort = Cohort::chb_mit_like(cohort_seed);
        let seizure = (record_seed as usize) % cohort.seizures_of(patient).unwrap().len();
        let config = SampleConfig::new(150.0, 200.0, 64.0).unwrap();
        let record = cohort
            .sample_record(patient, seizure, &config, record_seed)
            .unwrap();
        let signal = record.signal();
        let fs = signal.sampling_frequency();

        // The realtime detector's analysis grid: 4 s windows, 75 % overlap.
        let windows = SlidingWindowConfig::new(fs, 4.0, 0.75).unwrap();
        let extractor = QualityExtractor::new(fs).unwrap();
        let mut quality = FeatureMatrix::default();
        extractor
            .extract_batch_into(signal.f7t3(), signal.f8t4(), &windows, &mut quality)
            .unwrap();
        let mut verdicts = Vec::new();
        QualityGate::verdicts_into(&quality, &mut verdicts);

        let onset = record.annotation().onset();
        let offset = record.annotation().offset();
        let step_secs = windows.step_samples() as f64 / fs;
        let window_secs = windows.window_samples() as f64 / fs;
        let mut seizure_windows = 0;
        for (w, verdict) in verdicts.iter().enumerate() {
            let start = w as f64 * step_secs;
            let end = start + window_secs;
            if start < offset && end > onset {
                seizure_windows += 1;
                prop_assert_ne!(
                    *verdict,
                    QualityVerdict::Reject,
                    "window {} ([{:.1}, {:.1}] s) overlaps the seizure \
                     ([{:.1}, {:.1}] s) yet was rejected",
                    w, start, end, onset, offset
                );
            }
        }
        prop_assert!(seizure_windows > 0, "the annotation must cover windows");
    }
}

/// The calibrated gate reference travels with the detector snapshot: after a
/// power cut at any tested point of a store save, the rebooted device's gate
/// equals either the pre-save or the committed post-save calibration — never
/// a torn in-between or a silently reset default.
#[test]
fn gate_state_survives_save_crash_resume() {
    let cohort = Cohort::chb_mit_like(37);
    let config = SampleConfig::new(150.0, 200.0, 64.0).unwrap();
    let patient = 8;
    let w = cohort.average_seizure_duration(patient).unwrap();
    let detector_config = RealTimeDetectorConfig {
        forest: RandomForestConfig {
            n_trees: 8,
            max_depth: 6,
            ..RandomForestConfig::default()
        },
        ..RealTimeDetectorConfig::default()
    };
    let mut pipeline = SelfLearningPipeline::new(LabelerConfig::default(), detector_config);

    // Seizure 1 calibrates the gate and becomes the stored base.
    let first = cohort.sample_record(patient, 0, &config, 91).unwrap();
    pipeline
        .observe_missed_seizure(&first, w, LabelSource::Algorithm)
        .unwrap()
        .expect("clean record must pass the gate");
    let gate_before = pipeline.detector().quality_gate().clone();
    assert!(gate_before.calibration_weight() > 0.0);

    let base_len = pipeline.save().len();
    let geometry = FlashGeometry::for_base(base_len * 6, base_len * 4);
    let mut store = pipeline
        .init_store(FaultyFlash::new(geometry.total_bytes()), geometry)
        .unwrap();
    let image = store.flash().image().to_vec();
    let written_before = store.flash().bytes_written();
    let armed = pipeline.clone();

    // Fault-free pass: seizure 2 advances the calibration and appends.
    let second = cohort.sample_record(patient, 1, &config, 92).unwrap();
    pipeline
        .observe_missed_seizure(&second, w, LabelSource::Algorithm)
        .unwrap()
        .expect("clean record must pass the gate");
    pipeline.save_to_store(&mut store).unwrap();
    let gate_after = pipeline.detector().quality_gate().clone();
    assert_ne!(
        gate_after, gate_before,
        "the second record must advance the calibration"
    );
    let save_bytes = store.flash().bytes_written() - written_before;

    // Pull the plug at 1/4, 1/2 and 3/4 of that save's write stream.
    for quarter in 1..4 {
        let cut = save_bytes * quarter / 4;
        let flash = FaultyFlash::from_image(image.clone()).power_loss_after(cut);
        let mut live = armed.clone();
        let mut store = FlashStore::mount(flash, geometry).map(|(s, _)| s).unwrap();
        live.observe_missed_seizure(&second, w, LabelSource::Algorithm)
            .unwrap()
            .expect("clean record must pass the gate");
        assert!(
            live.save_to_store(&mut store).is_err(),
            "cut {cut} must kill the save"
        );
        let (store, _) = FlashStore::mount(store.into_flash().reboot(), geometry)
            .unwrap_or_else(|e| panic!("cut {cut}: store lost: {e}"));
        let (resumed, _) = SelfLearningPipeline::resume_from_store(&store)
            .unwrap_or_else(|e| panic!("cut {cut}: resume failed: {e}"));
        let gate = resumed.detector().quality_gate();
        assert!(
            *gate == gate_before || *gate == gate_after,
            "cut {cut}: recovered gate is neither the pre-save nor the \
             committed calibration"
        );
    }
}
