//! Cross-crate property-based tests on the core invariants of the
//! methodology.

use proptest::prelude::*;
use selflearn_seizure::core::algorithm::{posteriori_detect, DetectorConfig, Implementation};
use selflearn_seizure::core::metric::{deviation_seconds, normalized_deviation};
use selflearn_seizure::features::FeatureMatrix;

fn feature_matrix(rows: usize, features: usize, seed: u64) -> FeatureMatrix {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    };
    let names = (0..features).map(|i| format!("f{i}")).collect();
    let data = (0..rows)
        .map(|_| (0..features).map(|_| next()).collect())
        .collect();
    FeatureMatrix::from_rows(names, data).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The optimized implementation of Algorithm 1 is exactly equivalent to
    /// the paper's reference pseudo-code on arbitrary feature matrices.
    #[test]
    fn optimized_algorithm_matches_reference(
        rows in 20usize..70,
        features in 1usize..6,
        window in 2usize..12,
        step in 1usize..6,
        seed in 0u64..500,
    ) {
        prop_assume!(rows > window + 2);
        let matrix = feature_matrix(rows, features, seed);
        let reference = posteriori_detect(
            &matrix,
            window,
            &DetectorConfig { implementation: Implementation::Reference, subsample_step: step, normalize: true },
        )
        .unwrap();
        let optimized = posteriori_detect(
            &matrix,
            window,
            &DetectorConfig { implementation: Implementation::Optimized, subsample_step: step, normalize: true },
        )
        .unwrap();
        prop_assert_eq!(reference.window_index, optimized.window_index);
        for (a, b) in reference.distances.iter().zip(optimized.distances.iter()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// A strong injected anomaly is always found near its true position.
    #[test]
    fn algorithm_finds_a_strong_anomaly(
        rows in 40usize..100,
        window in 5usize..15,
        onset_frac in 0.1f64..0.8,
        seed in 0u64..200,
    ) {
        let onset = ((rows as f64 * onset_frac) as usize).min(rows - window - 1);
        let mut matrix = feature_matrix(rows, 4, seed);
        for r in onset..onset + window {
            for c in 0..4 {
                *matrix.get_mut(r, c) += 15.0;
            }
        }
        let detection = posteriori_detect(&matrix, window, &DetectorConfig::default()).unwrap();
        let error = detection.window_index.abs_diff(onset);
        prop_assert!(error <= 2, "onset {onset}, detected {}", detection.window_index);
    }

    /// δ is symmetric in its arguments, zero only for identical intervals, and
    /// δ_norm always lies in [0, 1].
    #[test]
    fn metric_properties(
        a_start in 0.0f64..1000.0,
        a_len in 1.0f64..300.0,
        b_start in 0.0f64..1000.0,
        b_len in 1.0f64..300.0,
    ) {
        let a = (a_start, a_start + a_len);
        let b = (b_start, b_start + b_len);
        let dab = deviation_seconds(a, b).unwrap();
        let dba = deviation_seconds(b, a).unwrap();
        prop_assert!((dab - dba).abs() < 1e-9);
        prop_assert!(dab >= 0.0);
        prop_assert_eq!(deviation_seconds(a, a).unwrap(), 0.0);

        let signal_len = 4000.0;
        let dnorm = normalized_deviation(a, b, signal_len).unwrap();
        prop_assert!((0.0..=1.0).contains(&dnorm));
        prop_assert_eq!(normalized_deviation(a, a, signal_len).unwrap(), 1.0);
    }

    /// δ satisfies the triangle inequality (it is half an L1 distance on
    /// interval endpoints).
    #[test]
    fn metric_triangle_inequality(
        a in (0.0f64..500.0, 1.0f64..100.0),
        b in (0.0f64..500.0, 1.0f64..100.0),
        c in (0.0f64..500.0, 1.0f64..100.0),
    ) {
        let ia = (a.0, a.0 + a.1);
        let ib = (b.0, b.0 + b.1);
        let ic = (c.0, c.0 + c.1);
        let ab = deviation_seconds(ia, ib).unwrap();
        let bc = deviation_seconds(ib, ic).unwrap();
        let ac = deviation_seconds(ia, ic).unwrap();
        prop_assert!(ac <= ab + bc + 1e-9);
    }
}
