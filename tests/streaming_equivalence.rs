//! Streaming-vs-batch equivalence of the hop-structured feature extraction.
//!
//! The batch extractor is the bit-exact reference; the streaming extractor
//! must reproduce it per the documented error model: band powers (in exact
//! spectral mode), zero crossings, peak-to-peak, permutation entropies and
//! wavelet Shannon entropies bitwise, everything else within
//! `1e-7 · (1 + |batch|)` of floating-point re-association slack — across
//! random cohorts, hostile degradations and window geometries, down to the
//! sample-at-a-time `push()` front end.

use proptest::prelude::*;
use selflearn_seizure::core::realtime::{RealTimeDetector, RealTimeDetectorConfig};
use selflearn_seizure::core::SeizureLabel;
use selflearn_seizure::data::cohort::Cohort;
use selflearn_seizure::data::sampler::SampleConfig;
use selflearn_seizure::data::synth::{degrade_signal, HostileScenario};
use selflearn_seizure::features::extractor::{
    FeatureExtractor, RichFeatureSet, SlidingWindowConfig,
};
use selflearn_seizure::features::streaming::StreamingRichExtractor;
use selflearn_seizure::features::FeatureMatrix;

/// Relative tolerance of the bounded-error columns (merged vs two-pass
/// moments); observed slack is ~1e-12, the bound leaves two orders of room.
const BOUNDED_TOL: f64 = 1e-7;

/// Per-channel feature columns that must match bit for bit in exact
/// spectral mode: the 11 band-power slots, zero crossings (20),
/// peak-to-peak (21), both permutation entropies (22–23) and the three
/// wavelet Shannon entropies (24–26).
fn is_exact_column(channel_col: usize) -> bool {
    channel_col < 11 || (20..=26).contains(&channel_col)
}

fn assert_equivalent(streaming: &FeatureMatrix, batch: &FeatureMatrix, context: &str) {
    assert_eq!(streaming.num_windows(), batch.num_windows(), "{context}");
    assert_eq!(streaming.num_features(), batch.num_features(), "{context}");
    let per_channel = batch.num_features() / 2;
    for w in 0..batch.num_windows() {
        for c in 0..batch.num_features() {
            let s = streaming.get(w, c);
            let b = batch.get(w, c);
            let channel_base = (c / per_channel) * per_channel;
            // Skewness and kurtosis are ill-conditioned when the window's
            // variance underflows relative to its power (a dropout holding
            // one constant: both paths standardize pure rounding dust, and
            // the sign of that dust is not meaningful). The documented error
            // model excludes them there; everything else still holds.
            let variance = batch.get(w, channel_base + 12);
            let rms = batch.get(w, channel_base + 15);
            let degenerate = variance <= 1e-16 * (1.0 + rms * rms);
            if degenerate && (c % per_channel == 13 || c % per_channel == 14) {
                assert!(s.is_finite(), "{context}: window {w} column {c} not finite");
                continue;
            }
            if is_exact_column(c % per_channel) {
                assert!(
                    s == b || (s.is_nan() && b.is_nan()),
                    "{context}: window {w} column {c} must be bit-exact, \
                     streaming {s} vs batch {b}"
                );
            } else {
                assert!(
                    (s - b).abs() <= BOUNDED_TOL * (1.0 + b.abs()),
                    "{context}: window {w} column {c} out of bound, \
                     streaming {s} vs batch {b}"
                );
            }
        }
    }
}

fn synth_channel(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..n)
        .map(|i| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let noise = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            (i as f64 * 0.031).sin() + 0.7 * (i as f64 * 0.149).cos() + 0.4 * noise
        })
        .collect()
}

/// The streamable geometries the suite sweeps: the paper default plus
/// shorter windows, a lower rate and a 50 % overlap.
const GEOMETRIES: [(f64, f64, f64); 4] = [
    (256.0, 4.0, 0.75),
    (256.0, 2.0, 0.75),
    (64.0, 4.0, 0.75),
    (256.0, 2.0, 0.5),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random signals, every streamable geometry: the record-level streaming
    /// sweep reproduces the batch matrix per the error model.
    #[test]
    fn streaming_matches_batch_on_random_signals(
        seed in 0u64..10_000,
        extra_hops in 0usize..10,
        geometry in 0usize..GEOMETRIES.len(),
    ) {
        let (fs, window_secs, overlap) = GEOMETRIES[geometry];
        let config = SlidingWindowConfig::new(fs, window_secs, overlap).unwrap();
        let n = config.window_samples() + extra_hops * config.step_samples();
        let a = synth_channel(n, seed);
        let b = synth_channel(n, seed ^ 0xABCD);
        let batch = RichFeatureSet::new(fs)
            .unwrap()
            .extract_batch(&a, &b, &config)
            .unwrap();
        let mut streaming = StreamingRichExtractor::new(&config).unwrap();
        let mut matrix = FeatureMatrix::default();
        streaming.extract_batch_into(&a, &b, &mut matrix).unwrap();
        assert_equivalent(
            &matrix,
            &batch,
            &format!("seed {seed}, {extra_hops} extra hops, geometry {geometry}"),
        );
    }

    /// Feeding `push_hop` one hop at a time (reusing one extractor across
    /// consecutive records without reconstruction) is bitwise identical to
    /// the record-level driver.
    #[test]
    fn hop_by_hop_push_is_bitwise_identical_to_the_record_driver(
        seed in 0u64..10_000,
        extra_hops in 1usize..8,
    ) {
        let config = SlidingWindowConfig::paper_default(256.0).unwrap();
        let hop = config.step_samples();
        let n = config.window_samples() + extra_hops * hop;
        let a = synth_channel(n, seed.wrapping_add(17));
        let b = synth_channel(n, seed.wrapping_add(18));
        let mut reference = StreamingRichExtractor::new(&config).unwrap();
        let expected = reference.extract_batch(&a, &b).unwrap();

        let mut streaming = StreamingRichExtractor::new(&config).unwrap();
        // A burned prior record: reset semantics must fully isolate it.
        let burn = synth_channel(config.window_samples() + hop, !seed);
        streaming.extract_batch(&burn, &burn).unwrap();
        streaming.reset();

        let mut row = vec![0.0; streaming.num_features()];
        let mut produced = 0usize;
        for h in 0..n / hop {
            let s = h * hop;
            if streaming.push_hop(&a[s..s + hop], &b[s..s + hop], &mut row).unwrap() {
                prop_assert_eq!(row.as_slice(), expected.row(produced));
                produced += 1;
            }
        }
        prop_assert_eq!(produced, expected.num_windows());
    }
}

/// Every hostile scenario at three severities: artifact-dominated signals
/// (rail clipping, dropouts, pops, wander) stay inside the error model.
#[test]
fn streaming_survives_hostile_scenarios_within_the_error_model() {
    let cohort = Cohort::chb_mit_like(5);
    let sample = SampleConfig::new(180.0, 220.0, 64.0).unwrap();
    let record = cohort.sample_record(2, 0, &sample, 40).unwrap();
    let fs = record.signal().sampling_frequency();
    let config = SlidingWindowConfig::paper_default(fs).unwrap();
    let batch_set = RichFeatureSet::new(fs).unwrap();
    let mut streaming = StreamingRichExtractor::new(&config).unwrap();
    let mut matrix = FeatureMatrix::default();
    for scenario in HostileScenario::all() {
        for severity in [0.25, 0.6, 1.0] {
            let degraded = degrade_signal(record.signal(), scenario, severity, 99).unwrap();
            let batch = batch_set
                .extract_batch(degraded.f7t3(), degraded.f8t4(), &config)
                .unwrap();
            streaming
                .extract_batch_into(degraded.f7t3(), degraded.f8t4(), &mut matrix)
                .unwrap();
            assert_equivalent(
                &matrix,
                &batch,
                &format!("{} at severity {severity}", scenario.name()),
            );
        }
    }
}

/// The full sample-at-a-time path: a trained detector streamed one sample
/// pair per tick agrees with its own batch `detect` on clean and degraded
/// records (the gate is uncalibrated, so no record-level gain correction
/// separates the two paths).
#[test]
fn sample_at_a_time_push_matches_batch_detect() {
    let cohort = Cohort::chb_mit_like(3);
    let sample = SampleConfig::new(60.0, 100.0, 64.0).unwrap();
    let record = cohort.sample_record(8, 0, &sample, 5).unwrap();
    let truth =
        SeizureLabel::new(record.annotation().onset(), record.annotation().offset()).unwrap();
    let mut detector = RealTimeDetector::new(RealTimeDetectorConfig::default());
    let training = detector
        .build_training_windows(record.signal(), &truth)
        .unwrap();
    detector.train(&training).unwrap();

    let probe = cohort.sample_record(8, 1, &sample, 6).unwrap();
    let degraded = degrade_signal(probe.signal(), HostileScenario::MainsHum, 0.8, 123).unwrap();
    for signal in [probe.signal(), &degraded] {
        let batch = detector.detect(signal).unwrap();
        let mut streaming = detector.streaming(signal.sampling_frequency()).unwrap();
        let mut alarms = Vec::new();
        for (&a, &b) in signal.f7t3().iter().zip(signal.f8t4().iter()) {
            if let Some(detection) = streaming.push(a, b).unwrap() {
                assert_eq!(detection.window_index, alarms.len());
                alarms.push(detection.alarm);
            }
        }
        assert_eq!(alarms, batch);
    }
}
