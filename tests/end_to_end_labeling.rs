//! Integration test: raw synthetic EEG → feature extraction → Algorithm 1 →
//! seizure label, checked against the ground truth with the paper's metric.

use selflearn_seizure::core::labeler::{LabelerConfig, PosterioriLabeler};
use selflearn_seizure::core::metric::{deviation_seconds, normalized_deviation, DeviationSummary};
use selflearn_seizure::data::cohort::Cohort;
use selflearn_seizure::data::sampler::SampleConfig;

/// Short, low-rate records keep the test fast while exercising the full path.
fn test_config() -> SampleConfig {
    SampleConfig::new(300.0, 420.0, 64.0).unwrap()
}

#[test]
fn clean_patients_are_labeled_close_to_the_ground_truth() {
    let cohort = Cohort::chb_mit_like(1);
    let labeler = PosterioriLabeler::new(LabelerConfig::default());
    let config = test_config();

    // Patients 8 and 9 are the cleanest profiles of the cohort.
    for patient in [7usize, 8] {
        let w = cohort.average_seizure_duration(patient).unwrap();
        let record = cohort.sample_record(patient, 0, &config, 11).unwrap();
        let label = labeler.label_record(&record, w).unwrap();
        let delta = deviation_seconds(
            (record.annotation().onset(), record.annotation().offset()),
            label.as_interval(),
        )
        .unwrap();
        assert!(
            delta < 40.0,
            "patient {} labeled {delta:.1} s away from the ground truth",
            patient + 1
        );
        let dnorm = normalized_deviation(
            (record.annotation().onset(), record.annotation().offset()),
            label.as_interval(),
            record.signal().duration_secs(),
        )
        .unwrap();
        assert!(dnorm > 0.85, "delta_norm = {dnorm}");
    }
}

#[test]
fn labeling_quality_summary_over_several_records() {
    let cohort = Cohort::chb_mit_like(2);
    let labeler = PosterioriLabeler::new(LabelerConfig::default());
    let config = test_config();
    let mut summary = DeviationSummary::new();

    // A handful of records from clean patients.
    for (patient, seizure) in [(4usize, 0usize), (7, 1), (8, 0), (8, 2), (0, 0)] {
        let w = cohort.average_seizure_duration(patient).unwrap();
        let record = cohort.sample_record(patient, seizure, &config, 5).unwrap();
        let label = labeler.label_record(&record, w).unwrap();
        summary
            .record(
                (record.annotation().onset(), record.annotation().offset()),
                label.as_interval(),
                record.signal().duration_secs(),
            )
            .unwrap();
    }
    assert_eq!(summary.len(), 5);
    // The majority of clean-patient seizures are found within a minute.
    assert!(summary.fraction_within(60.0).unwrap() >= 0.6);
    assert!(summary.geometric_mean_normalized().unwrap() > 0.8);
    assert!(summary.median_delta().unwrap() < 60.0);
}

#[test]
fn labels_have_the_requested_average_duration() {
    let cohort = Cohort::chb_mit_like(3);
    let labeler = PosterioriLabeler::new(LabelerConfig::default());
    let config = test_config();
    let patient = 5;
    let w = cohort.average_seizure_duration(patient).unwrap();
    let record = cohort.sample_record(patient, 1, &config, 9).unwrap();
    let label = labeler.label_record(&record, w).unwrap();
    // The label length is W rounded to the feature-matrix step (1 s), clamped
    // to the record end.
    assert!((label.duration_secs() - w).abs() <= 1.5);
}

#[test]
fn the_hard_patient_is_harder_than_the_clean_one() {
    let cohort = Cohort::chb_mit_like(4);
    let labeler = PosterioriLabeler::new(LabelerConfig::default());
    let config = test_config();

    let mean_delta = |patient: usize, samples: u64| {
        let w = cohort.average_seizure_duration(patient).unwrap();
        let mut summary = DeviationSummary::new();
        for seizure in 0..cohort.seizures_of(patient).unwrap().len() {
            for sample in 0..samples {
                let record = cohort
                    .sample_record(patient, seizure, &config, sample)
                    .unwrap();
                let label = labeler.label_record(&record, w).unwrap();
                summary
                    .record(
                        (record.annotation().onset(), record.annotation().offset()),
                        label.as_interval(),
                        record.signal().duration_secs(),
                    )
                    .unwrap();
            }
        }
        summary.mean_delta().unwrap()
    };

    // Patient 2 (noisy, weak seizures) versus patient 8 (clean, strong
    // seizures): the paper's Table I shows the same ordering.
    let hard = mean_delta(1, 2);
    let clean = mean_delta(7, 2);
    assert!(
        hard > clean,
        "expected the noisy patient to be harder (hard = {hard:.1} s, clean = {clean:.1} s)"
    );
}
