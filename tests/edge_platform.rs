//! Integration test: the edge-platform model reproduces the paper's §VI-C
//! numbers (Table III, Fig. 5 and the lifetime ranges) end to end.

use selflearn_seizure::edge::energy::{EnergyModel, OperatingMode};
use selflearn_seizure::edge::memory::MemoryModel;
use selflearn_seizure::edge::platform::PlatformSpec;
use selflearn_seizure::edge::timing::TimingModel;
use selflearn_seizure::ml::forest::RandomForestConfig;
use selflearn_seizure::ml::persist::trainer_to_bytes;
use selflearn_seizure::ml::training::{IncrementalTrainer, IncrementalTrainerConfig};

#[test]
fn table_iii_is_reproduced() {
    let model = EnergyModel::new(PlatformSpec::stm32l151_default());
    let report = model.lifetime(OperatingMode::Combined, 1.0).unwrap();
    let tasks = report.tasks().tasks();

    // Row order and values of Table III (worst case, one seizure per day).
    assert_eq!(tasks[0].name, "EEG Acquisition (x2)");
    assert!((tasks[0].current_ma - 0.870).abs() < 1e-9);
    assert!((tasks[0].duty_cycle - 1.0).abs() < 1e-9);

    assert_eq!(tasks[1].name, "EEG Sup. Detection");
    assert!((tasks[1].current_ma - 10.5).abs() < 1e-9);
    assert!((tasks[1].duty_cycle - 0.75).abs() < 1e-9);
    assert!((tasks[1].average_current_ma() - 7.875).abs() < 1e-9);

    assert_eq!(tasks[2].name, "EEG Labeling");
    assert!((tasks[2].duty_cycle - 0.0417).abs() < 5e-4);
    assert!((tasks[2].average_current_ma() - 0.438).abs() < 5e-3);

    assert_eq!(tasks[3].name, "Idle");
    assert!((tasks[3].duty_cycle - 0.2083).abs() < 5e-4);

    // Bottom line: 2.59 days.
    assert!((report.lifetime_days() - 2.59).abs() < 0.02);
}

#[test]
fn figure_five_energy_shares_are_reproduced() {
    let model = EnergyModel::new(PlatformSpec::stm32l151_default());
    let report = model.lifetime(OperatingMode::Combined, 1.0).unwrap();
    let pct = report.energy_percentages();
    // Supervised detection dominates, labeling is a small extra cost.
    assert!((pct[0] - 9.47).abs() < 0.3);
    assert!((pct[1] - 85.72).abs() < 0.3);
    assert!((pct[2] - 4.77).abs() < 0.3);
    assert!(pct[3] < 0.1);
    assert!(pct[1] > 10.0 * pct[2]);
}

#[test]
fn lifetime_ranges_match_section_vi_c() {
    let model = EnergyModel::new(PlatformSpec::stm32l151_default());

    // Labeling only: 631.46 h .. 430.16 h for one seizure per month .. per day.
    let monthly = model
        .lifetime(OperatingMode::LabelingOnly, 1.0 / 30.0)
        .unwrap();
    let daily = model.lifetime(OperatingMode::LabelingOnly, 1.0).unwrap();
    assert!((monthly.lifetime_hours() - 631.46).abs() / 631.46 < 0.02);
    assert!((daily.lifetime_hours() - 430.16).abs() / 430.16 < 0.02);

    // Detection only: 65.15 h (2.71 days).
    let detection = model.lifetime(OperatingMode::DetectionOnly, 0.0).unwrap();
    assert!((detection.lifetime_hours() - 65.15).abs() / 65.15 < 0.02);

    // Combined: 2.71 .. 2.59 days.
    let combined_monthly = model.lifetime(OperatingMode::Combined, 1.0 / 30.0).unwrap();
    let combined_daily = model.lifetime(OperatingMode::Combined, 1.0).unwrap();
    assert!((combined_monthly.lifetime_days() - 2.71).abs() < 0.02);
    assert!((combined_daily.lifetime_days() - 2.59).abs() < 0.02);
}

#[test]
fn memory_and_timing_claims_hold_on_the_platform() {
    let spec = PlatformSpec::stm32l151_default();

    // One hour of buffered data needs 240 KB and fits the 384 KB Flash.
    let budget = MemoryModel::new(spec).budget(3600.0).unwrap();
    assert_eq!(budget.history_bytes, 240 * 1024);
    assert!(budget.fits_flash);
    assert!(budget.fits_ram);

    // The labeling pass over one hour stays within the same order of magnitude
    // as real time (the paper: one second of signal per second of processing).
    let timing = TimingModel::new(spec);
    let cost = timing.labeling_cost(3600.0, 60.0, 10).unwrap();
    assert!(cost.seconds_per_signal_second < 2.0);
    // And the real-time detector's duty cycle is the 75 % used in Table III.
    assert!((timing.detection_duty_cycle() - 0.75).abs() < 1e-12);
}

/// The edge memory model's snapshot-size formula must agree byte for byte
/// with what `seizure-ml`'s persistence codec actually emits, for the empty
/// pool and for fitted trainers alike — otherwise the Flash budgeting the
/// wearable plans its power cycles around would drift from reality.
#[test]
fn snapshot_size_formula_matches_the_real_codec() {
    let memory = MemoryModel::new(PlatformSpec::stm32l151_default());
    let config = IncrementalTrainerConfig {
        forest: RandomForestConfig {
            n_trees: 5,
            max_depth: 5,
            ..RandomForestConfig::default()
        },
        block_size: 16,
    };

    let empty = IncrementalTrainer::new(config, 9);
    assert_eq!(
        trainer_to_bytes(&empty).len(),
        memory.trainer_snapshot_bytes(0, 0, 0, 0)
    );

    let mut trainer = IncrementalTrainer::new(config, 9);
    let n = 300;
    let rows: Vec<f64> = (0..n * 2)
        .map(|i| ((i * 37 + 11) % 101) as f64 / 7.0)
        .collect();
    let labels: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
    trainer.retrain(&rows, 2, &labels).unwrap();
    let total_nodes: usize = trainer.current_forest().unwrap().num_nodes();
    assert_eq!(
        trainer_to_bytes(&trainer).len(),
        memory.trainer_snapshot_bytes(n, 2, 5, total_nodes)
    );

    // And a few-seizure personalized pool (the paper trains on 2-5 balanced
    // seizures, ~256 windows of 54 features, 30 trees) fits the 384 KB Flash
    // alongside a 20-minute history buffer — exactly the budgeting question
    // a self-learning wearable has to answer before committing to
    // persistence. A much larger pool visibly does not, so the model can
    // also tell the device when to stop growing on-flash state.
    let few_seizures = memory.trainer_snapshot_bytes(256, 54, 30, 30 * 128);
    let budget = memory.budget_with_snapshot(1200.0, few_seizures).unwrap();
    assert!(budget.fits_flash, "{} bytes", budget.history_bytes);
    let oversized = memory.trainer_snapshot_bytes(2048, 54, 30, 30 * 256);
    assert!(
        !memory
            .budget_with_snapshot(1200.0, oversized)
            .unwrap()
            .fits_flash
    );
}

/// The edge memory model's block-run order pricing must agree byte for byte
/// with the RAM `seizure-ml`'s `TrainingSet` actually holds for its
/// presorted runs — fresh pools, grown pools and incremental-trainer pools
/// alike — and the old flat-u32 layout must price at exactly twice that,
/// documenting what the block-run refactor bought.
#[test]
fn block_run_order_pricing_matches_the_real_training_set() {
    use selflearn_seizure::ml::training::TrainingSet;

    let memory = MemoryModel::new(PlatformSpec::stm32l151_default());

    // A fresh pool (any run-block partitioning prices identically: the runs
    // hold one u16 per sample per feature, bases are closed-form).
    let n = 300;
    let nf = 2;
    let rows: Vec<f64> = (0..n * nf)
        .map(|i| ((i * 37 + 11) % 101) as f64 / 7.0)
        .collect();
    let labels: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
    let mut set = TrainingSet::from_rows(&rows, nf, &labels).unwrap();
    assert_eq!(set.order_bytes(), memory.block_run_order_bytes(n, nf));

    // Growth reprices linearly in the appended samples.
    set.append_rows(&rows, &labels).unwrap();
    assert_eq!(set.order_bytes(), memory.block_run_order_bytes(2 * n, nf));

    // An incremental trainer's pool (ownership-block-aligned runs) prices
    // the same way.
    let config = IncrementalTrainerConfig {
        forest: RandomForestConfig {
            n_trees: 5,
            max_depth: 5,
            ..RandomForestConfig::default()
        },
        block_size: 16,
    };
    let mut trainer = IncrementalTrainer::new(config, 9);
    trainer.retrain(&rows, nf, &labels).unwrap();
    assert_eq!(
        trainer.training_set().unwrap().order_bytes(),
        memory.block_run_order_bytes(n, nf)
    );

    // The paper-scale pool: the flat u32 layout cost exactly twice the
    // block runs, so the refactor halves the order RAM of every pool.
    assert_eq!(
        memory.flat_order_bytes(2048, 54),
        2 * memory.block_run_order_bytes(2048, 54)
    );
    assert_eq!(memory.block_run_order_bytes(2048, 54), 2 * 2048 * 54);
}

/// The edge memory model's journal-entry formula must agree byte for byte
/// with what the delta journal actually appends — with and without an
/// annotation — so the per-seizure Flash budgeting matches the write the
/// device performs.
#[test]
fn journal_entry_size_formula_matches_the_real_codec() {
    use selflearn_seizure::ml::persist::journal::JournalWriter;

    let memory = MemoryModel::new(PlatformSpec::stm32l151_default());
    let config = IncrementalTrainerConfig {
        forest: RandomForestConfig {
            n_trees: 5,
            max_depth: 5,
            ..RandomForestConfig::default()
        },
        block_size: 16,
    };
    let mut trainer = IncrementalTrainer::new(config, 9);
    let n = 120;
    let rows: Vec<f64> = (0..n * 2)
        .map(|i| ((i * 37 + 11) % 101) as f64 / 7.0)
        .collect();
    let labels: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
    trainer.retrain(&rows, 2, &labels).unwrap();

    let base = trainer_to_bytes(&trainer);
    let mut writer = JournalWriter::new(&base, n).unwrap();

    // A plain retrain entry (detector-level: no annotation).
    let batch = 33;
    let batch_rows: Vec<f64> = (0..batch * 2).map(|i| i as f64).collect();
    let batch_labels: Vec<bool> = (0..batch).map(|i| i % 2 == 0).collect();
    writer
        .append_retrain(&batch_rows, 2, &batch_labels)
        .unwrap();
    assert_eq!(writer.len(), memory.journal_entry_bytes(batch, 2, 0));

    // A pipeline-level entry annotating the 40-byte produced label + gate
    // calibration block.
    let before = writer.len();
    writer
        .append_with(&batch_rows, 2, &batch_labels, &[0u8; 40])
        .unwrap();
    assert_eq!(
        writer.len() - before,
        memory.journal_entry_bytes(batch, 2, 40)
    );

    // Budget sanity at paper scale: a 10 % batch append is an order of
    // magnitude below the full snapshot it replaces.
    let full = memory.trainer_snapshot_bytes(4096, 54, 30, 30 * 200);
    let entry = memory.journal_entry_bytes(410, 54, 40);
    assert!(entry * 5 < full, "entry {entry} vs full {full}");
}

/// The edge memory model's quality-gate budget must agree byte for byte with
/// the real layouts it mirrors: the gate's persisted calibration block inside
/// a detector snapshot, and the indicator-row width of the feature crate's
/// quality module.
#[test]
fn quality_gate_budget_matches_the_real_snapshot_and_feature_layout() {
    use selflearn_seizure::core::realtime::{RealTimeDetector, RealTimeDetectorConfig};
    use selflearn_seizure::edge::memory::GATE_STATE_BYTES;
    use selflearn_seizure::features::quality::NUM_QUALITY_FEATURES;

    let memory = MemoryModel::new(PlatformSpec::stm32l151_default());

    // An untrained detector snapshot is the 28-byte envelope, the config
    // block (window + overlap + 41-byte forest config + seed + incremental
    // block size), the gate's calibration block and the "no model" marker.
    // Pinning the whole length keeps GATE_STATE_BYTES honest: a gate-block
    // format change moves this number.
    let untrained = RealTimeDetector::new(RealTimeDetectorConfig::default()).save_state();
    const ENVELOPE: usize = 28;
    const CONFIG_BYTES: usize = 8 + 8 + 41 + 8 + 8;
    assert_eq!(
        untrained.len(),
        ENVELOPE + CONFIG_BYTES + GATE_STATE_BYTES + 1
    );

    // The scratch formula's feature count is the quality module's, not a
    // copy that can drift; spelled out: one live f64 indicator row, one
    // verdict byte per second, one corrected 4 s two-channel f64 window.
    let scratch = memory.quality_scratch_bytes(1200.0);
    assert_eq!(scratch, NUM_QUALITY_FEATURES * 8 + 1200 + 4 * 256 * 2 * 8);

    // Gated budget = snapshot budget + gate block in Flash + scratch in RAM,
    // and a 20-minute gated wearable still fits the STM32L151 outright.
    let snapshot = memory.trainer_snapshot_bytes(256, 54, 30, 30 * 128);
    let base = memory.budget_with_snapshot(1200.0, snapshot).unwrap();
    let gated = memory.budget_with_quality_gate(1200.0, snapshot).unwrap();
    assert_eq!(gated.history_bytes, base.history_bytes + GATE_STATE_BYTES);
    assert_eq!(gated.working_bytes, base.working_bytes + scratch);
    assert!(gated.fits_flash);
    assert!(gated.fits_ram);
}

/// The edge memory model's dual-slot store formula must agree byte for byte
/// with the crash-proof A/B store's real layout — slot-header size included —
/// so the Flash budget a wearable plans around covers exactly the image
/// `FlashStore::format` writes.
#[test]
fn dual_slot_store_formula_matches_the_real_layout() {
    use selflearn_seizure::ml::persist::store::{FlashGeometry, SLOT_HEADER_LEN};

    let memory = MemoryModel::new(PlatformSpec::stm32l151_default());
    // The formula's baked-in header size is the store's, not a copy that can
    // drift silently.
    assert_eq!(memory.dual_slot_store_bytes(0, 0), 2 * SLOT_HEADER_LEN);
    for (base, journal) in [(0usize, 0usize), (64 * 1024, 32 * 1024), (7, 13)] {
        assert_eq!(
            memory.dual_slot_store_bytes(base, journal),
            FlashGeometry::for_base(base, journal).total_bytes()
        );
    }

    // Paper-scale budgeting: a compact personalized base (held twice for
    // crash-proof compaction) plus a two-seizure journal region fits the
    // 384 KB part next to a 20-minute history buffer…
    let journal_bytes = 2 * memory.journal_entry_bytes(60, 54, 16);
    let compact_base = memory.trainer_snapshot_bytes(128, 54, 30, 30 * 64);
    let budget = memory
        .budget_with_ab_store(1200.0, compact_base, journal_bytes)
        .unwrap();
    assert!(budget.fits_flash, "{} bytes", budget.history_bytes);

    // …but the 256-window pool that fits a *single*-slot budget does not
    // survive being doubled: crash-proofing has a real, visible Flash price,
    // and the model tells the device where that line is.
    let few_seizures = memory.trainer_snapshot_bytes(256, 54, 30, 30 * 128);
    assert!(
        memory
            .budget_with_snapshot(1200.0, few_seizures)
            .unwrap()
            .fits_flash
    );
    assert!(
        !memory
            .budget_with_ab_store(1200.0, few_seizures, journal_bytes)
            .unwrap()
            .fits_flash
    );
}

/// The edge memory model's streaming-state formula must agree byte for byte
/// with the streaming extractor's own accounting, for both spectral modes
/// and across window geometries — so the RAM a wearable reserves for the
/// hop-structured extraction covers exactly the state the extractor carries.
#[test]
fn streaming_state_formula_matches_the_real_extractor() {
    use selflearn_seizure::features::extractor::SlidingWindowConfig;
    use selflearn_seizure::features::streaming::{SpectralMode, StreamingRichExtractor};

    let memory = MemoryModel::new(PlatformSpec::stm32l151_default());
    for (fs, window_secs, overlap) in [
        (256.0, 4.0, 0.75),
        (256.0, 2.0, 0.75),
        (64.0, 4.0, 0.75),
        (256.0, 2.0, 0.5),
    ] {
        let config = SlidingWindowConfig::new(fs, window_secs, overlap).unwrap();
        let window = config.window_samples();
        let step = config.step_samples();
        let exact = StreamingRichExtractor::new(&config).unwrap();
        assert_eq!(
            memory.streaming_state_bytes(window, step, false),
            exact.state_bytes(),
            "exact mode, fs {fs}, {window_secs} s window, {overlap} overlap"
        );
        let welch = StreamingRichExtractor::with_mode(&config, SpectralMode::HopWelch).unwrap();
        assert_eq!(
            memory.streaming_state_bytes(window, step, true),
            welch.state_bytes(),
            "hop-welch mode, fs {fs}, {window_secs} s window, {overlap} overlap"
        );
    }

    // The budget the wearable actually plans around: carried state plus one
    // hop of staging per channel on the RAM side, gate accounting unchanged.
    let config = SlidingWindowConfig::new(256.0, 4.0, 0.75).unwrap();
    let snapshot = memory.trainer_snapshot_bytes(256, 54, 30, 30 * 128);
    let gated = memory.budget_with_quality_gate(1200.0, snapshot).unwrap();
    let streaming = memory
        .budget_with_streaming(1200.0, snapshot, 1024, 256)
        .unwrap();
    assert_eq!(streaming.history_bytes, gated.history_bytes);
    assert_eq!(
        streaming.working_bytes,
        gated.working_bytes
            + StreamingRichExtractor::new(&config).unwrap().state_bytes()
            + 2 * 256 * 8
    );
}
