//! Integration test of the full self-learning loop: a-posteriori labels train
//! the real-time detector and the result is compared against expert labels
//! (the experiment behind the paper's Fig. 4, at reduced scale).

use selflearn_seizure::core::labeler::LabelerConfig;
use selflearn_seizure::core::pipeline::{LabelSource, SelfLearningPipeline};
use selflearn_seizure::core::realtime::RealTimeDetectorConfig;
use selflearn_seizure::data::cohort::Cohort;
use selflearn_seizure::data::sampler::SampleConfig;
use selflearn_seizure::ml::forest::RandomForestConfig;

fn fast_detector() -> RealTimeDetectorConfig {
    RealTimeDetectorConfig {
        forest: RandomForestConfig {
            n_trees: 10,
            max_depth: 6,
            ..RandomForestConfig::default()
        },
        ..RealTimeDetectorConfig::default()
    }
}

fn sample_config() -> SampleConfig {
    SampleConfig::new(200.0, 280.0, 64.0).unwrap()
}

/// Trains a pipeline on the first `n_train` seizures of a patient with the
/// given label source and returns the geometric mean on the remaining ones.
fn run_pipeline(patient: usize, n_train: usize, source: LabelSource) -> f64 {
    let cohort = Cohort::chb_mit_like(17);
    let config = sample_config();
    let w = cohort.average_seizure_duration(patient).unwrap();
    let mut pipeline = SelfLearningPipeline::new(LabelerConfig::default(), fast_detector());
    for seizure in 0..n_train {
        let record = cohort
            .sample_record(patient, seizure, &config, seizure as u64)
            .unwrap();
        pipeline.observe_missed_seizure(&record, w, source).unwrap();
    }
    let held_out: Vec<_> = (n_train..cohort.seizures_of(patient).unwrap().len())
        .map(|s| {
            cohort
                .sample_record(patient, s, &config, 50 + s as u64)
                .unwrap()
        })
        .collect();
    pipeline.evaluate_all(&held_out).unwrap().geometric_mean
}

#[test]
fn algorithm_labels_train_a_usable_detector() {
    // Clean patient (9): the detector trained on algorithm labels must reach a
    // solid geometric mean on held-out seizures.
    let gmean = run_pipeline(8, 3, LabelSource::Algorithm);
    assert!(gmean > 0.7, "geometric mean = {gmean:.3}");
}

#[test]
fn algorithm_labels_are_close_to_expert_labels() {
    // The paper's headline validation: training on algorithm labels degrades
    // the detector only slightly compared to expert labels. At this reduced
    // scale we allow a generous margin but the ordering and proximity must
    // hold.
    let expert = run_pipeline(8, 3, LabelSource::Expert);
    let algorithm = run_pipeline(8, 3, LabelSource::Algorithm);
    assert!(expert > 0.7, "expert-label baseline too weak: {expert:.3}");
    let degradation = expert - algorithm;
    assert!(
        degradation < 0.15,
        "algorithm-label training degraded the detector by {degradation:.3} \
         (expert {expert:.3}, algorithm {algorithm:.3})"
    );
}

/// The acceptance property of the persistence subsystem at experiment scale:
/// interrupting the Fig. 4 training loop with a save/resume round trip after
/// every collected seizure must leave the final detector node-identical to
/// the uninterrupted run — identical held-out detections, identical metrics.
#[test]
fn experiment_survives_a_process_boundary_after_every_seizure() {
    let cohort = Cohort::chb_mit_like(17);
    let config = sample_config();
    let patient = 8;
    let w = cohort.average_seizure_duration(patient).unwrap();

    let mut uninterrupted = SelfLearningPipeline::new(LabelerConfig::default(), fast_detector());
    let mut resumed = SelfLearningPipeline::new(LabelerConfig::default(), fast_detector());
    for seizure in 0..3 {
        let record = cohort
            .sample_record(patient, seizure, &config, seizure as u64)
            .unwrap();
        uninterrupted
            .observe_missed_seizure(&record, w, LabelSource::Algorithm)
            .unwrap();
        resumed
            .observe_missed_seizure(&record, w, LabelSource::Algorithm)
            .unwrap();
        // The "power cycle": serialize, drop, restore.
        resumed = SelfLearningPipeline::resume(&resumed.save()).unwrap();
    }
    assert_eq!(
        resumed.detector().flat_forest(),
        uninterrupted.detector().flat_forest()
    );
    assert_eq!(resumed.num_seizures_collected(), 3);

    let held_out = cohort.sample_record(patient, 3, &config, 53).unwrap();
    assert_eq!(
        resumed.detector().detect(held_out.signal()).unwrap(),
        uninterrupted.detector().detect(held_out.signal()).unwrap()
    );
    let a = resumed.evaluate(&held_out).unwrap();
    let b = uninterrupted.evaluate(&held_out).unwrap();
    assert_eq!(a, b);
}

#[test]
fn detector_improves_with_more_collected_seizures() {
    let one = run_pipeline(8, 1, LabelSource::Algorithm);
    let three = run_pipeline(8, 3, LabelSource::Algorithm);
    // More personalized data should not make the detector substantially worse.
    assert!(
        three >= one - 0.1,
        "3-seizure detector ({three:.3}) much worse than 1-seizure detector ({one:.3})"
    );
}
