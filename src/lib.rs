//! # selflearn-seizure
//!
//! Umbrella crate for the reproduction of *"A Self-Learning Methodology for
//! Epileptic Seizure Detection with Minimally-Supervised Edge Labeling"*
//! (Pascual, Aminifar, Atienza — DATE 2019).
//!
//! It re-exports the workspace crates under stable module names so that
//! downstream users (and the examples and integration tests in this
//! repository) need a single dependency:
//!
//! * [`dsp`] — FFT, power spectra, Daubechies wavelets, filters
//!   ([`seizure_dsp`]),
//! * [`features`] — EEG feature extraction and selection
//!   ([`seizure_features`]),
//! * [`data`] — the synthetic CHB-MIT-like cohort ([`seizure_data`]),
//! * [`ml`] — random forests, clustering baselines and metrics
//!   ([`seizure_ml`]),
//! * [`core`] — Algorithm 1, the δ metric and the self-learning pipeline
//!   ([`seizure_core`]),
//! * [`edge`] — the wearable-platform energy/memory/timing models
//!   ([`seizure_edge`]).
//!
//! # Quickstart
//!
//! ```
//! use selflearn_seizure::core::labeler::{LabelerConfig, PosterioriLabeler};
//! use selflearn_seizure::core::metric::deviation_seconds;
//! use selflearn_seizure::data::cohort::Cohort;
//! use selflearn_seizure::data::sampler::SampleConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A short record so the doc test stays fast; see `examples/quickstart.rs`
//! // for the full-scale configuration.
//! let cohort = Cohort::chb_mit_like(42);
//! let config = SampleConfig::new(200.0, 240.0, 64.0)?;
//! let record = cohort.sample_record(0, 0, &config, 0)?;
//!
//! let labeler = PosterioriLabeler::new(LabelerConfig::default());
//! let label = labeler.label_record(&record, cohort.average_seizure_duration(0)?)?;
//! let delta = deviation_seconds(
//!     (record.annotation().onset(), record.annotation().offset()),
//!     label.as_interval(),
//! )?;
//! println!("label deviation: {delta:.1} s");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The paper's core methodology: Algorithm 1, metrics, real-time detector and
/// the self-learning pipeline (re-export of [`seizure_core`]).
pub use seizure_core as core;

/// Synthetic CHB-MIT-like EEG cohort (re-export of [`seizure_data`]).
pub use seizure_data as data;

/// DSP substrate (re-export of [`seizure_dsp`]).
pub use seizure_dsp as dsp;

/// Wearable-platform models (re-export of [`seizure_edge`]).
pub use seizure_edge as edge;

/// Feature extraction (re-export of [`seizure_features`]).
pub use seizure_features as features;

/// Machine-learning substrate (re-export of [`seizure_ml`]).
pub use seizure_ml as ml;
