//! Streaming (hop-structured) rich feature extraction.
//!
//! The paper slides 4-second windows with 75 % overlap, so consecutive
//! windows share three quarters of their samples — yet the batch extractor
//! recomputes every moment, spectrum and wavelet band from scratch for every
//! window. [`StreamingRichExtractor`] restructures the extraction into
//! per-hop operators that carry work across windows:
//!
//! * **Moments / Hjorth / waveform** — every hop is summarized once
//!   ([`MomentSummary`] of the raw samples, second-order
//!   [`SpreadSummary`]s of its internal first and second differences,
//!   partial line-length/Teager/zero-crossing/min-max
//!   folds, the hop's first and last four samples for the boundary terms);
//!   a window merges its `k = window/hop` hop summaries instead of
//!   rescanning `window` samples.
//! * **Permutation entropy** — each hop counts its ordinal patterns into a
//!   dense Lehmer table once; straddling patterns are added when the next
//!   hop arrives. Window tables are integer sums of hop tables, so the
//!   entropies are **bit-exact** against the batch path.
//! * **Wavelet** — a [`StreamingWavelet`] shifts clean db4 coefficients
//!   across windows and recomputes only the newly exposed ones plus the
//!   periodic-boundary tail; detail bands (and hence the Shannon wavelet
//!   entropies) are **bit-exact**.
//! * **Spectrum** — two modes. [`SpectralMode::Exact`] (default) runs the
//!   same full-window rectangular periodogram as the batch extractor, so
//!   all eleven band-power features stay **bit-exact**.
//!   [`SpectralMode::HopWelch`] periodograms each hop once and Bartlett-
//!   averages the `k` covering segments ([`HopPeriodogram`]) — cheaper, but
//!   a different estimator (hop-resolution bins), so band features carry
//!   estimator error while total power is preserved to rounding.
//!
//! # Equivalence / error model
//!
//! Per 27-feature channel block (see [`RichFeatureSet`] for the layout):
//!
//! | columns | features | streaming vs batch |
//! |---|---|---|
//! | 0–10 | band powers, total power | bit-exact (`Exact`), estimator error (`HopWelch`) |
//! | 11–15 | mean/variance/skew/kurtosis/rms | bounded error (merged vs two-pass moments, ≲1e-9 relative) |
//! | 16–17 | Hjorth mobility/complexity | bounded error (same reason) |
//! | 18–19 | line length, nonlinear energy | bounded error (re-associated sums) |
//! | 20–21 | zero crossings, peak-to-peak | exact (integer count, associative min/max) |
//! | 22–23 | permutation entropies | bit-exact (integer pattern tables) |
//! | 24–26 | wavelet Shannon entropies | bit-exact (identical coefficients) |
//!
//! The bounded-error columns differ only by floating-point re-association
//! (Chan-merged moments versus one two-pass scan); the property suite pins
//! the bound at `1e-7 · (1 + |batch|)` across random, hostile and geometric
//! cohorts. One carve-out: skewness and kurtosis are ill-conditioned when a
//! window's variance underflows relative to its power (e.g. a dropout
//! holding one constant value — the standardized residuals are pure rounding
//! dust in *both* paths, and their sign is an accident of summation order),
//! so the equivalence suite excludes those two columns on such degenerate
//! windows and only requires them to stay finite.

use crate::bandpower::band_powers_from_bins;
use crate::entropy::{
    accumulate_pattern_counts, accumulate_pattern_counts_delay1, entropy_from_counts,
    shannon_entropy_noalloc,
};
use crate::error::FeatureError;
use crate::extractor::{
    FeatureExtractor, RichFeatureSet, SlidingWindowConfig, RICH_FEATURES_PER_CHANNEL,
    RICH_WAVELET_LEVELS,
};
use crate::matrix::FeatureMatrix;
use crate::statistics::{MomentSummary, SpreadSummary};
use seizure_dsp::fft::Complex;
use seizure_dsp::spectrum::{HopPeriodogram, PsdPlan};
use seizure_dsp::wavelet::{StreamingWavelet, Wavelet};
use seizure_dsp::window::WindowKind;

/// How the streaming extractor estimates the spectral band powers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpectralMode {
    /// One full-window rectangular periodogram per window — identical input
    /// and arithmetic to the batch extractor, so band powers are bit-exact.
    #[default]
    Exact,
    /// One rectangular periodogram **per hop**, Bartlett-averaged over the
    /// `k` hops each window covers (Welch-style segment reuse). Roughly `k`×
    /// less FFT work per window, but a coarser estimator: bins sit at
    /// `fs / hop` resolution, so narrow-band powers differ from the batch
    /// values while total power agrees to rounding.
    HopWelch,
}

/// Number of `f64` fields a [`HopSummary`] carries (priced by
/// `edge::memory::streaming_state_bytes`).
pub const HOP_SUMMARY_F64_SLOTS: usize = 24;

/// Number of `u32` fields a [`HopSummary`] carries (the zero-crossing count
/// plus the order-3 and order-5 ordinal pattern tables).
pub const HOP_SUMMARY_U32_SLOTS: usize = 1 + 6 + 120;

/// Everything one hop contributes to the windows that cover it.
#[derive(Debug, Clone)]
struct HopSummary {
    /// Central moments of the hop's raw samples.
    raw: MomentSummary,
    /// Raw power sum `Σx²` of the hop (for the window RMS).
    sum_sq: f64,
    /// Second-order summary of the first differences internal to the hop.
    d1: SpreadSummary,
    /// Second-order summary of the second differences internal to the hop.
    d2: SpreadSummary,
    /// `Σ|Δ|` over the hop-internal differences.
    line_length: f64,
    /// Teager energy sum over the hop-internal triples.
    nle_sum: f64,
    /// Sign-change count over the hop-internal sample pairs.
    zero_crossings: u32,
    /// Minimum sample of the hop.
    lo: f64,
    /// Maximum sample of the hop.
    hi: f64,
    /// First four samples (boundary terms and pattern straddles).
    first: [f64; 4],
    /// Last four samples.
    last: [f64; 4],
    /// Order-3 ordinal pattern counts of the hop (own starts; straddling
    /// starts are added in place when the next hop arrives).
    counts3: [u32; 6],
    /// Order-5 ordinal pattern counts of the hop.
    counts5: [u32; 120],
}

impl HopSummary {
    /// Summarizes one hop of samples (`hop.len() >= 5`, enforced by the
    /// extractor's geometry validation).
    // lint: hot-path
    fn from_hop(hop: &[f64]) -> Self {
        let raw = MomentSummary::from_slice(hop);
        let sum_sq = hop.iter().map(|x| x * x).sum();
        let d1 = SpreadSummary::from_first_differences(hop);
        let d2 = SpreadSummary::from_second_differences(hop);
        let mut line_length = 0.0;
        let mut zero_crossings = 0u32;
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for pair in hop.windows(2) {
            let diff = pair[1] - pair[0];
            line_length += diff.abs();
            if (pair[0] >= 0.0) != (pair[1] >= 0.0) {
                zero_crossings += 1;
            }
        }
        let mut nle_sum = 0.0;
        for triple in hop.windows(3) {
            nle_sum += triple[1] * triple[1] - triple[0] * triple[2];
        }
        for &x in hop {
            lo = lo.min(x);
            hi = hi.max(x);
        }
        let mut counts3 = [0u32; 6];
        let mut counts5 = [0u32; 120];
        accumulate_pattern_counts_delay1(hop, 3, &mut counts3);
        accumulate_pattern_counts_delay1(hop, 5, &mut counts5);
        Self {
            raw,
            sum_sq,
            d1,
            d2,
            line_length,
            nle_sum,
            zero_crossings,
            lo,
            hi,
            first: [hop[0], hop[1], hop[2], hop[3]],
            last: [
                hop[hop.len() - 4],
                hop[hop.len() - 3],
                hop[hop.len() - 2],
                hop[hop.len() - 1],
            ],
            counts3,
            counts5,
        }
    }

    /// Adds the ordinal patterns that straddle from this hop into `next`,
    /// turning the hop's "own" tables into full tables. A pattern spans at
    /// most `span = 4` samples, so the straddle slice of the last four
    /// samples of this hop plus the first four of the next covers every
    /// crossing start exactly once.
    // lint: hot-path
    fn complete_with(&mut self, next: &HopSummary) {
        let straddle3 = [self.last[2], self.last[3], next.first[0], next.first[1]];
        accumulate_pattern_counts(&straddle3, 3, 1, &mut self.counts3);
        let straddle5 = [
            self.last[0],
            self.last[1],
            self.last[2],
            self.last[3],
            next.first[0],
            next.first[1],
            next.first[2],
            next.first[3],
        ];
        accumulate_pattern_counts(&straddle5, 5, 1, &mut self.counts5);
    }
}

/// Per-channel streaming state: the linearized current window, the ring of
/// hop summaries, the carried wavelet coefficients and (in
/// [`SpectralMode::HopWelch`]) the ring of hop periodograms.
#[derive(Debug, Clone)]
struct ChannelStream {
    /// The last `window` samples, linearized (shifted left one hop at a
    /// time) — the input of the exact periodogram and the wavelet update.
    window_buf: Vec<f64>,
    /// Ring of the last `k` hop summaries, indexed by `hop_index % k`.
    ring: Vec<HopSummary>,
    /// Carried wavelet coefficients.
    wavelet: StreamingWavelet,
    /// Carried hop periodograms (`HopWelch` mode only).
    hop_psd: Option<HopPeriodogram>,
}

/// Stateful streaming twin of [`RichFeatureSet`]: feeds on one hop of both
/// channels at a time and emits one 54-feature row per completed window,
/// reusing all work the window overlap already paid for.
///
/// Use [`StreamingRichExtractor::extract_batch_into`] for record-level
/// workloads (fills a [`FeatureMatrix`] exactly like the batch extractor) or
/// [`StreamingRichExtractor::push_hop`] to drive it hop by hop in real time.
/// The batch extractor remains the bit-exact reference; see the module docs
/// for the per-column equivalence/error model.
///
/// # Example
///
/// ```
/// use seizure_features::extractor::{FeatureExtractor, RichFeatureSet, SlidingWindowConfig};
/// use seizure_features::streaming::StreamingRichExtractor;
///
/// # fn main() -> Result<(), seizure_features::FeatureError> {
/// let fs = 256.0;
/// let config = SlidingWindowConfig::paper_default(fs)?;
/// let n = 1024 + 3 * 256;
/// let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.07).sin()).collect();
/// let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos()).collect();
///
/// let mut streaming = StreamingRichExtractor::new(&config)?;
/// let mut matrix = seizure_features::FeatureMatrix::default();
/// streaming.extract_batch_into(&a, &b, &mut matrix)?;
///
/// let reference = RichFeatureSet::new(fs)?.extract_batch(&a, &b, &config)?;
/// assert_eq!(matrix.num_windows(), reference.num_windows());
/// for (s, r) in matrix.data().iter().zip(reference.data().iter()) {
///     assert!((s - r).abs() <= 1e-7 * (1.0 + r.abs()));
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StreamingRichExtractor {
    fs: f64,
    window: usize,
    hop: usize,
    /// Hops per window.
    k: usize,
    mode: SpectralMode,
    /// Batch-identical feature definition, used for names.
    reference: RichFeatureSet,
    /// Full-window periodogram plan ([`SpectralMode::Exact`]).
    psd: PsdPlan,
    /// Window-resolution PSD bins (transient scratch, not carried state).
    power: Vec<f64>,
    /// FFT scratch (transient, not carried state).
    spectrum: Vec<Complex>,
    /// Hop-resolution PSD bins (transient scratch, `HopWelch` mode).
    hop_power: Vec<f64>,
    channels: [ChannelStream; 2],
    /// Hops ingested since construction or [`StreamingRichExtractor::reset`].
    hops_seen: usize,
}

impl StreamingRichExtractor {
    /// Builds a streaming extractor for the window geometry of `config`,
    /// using the default [`SpectralMode::Exact`].
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::InvalidConfig`] when the geometry cannot be
    /// streamed: the window must be an integer number of hops (so hop
    /// summaries tile windows exactly), the hop must exceed the order-5
    /// ordinal pattern span of four samples, and the wavelet carry-over
    /// imposes `hop % 2^levels == 0` with at least one hop of reusable clean
    /// coefficients per level (propagated as [`FeatureError::Dsp`]). The
    /// paper's 4 s / 75 % geometry at 256 Hz satisfies all of these.
    pub fn new(config: &SlidingWindowConfig) -> Result<Self, FeatureError> {
        Self::with_mode(config, SpectralMode::Exact)
    }

    /// Builds a streaming extractor with an explicit [`SpectralMode`].
    ///
    /// # Errors
    ///
    /// Same contract as [`StreamingRichExtractor::new`].
    pub fn with_mode(
        config: &SlidingWindowConfig,
        mode: SpectralMode,
    ) -> Result<Self, FeatureError> {
        let fs = config.sampling_frequency();
        let window = config.window_samples();
        let hop = config.step_samples();
        if hop == 0 || !window.is_multiple_of(hop) || window / hop < 2 {
            return Err(FeatureError::InvalidConfig {
                name: "config",
                reason: format!(
                    "streaming extraction requires the window ({window} samples) to be an \
                     integer multiple (>= 2) of the hop ({hop} samples)"
                ),
            });
        }
        if hop <= 4 {
            return Err(FeatureError::InvalidConfig {
                name: "config",
                reason: format!(
                    "streaming extraction requires hops longer than the order-5 ordinal \
                     pattern span of 4 samples, got {hop}"
                ),
            });
        }
        let k = window / hop;
        let wavelet = Wavelet::Daubechies4;
        let levels = RICH_WAVELET_LEVELS.min(wavelet.max_level(window)).max(1);
        let min_detail = 3.min(levels);
        let psd = PsdPlan::new(window, WindowKind::Rectangular)?;
        let make_channel = || -> Result<ChannelStream, FeatureError> {
            Ok(ChannelStream {
                window_buf: vec![0.0; window],
                ring: Vec::with_capacity(k),
                wavelet: StreamingWavelet::new(wavelet, window, hop, levels, min_detail)?,
                hop_psd: match mode {
                    SpectralMode::Exact => None,
                    SpectralMode::HopWelch => Some(HopPeriodogram::new(hop, k)?),
                },
            })
        };
        Ok(Self {
            fs,
            window,
            hop,
            k,
            mode,
            reference: RichFeatureSet::new(fs)?,
            power: vec![0.0; psd.num_bins()],
            spectrum: vec![Complex::zero(); psd.scratch_len()],
            hop_power: vec![0.0; hop / 2 + 1],
            psd,
            channels: [make_channel()?, make_channel()?],
            hops_seen: 0,
        })
    }

    /// Sampling frequency of the geometry.
    pub fn sampling_frequency(&self) -> f64 {
        self.fs
    }

    /// Window length in samples.
    pub fn window_samples(&self) -> usize {
        self.window
    }

    /// Hop length in samples.
    pub fn step_samples(&self) -> usize {
        self.hop
    }

    /// Hops per window (`window / hop`).
    pub fn hops_per_window(&self) -> usize {
        self.k
    }

    /// The spectral estimation mode.
    pub fn spectral_mode(&self) -> SpectralMode {
        self.mode
    }

    /// Number of features per emitted row (54: 27 per channel).
    pub fn num_features(&self) -> usize {
        2 * RICH_FEATURES_PER_CHANNEL
    }

    /// The linearized samples of the current window for `channel`
    /// (0 = F7T3, 1 = F8T4) — the exact slice the spectral and wavelet
    /// operators see. Meaningful once a [`StreamingRichExtractor::push_hop`]
    /// call has returned `true`; while the first window is still filling the
    /// tail of the buffer is zero. Lets streaming callers run window-level
    /// side analyses (e.g. signal-quality grading) without buffering the
    /// samples a second time.
    ///
    /// # Panics
    ///
    /// Panics if `channel > 1`.
    pub fn current_window(&self, channel: usize) -> &[f64] {
        &self.channels[channel].window_buf
    }

    /// Bytes of state carried across hops, counted semantically (`f64`
    /// slots × 8 plus `u32` slots × 4, both channels): the linearized window
    /// ring buffers, the hop-summary rings, the carried wavelet coefficients
    /// and (in `HopWelch` mode) the hop periodogram rings. Transient FFT
    /// scratch is excluded — it exists in the batch path too. The edge
    /// memory model (`edge::memory::streaming_state_bytes`) mirrors this
    /// number byte for byte.
    pub fn state_bytes(&self) -> usize {
        let per_channel_f64 = self.window
            + self.k * HOP_SUMMARY_F64_SLOTS
            + self.channels[0].wavelet.state_len()
            + self.channels[0]
                .hop_psd
                .as_ref()
                .map_or(0, HopPeriodogram::state_len);
        let per_channel_u32 = self.k * HOP_SUMMARY_U32_SLOTS;
        2 * (per_channel_f64 * 8 + per_channel_u32 * 4)
    }

    /// Forgets all carried state so the next hop starts a new record.
    pub fn reset(&mut self) {
        self.hops_seen = 0;
        for chan in &mut self.channels {
            chan.ring.clear();
            chan.wavelet.reset();
            if let Some(hop_psd) = &mut chan.hop_psd {
                hop_psd.reset();
            }
        }
    }

    /// Ingests one hop of both channels. Returns `Ok(false)` while the first
    /// window is still filling; once `window / hop` hops are buffered, every
    /// call completes a window, writes its 54 features into `row` and
    /// returns `Ok(true)`. `row` is only touched (and its length only
    /// validated) when a window completes. No heap allocations are performed
    /// after the first `k` hops of a record.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::ChannelLengthMismatch`] if the hop slices
    /// differ in length, [`FeatureError::DimensionMismatch`] if they do not
    /// match the configured hop or `row` does not have 54 slots at window
    /// completion, and propagates numeric failures.
    // lint: hot-path
    pub fn push_hop(
        &mut self,
        f7t3: &[f64],
        f8t4: &[f64],
        row: &mut [f64],
    ) -> Result<bool, FeatureError> {
        if f7t3.len() != f8t4.len() {
            return Err(FeatureError::ChannelLengthMismatch {
                left: f7t3.len(),
                right: f8t4.len(),
            });
        }
        if f7t3.len() != self.hop {
            return Err(hop_size_mismatch(f7t3.len(), self.hop));
        }
        let slot = self.hops_seen % self.k;
        for (chan, hop_samples) in self.channels.iter_mut().zip([f7t3, f8t4]) {
            // Linearize the window: shift once the buffer is full, append
            // in place while it is still filling.
            if self.hops_seen < self.k {
                let at = self.hops_seen * self.hop;
                chan.window_buf[at..at + self.hop].copy_from_slice(hop_samples);
            } else {
                chan.window_buf.copy_within(self.hop.., 0);
                let at = self.window - self.hop;
                chan.window_buf[at..].copy_from_slice(hop_samples);
            }
            let summary = HopSummary::from_hop(hop_samples);
            if self.hops_seen > 0 {
                // The previous hop can now count its straddling patterns.
                let prev_slot = (self.hops_seen - 1) % self.k;
                chan.ring[prev_slot].complete_with(&summary);
            }
            if chan.ring.len() < self.k {
                chan.ring.push(summary);
            } else {
                chan.ring[slot] = summary;
            }
            if let Some(hop_psd) = &mut chan.hop_psd {
                hop_psd.push_hop(hop_samples, self.fs)?;
            }
        }
        self.hops_seen += 1;
        if self.hops_seen < self.k {
            return Ok(false);
        }
        if row.len() != 2 * RICH_FEATURES_PER_CHANNEL {
            return Err(row_size_mismatch(row.len()));
        }
        let base = self.hops_seen - self.k;
        let (left, right) = row.split_at_mut(RICH_FEATURES_PER_CHANNEL);
        for (chan, out) in self.channels.iter_mut().zip([left, right]) {
            finalize_channel(
                chan,
                &self.psd,
                &mut self.power,
                &mut self.spectrum,
                &mut self.hop_power,
                self.mode,
                self.fs,
                self.window,
                self.hop,
                self.k,
                base,
                out,
            )?;
        }
        Ok(true)
    }

    /// Extracts the full feature matrix of a record through the streaming
    /// path — the drop-in counterpart of [`FeatureExtractor::extract_batch`]
    /// for the rich set (same rows, same column names, equivalence per the
    /// module-level error model). Resets any carried state first, so one
    /// extractor can process a whole cohort of records back to back while
    /// reusing the matrix allocation.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::ChannelLengthMismatch`] if the channels
    /// differ in length, [`FeatureError::SignalTooShort`] if not even one
    /// window fits, and propagates numeric failures.
    pub fn extract_batch_into(
        &mut self,
        f7t3: &[f64],
        f8t4: &[f64],
        matrix: &mut FeatureMatrix,
    ) -> Result<(), FeatureError> {
        if f7t3.len() != f8t4.len() {
            return Err(FeatureError::ChannelLengthMismatch {
                left: f7t3.len(),
                right: f8t4.len(),
            });
        }
        if f7t3.len() < self.window {
            return Err(FeatureError::SignalTooShort {
                actual: f7t3.len(),
                required: self.window,
            });
        }
        self.reset();
        let rows = (f7t3.len() - self.window) / self.hop + 1;
        let num_features = self.num_features();
        matrix.ensure_names(|| self.reference.feature_names());
        let data = matrix.reset_rows(rows);
        let mut empty: [f64; 0] = [];
        for h in 0..rows + self.k - 1 {
            let start = h * self.hop;
            let hop_a = &f7t3[start..start + self.hop];
            let hop_b = &f8t4[start..start + self.hop];
            if h + 1 < self.k {
                self.push_hop(hop_a, hop_b, &mut empty)?;
            } else {
                let w = h + 1 - self.k;
                let row = &mut data[w * num_features..(w + 1) * num_features];
                let wrote = self.push_hop(hop_a, hop_b, row)?;
                debug_assert!(wrote, "window {w} must complete at hop {h}");
            }
        }
        Ok(())
    }

    /// Allocating convenience wrapper around
    /// [`StreamingRichExtractor::extract_batch_into`].
    ///
    /// # Errors
    ///
    /// Same contract as [`StreamingRichExtractor::extract_batch_into`].
    pub fn extract_batch(
        &mut self,
        f7t3: &[f64],
        f8t4: &[f64],
    ) -> Result<FeatureMatrix, FeatureError> {
        let mut matrix = FeatureMatrix::default();
        self.extract_batch_into(f7t3, f8t4, &mut matrix)?;
        Ok(matrix)
    }
}

/// Misuse-only error constructor, kept outside the hot blocks so the
/// formatting allocation never sits on the per-hop path.
#[cold]
fn hop_size_mismatch(actual: usize, expected: usize) -> FeatureError {
    FeatureError::DimensionMismatch {
        detail: format!(
            "hop has {actual} samples but the extractor was built for {expected}-sample hops"
        ),
    }
}

/// Misuse-only error constructor for a wrongly sized output row.
#[cold]
fn row_size_mismatch(actual: usize) -> FeatureError {
    FeatureError::DimensionMismatch {
        detail: format!(
            "output row has {actual} slots but the rich set produces {} features",
            2 * RICH_FEATURES_PER_CHANNEL
        ),
    }
}

/// Merges one channel's hop ring into its 27-feature block. `base` is the
/// absolute index of the oldest hop of the window; ring slots are visited in
/// temporal order so the merged moments are a pure function of the hop
/// history.
// lint: hot-path
#[allow(clippy::too_many_arguments)]
fn finalize_channel(
    chan: &mut ChannelStream,
    psd: &PsdPlan,
    power: &mut [f64],
    spectrum: &mut [Complex],
    hop_power: &mut [f64],
    mode: SpectralMode,
    fs: f64,
    window: usize,
    hop: usize,
    k: usize,
    base: usize,
    out: &mut [f64],
) -> Result<(), FeatureError> {
    debug_assert_eq!(out.len(), RICH_FEATURES_PER_CHANNEL);
    // Spectral block: bit-exact full-window periodogram, or the reused
    // hop-segment average.
    let bands = match mode {
        SpectralMode::Exact => {
            psd.power_into(&chan.window_buf, fs, power, spectrum)?;
            band_powers_from_bins(power, fs, window)?
        }
        SpectralMode::HopWelch => {
            chan.hop_psd
                .as_mut()
                .expect("HopWelch mode always builds the hop periodogram")
                .average_into(hop_power)?;
            band_powers_from_bins(hop_power, fs, hop)?
        }
    };
    out[..5].copy_from_slice(&bands.absolute);
    out[5..10].copy_from_slice(&bands.relative);
    out[10] = bands.total;

    // Merge the hop summaries in temporal order, stitching the boundary
    // terms (one first difference, two second differences, two Teager
    // triples, one sign pair per hop boundary) from the carried edge
    // samples.
    let slot = |j: usize| (base + j) % k;
    let oldest = &chan.ring[slot(0)];
    let mut raw = oldest.raw;
    let mut sum_sq = oldest.sum_sq;
    let mut d1 = oldest.d1;
    let mut d2 = oldest.d2;
    let mut line_length = oldest.line_length;
    let mut nle_sum = oldest.nle_sum;
    let mut zero_crossings = oldest.zero_crossings;
    let mut lo = oldest.lo;
    let mut hi = oldest.hi;
    let mut counts3 = oldest.counts3;
    let mut counts5 = oldest.counts5;
    let mut prev_last = oldest.last;
    for j in 1..k {
        let cur = &chan.ring[slot(j)];
        let b_d1 = cur.first[0] - prev_last[3];
        d1.push(b_d1);
        d2.push(b_d1 - (prev_last[3] - prev_last[2]));
        d2.push((cur.first[1] - cur.first[0]) - b_d1);
        line_length += b_d1.abs();
        nle_sum += prev_last[3] * prev_last[3] - prev_last[2] * cur.first[0];
        nle_sum += cur.first[0] * cur.first[0] - prev_last[3] * cur.first[1];
        if (prev_last[3] >= 0.0) != (cur.first[0] >= 0.0) {
            zero_crossings += 1;
        }
        raw = raw.merge(cur.raw);
        sum_sq += cur.sum_sq;
        d1 = d1.merge(cur.d1);
        d2 = d2.merge(cur.d2);
        line_length += cur.line_length;
        nle_sum += cur.nle_sum;
        zero_crossings += cur.zero_crossings;
        lo = lo.min(cur.lo);
        hi = hi.max(cur.hi);
        for (acc, c) in counts3.iter_mut().zip(cur.counts3.iter()) {
            *acc += c;
        }
        for (acc, c) in counts5.iter_mut().zip(cur.counts5.iter()) {
            *acc += c;
        }
        prev_last = cur.last;
    }

    let stats = raw.statistics(sum_sq);
    out[11] = stats.mean;
    out[12] = stats.variance;
    out[13] = stats.skewness;
    out[14] = stats.kurtosis;
    out[15] = stats.rms;

    // Hjorth descriptors with the batch path's degenerate guards.
    let activity = raw.variance();
    let var_d1 = d1.variance();
    let var_d2 = d2.variance();
    let mobility = if activity > 0.0 {
        (var_d1 / activity).sqrt()
    } else {
        0.0
    };
    let mobility_d1 = if var_d1 > 0.0 {
        (var_d2 / var_d1).sqrt()
    } else {
        0.0
    };
    out[16] = mobility;
    out[17] = if mobility > 0.0 {
        mobility_d1 / mobility
    } else {
        0.0
    };

    out[18] = line_length;
    out[19] = nle_sum / (window - 2) as f64;
    out[20] = f64::from(zero_crossings);
    out[21] = hi - lo;

    // Integer pattern tables sum exactly, so these match the batch
    // `permutation_entropy_scratch` bit for bit.
    out[22] = entropy_from_counts(&counts3, window - 2, 3);
    out[23] = entropy_from_counts(&counts5, window - 4, 5);

    chan.wavelet.update(&chan.window_buf)?;
    let levels = chan.wavelet.levels();
    for (slot, level) in out[24..27].iter_mut().zip([3usize, 4, 5]) {
        let clamped = level.min(levels).max(1);
        let detail = chan
            .wavelet
            .detail(clamped)
            .expect("clamped level is maintained by construction");
        *slot = shannon_entropy_noalloc(detail);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extractor::FeatureExtractor;

    fn synth(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        (0..n)
            .map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let noise = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                (i as f64 * 0.043).sin() + 0.6 * (i as f64 * 0.171).cos() + 0.3 * noise
            })
            .collect()
    }

    fn assert_rows_equivalent(streaming: &FeatureMatrix, batch: &FeatureMatrix, tol: f64) {
        assert_eq!(streaming.num_windows(), batch.num_windows());
        for (i, (s, r)) in streaming.data().iter().zip(batch.data().iter()).enumerate() {
            assert!(
                (s - r).abs() <= tol * (1.0 + r.abs()),
                "flat index {i}: streaming {s} vs batch {r}"
            );
        }
    }

    #[test]
    fn streaming_matches_batch_on_paper_geometry() {
        let fs = 256.0;
        let config = SlidingWindowConfig::paper_default(fs).unwrap();
        let a = synth(1024 + 9 * 256, 7);
        let b = synth(1024 + 9 * 256, 99);
        let mut streaming = StreamingRichExtractor::new(&config).unwrap();
        let mut matrix = FeatureMatrix::default();
        streaming.extract_batch_into(&a, &b, &mut matrix).unwrap();
        let batch = RichFeatureSet::new(fs)
            .unwrap()
            .extract_batch(&a, &b, &config)
            .unwrap();
        assert_rows_equivalent(&matrix, &batch, 1e-9);
    }

    #[test]
    fn exact_columns_are_bitwise_equal() {
        let fs = 256.0;
        let config = SlidingWindowConfig::paper_default(fs).unwrap();
        let a = synth(1024 + 5 * 256, 21);
        let b = synth(1024 + 5 * 256, 22);
        let mut streaming = StreamingRichExtractor::new(&config).unwrap();
        let matrix = streaming.extract_batch(&a, &b).unwrap();
        let batch = RichFeatureSet::new(fs)
            .unwrap()
            .extract_batch(&a, &b, &config)
            .unwrap();
        // Bands (Exact mode), zero crossings, peak-to-peak, permutation and
        // wavelet entropies must match bit for bit, both channels.
        let exact: Vec<usize> = (0..11)
            .chain(20..=26)
            .flat_map(|c| [c, c + RICH_FEATURES_PER_CHANNEL])
            .collect();
        for w in 0..matrix.num_windows() {
            for &c in &exact {
                assert_eq!(
                    matrix.get(w, c),
                    batch.get(w, c),
                    "window {w} column {c} must be bit-exact"
                );
            }
        }
    }

    #[test]
    fn hop_welch_mode_preserves_total_power() {
        let fs = 256.0;
        let config = SlidingWindowConfig::paper_default(fs).unwrap();
        let a = synth(1024 + 4 * 256, 3);
        let b = synth(1024 + 4 * 256, 4);
        let mut streaming =
            StreamingRichExtractor::with_mode(&config, SpectralMode::HopWelch).unwrap();
        assert_eq!(streaming.spectral_mode(), SpectralMode::HopWelch);
        let matrix = streaming.extract_batch(&a, &b).unwrap();
        let batch = RichFeatureSet::new(fs)
            .unwrap()
            .extract_batch(&a, &b, &config)
            .unwrap();
        assert_eq!(matrix.num_windows(), batch.num_windows());
        for w in 0..matrix.num_windows() {
            for ch in [0, RICH_FEATURES_PER_CHANNEL] {
                // Total power (column 10) is preserved to rounding; the
                // non-spectral columns keep the usual bound.
                let s = matrix.get(w, ch + 10);
                let r = batch.get(w, ch + 10);
                assert!((s - r).abs() <= 1e-9 * (1.0 + r.abs()), "window {w}");
                for c in 11..RICH_FEATURES_PER_CHANNEL {
                    let s = matrix.get(w, ch + c);
                    let r = batch.get(w, ch + c);
                    assert!(
                        (s - r).abs() <= 1e-7 * (1.0 + r.abs()),
                        "window {w} col {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn push_hop_streams_one_row_per_hop_after_warmup() {
        let fs = 256.0;
        let config = SlidingWindowConfig::paper_default(fs).unwrap();
        let a = synth(1024 + 3 * 256, 31);
        let b = synth(1024 + 3 * 256, 32);
        let mut streaming = StreamingRichExtractor::new(&config).unwrap();
        let mut reference = StreamingRichExtractor::new(&config).unwrap();
        let expected = reference.extract_batch(&a, &b).unwrap();
        let mut row = vec![0.0; streaming.num_features()];
        let mut produced = 0usize;
        for h in 0..a.len() / 256 {
            let s = h * 256;
            let wrote = streaming
                .push_hop(&a[s..s + 256], &b[s..s + 256], &mut row)
                .unwrap();
            assert_eq!(wrote, h + 1 >= 4, "hop {h}");
            if wrote {
                assert_eq!(
                    row.as_slice(),
                    expected.row(produced),
                    "window {produced} must match the record-level streaming path bitwise"
                );
                produced += 1;
            }
        }
        assert_eq!(produced, expected.num_windows());
    }

    #[test]
    fn reset_isolates_records() {
        let fs = 256.0;
        let config = SlidingWindowConfig::paper_default(fs).unwrap();
        let a = synth(1024 + 2 * 256, 51);
        let b = synth(1024 + 2 * 256, 52);
        let mut streaming = StreamingRichExtractor::new(&config).unwrap();
        let first = streaming.extract_batch(&a, &b).unwrap();
        // Second record through the same extractor: extract_batch_into
        // resets, so the output is identical.
        let second = streaming.extract_batch(&a, &b).unwrap();
        assert_eq!(first.data(), second.data());
    }

    #[test]
    fn rejects_unstreamable_geometries_and_bad_inputs() {
        // 60 % overlap: 1024-sample window, 410-sample step — not a divisor.
        let uneven = SlidingWindowConfig::new(256.0, 4.0, 0.6).unwrap();
        assert!(StreamingRichExtractor::new(&uneven).is_err());

        let config = SlidingWindowConfig::paper_default(256.0).unwrap();
        let mut streaming = StreamingRichExtractor::new(&config).unwrap();
        let mut row = vec![0.0; 54];
        assert!(streaming
            .push_hop(&[0.0; 256], &[0.0; 100], &mut row)
            .is_err());
        assert!(streaming
            .push_hop(&[0.0; 100], &[0.0; 100], &mut row)
            .is_err());
        let short = vec![0.0; 512];
        let mut matrix = FeatureMatrix::default();
        assert!(streaming
            .extract_batch_into(&short, &short, &mut matrix)
            .is_err());
        let a = synth(1024, 1);
        let mut bad_row = vec![0.0; 10];
        for h in 0..3 {
            streaming
                .push_hop(
                    &a[h * 256..(h + 1) * 256],
                    &a[h * 256..(h + 1) * 256],
                    &mut bad_row,
                )
                .unwrap();
        }
        // The fourth hop completes a window and must reject the short row.
        assert!(streaming
            .push_hop(&a[768..1024], &a[768..1024], &mut bad_row)
            .is_err());
    }

    #[test]
    fn state_bytes_matches_semantic_count() {
        let config = SlidingWindowConfig::paper_default(256.0).unwrap();
        let streaming = StreamingRichExtractor::new(&config).unwrap();
        // window ring 1024 f64 + 4 hop summaries + carried wavelet coeffs,
        // per channel; wavelet: approx 512+256+128+64+32, details 128+64+32.
        let wavelet_slots = (512 + 256 + 128 + 64 + 32) + (128 + 64 + 32);
        let per_channel =
            (1024 + 4 * HOP_SUMMARY_F64_SLOTS + wavelet_slots) * 8 + 4 * HOP_SUMMARY_U32_SLOTS * 4;
        assert_eq!(streaming.state_bytes(), 2 * per_channel);

        let welch = StreamingRichExtractor::with_mode(&config, SpectralMode::HopWelch).unwrap();
        assert_eq!(
            welch.state_bytes(),
            2 * (per_channel + 4 * (256 / 2 + 1) * 8)
        );
    }
}
