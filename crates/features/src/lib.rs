//! # seizure-features
//!
//! EEG feature extraction for the self-learning seizure detection methodology
//! (*Pascual et al., DATE 2019*).
//!
//! The paper extracts features from four-second windows with 75 % overlap over
//! two electrode pairs (F7T3 and F8T4) sampled at 256 Hz. After backward
//! elimination, the ten most relevant features are kept (§III-A):
//!
//! | # | Channel | Feature |
//! |---|---------|---------|
//! | 1 | F7T3 | total theta (4–8 Hz) band power |
//! | 2 | F7T3 | relative theta band power |
//! | 3 | F7T3 | total delta (0.5–4 Hz) band power |
//! | 4 | F8T4 | relative theta band power |
//! | 5 | F8T4 | level-7 permutation entropy, order 5 |
//! | 6 | F8T4 | level-7 permutation entropy, order 7 |
//! | 7 | F8T4 | level-6 permutation entropy, order 7 |
//! | 8 | F8T4 | level-3 Rényi entropy |
//! | 9 | F8T4 | level-6 sample entropy, k = 0.2 |
//! | 10 | F8T4 | level-6 sample entropy, k = 0.35 |
//!
//! "Level-`l`" quantities are computed on the detail coefficients of a level-7
//! Daubechies-4 wavelet decomposition of the window.
//!
//! The crate provides those ten features ([`extractor::PaperFeatureSet`]), a
//! richer feature catalogue used by the real-time random-forest detector
//! ([`extractor::RichFeatureSet`], mirroring the 54-feature detector of Sopic et
//! al.), the sliding-window machinery, per-feature normalization and
//! backward-elimination feature selection.
//!
//! # Example
//!
//! ```
//! use seizure_features::extractor::{FeatureExtractor, PaperFeatureSet, SlidingWindowConfig};
//!
//! # fn main() -> Result<(), seizure_features::FeatureError> {
//! let fs = 256.0;
//! // Two synthetic channels, 20 s each.
//! let n = (20.0 * fs) as usize;
//! let f7t3: Vec<f64> = (0..n).map(|i| (i as f64 * 0.05).sin()).collect();
//! let f8t4: Vec<f64> = (0..n).map(|i| (i as f64 * 0.07).cos()).collect();
//!
//! let config = SlidingWindowConfig::paper_default(fs)?;
//! let extractor = PaperFeatureSet::new(fs)?;
//! let matrix = extractor.extract_matrix(&f7t3, &f8t4, &config)?;
//! assert_eq!(matrix.num_features(), 10);
//! assert!(matrix.num_windows() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandpower;
pub mod entropy;
pub mod error;
pub mod extractor;
pub mod hjorth;
pub mod matrix;
pub mod normalize;
pub mod quality;
pub mod scratch;
pub mod selection;
pub mod statistics;
pub mod streaming;
pub mod waveform;

pub use error::FeatureError;
pub use extractor::{FeatureExtractor, PaperFeatureSet, RichFeatureSet, SlidingWindowConfig};
pub use matrix::FeatureMatrix;
pub use quality::{QualityExtractor, QualityScratch};
pub use scratch::{FeatureScratch, FeatureScratchPool};
pub use streaming::{SpectralMode, StreamingRichExtractor};
