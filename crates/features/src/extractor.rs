//! Sliding-window feature extraction over the two-channel EEG montage.
//!
//! The paper extracts features "from four-second windows with an overlap of
//! 75 %, i.e. after the features from one window are extracted, the window
//! slides by one second" (§III-A). Two feature sets are provided:
//!
//! * [`PaperFeatureSet`] — the ten backward-elimination-selected features used
//!   by the a-posteriori labeling algorithm;
//! * [`RichFeatureSet`] — a 54-feature catalogue (27 per channel) mirroring the
//!   real-time random-forest detector of Sopic et al. (e-Glass, ISCAS 2018).

use crate::bandpower::{band_powers_from_bins, band_powers_from_psd, Band};
use crate::entropy::{
    permutation_entropy, renyi_entropy_quadratic, sample_entropy, shannon_entropy,
};
use crate::error::FeatureError;
use crate::hjorth::{hjorth_parameters, hjorth_parameters_fused};
use crate::matrix::FeatureMatrix;
use crate::scratch::{FeatureScratch, FeatureScratchPool};
use crate::statistics::{window_statistics, window_statistics_fused};
use crate::waveform::{line_length, nonlinear_energy, peak_to_peak, zero_crossings};
use seizure_dsp::spectrum::periodogram;
use seizure_dsp::wavelet::{wavedec, Wavelet, WaveletDecomposition};

/// Sliding-window segmentation parameters.
///
/// # Example
///
/// ```
/// use seizure_features::extractor::SlidingWindowConfig;
///
/// # fn main() -> Result<(), seizure_features::FeatureError> {
/// let cfg = SlidingWindowConfig::paper_default(256.0)?;
/// assert_eq!(cfg.window_samples(), 1024); // 4 s at 256 Hz
/// assert_eq!(cfg.step_samples(), 256);    // 1 s step (75 % overlap)
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlidingWindowConfig {
    fs: f64,
    window_samples: usize,
    step_samples: usize,
}

impl SlidingWindowConfig {
    /// Creates a configuration from a window length in seconds and a
    /// fractional overlap in `[0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::InvalidConfig`] if the sampling frequency or the
    /// window length is not positive, or the overlap lies outside `[0, 1)`.
    pub fn new(fs: f64, window_secs: f64, overlap: f64) -> Result<Self, FeatureError> {
        if fs <= 0.0 || fs.is_nan() {
            return Err(FeatureError::InvalidConfig {
                name: "fs",
                reason: format!("sampling frequency must be positive, got {fs}"),
            });
        }
        if window_secs <= 0.0 || window_secs.is_nan() {
            return Err(FeatureError::InvalidConfig {
                name: "window_secs",
                reason: format!("window length must be positive, got {window_secs}"),
            });
        }
        if !(0.0..1.0).contains(&overlap) {
            return Err(FeatureError::InvalidConfig {
                name: "overlap",
                reason: format!("overlap must lie in [0, 1), got {overlap}"),
            });
        }
        let window_samples = (window_secs * fs).round() as usize;
        if window_samples == 0 {
            return Err(FeatureError::InvalidConfig {
                name: "window_secs",
                reason: "window must contain at least one sample".to_string(),
            });
        }
        // The step is derived from the *realized* window length (not the
        // fractional `window_secs * fs`) and rounded to the nearest sample,
        // so the effective overlap tracks the configured one instead of
        // silently drifting when `window_samples * (1 - overlap)` is not
        // integral. Configurations whose realized overlap still deviates by
        // more than one sample (only reachable if the step formula changes,
        // e.g. truncation) are rejected rather than accepted quietly.
        let exact_step = window_samples as f64 * (1.0 - overlap);
        let step_samples = (exact_step.round() as usize).max(1);
        let realized_overlap = (window_samples - step_samples.min(window_samples)) as f64;
        let configured_overlap = window_samples as f64 * overlap;
        if (realized_overlap - configured_overlap).abs() > 1.0 {
            return Err(FeatureError::InvalidConfig {
                name: "overlap",
                reason: format!(
                    "realized overlap of {realized_overlap} samples deviates from the \
                     configured {configured_overlap:.2} by more than one sample \
                     ({window_samples}-sample windows cannot step by {exact_step:.2})"
                ),
            });
        }
        Ok(Self {
            fs,
            window_samples,
            step_samples,
        })
    }

    /// The paper's configuration: 4-second windows with 75 % overlap
    /// (a one-second step).
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::InvalidConfig`] if `fs` is not positive.
    pub fn paper_default(fs: f64) -> Result<Self, FeatureError> {
        Self::new(fs, 4.0, 0.75)
    }

    /// Sampling frequency in Hz.
    pub fn sampling_frequency(&self) -> f64 {
        self.fs
    }

    /// Window length in samples.
    pub fn window_samples(&self) -> usize {
        self.window_samples
    }

    /// Hop between consecutive windows in samples.
    pub fn step_samples(&self) -> usize {
        self.step_samples
    }

    /// Window length in seconds.
    pub fn window_seconds(&self) -> f64 {
        self.window_samples as f64 / self.fs
    }

    /// Hop between consecutive windows in seconds.
    pub fn step_seconds(&self) -> f64 {
        self.step_samples as f64 / self.fs
    }

    /// Number of complete windows that fit into a signal of `signal_len`
    /// samples.
    pub fn num_windows(&self, signal_len: usize) -> usize {
        if signal_len < self.window_samples {
            0
        } else {
            (signal_len - self.window_samples) / self.step_samples + 1
        }
    }

    /// Sample index at which window `index` starts.
    pub fn window_start_sample(&self, index: usize) -> usize {
        index * self.step_samples
    }

    /// Time in seconds at which window `index` starts.
    pub fn window_start_seconds(&self, index: usize) -> f64 {
        self.window_start_sample(index) as f64 / self.fs
    }

    /// Index of the first window that contains the given sample, clamped into
    /// the valid range for a signal with `num_windows` windows.
    pub fn sample_to_window_index(&self, sample: usize, num_windows: usize) -> usize {
        if num_windows == 0 {
            return 0;
        }
        (sample / self.step_samples).min(num_windows - 1)
    }

    /// Iterator over the window slices of `signal`.
    pub fn windows<'a>(&self, signal: &'a [f64]) -> impl Iterator<Item = &'a [f64]> + 'a {
        let window = self.window_samples;
        let step = self.step_samples;
        let count = self.num_windows(signal.len());
        (0..count).map(move |i| &signal[i * step..i * step + window])
    }
}

/// A feature extractor mapping one pair of channel windows to a feature vector.
///
/// Implementations must return vectors whose length equals
/// [`FeatureExtractor::num_features`] and whose entries line up with
/// [`FeatureExtractor::feature_names`].
pub trait FeatureExtractor {
    /// Names of the produced features, in output order.
    fn feature_names(&self) -> Vec<String>;

    /// Number of features produced per window.
    fn num_features(&self) -> usize {
        self.feature_names().len()
    }

    /// Extracts the feature vector of a single window from the two channels.
    ///
    /// # Errors
    ///
    /// Implementations return [`FeatureError`] when the window is too short or
    /// a numeric routine fails.
    fn extract_window(&self, f7t3: &[f64], f8t4: &[f64]) -> Result<Vec<f64>, FeatureError>;

    /// Extracts the full feature matrix by sliding `config`'s window over both
    /// channels.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::ChannelLengthMismatch`] if the channels differ in
    /// length and [`FeatureError::SignalTooShort`] if not even one window fits.
    fn extract_matrix(
        &self,
        f7t3: &[f64],
        f8t4: &[f64],
        config: &SlidingWindowConfig,
    ) -> Result<FeatureMatrix, FeatureError> {
        if f7t3.len() != f8t4.len() {
            return Err(FeatureError::ChannelLengthMismatch {
                left: f7t3.len(),
                right: f8t4.len(),
            });
        }
        let count = config.num_windows(f7t3.len());
        if count == 0 {
            return Err(FeatureError::SignalTooShort {
                actual: f7t3.len(),
                required: config.window_samples(),
            });
        }
        let mut matrix = FeatureMatrix::with_names(self.feature_names());
        for (w1, w2) in config.windows(f7t3).zip(config.windows(f8t4)) {
            matrix.push_row(self.extract_window(w1, w2)?)?;
        }
        Ok(matrix)
    }

    /// Extracts the full feature matrix through the batch engine: one flat
    /// row-major buffer, filled in parallel across windows with per-thread
    /// scratch workspaces.
    ///
    /// The default implementation falls back to the sequential
    /// [`FeatureExtractor::extract_matrix`]; [`PaperFeatureSet`] and
    /// [`RichFeatureSet`] override it with the allocation-free parallel path.
    ///
    /// # Errors
    ///
    /// Same contract as [`FeatureExtractor::extract_matrix`].
    fn extract_batch(
        &self,
        f7t3: &[f64],
        f8t4: &[f64],
        config: &SlidingWindowConfig,
    ) -> Result<FeatureMatrix, FeatureError> {
        self.extract_matrix(f7t3, f8t4, config)
    }

    /// Multi-record variant of [`FeatureExtractor::extract_batch`]: refills
    /// `matrix` in place (reusing its allocation) and checks worker scratch
    /// workspaces out of `pool` instead of building them per record, so a
    /// whole cohort of records is extracted with one matrix buffer and one
    /// scratch set.
    ///
    /// The default implementation falls back to the allocating
    /// [`FeatureExtractor::extract_batch`]; [`PaperFeatureSet`] and
    /// [`RichFeatureSet`] override it with the fully reusable path.
    ///
    /// # Errors
    ///
    /// Same contract as [`FeatureExtractor::extract_batch`].
    fn extract_batch_into(
        &self,
        f7t3: &[f64],
        f8t4: &[f64],
        config: &SlidingWindowConfig,
        pool: &FeatureScratchPool,
        matrix: &mut FeatureMatrix,
    ) -> Result<(), FeatureError> {
        let _ = pool;
        *matrix = self.extract_batch(f7t3, f8t4, config)?;
        Ok(())
    }
}

/// Shared driver of the parallel batch extraction path: validates the
/// channels, refills the flat output matrix in place, and fans the windows
/// out across scoped worker threads, each checking one [`FeatureScratch`]
/// out of the pool for its whole block.
// lint: hot-path
#[allow(clippy::too_many_arguments)]
fn parallel_extract_into<MN, EX>(
    num_features: usize,
    make_names: MN,
    f7t3: &[f64],
    f8t4: &[f64],
    config: &SlidingWindowConfig,
    fs: f64,
    max_wavelet_levels: usize,
    pool: &FeatureScratchPool,
    matrix: &mut FeatureMatrix,
    extract: EX,
) -> Result<(), FeatureError>
where
    MN: FnOnce() -> Vec<String>,
    EX: Fn(&[f64], &[f64], &mut [f64], &mut FeatureScratch) -> Result<(), FeatureError> + Sync,
{
    if f7t3.len() != f8t4.len() {
        return Err(FeatureError::ChannelLengthMismatch {
            left: f7t3.len(),
            right: f8t4.len(),
        });
    }
    let count = config.num_windows(f7t3.len());
    if count == 0 {
        return Err(FeatureError::SignalTooShort {
            actual: f7t3.len(),
            required: config.window_samples(),
        });
    }
    let window = config.window_samples();
    let step = config.step_samples();
    matrix.ensure_names(make_names);
    debug_assert_eq!(matrix.num_features(), num_features);
    let data = matrix.reset_rows(count);
    seizure_parallel::par_process_rows::<FeatureError, _>(data, num_features, |first_row, block| {
        let mut scratch = pool.acquire(fs, window, max_wavelet_levels)?;
        for (offset, row) in block.chunks_mut(num_features).enumerate() {
            let start = (first_row + offset) * step;
            extract(
                &f7t3[start..start + window],
                &f8t4[start..start + window],
                row,
                &mut scratch,
            )?;
        }
        pool.release(scratch);
        Ok(())
    })
}

/// Decomposition depth used for the wavelet-domain entropy features.
const PAPER_WAVELET_LEVELS: usize = 7;

/// The paper's ten-feature set (§III-A), selected by backward elimination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperFeatureSet {
    fs: f64,
}

impl PaperFeatureSet {
    /// Creates the extractor for signals sampled at `fs` Hz.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::InvalidConfig`] if `fs` is not positive.
    pub fn new(fs: f64) -> Result<Self, FeatureError> {
        if fs <= 0.0 || fs.is_nan() {
            return Err(FeatureError::InvalidConfig {
                name: "fs",
                reason: format!("sampling frequency must be positive, got {fs}"),
            });
        }
        Ok(Self { fs })
    }

    /// Sampling frequency the extractor was built for.
    pub fn sampling_frequency(&self) -> f64 {
        self.fs
    }

    fn decompose(&self, window: &[f64]) -> Result<WaveletDecomposition, FeatureError> {
        let wavelet = Wavelet::Daubechies4;
        let levels = PAPER_WAVELET_LEVELS
            .min(wavelet.max_level(window.len()))
            .max(1);
        Ok(wavedec(window, wavelet, levels)?)
    }

    /// Detail coefficients at the requested level, falling back to the deepest
    /// available level when the window is too short for the nominal depth.
    fn detail_at(dec: &WaveletDecomposition, level: usize) -> &[f64] {
        let level = level.min(dec.levels()).max(1);
        dec.detail(level).expect("level clamped into valid range")
    }

    /// Builds the reusable scratch workspace for windows of `window_len`
    /// samples (db4 decomposition clamped at the paper's level 7).
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::Dsp`] if the window is too short to support
    /// even one decomposition level.
    pub fn scratch(&self, window_len: usize) -> Result<FeatureScratch, FeatureError> {
        FeatureScratch::new(self.fs, window_len, PAPER_WAVELET_LEVELS)
    }

    /// Extracts the ten paper features into `out` using preallocated scratch
    /// space — the allocation-free twin of
    /// [`FeatureExtractor::extract_window`].
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::DimensionMismatch`] if `out` does not have ten
    /// slots, [`FeatureError::ChannelLengthMismatch`] if the channels differ
    /// from each other, [`FeatureError::DimensionMismatch`] if they differ
    /// from the scratch's planned length, and propagates numeric failures.
    pub fn extract_window_into(
        &self,
        f7t3: &[f64],
        f8t4: &[f64],
        out: &mut [f64],
        scratch: &mut FeatureScratch,
    ) -> Result<(), FeatureError> {
        if out.len() != self.num_features() {
            return Err(FeatureError::DimensionMismatch {
                detail: format!(
                    "output slice has {} slots but the paper set produces {} features",
                    out.len(),
                    self.num_features()
                ),
            });
        }
        if f7t3.len() != f8t4.len() {
            return Err(FeatureError::ChannelLengthMismatch {
                left: f7t3.len(),
                right: f8t4.len(),
            });
        }
        if f7t3.len() != scratch.window_len() {
            return Err(FeatureError::DimensionMismatch {
                detail: format!(
                    "window has {} samples but the scratch was built for {}",
                    f7t3.len(),
                    scratch.window_len()
                ),
            });
        }
        // Spectral features, one reused periodogram plan per channel.
        let n = scratch.window_len();
        let left = band_powers_from_bins(scratch.power_bins(f7t3)?, self.fs, n)?;
        let right = band_powers_from_bins(scratch.power_bins(f8t4)?, self.fs, n)?;

        // Wavelet-domain nonlinear features of F8T4 from the reused workspace.
        scratch.decompose(f8t4)?;
        out[0] = left.absolute(Band::Theta);
        out[1] = left.relative(Band::Theta);
        out[2] = left.absolute(Band::Delta);
        out[3] = right.relative(Band::Theta);
        out[4] = scratch.detail_perm_entropy(7, 5, 1)?;
        out[5] = scratch.detail_perm_entropy(7, 7, 1)?;
        out[6] = scratch.detail_perm_entropy(6, 7, 1)?;
        out[7] = renyi_entropy_quadratic(scratch.detail_clamped(3));
        out[8] = sample_entropy(scratch.detail_clamped(6), 2, 0.2)?;
        out[9] = sample_entropy(scratch.detail_clamped(6), 2, 0.35)?;
        Ok(())
    }
}

impl FeatureExtractor for PaperFeatureSet {
    fn feature_names(&self) -> Vec<String> {
        vec![
            "f7t3_theta_power".to_string(),
            "f7t3_theta_relative_power".to_string(),
            "f7t3_delta_power".to_string(),
            "f8t4_theta_relative_power".to_string(),
            "f8t4_d7_permutation_entropy_n5".to_string(),
            "f8t4_d7_permutation_entropy_n7".to_string(),
            "f8t4_d6_permutation_entropy_n7".to_string(),
            "f8t4_d3_renyi_entropy".to_string(),
            "f8t4_d6_sample_entropy_k020".to_string(),
            "f8t4_d6_sample_entropy_k035".to_string(),
        ]
    }

    fn extract_window(&self, f7t3: &[f64], f8t4: &[f64]) -> Result<Vec<f64>, FeatureError> {
        if f7t3.is_empty() || f8t4.is_empty() {
            return Err(FeatureError::SignalTooShort {
                actual: f7t3.len().min(f8t4.len()),
                required: 2,
            });
        }
        // Spectral features of F7T3 and F8T4 from one periodogram each.
        let psd_left = periodogram(f7t3, self.fs)?;
        let left = band_powers_from_psd(&psd_left)?;
        let psd_right = periodogram(f8t4, self.fs)?;
        let right = band_powers_from_psd(&psd_right)?;

        // Wavelet-domain nonlinear features of F8T4.
        let dec = self.decompose(f8t4)?;
        let d7 = Self::detail_at(&dec, 7);
        let d6 = Self::detail_at(&dec, 6);
        let d3 = Self::detail_at(&dec, 3);

        Ok(vec![
            left.absolute(Band::Theta),
            left.relative(Band::Theta),
            left.absolute(Band::Delta),
            right.relative(Band::Theta),
            permutation_entropy(d7, 5, 1)?,
            permutation_entropy(d7, 7, 1)?,
            permutation_entropy(d6, 7, 1)?,
            renyi_entropy_quadratic(d3),
            sample_entropy(d6, 2, 0.2)?,
            sample_entropy(d6, 2, 0.35)?,
        ])
    }

    fn extract_matrix(
        &self,
        f7t3: &[f64],
        f8t4: &[f64],
        config: &SlidingWindowConfig,
    ) -> Result<FeatureMatrix, FeatureError> {
        // The legacy row-by-row path delegates to the flat batch engine so
        // every caller gets the allocation-free parallel extraction; the
        // sequential trait default remains available as the test reference.
        self.extract_batch(f7t3, f8t4, config)
    }

    fn extract_batch(
        &self,
        f7t3: &[f64],
        f8t4: &[f64],
        config: &SlidingWindowConfig,
    ) -> Result<FeatureMatrix, FeatureError> {
        let pool = FeatureScratchPool::new();
        let mut matrix = FeatureMatrix::default();
        self.extract_batch_into(f7t3, f8t4, config, &pool, &mut matrix)?;
        Ok(matrix)
    }

    fn extract_batch_into(
        &self,
        f7t3: &[f64],
        f8t4: &[f64],
        config: &SlidingWindowConfig,
        pool: &FeatureScratchPool,
        matrix: &mut FeatureMatrix,
    ) -> Result<(), FeatureError> {
        parallel_extract_into(
            self.num_features(),
            || self.feature_names(),
            f7t3,
            f8t4,
            config,
            self.fs,
            PAPER_WAVELET_LEVELS,
            pool,
            matrix,
            |w1, w2, out, scratch| self.extract_window_into(w1, w2, out, scratch),
        )
    }
}

/// A 54-feature catalogue (27 per electrode pair) mirroring the feature
/// families of the e-Glass real-time detector: band powers, statistics,
/// Hjorth descriptors, waveform features, permutation entropies and wavelet
/// Shannon entropies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RichFeatureSet {
    fs: f64,
}

/// Number of features [`RichFeatureSet`] produces per channel.
pub(crate) const RICH_FEATURES_PER_CHANNEL: usize = 27;

/// Decomposition depth used for the rich set's wavelet entropy features.
pub(crate) const RICH_WAVELET_LEVELS: usize = 5;

impl RichFeatureSet {
    /// Creates the extractor for signals sampled at `fs` Hz.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::InvalidConfig`] if `fs` is not positive.
    pub fn new(fs: f64) -> Result<Self, FeatureError> {
        if fs <= 0.0 || fs.is_nan() {
            return Err(FeatureError::InvalidConfig {
                name: "fs",
                reason: format!("sampling frequency must be positive, got {fs}"),
            });
        }
        Ok(Self { fs })
    }

    /// Sampling frequency the extractor was built for.
    pub fn sampling_frequency(&self) -> f64 {
        self.fs
    }

    fn channel_feature_names(channel: &str) -> Vec<String> {
        let mut names = Vec::with_capacity(RICH_FEATURES_PER_CHANNEL);
        for band in Band::ALL {
            names.push(format!("{channel}_{band}_power"));
        }
        for band in Band::ALL {
            names.push(format!("{channel}_{band}_relative_power"));
        }
        names.push(format!("{channel}_total_power"));
        for stat in ["mean", "variance", "skewness", "kurtosis", "rms"] {
            names.push(format!("{channel}_{stat}"));
        }
        names.push(format!("{channel}_hjorth_mobility"));
        names.push(format!("{channel}_hjorth_complexity"));
        for wf in [
            "line_length",
            "nonlinear_energy",
            "zero_crossings",
            "peak_to_peak",
        ] {
            names.push(format!("{channel}_{wf}"));
        }
        names.push(format!("{channel}_permutation_entropy_n3"));
        names.push(format!("{channel}_permutation_entropy_n5"));
        for level in [3, 4, 5] {
            names.push(format!("{channel}_d{level}_shannon_entropy"));
        }
        names
    }

    fn channel_features(&self, window: &[f64]) -> Result<Vec<f64>, FeatureError> {
        if window.len() < 3 {
            return Err(FeatureError::SignalTooShort {
                actual: window.len(),
                required: 3,
            });
        }
        let mut out = Vec::with_capacity(RICH_FEATURES_PER_CHANNEL);
        let psd = periodogram(window, self.fs)?;
        let bands = band_powers_from_psd(&psd)?;
        out.extend_from_slice(&bands.absolute);
        out.extend_from_slice(&bands.relative);
        out.push(bands.total);

        let stats = window_statistics(window)?;
        out.extend_from_slice(&[
            stats.mean,
            stats.variance,
            stats.skewness,
            stats.kurtosis,
            stats.rms,
        ]);

        let hjorth = hjorth_parameters(window)?;
        out.push(hjorth.mobility);
        out.push(hjorth.complexity);

        out.push(line_length(window)?);
        out.push(nonlinear_energy(window)?);
        out.push(zero_crossings(window)? as f64);
        out.push(peak_to_peak(window)?);

        out.push(permutation_entropy(window, 3, 1)?);
        out.push(permutation_entropy(window, 5, 1)?);

        let wavelet = Wavelet::Daubechies4;
        let levels = RICH_WAVELET_LEVELS
            .min(wavelet.max_level(window.len()))
            .max(1);
        let dec = wavedec(window, wavelet, levels)?;
        for level in [3usize, 4, 5] {
            let level = level.min(dec.levels()).max(1);
            let detail = dec.detail(level).expect("clamped level");
            out.push(shannon_entropy(detail));
        }
        debug_assert_eq!(out.len(), RICH_FEATURES_PER_CHANNEL);
        Ok(out)
    }

    /// Builds the reusable scratch workspace for windows of `window_len`
    /// samples (db4 decomposition clamped at level 5, matching
    /// [`RichFeatureSet::extract_window`]).
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::Dsp`] if the window is too short to support
    /// even one decomposition level.
    pub fn scratch(&self, window_len: usize) -> Result<FeatureScratch, FeatureError> {
        FeatureScratch::new(self.fs, window_len, RICH_WAVELET_LEVELS)
    }

    /// The 27 per-channel features written into `out` without allocating on
    /// the FFT/wavelet path.
    fn channel_features_into(
        &self,
        window: &[f64],
        out: &mut [f64],
        scratch: &mut FeatureScratch,
    ) -> Result<(), FeatureError> {
        debug_assert_eq!(out.len(), RICH_FEATURES_PER_CHANNEL);
        if window.len() < 3 {
            return Err(FeatureError::SignalTooShort {
                actual: window.len(),
                required: 3,
            });
        }
        let n = scratch.window_len();
        let bands = band_powers_from_bins(scratch.power_bins(window)?, self.fs, n)?;
        out[..5].copy_from_slice(&bands.absolute);
        out[5..10].copy_from_slice(&bands.relative);
        out[10] = bands.total;

        let stats = window_statistics_fused(window)?;
        out[11] = stats.mean;
        out[12] = stats.variance;
        out[13] = stats.skewness;
        out[14] = stats.kurtosis;
        out[15] = stats.rms;

        let hjorth = hjorth_parameters_fused(window)?;
        out[16] = hjorth.mobility;
        out[17] = hjorth.complexity;

        out[18] = line_length(window)?;
        out[19] = nonlinear_energy(window)?;
        out[20] = zero_crossings(window)? as f64;
        out[21] = peak_to_peak(window)?;

        out[22] = scratch.perm_entropy(window, 3, 1)?;
        out[23] = scratch.perm_entropy(window, 5, 1)?;

        scratch.decompose(window)?;
        for (slot, level) in out[24..27].iter_mut().zip([3usize, 4, 5]) {
            *slot = shannon_entropy(scratch.detail_clamped(level));
        }
        Ok(())
    }

    /// Extracts all 54 features into `out` using preallocated scratch space —
    /// the allocation-free twin of [`FeatureExtractor::extract_window`].
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::DimensionMismatch`] if `out` does not have 54
    /// slots, [`FeatureError::ChannelLengthMismatch`] if the channels differ
    /// from each other, [`FeatureError::DimensionMismatch`] if they differ
    /// from the scratch's planned length, and propagates numeric failures.
    pub fn extract_window_into(
        &self,
        f7t3: &[f64],
        f8t4: &[f64],
        out: &mut [f64],
        scratch: &mut FeatureScratch,
    ) -> Result<(), FeatureError> {
        if out.len() != 2 * RICH_FEATURES_PER_CHANNEL {
            return Err(FeatureError::DimensionMismatch {
                detail: format!(
                    "output slice has {} slots but the rich set produces {} features",
                    out.len(),
                    2 * RICH_FEATURES_PER_CHANNEL
                ),
            });
        }
        if f7t3.len() != f8t4.len() {
            return Err(FeatureError::ChannelLengthMismatch {
                left: f7t3.len(),
                right: f8t4.len(),
            });
        }
        if f7t3.len() != scratch.window_len() {
            return Err(FeatureError::DimensionMismatch {
                detail: format!(
                    "window has {} samples but the scratch was built for {}",
                    f7t3.len(),
                    scratch.window_len()
                ),
            });
        }
        let (left, right) = out.split_at_mut(RICH_FEATURES_PER_CHANNEL);
        self.channel_features_into(f7t3, left, scratch)?;
        self.channel_features_into(f8t4, right, scratch)?;
        Ok(())
    }
}

impl FeatureExtractor for RichFeatureSet {
    fn feature_names(&self) -> Vec<String> {
        let mut names = Self::channel_feature_names("f7t3");
        names.extend(Self::channel_feature_names("f8t4"));
        names
    }

    fn extract_window(&self, f7t3: &[f64], f8t4: &[f64]) -> Result<Vec<f64>, FeatureError> {
        let mut out = self.channel_features(f7t3)?;
        out.extend(self.channel_features(f8t4)?);
        Ok(out)
    }

    fn extract_matrix(
        &self,
        f7t3: &[f64],
        f8t4: &[f64],
        config: &SlidingWindowConfig,
    ) -> Result<FeatureMatrix, FeatureError> {
        // Delegate the legacy row-by-row entry point to the flat batch
        // engine; the sequential trait default remains the test reference.
        self.extract_batch(f7t3, f8t4, config)
    }

    fn extract_batch(
        &self,
        f7t3: &[f64],
        f8t4: &[f64],
        config: &SlidingWindowConfig,
    ) -> Result<FeatureMatrix, FeatureError> {
        let pool = FeatureScratchPool::new();
        let mut matrix = FeatureMatrix::default();
        self.extract_batch_into(f7t3, f8t4, config, &pool, &mut matrix)?;
        Ok(matrix)
    }

    fn extract_batch_into(
        &self,
        f7t3: &[f64],
        f8t4: &[f64],
        config: &SlidingWindowConfig,
        pool: &FeatureScratchPool,
        matrix: &mut FeatureMatrix,
    ) -> Result<(), FeatureError> {
        parallel_extract_into(
            self.num_features(),
            || self.feature_names(),
            f7t3,
            f8t4,
            config,
            self.fs,
            RICH_WAVELET_LEVELS,
            pool,
            matrix,
            |w1, w2, out, scratch| self.extract_window_into(w1, w2, out, scratch),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f64, fs: f64, n: usize, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|i| amp * (2.0 * std::f64::consts::PI * freq * i as f64 / fs).sin())
            .collect()
    }

    fn two_channels(fs: f64, secs: f64) -> (Vec<f64>, Vec<f64>) {
        let n = (fs * secs) as usize;
        (tone(6.0, fs, n, 1.0), tone(3.0, fs, n, 0.8))
    }

    #[test]
    fn config_paper_default_matches_paper() {
        let cfg = SlidingWindowConfig::paper_default(256.0).unwrap();
        assert_eq!(cfg.window_samples(), 1024);
        assert_eq!(cfg.step_samples(), 256);
        assert!((cfg.window_seconds() - 4.0).abs() < 1e-12);
        assert!((cfg.step_seconds() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn config_validation() {
        assert!(SlidingWindowConfig::new(0.0, 4.0, 0.75).is_err());
        assert!(SlidingWindowConfig::new(256.0, 0.0, 0.75).is_err());
        assert!(SlidingWindowConfig::new(256.0, 4.0, 1.0).is_err());
        assert!(SlidingWindowConfig::new(256.0, 4.0, -0.1).is_err());
    }

    #[test]
    fn fractional_overlap_steps_round_to_nearest() {
        // Regression: 4 s at 256 Hz with 60 % overlap gives an exact step of
        // 409.6 samples; the step must round to 410 (not truncate to 409),
        // keeping the realized overlap within one sample of the configured.
        let cfg = SlidingWindowConfig::new(256.0, 4.0, 0.6).unwrap();
        assert_eq!(cfg.window_samples(), 1024);
        assert_eq!(cfg.step_samples(), 410);
        let realized = (cfg.window_samples() - cfg.step_samples()) as f64;
        assert!((realized - 1024.0 * 0.6).abs() <= 1.0);

        // Extreme overlaps clamp the step at one sample but still stay
        // within the one-sample deviation budget.
        let tight = SlidingWindowConfig::new(64.0, 1.0, 0.999).unwrap();
        assert_eq!(tight.step_samples(), 1);
    }

    #[test]
    fn num_windows_formula() {
        let cfg = SlidingWindowConfig::paper_default(256.0).unwrap();
        // A 60-second signal at 256 Hz yields 57 four-second windows stepping by 1 s.
        assert_eq!(cfg.num_windows(60 * 256), 57);
        assert_eq!(cfg.num_windows(1024), 1);
        assert_eq!(cfg.num_windows(1023), 0);
    }

    #[test]
    fn window_index_time_mapping_roundtrip() {
        let cfg = SlidingWindowConfig::paper_default(256.0).unwrap();
        assert_eq!(cfg.window_start_sample(10), 2560);
        assert!((cfg.window_start_seconds(10) - 10.0).abs() < 1e-12);
        assert_eq!(cfg.sample_to_window_index(2560, 57), 10);
        assert_eq!(cfg.sample_to_window_index(100_000, 57), 56);
        assert_eq!(cfg.sample_to_window_index(100, 0), 0);
    }

    #[test]
    fn windows_iterator_covers_signal() {
        let cfg = SlidingWindowConfig::new(10.0, 1.0, 0.5).unwrap();
        let signal: Vec<f64> = (0..35).map(|i| i as f64).collect();
        let windows: Vec<&[f64]> = cfg.windows(&signal).collect();
        assert_eq!(windows.len(), cfg.num_windows(35));
        assert_eq!(windows[0][0], 0.0);
        assert_eq!(windows[1][0], 5.0);
        assert!(windows.iter().all(|w| w.len() == 10));
    }

    #[test]
    fn paper_feature_set_has_ten_named_features() {
        let ex = PaperFeatureSet::new(256.0).unwrap();
        assert_eq!(ex.num_features(), 10);
        assert_eq!(ex.feature_names().len(), 10);
        assert!(ex.feature_names()[0].starts_with("f7t3"));
        assert!(ex.feature_names()[9].starts_with("f8t4"));
    }

    #[test]
    fn paper_feature_set_rejects_bad_fs() {
        assert!(PaperFeatureSet::new(0.0).is_err());
        assert!(RichFeatureSet::new(-1.0).is_err());
    }

    #[test]
    fn paper_features_on_single_window() {
        let fs = 256.0;
        let ex = PaperFeatureSet::new(fs).unwrap();
        let w1 = tone(6.0, fs, 1024, 2.0);
        let w2 = tone(2.0, fs, 1024, 1.0);
        let features = ex.extract_window(&w1, &w2).unwrap();
        assert_eq!(features.len(), 10);
        assert!(features.iter().all(|f| f.is_finite()));
        // F7T3 carries a theta tone, so its relative theta power is high.
        assert!(features[1] > 0.8);
        // F8T4 carries a delta tone, so its relative theta power is low.
        assert!(features[3] < 0.2);
    }

    #[test]
    fn paper_features_empty_window_rejected() {
        let ex = PaperFeatureSet::new(256.0).unwrap();
        assert!(ex.extract_window(&[], &[]).is_err());
    }

    #[test]
    fn extract_matrix_dimensions() {
        let fs = 256.0;
        let (a, b) = two_channels(fs, 20.0);
        let cfg = SlidingWindowConfig::paper_default(fs).unwrap();
        let ex = PaperFeatureSet::new(fs).unwrap();
        let m = ex.extract_matrix(&a, &b, &cfg).unwrap();
        assert_eq!(m.num_features(), 10);
        assert_eq!(m.num_windows(), cfg.num_windows(a.len()));
    }

    #[test]
    fn extract_matrix_rejects_mismatched_channels() {
        let fs = 256.0;
        let (a, mut b) = two_channels(fs, 10.0);
        b.pop();
        let cfg = SlidingWindowConfig::paper_default(fs).unwrap();
        let ex = PaperFeatureSet::new(fs).unwrap();
        assert!(matches!(
            ex.extract_matrix(&a, &b, &cfg),
            Err(FeatureError::ChannelLengthMismatch { .. })
        ));
    }

    #[test]
    fn extract_matrix_rejects_short_signal() {
        let fs = 256.0;
        let a = tone(5.0, fs, 512, 1.0);
        let cfg = SlidingWindowConfig::paper_default(fs).unwrap();
        let ex = PaperFeatureSet::new(fs).unwrap();
        assert!(matches!(
            ex.extract_matrix(&a, &a, &cfg),
            Err(FeatureError::SignalTooShort { .. })
        ));
    }

    #[test]
    fn rich_feature_set_has_54_features() {
        let ex = RichFeatureSet::new(256.0).unwrap();
        assert_eq!(ex.num_features(), 54);
        let names = ex.feature_names();
        assert_eq!(names.len(), 54);
        // Names must be unique.
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), 54);
    }

    #[test]
    fn rich_features_on_single_window() {
        let fs = 256.0;
        let ex = RichFeatureSet::new(fs).unwrap();
        let w1 = tone(6.0, fs, 1024, 2.0);
        let w2 = tone(25.0, fs, 1024, 1.0);
        let features = ex.extract_window(&w1, &w2).unwrap();
        assert_eq!(features.len(), 54);
        assert!(features.iter().all(|f| f.is_finite()));
    }

    #[test]
    fn rich_features_distinguish_amplitude_change() {
        let fs = 256.0;
        let ex = RichFeatureSet::new(fs).unwrap();
        let quiet = tone(6.0, fs, 1024, 0.5);
        let loud = tone(6.0, fs, 1024, 3.0);
        let f_quiet = ex.extract_window(&quiet, &quiet).unwrap();
        let f_loud = ex.extract_window(&loud, &loud).unwrap();
        let names = ex.feature_names();
        let ll_idx = names.iter().position(|n| n == "f7t3_line_length").unwrap();
        assert!(f_loud[ll_idx] > 3.0 * f_quiet[ll_idx]);
    }

    fn assert_matrices_close(batch: &FeatureMatrix, reference: &FeatureMatrix, tol: f64) {
        assert_eq!(batch.num_windows(), reference.num_windows());
        assert_eq!(batch.num_features(), reference.num_features());
        assert_eq!(batch.feature_names(), reference.feature_names());
        for (r, (a, b)) in batch.rows().zip(reference.rows()).enumerate() {
            for (c, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                assert!(
                    (x - y).abs() <= tol * (1.0 + y.abs()),
                    "row {r} col {c}: batch {x} vs reference {y}"
                );
            }
        }
    }

    /// Window-by-window reference built directly from `extract_window`, the
    /// way the pre-batch sequential path used to assemble matrices.
    fn sequential_reference<E: FeatureExtractor>(
        ex: &E,
        a: &[f64],
        b: &[f64],
        cfg: &SlidingWindowConfig,
    ) -> FeatureMatrix {
        let mut reference = FeatureMatrix::with_names(ex.feature_names());
        for (w1, w2) in cfg.windows(a).zip(cfg.windows(b)) {
            reference
                .push_row(ex.extract_window(w1, w2).unwrap())
                .unwrap();
        }
        reference
    }

    #[test]
    fn paper_batch_extraction_matches_sequential() {
        let fs = 256.0;
        let (a, b) = two_channels(fs, 20.0);
        let cfg = SlidingWindowConfig::paper_default(fs).unwrap();
        let ex = PaperFeatureSet::new(fs).unwrap();
        let batch = ex.extract_batch(&a, &b, &cfg).unwrap();
        let reference = sequential_reference(&ex, &a, &b, &cfg);
        assert_matrices_close(&batch, &reference, 1e-9);
    }

    #[test]
    fn rich_batch_extraction_matches_sequential() {
        let fs = 256.0;
        let (a, b) = two_channels(fs, 16.0);
        let cfg = SlidingWindowConfig::paper_default(fs).unwrap();
        let ex = RichFeatureSet::new(fs).unwrap();
        let batch = ex.extract_batch(&a, &b, &cfg).unwrap();
        let reference = sequential_reference(&ex, &a, &b, &cfg);
        assert_matrices_close(&batch, &reference, 1e-9);
    }

    #[test]
    fn extract_matrix_delegates_to_batch_engine() {
        // The legacy `extract_matrix` entry point now routes through the
        // flat batch engine: same names, same rows, bit-identical data.
        let fs = 256.0;
        let (a, b) = two_channels(fs, 12.0);
        let cfg = SlidingWindowConfig::paper_default(fs).unwrap();
        let rich = RichFeatureSet::new(fs).unwrap();
        let via_matrix = rich.extract_matrix(&a, &b, &cfg).unwrap();
        let via_batch = rich.extract_batch(&a, &b, &cfg).unwrap();
        assert_eq!(via_matrix, via_batch);
        let paper = PaperFeatureSet::new(fs).unwrap();
        let via_matrix = paper.extract_matrix(&a, &b, &cfg).unwrap();
        let via_batch = paper.extract_batch(&a, &b, &cfg).unwrap();
        assert_eq!(via_matrix, via_batch);
    }

    #[test]
    fn batch_extraction_validates_like_sequential() {
        let fs = 256.0;
        let (a, mut b) = two_channels(fs, 8.0);
        let cfg = SlidingWindowConfig::paper_default(fs).unwrap();
        let ex = RichFeatureSet::new(fs).unwrap();
        b.pop();
        assert!(matches!(
            ex.extract_batch(&a, &b, &cfg),
            Err(FeatureError::ChannelLengthMismatch { .. })
        ));
        let short = tone(5.0, fs, 512, 1.0);
        assert!(matches!(
            ex.extract_batch(&short, &short, &cfg),
            Err(FeatureError::SignalTooShort { .. })
        ));
    }

    #[test]
    fn extract_batch_into_reuses_matrix_and_pool_across_records() {
        let fs = 256.0;
        let cfg = SlidingWindowConfig::paper_default(fs).unwrap();
        let ex = RichFeatureSet::new(fs).unwrap();
        let pool = FeatureScratchPool::new();
        let mut matrix = FeatureMatrix::default();
        // Records of different lengths through one matrix and one pool.
        for secs in [12.0, 20.0, 8.0] {
            let (a, b) = two_channels(fs, secs);
            ex.extract_batch_into(&a, &b, &cfg, &pool, &mut matrix)
                .unwrap();
            let reference = ex.extract_batch(&a, &b, &cfg).unwrap();
            assert_eq!(matrix, reference);
        }
        // The workers parked their scratches for the next record.
        assert!(pool.idle() > 0);
        // Switching extractors on the same workspace renames the columns.
        let paper = PaperFeatureSet::new(fs).unwrap();
        let (a, b) = two_channels(fs, 10.0);
        paper
            .extract_batch_into(&a, &b, &cfg, &pool, &mut matrix)
            .unwrap();
        assert_eq!(matrix.num_features(), 10);
        assert_eq!(matrix, paper.extract_batch(&a, &b, &cfg).unwrap());
    }

    #[test]
    fn extract_window_into_matches_extract_window() {
        let fs = 256.0;
        let w1 = tone(6.0, fs, 1024, 2.0);
        let w2 = tone(25.0, fs, 1024, 1.0);

        let paper = PaperFeatureSet::new(fs).unwrap();
        let mut scratch = paper.scratch(1024).unwrap();
        assert_eq!(scratch.wavelet_levels(), 7);
        assert_eq!(scratch.window_len(), 1024);
        assert_eq!(scratch.sampling_frequency(), fs);
        let mut out = vec![0.0; 10];
        paper
            .extract_window_into(&w1, &w2, &mut out, &mut scratch)
            .unwrap();
        let reference = paper.extract_window(&w1, &w2).unwrap();
        for (a, b) in out.iter().zip(reference.iter()) {
            assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()));
        }

        let rich = RichFeatureSet::new(fs).unwrap();
        let mut scratch = rich.scratch(1024).unwrap();
        assert_eq!(scratch.wavelet_levels(), 5);
        let mut out = vec![0.0; 54];
        rich.extract_window_into(&w1, &w2, &mut out, &mut scratch)
            .unwrap();
        let reference = rich.extract_window(&w1, &w2).unwrap();
        for (a, b) in out.iter().zip(reference.iter()) {
            assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn extract_window_into_validates_buffers() {
        let fs = 256.0;
        let w = tone(6.0, fs, 1024, 1.0);
        let paper = PaperFeatureSet::new(fs).unwrap();
        let mut scratch = paper.scratch(1024).unwrap();
        let mut short_out = vec![0.0; 3];
        assert!(paper
            .extract_window_into(&w, &w, &mut short_out, &mut scratch)
            .is_err());
        let mut out = vec![0.0; 10];
        assert!(paper
            .extract_window_into(&w[..512], &w[..512], &mut out, &mut scratch)
            .is_err());
        let rich = RichFeatureSet::new(fs).unwrap();
        let mut scratch = rich.scratch(1024).unwrap();
        let mut short_out = vec![0.0; 53];
        assert!(rich
            .extract_window_into(&w, &w, &mut short_out, &mut scratch)
            .is_err());
    }

    #[test]
    fn short_windows_still_produce_paper_features() {
        // A 1-second window at 64 Hz cannot support 7 wavelet levels; the
        // extractor clamps to the deepest available level instead of failing.
        let fs = 64.0;
        let ex = PaperFeatureSet::new(fs).unwrap();
        let w = tone(5.0, fs, 64, 1.0);
        let features = ex.extract_window(&w, &w).unwrap();
        assert_eq!(features.len(), 10);
        assert!(features.iter().all(|f| f.is_finite()));
    }
}
