//! Nonlinear entropy features.
//!
//! The paper's selected feature set uses permutation entropy (Bandt & Pompe,
//! 2002), Rényi entropy and sample entropy (Chen et al., 2005) computed on the
//! detail coefficients of a Daubechies-4 wavelet decomposition. Approximate and
//! Shannon entropy are provided in addition for the rich feature set.

use crate::error::FeatureError;
use seizure_dsp::stats;

/// Permutation entropy of `data` with ordinal patterns of length `order` and
/// the given `delay` between successive samples of a pattern.
///
/// The result is normalized by `ln(order!)` so it lies in `[0, 1]`, with 1
/// corresponding to a fully random ordinal structure. If the series is too
/// short to contain a single pattern the entropy is defined as `0`.
///
/// # Errors
///
/// Returns [`FeatureError::InvalidConfig`] if `order < 2` or `delay == 0`.
///
/// # Example
///
/// ```
/// use seizure_features::entropy::permutation_entropy;
///
/// # fn main() -> Result<(), seizure_features::FeatureError> {
/// // A monotonically increasing ramp has a single ordinal pattern -> entropy 0.
/// let ramp: Vec<f64> = (0..100).map(|i| i as f64).collect();
/// assert!(permutation_entropy(&ramp, 3, 1)? < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn permutation_entropy(data: &[f64], order: usize, delay: usize) -> Result<f64, FeatureError> {
    if order < 2 {
        return Err(FeatureError::InvalidConfig {
            name: "order",
            reason: format!("permutation order must be at least 2, got {order}"),
        });
    }
    if delay == 0 {
        return Err(FeatureError::InvalidConfig {
            name: "delay",
            reason: "delay must be at least 1".to_string(),
        });
    }
    let span = (order - 1) * delay;
    if data.len() <= span {
        return Ok(0.0);
    }
    let num_patterns = data.len() - span;
    // BTreeMap, not HashMap: the final entropy sum runs in iteration order,
    // and a hash map's order would make the low bits of the result vary
    // between processes.
    let mut counts: std::collections::BTreeMap<Vec<u8>, usize> = std::collections::BTreeMap::new();
    let mut indices: Vec<usize> = Vec::with_capacity(order);
    for start in 0..num_patterns {
        indices.clear();
        indices.extend(0..order);
        // Sort pattern positions by their sample values to obtain the ordinal
        // rank. `total_cmp` ranks a NaN sample as the largest value instead of
        // scrambling the whole pattern the way the former
        // `partial_cmp().unwrap_or(Equal)` comparator did.
        indices.sort_by(|&a, &b| {
            let va = data[start + a * delay];
            let vb = data[start + b * delay];
            va.total_cmp(&vb)
        });
        let key: Vec<u8> = indices.iter().map(|&i| i as u8).collect();
        *counts.entry(key).or_insert(0) += 1;
    }
    let mut entropy = 0.0;
    for &count in counts.values() {
        let p = count as f64 / num_patterns as f64;
        entropy -= p * p.ln();
    }
    let max_entropy = ln_factorial(order);
    if max_entropy <= 0.0 {
        return Ok(0.0);
    }
    Ok((entropy / max_entropy).clamp(0.0, 1.0))
}

fn ln_factorial(n: usize) -> f64 {
    (2..=n).map(|k| (k as f64).ln()).sum()
}

/// Largest ordinal-pattern order supported by
/// [`permutation_entropy_scratch`]'s dense counting table (`8! = 40320`
/// buckets).
pub const MAX_SCRATCH_ORDER: usize = 8;

/// Allocation-free permutation entropy over a reusable counting buffer.
///
/// Computes the same quantity as [`permutation_entropy`], but instead of
/// hashing one heap-allocated key per ordinal pattern it ranks each pattern
/// with its Lehmer code and counts occurrences in a dense `order!`-slot table
/// (`counts`, resized once and reused across calls). This is the hot-path
/// variant used by the batch feature-extraction engine: zero allocations per
/// call once `counts` has warmed up, and no hashing.
///
/// Ordinal ranks are obtained with a stable insertion sort, so ties between
/// equal samples break exactly as in [`permutation_entropy`]; the two
/// variants count identical pattern multisets and differ at most by the
/// floating-point summation order of the final entropy (≈ 1e-15).
///
/// # Errors
///
/// Returns [`FeatureError::InvalidConfig`] if `order < 2`,
/// `order > MAX_SCRATCH_ORDER` or `delay == 0`.
pub fn permutation_entropy_scratch(
    data: &[f64],
    order: usize,
    delay: usize,
    counts: &mut Vec<u32>,
) -> Result<f64, FeatureError> {
    if !(2..=MAX_SCRATCH_ORDER).contains(&order) {
        return Err(FeatureError::InvalidConfig {
            name: "order",
            reason: format!("permutation order must lie in [2, {MAX_SCRATCH_ORDER}], got {order}"),
        });
    }
    if delay == 0 {
        return Err(FeatureError::InvalidConfig {
            name: "delay",
            reason: "delay must be at least 1".to_string(),
        });
    }
    let span = (order - 1) * delay;
    if data.len() <= span {
        return Ok(0.0);
    }
    let num_patterns = data.len() - span;
    let table_size: usize = (2..=order).product();
    counts.clear();
    counts.resize(table_size, 0);
    accumulate_pattern_counts(data, order, delay, counts);
    Ok(entropy_from_counts(counts, num_patterns, order))
}

/// Ranks every ordinal pattern of `data` (starts `0..len − span`) with its
/// Lehmer code and increments the matching slot of the dense `order!`-entry
/// table `counts`. Shared between [`permutation_entropy_scratch`] and the
/// streaming extractor's per-hop pattern tables, so summing hop tables and
/// running [`entropy_from_counts`] over the merged counts is bit-identical
/// to the batch computation by construction.
// lint: hot-path
pub(crate) fn accumulate_pattern_counts(
    data: &[f64],
    order: usize,
    delay: usize,
    counts: &mut [u32],
) {
    let span = (order - 1) * delay;
    if data.len() <= span {
        return;
    }
    let num_patterns = data.len() - span;
    let mut values = [0.0f64; MAX_SCRATCH_ORDER];
    let mut perm = [0u8; MAX_SCRATCH_ORDER];
    for start in 0..num_patterns {
        for (slot, value) in values[..order]
            .iter_mut()
            .zip(data[start..].iter().step_by(delay))
        {
            *slot = *value;
        }
        // Stable insertion sort of (value, position) pairs on the stack;
        // shifting only on strictly-greater keeps tie order identical to the
        // stable sort in `permutation_entropy`. The comparison is `total_cmp`
        // for the same reason as there: a NaN sample ranks largest instead of
        // freezing wherever it happens to sit.
        for (slot, position) in perm[..order].iter_mut().zip(0..order as u8) {
            *slot = position;
        }
        for i in 1..order {
            let key_value = values[i];
            let key_position = perm[i];
            let mut j = i;
            while j > 0 && values[j - 1].total_cmp(&key_value) == std::cmp::Ordering::Greater {
                values[j] = values[j - 1];
                perm[j] = perm[j - 1];
                j -= 1;
            }
            values[j] = key_value;
            perm[j] = key_position;
        }
        // Lehmer-code rank of the permutation in mixed-radix form.
        let mut rank = 0usize;
        for i in 0..order {
            let mut smaller_later = 0usize;
            for j in i + 1..order {
                smaller_later += usize::from(perm[j] < perm[i]);
            }
            rank = rank * (order - i) + smaller_later;
        }
        counts[rank] += 1;
    }
}

/// Drop-front / insert-back transition tables for the incremental ordinal
/// ranker: `drop[r]` is the Lehmer rank of an order-`m` pattern after its
/// first (oldest) sample leaves, `ins[r_sub * m + c]` the rank after a new
/// sample enters at the back with `c` of the retained samples ordered at or
/// below it. Both are pure combinatorics — built once from the permutation
/// group, independent of any signal.
struct OrdinalTransitions {
    /// Order-3 rank → order-2 rank of the two retained samples.
    drop3: [u8; 6],
    /// `[order-2 rank][insert slot 0..=2]` → order-3 rank.
    ins3: [u8; 6],
    /// Order-5 rank → order-4 rank of the four retained samples.
    drop5: [u8; 120],
    /// `[order-4 rank][insert slot 0..=4]` → order-5 rank.
    ins5: [u8; 120],
}

static ORDINAL_TRANSITIONS: std::sync::OnceLock<OrdinalTransitions> = std::sync::OnceLock::new();

/// Lehmer-code rank of a permutation of `0..len`, in the same mixed-radix
/// form as [`accumulate_pattern_counts`]'s inner loop.
fn lehmer_rank(perm: &[u8]) -> usize {
    let order = perm.len();
    let mut rank = 0usize;
    for i in 0..order {
        let mut smaller_later = 0usize;
        for j in i + 1..order {
            smaller_later += usize::from(perm[j] < perm[i]);
        }
        rank = rank * (order - i) + smaller_later;
    }
    rank
}

/// All permutations of `0..order` indexed by their Lehmer rank.
fn perms_by_rank(order: usize) -> Vec<Vec<u8>> {
    let table_size: usize = (2..=order).product();
    let mut by_rank = vec![Vec::new(); table_size];
    let mut current: Vec<u8> = Vec::with_capacity(order);
    let mut used = vec![false; order];
    fn rec(order: usize, current: &mut Vec<u8>, used: &mut [bool], by_rank: &mut [Vec<u8>]) {
        if current.len() == order {
            by_rank[lehmer_rank(current)] = current.clone();
            return;
        }
        for p in 0..order {
            if !used[p] {
                used[p] = true;
                current.push(p as u8);
                rec(order, current, used, by_rank);
                current.pop();
                used[p] = false;
            }
        }
    }
    rec(order, &mut current, &mut used, &mut by_rank);
    by_rank
}

/// Fills one order's transition tables from the permutation group.
fn fill_transitions(order: usize, drop: &mut [u8], ins: &mut [u8]) {
    let by_rank = perms_by_rank(order);
    let by_rank_sub = perms_by_rank(order - 1);
    for (rank, perm) in by_rank.iter().enumerate() {
        // Removing the oldest sample (position 0) keeps the value order of
        // the rest; renumber positions down by one.
        let sub: Vec<u8> = perm.iter().filter(|&&p| p != 0).map(|&p| p - 1).collect();
        drop[rank] = lehmer_rank(&sub) as u8;
    }
    for (rank_sub, perm_sub) in by_rank_sub.iter().enumerate() {
        for slot in 0..order {
            // The incoming sample has the latest position, so a stable order
            // puts it immediately after the `slot` retained samples that
            // compare at or below it.
            let mut full: Vec<u8> = perm_sub.clone();
            full.insert(slot, (order - 1) as u8);
            ins[rank_sub * order + slot] = lehmer_rank(&full) as u8;
        }
    }
}

fn ordinal_transitions() -> &'static OrdinalTransitions {
    ORDINAL_TRANSITIONS.get_or_init(|| {
        let mut tables = OrdinalTransitions {
            drop3: [0; 6],
            ins3: [0; 6],
            drop5: [0; 120],
            ins5: [0; 120],
        };
        fill_transitions(3, &mut tables.drop3, &mut tables.ins3);
        fill_transitions(5, &mut tables.drop5, &mut tables.ins5);
        tables
    })
}

/// Delay-1 fast twin of [`accumulate_pattern_counts`] for orders 3 and 5:
/// ranks the first window with the same stable sort, then slides — each
/// subsequent start costs `order − 1` `total_cmp` comparisons (the incoming
/// sample against the retained ones) and two table lookups instead of a full
/// sort. Counts are integers and the transition tables replicate the stable
/// tie order, so the resulting table is identical to the generic ranker's
/// bit for bit (property-tested below, NaNs included). Used by the streaming
/// extractor's per-hop tables.
// lint: hot-path
pub(crate) fn accumulate_pattern_counts_delay1(data: &[f64], order: usize, counts: &mut [u32]) {
    debug_assert!(
        order == 3 || order == 5,
        "transition tables are built for orders 3 and 5"
    );
    if data.len() < order {
        return;
    }
    let tables = ordinal_transitions();
    let (drop, ins): (&[u8], &[u8]) = if order == 3 {
        (&tables.drop3, &tables.ins3)
    } else {
        (&tables.drop5, &tables.ins5)
    };

    // Seed: rank the first window exactly as the generic ranker does.
    let mut values = [0.0f64; MAX_SCRATCH_ORDER];
    let mut perm = [0u8; MAX_SCRATCH_ORDER];
    values[..order].copy_from_slice(&data[..order]);
    for (slot, position) in perm[..order].iter_mut().zip(0..order as u8) {
        *slot = position;
    }
    for i in 1..order {
        let key_value = values[i];
        let key_position = perm[i];
        let mut j = i;
        while j > 0 && values[j - 1].total_cmp(&key_value) == std::cmp::Ordering::Greater {
            values[j] = values[j - 1];
            perm[j] = perm[j - 1];
            j -= 1;
        }
        values[j] = key_value;
        perm[j] = key_position;
    }
    let mut rank = lehmer_rank(&perm[..order]);
    counts[rank] += 1;

    for start in 1..=data.len() - order {
        let incoming = data[start + order - 1];
        let mut slot = 0usize;
        for &retained in &data[start..start + order - 1] {
            slot += usize::from(retained.total_cmp(&incoming) != std::cmp::Ordering::Greater);
        }
        rank = usize::from(ins[usize::from(drop[rank]) * order + slot]);
        counts[rank] += 1;
    }
}

/// Normalized permutation entropy from a filled pattern-count table: the
/// entropy sum runs in rank order (exactly as [`permutation_entropy_scratch`]
/// always has), normalized by `ln(order!)` and clamped to `[0, 1]`.
// lint: hot-path
pub(crate) fn entropy_from_counts(counts: &[u32], num_patterns: usize, order: usize) -> f64 {
    let mut entropy = 0.0;
    for &count in counts.iter() {
        if count > 0 {
            let p = count as f64 / num_patterns as f64;
            entropy -= p * p.ln();
        }
    }
    let max_entropy = ln_factorial(order);
    if max_entropy <= 0.0 {
        return 0.0;
    }
    (entropy / max_entropy).clamp(0.0, 1.0)
}

/// Shannon entropy (in nats) of the energy distribution of `data`.
///
/// Each sample contributes `p_i = x_i^2 / sum(x^2)`; this is the standard
/// "wavelet entropy" construction when applied to sub-band coefficients. A
/// zero-energy series has zero entropy.
pub fn shannon_entropy(data: &[f64]) -> f64 {
    let probs = energy_distribution(data);
    let mut h = 0.0;
    for p in probs {
        if p > 0.0 {
            h -= p * p.ln();
        }
    }
    h
}

/// Allocation-free twin of [`shannon_entropy`], bit-identical by replicating
/// the same per-element expression `x * x / total` instead of materializing
/// the probability vector. Used on streaming hot paths where the batch
/// function's intermediate `Vec` is forbidden.
// lint: hot-path
pub fn shannon_entropy_noalloc(data: &[f64]) -> f64 {
    let total: f64 = data.iter().map(|x| x * x).sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut h = 0.0;
    for x in data {
        let p = x * x / total;
        if p > 0.0 {
            h -= p * p.ln();
        }
    }
    h
}

/// Rényi entropy of order `alpha` of the energy distribution of `data`.
///
/// For `alpha == 1` the Rényi entropy degenerates to the Shannon entropy; the
/// paper uses the common quadratic case `alpha = 2` (see
/// [`renyi_entropy_quadratic`]). A zero-energy series has zero entropy.
///
/// # Errors
///
/// Returns [`FeatureError::InvalidConfig`] if `alpha <= 0` or `alpha` is NaN.
pub fn renyi_entropy(data: &[f64], alpha: f64) -> Result<f64, FeatureError> {
    if alpha <= 0.0 || alpha.is_nan() {
        return Err(FeatureError::InvalidConfig {
            name: "alpha",
            reason: format!("Rényi order must be positive, got {alpha}"),
        });
    }
    if (alpha - 1.0).abs() < 1e-9 {
        return Ok(shannon_entropy(data));
    }
    let probs = energy_distribution(data);
    let sum: f64 = probs.iter().map(|p| p.powf(alpha)).sum();
    if sum <= 0.0 {
        return Ok(0.0);
    }
    Ok(sum.ln() / (1.0 - alpha))
}

/// Quadratic (order-2) Rényi entropy, the variant used by the paper's feature
/// set ("third level Rényi entropy" is this quantity computed on level-3 detail
/// coefficients).
pub fn renyi_entropy_quadratic(data: &[f64]) -> f64 {
    renyi_entropy(data, 2.0).expect("alpha = 2 is always valid")
}

fn energy_distribution(data: &[f64]) -> Vec<f64> {
    let total: f64 = data.iter().map(|x| x * x).sum();
    if total <= 0.0 {
        return vec![0.0; data.len()];
    }
    data.iter().map(|x| x * x / total).collect()
}

/// Sample entropy `SampEn(m, r)` of `data` with embedding dimension `m` and a
/// tolerance of `r = k * std(data)`.
///
/// Sample entropy is the negative logarithm of the conditional probability that
/// two sequences similar for `m` points remain similar at the next point,
/// excluding self-matches. Following Chen et al. (2005) the tolerance is
/// expressed as a fraction `k` of the standard deviation; the paper uses
/// `k = 0.2` and `k = 0.35`. Degenerate cases (too few points, zero matches)
/// return `0`.
///
/// # Errors
///
/// Returns [`FeatureError::InvalidConfig`] if `m == 0`, `k <= 0` or `k` is NaN.
pub fn sample_entropy(data: &[f64], m: usize, k: f64) -> Result<f64, FeatureError> {
    if m == 0 {
        return Err(FeatureError::InvalidConfig {
            name: "m",
            reason: "embedding dimension must be at least 1".to_string(),
        });
    }
    if k <= 0.0 || k.is_nan() {
        return Err(FeatureError::InvalidConfig {
            name: "k",
            reason: format!("tolerance fraction must be positive, got {k}"),
        });
    }
    if data.len() < m + 2 {
        return Ok(0.0);
    }
    let sd = stats::std_dev(data).unwrap_or(0.0);
    if sd == 0.0 {
        // A constant series is perfectly regular.
        return Ok(0.0);
    }
    let r = k * sd;
    let count_m = count_similar(data, m, r);
    let count_m1 = count_similar(data, m + 1, r);
    if count_m == 0 || count_m1 == 0 {
        return Ok(0.0);
    }
    Ok(-((count_m1 as f64) / (count_m as f64)).ln())
}

/// Counts pairs of template vectors of length `m` whose Chebyshev distance is
/// at most `r` (self-matches excluded).
fn count_similar(data: &[f64], m: usize, r: f64) -> usize {
    if data.len() < m {
        return 0;
    }
    let n = data.len() - m + 1;
    let mut count = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            let mut similar = true;
            for k in 0..m {
                if (data[i + k] - data[j + k]).abs() > r {
                    similar = false;
                    break;
                }
            }
            if similar {
                count += 1;
            }
        }
    }
    count
}

/// Approximate entropy `ApEn(m, r)` with tolerance `r = k * std(data)`.
///
/// Approximate entropy differs from sample entropy by including self-matches
/// and averaging the per-template logarithms; it is part of the rich feature
/// set (Ocak 2009 uses DWT + ApEn for seizure detection). Degenerate inputs
/// return `0`.
///
/// # Errors
///
/// Returns [`FeatureError::InvalidConfig`] if `m == 0`, `k <= 0` or `k` is NaN.
pub fn approximate_entropy(data: &[f64], m: usize, k: f64) -> Result<f64, FeatureError> {
    if m == 0 {
        return Err(FeatureError::InvalidConfig {
            name: "m",
            reason: "embedding dimension must be at least 1".to_string(),
        });
    }
    if k <= 0.0 || k.is_nan() {
        return Err(FeatureError::InvalidConfig {
            name: "k",
            reason: format!("tolerance fraction must be positive, got {k}"),
        });
    }
    if data.len() < m + 2 {
        return Ok(0.0);
    }
    let sd = stats::std_dev(data).unwrap_or(0.0);
    if sd == 0.0 {
        return Ok(0.0);
    }
    let r = k * sd;
    let phi = |m: usize| -> f64 {
        let n = data.len() - m + 1;
        let mut sum = 0.0;
        for i in 0..n {
            let mut count = 0usize;
            for j in 0..n {
                let mut similar = true;
                for t in 0..m {
                    if (data[i + t] - data[j + t]).abs() > r {
                        similar = false;
                        break;
                    }
                }
                if similar {
                    count += 1;
                }
            }
            sum += ((count as f64) / (n as f64)).ln();
        }
        sum / n as f64
    };
    Ok(phi(m) - phi(m + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            })
            .collect()
    }

    #[test]
    fn incremental_pattern_counts_match_the_generic_ranker() {
        // Random data, quantized data (heavy ties), constants and NaNs all
        // have to produce bit-identical tables for orders 3 and 5, at every
        // length from degenerate to a few hundred samples.
        for seed in 0..20u64 {
            for n in [0usize, 1, 2, 3, 4, 5, 6, 7, 31, 256] {
                let mut data = pseudo_random(n, seed);
                if seed % 3 == 1 {
                    for x in &mut data {
                        *x = (*x * 4.0).round();
                    }
                }
                if seed % 5 == 2 && n > 4 {
                    data[n / 2] = f64::NAN;
                    data[n - 1] = f64::NAN;
                }
                for order in [3usize, 5] {
                    let table_size: usize = (2..=order).product();
                    let mut generic = vec![0u32; table_size];
                    let mut fast = vec![0u32; table_size];
                    accumulate_pattern_counts(&data, order, 1, &mut generic);
                    accumulate_pattern_counts_delay1(&data, order, &mut fast);
                    assert_eq!(generic, fast, "seed {seed}, n {n}, order {order}");
                }
            }
        }
    }

    #[test]
    fn permutation_entropy_of_monotone_series_is_zero() {
        let ramp: Vec<f64> = (0..200).map(|i| i as f64 * 0.5).collect();
        for order in [3, 5, 7] {
            assert!(permutation_entropy(&ramp, order, 1).unwrap() < 1e-12);
        }
    }

    #[test]
    fn permutation_entropy_of_random_series_is_high() {
        let noise = pseudo_random(4000, 7);
        let pe = permutation_entropy(&noise, 3, 1).unwrap();
        assert!(pe > 0.95, "pe = {pe}");
    }

    #[test]
    fn permutation_entropy_is_bounded() {
        let noise = pseudo_random(500, 13);
        for order in [3, 4, 5, 6, 7] {
            let pe = permutation_entropy(&noise, order, 1).unwrap();
            assert!((0.0..=1.0).contains(&pe));
        }
    }

    #[test]
    fn permutation_entropy_short_series_is_zero() {
        assert_eq!(permutation_entropy(&[1.0, 2.0], 5, 1).unwrap(), 0.0);
        assert_eq!(permutation_entropy(&[], 3, 1).unwrap(), 0.0);
    }

    #[test]
    fn permutation_entropy_invalid_parameters() {
        assert!(permutation_entropy(&[1.0; 10], 1, 1).is_err());
        assert!(permutation_entropy(&[1.0; 10], 3, 0).is_err());
    }

    #[test]
    fn permutation_entropy_periodic_vs_random() {
        let periodic: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.3).sin()).collect();
        let random = pseudo_random(1000, 23);
        let pe_per = permutation_entropy(&periodic, 5, 1).unwrap();
        let pe_rand = permutation_entropy(&random, 5, 1).unwrap();
        assert!(pe_rand > pe_per);
    }

    #[test]
    fn shannon_entropy_uniform_energy_is_log_n() {
        let data = vec![1.0; 16];
        assert!((shannon_entropy(&data) - (16.0f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn shannon_entropy_single_spike_is_zero() {
        let mut data = vec![0.0; 32];
        data[5] = 4.0;
        assert!(shannon_entropy(&data).abs() < 1e-12);
    }

    #[test]
    fn shannon_entropy_zero_signal_is_zero() {
        assert_eq!(shannon_entropy(&[0.0; 8]), 0.0);
        assert_eq!(shannon_entropy(&[]), 0.0);
    }

    #[test]
    fn shannon_entropy_noalloc_is_bit_identical() {
        let data = pseudo_random(256, 11);
        assert_eq!(shannon_entropy_noalloc(&data), shannon_entropy(&data));
        assert_eq!(shannon_entropy_noalloc(&[0.0; 8]), 0.0);
        assert_eq!(shannon_entropy_noalloc(&[]), 0.0);
    }

    #[test]
    fn renyi_entropy_quadratic_uniform_is_log_n() {
        let data = vec![2.0; 8];
        assert!((renyi_entropy_quadratic(&data) - (8.0f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn renyi_entropy_alpha_one_matches_shannon() {
        let data = pseudo_random(64, 3);
        let r1 = renyi_entropy(&data, 1.0).unwrap();
        let sh = shannon_entropy(&data);
        assert!((r1 - sh).abs() < 1e-9);
    }

    #[test]
    fn renyi_entropy_is_nonincreasing_in_alpha() {
        let data = pseudo_random(128, 5);
        let r1 = renyi_entropy(&data, 1.0).unwrap();
        let r2 = renyi_entropy(&data, 2.0).unwrap();
        let r3 = renyi_entropy(&data, 3.0).unwrap();
        assert!(r1 + 1e-9 >= r2);
        assert!(r2 + 1e-9 >= r3);
    }

    #[test]
    fn renyi_entropy_rejects_bad_alpha() {
        assert!(renyi_entropy(&[1.0, 2.0], 0.0).is_err());
        assert!(renyi_entropy(&[1.0, 2.0], -1.0).is_err());
        assert!(renyi_entropy(&[1.0, 2.0], f64::NAN).is_err());
    }

    #[test]
    fn renyi_entropy_zero_signal_is_zero() {
        assert_eq!(renyi_entropy(&[0.0; 8], 2.0).unwrap(), 0.0);
    }

    #[test]
    fn sample_entropy_of_constant_is_zero() {
        assert_eq!(sample_entropy(&[3.0; 100], 2, 0.2).unwrap(), 0.0);
    }

    #[test]
    fn sample_entropy_of_random_exceeds_periodic() {
        let periodic: Vec<f64> = (0..400).map(|i| (i as f64 * 0.2).sin()).collect();
        let random = pseudo_random(400, 11);
        let se_periodic = sample_entropy(&periodic, 2, 0.2).unwrap();
        let se_random = sample_entropy(&random, 2, 0.2).unwrap();
        assert!(se_random > se_periodic);
    }

    #[test]
    fn sample_entropy_decreases_with_larger_tolerance() {
        let data = pseudo_random(300, 17);
        let tight = sample_entropy(&data, 2, 0.2).unwrap();
        let loose = sample_entropy(&data, 2, 0.35).unwrap();
        assert!(loose <= tight + 1e-9);
    }

    #[test]
    fn sample_entropy_invalid_parameters() {
        assert!(sample_entropy(&[1.0; 10], 0, 0.2).is_err());
        assert!(sample_entropy(&[1.0; 10], 2, 0.0).is_err());
        assert!(sample_entropy(&[1.0; 10], 2, f64::NAN).is_err());
    }

    #[test]
    fn sample_entropy_short_series_is_zero() {
        assert_eq!(sample_entropy(&[1.0, 2.0], 2, 0.2).unwrap(), 0.0);
    }

    #[test]
    fn approximate_entropy_of_constant_is_zero() {
        assert_eq!(approximate_entropy(&[1.0; 64], 2, 0.2).unwrap(), 0.0);
    }

    #[test]
    fn approximate_entropy_of_random_exceeds_periodic() {
        let periodic: Vec<f64> = (0..200).map(|i| (i as f64 * 0.2).sin()).collect();
        let random = pseudo_random(200, 31);
        let ap_periodic = approximate_entropy(&periodic, 2, 0.2).unwrap();
        let ap_random = approximate_entropy(&random, 2, 0.2).unwrap();
        assert!(ap_random > ap_periodic);
    }

    #[test]
    fn approximate_entropy_invalid_parameters() {
        assert!(approximate_entropy(&[1.0; 10], 0, 0.2).is_err());
        assert!(approximate_entropy(&[1.0; 10], 2, -0.5).is_err());
    }

    #[test]
    fn scratch_permutation_entropy_matches_hashmap_variant() {
        let signals = [
            pseudo_random(300, 7),
            (0..200)
                .map(|i| (i as f64 * 0.21).sin())
                .collect::<Vec<_>>(),
            // Ties everywhere: a square-ish wave exercises stable ordering.
            (0..150).map(|i| ((i / 3) % 2) as f64).collect::<Vec<_>>(),
            vec![2.5; 64],
        ];
        let mut counts = Vec::new();
        for signal in &signals {
            for order in 2..=7 {
                for delay in [1usize, 2] {
                    let reference = permutation_entropy(signal, order, delay).unwrap();
                    let fast =
                        permutation_entropy_scratch(signal, order, delay, &mut counts).unwrap();
                    assert!(
                        (reference - fast).abs() < 1e-12,
                        "order {order} delay {delay}: {reference} vs {fast}"
                    );
                }
            }
        }
    }

    #[test]
    fn permutation_entropy_ranks_nan_samples_worst() {
        // Regression for the NaN-unsafe rank sort: with the former
        // `partial_cmp().unwrap_or(Equal)` comparator a NaN sample froze the
        // sort mid-pattern and scrambled the ordinal ranks; with `total_cmp`
        // it ranks as the largest sample, so a NaN behaves exactly like an
        // infinite-amplitude spike.
        let mut with_nan = pseudo_random(300, 41);
        let mut with_inf = with_nan.clone();
        with_nan[137] = f64::NAN;
        with_inf[137] = f64::INFINITY;
        for order in [3, 5] {
            let pe_nan = permutation_entropy(&with_nan, order, 1).unwrap();
            let pe_inf = permutation_entropy(&with_inf, order, 1).unwrap();
            assert!(pe_nan.is_finite() && (0.0..=1.0).contains(&pe_nan));
            assert_eq!(pe_nan.to_bits(), pe_inf.to_bits());
        }
    }

    #[test]
    fn scratch_permutation_entropy_matches_on_nan_input() {
        let mut signal = pseudo_random(200, 43);
        signal[17] = f64::NAN;
        signal[90] = f64::NAN;
        let mut counts = Vec::new();
        for order in [3, 4, 6] {
            let reference = permutation_entropy(&signal, order, 1).unwrap();
            let fast = permutation_entropy_scratch(&signal, order, 1, &mut counts).unwrap();
            assert!(
                (reference - fast).abs() < 1e-12,
                "order {order}: {reference} vs {fast}"
            );
        }
    }

    #[test]
    fn scratch_permutation_entropy_short_series_and_validation() {
        let mut counts = Vec::new();
        assert_eq!(
            permutation_entropy_scratch(&[1.0, 2.0], 5, 1, &mut counts).unwrap(),
            0.0
        );
        assert!(permutation_entropy_scratch(&[1.0; 10], 1, 1, &mut counts).is_err());
        assert!(permutation_entropy_scratch(&[1.0; 10], 9, 1, &mut counts).is_err());
        assert!(permutation_entropy_scratch(&[1.0; 10], 3, 0, &mut counts).is_err());
    }
}
