//! Reusable per-thread scratch space for allocation-free feature extraction.
//!
//! Extracting features from a 4-second window runs one periodogram and one
//! multi-level wavelet decomposition per channel; in the seed implementation
//! each of those allocated fresh buffers for every window of every record.
//! [`FeatureScratch`] bundles the precomputed [`PsdPlan`] and
//! [`WaveletWorkspace`] plus their output buffers, so the batch extraction
//! path performs the FFT and DWT of every sliding window without touching the
//! heap. One scratch is created per worker thread and reused across all
//! windows that worker processes.

use crate::entropy::permutation_entropy_scratch;
use crate::error::FeatureError;
use seizure_dsp::fft::Complex;
use seizure_dsp::spectrum::PsdPlan;
use seizure_dsp::wavelet::{Wavelet, WaveletWorkspace};
use seizure_dsp::window::WindowKind;

/// Preallocated workspace for extracting the features of one analysis window.
///
/// Built by [`PaperFeatureSet::scratch`] / [`RichFeatureSet::scratch`] for a
/// fixed window length; the depth of the wavelet decomposition is clamped to
/// what the window supports, exactly mirroring the allocating extractors.
///
/// [`PaperFeatureSet::scratch`]: crate::extractor::PaperFeatureSet::scratch
/// [`RichFeatureSet::scratch`]: crate::extractor::RichFeatureSet::scratch
///
/// # Example
///
/// ```
/// use seizure_features::extractor::{FeatureExtractor, RichFeatureSet};
///
/// # fn main() -> Result<(), seizure_features::FeatureError> {
/// let fs = 256.0;
/// let extractor = RichFeatureSet::new(fs)?;
/// let window: Vec<f64> = (0..1024).map(|i| (i as f64 * 0.1).sin()).collect();
///
/// let mut scratch = extractor.scratch(window.len())?;
/// let mut features = vec![0.0; extractor.num_features()];
/// extractor.extract_window_into(&window, &window, &mut features, &mut scratch)?;
///
/// let reference = extractor.extract_window(&window, &window)?;
/// for (a, b) in features.iter().zip(reference.iter()) {
///     assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FeatureScratch {
    fs: f64,
    window_len: usize,
    psd: PsdPlan,
    spectrum: Vec<Complex>,
    power: Vec<f64>,
    wavelet: WaveletWorkspace,
    /// Dense ordinal-pattern counting table reused by the allocation-free
    /// permutation entropies.
    perm_counts: Vec<u32>,
}

impl FeatureScratch {
    /// Builds a scratch for windows of `window_len` samples at `fs` Hz, with
    /// the wavelet decomposition depth clamped to
    /// `max_wavelet_levels.min(max supported).max(1)`.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::InvalidConfig`] if `fs` is not positive and
    /// [`FeatureError::Dsp`] if the window is too short to support even one
    /// db4 decomposition level.
    pub fn new(
        fs: f64,
        window_len: usize,
        max_wavelet_levels: usize,
    ) -> Result<Self, FeatureError> {
        if fs <= 0.0 || fs.is_nan() {
            return Err(FeatureError::InvalidConfig {
                name: "fs",
                reason: format!("sampling frequency must be positive, got {fs}"),
            });
        }
        let wavelet = Wavelet::Daubechies4;
        let levels = max_wavelet_levels.min(wavelet.max_level(window_len)).max(1);
        let psd = PsdPlan::new(window_len, WindowKind::Rectangular)?;
        let workspace = WaveletWorkspace::new(wavelet, window_len, levels)?;
        Ok(Self {
            fs,
            window_len,
            spectrum: vec![Complex::zero(); psd.scratch_len()],
            power: vec![0.0; psd.num_bins()],
            psd,
            wavelet: workspace,
            perm_counts: Vec::new(),
        })
    }

    /// Sampling frequency the scratch was built for.
    pub fn sampling_frequency(&self) -> f64 {
        self.fs
    }

    /// The window length the scratch was built for.
    pub fn window_len(&self) -> usize {
        self.window_len
    }

    /// The (clamped) wavelet decomposition depth.
    pub fn wavelet_levels(&self) -> usize {
        self.wavelet.levels()
    }

    /// Computes the one-sided PSD bins of `window` into the internal buffer
    /// and returns them.
    pub(crate) fn power_bins(&mut self, window: &[f64]) -> Result<&[f64], FeatureError> {
        self.psd
            .power_into(window, self.fs, &mut self.power, &mut self.spectrum)?;
        Ok(&self.power)
    }

    /// Runs the db4 decomposition of `window` into the internal workspace.
    pub(crate) fn decompose(&mut self, window: &[f64]) -> Result<&WaveletWorkspace, FeatureError> {
        self.wavelet.decompose(window)?;
        Ok(&self.wavelet)
    }

    /// Detail coefficients at `level`, clamped into the workspace's valid
    /// range the same way the allocating extractors clamp (`1..=levels`).
    /// Only valid after [`FeatureScratch::decompose`] has run.
    pub(crate) fn detail_clamped(&self, level: usize) -> &[f64] {
        let level = level.min(self.wavelet.levels()).max(1);
        self.wavelet
            .detail(level)
            .expect("decompose ran and level is clamped into range")
    }

    /// Permutation entropy of an arbitrary series through the reusable
    /// counting table.
    pub(crate) fn perm_entropy(
        &mut self,
        data: &[f64],
        order: usize,
        delay: usize,
    ) -> Result<f64, FeatureError> {
        permutation_entropy_scratch(data, order, delay, &mut self.perm_counts)
    }

    /// Permutation entropy of the (clamped) detail band of the most recent
    /// decomposition, without cloning the coefficients.
    pub(crate) fn detail_perm_entropy(
        &mut self,
        level: usize,
        order: usize,
        delay: usize,
    ) -> Result<f64, FeatureError> {
        let level = level.min(self.wavelet.levels()).max(1);
        let detail = self
            .wavelet
            .detail(level)
            .expect("decompose ran and level is clamped into range");
        permutation_entropy_scratch(detail, order, delay, &mut self.perm_counts)
    }
}

/// A shared pool of [`FeatureScratch`] workspaces, so multi-record batch
/// extraction reuses the FFT/wavelet buffers across records instead of
/// rebuilding them per record per worker.
///
/// Workers of the parallel extraction path check a scratch out once per
/// record block and return it when done; a scratch is only built when the
/// pool has none matching the requested window geometry. The mutex is
/// touched once per worker block, never per window.
#[derive(Debug, Default)]
pub struct FeatureScratchPool {
    inner: std::sync::Mutex<Vec<FeatureScratch>>,
}

impl FeatureScratchPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of idle workspaces currently parked in the pool.
    pub fn idle(&self) -> usize {
        self.inner.lock().expect("scratch pool poisoned").len()
    }

    /// Checks out a scratch for the given geometry, building one only when no
    /// pooled scratch matches.
    ///
    /// # Errors
    ///
    /// Propagates [`FeatureScratch::new`] failures when a fresh scratch must
    /// be built.
    pub(crate) fn acquire(
        &self,
        fs: f64,
        window_len: usize,
        max_wavelet_levels: usize,
    ) -> Result<FeatureScratch, FeatureError> {
        let wanted_levels = max_wavelet_levels
            .min(seizure_dsp::wavelet::Wavelet::Daubechies4.max_level(window_len))
            .max(1);
        {
            let mut pool = self.inner.lock().expect("scratch pool poisoned");
            if let Some(pos) = pool.iter().position(|s| {
                s.sampling_frequency() == fs
                    && s.window_len() == window_len
                    && s.wavelet_levels() == wanted_levels
            }) {
                return Ok(pool.swap_remove(pos));
            }
        }
        FeatureScratch::new(fs, window_len, max_wavelet_levels)
    }

    /// Returns a scratch to the pool for the next record.
    pub(crate) fn release(&self, scratch: FeatureScratch) {
        self.inner
            .lock()
            .expect("scratch pool poisoned")
            .push(scratch);
    }
}

impl Clone for FeatureScratchPool {
    /// Cloning a pool yields an empty pool: pooled scratches are a cache, not
    /// state, and each clone refills on first use.
    fn clone(&self) -> Self {
        Self::new()
    }
}
