//! Spectral band-power features.
//!
//! The clinical EEG bands used throughout the crate follow the paper: delta is
//! [0.5, 4] Hz and theta is [4, 8] Hz; the remaining standard bands are provided
//! for the rich feature set of the real-time detector.

use crate::error::FeatureError;
use seizure_dsp::spectrum::{band_power, periodogram, relative_band_power, PowerSpectrum};

/// Standard clinical EEG frequency bands.
///
/// # Example
///
/// ```
/// use seizure_features::bandpower::Band;
///
/// assert_eq!(Band::Theta.range(), (4.0, 8.0));
/// assert_eq!(Band::Delta.range(), (0.5, 4.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Band {
    /// Delta band, [0.5, 4] Hz.
    Delta,
    /// Theta band, [4, 8] Hz.
    Theta,
    /// Alpha band, [8, 13] Hz.
    Alpha,
    /// Beta band, [13, 30] Hz.
    Beta,
    /// Gamma band, [30, 45] Hz (upper edge kept below typical notch filters).
    Gamma,
}

impl Band {
    /// All bands in ascending frequency order.
    pub const ALL: [Band; 5] = [
        Band::Delta,
        Band::Theta,
        Band::Alpha,
        Band::Beta,
        Band::Gamma,
    ];

    /// Frequency range `(low, high)` of the band in Hz.
    pub fn range(&self) -> (f64, f64) {
        match self {
            Band::Delta => (0.5, 4.0),
            Band::Theta => (4.0, 8.0),
            Band::Alpha => (8.0, 13.0),
            Band::Beta => (13.0, 30.0),
            Band::Gamma => (30.0, 45.0),
        }
    }

    /// Lowercase band name.
    pub fn name(&self) -> &'static str {
        match self {
            Band::Delta => "delta",
            Band::Theta => "theta",
            Band::Alpha => "alpha",
            Band::Beta => "beta",
            Band::Gamma => "gamma",
        }
    }
}

impl std::fmt::Display for Band {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Band-power summary of one analysis window.
#[derive(Debug, Clone, PartialEq)]
pub struct BandPowers {
    /// Absolute power per band, ordered as [`Band::ALL`].
    pub absolute: [f64; 5],
    /// Relative power per band (absolute divided by total signal power).
    pub relative: [f64; 5],
    /// Total power over the whole spectrum.
    pub total: f64,
}

impl BandPowers {
    /// Absolute power of a specific band.
    pub fn absolute(&self, band: Band) -> f64 {
        self.absolute[Band::ALL
            .iter()
            .position(|b| *b == band)
            .expect("band in ALL")]
    }

    /// Relative power of a specific band.
    pub fn relative(&self, band: Band) -> f64 {
        self.relative[Band::ALL
            .iter()
            .position(|b| *b == band)
            .expect("band in ALL")]
    }
}

/// Computes the absolute power of `band` in `window` sampled at `fs` Hz.
///
/// # Errors
///
/// Propagates [`FeatureError::Dsp`] from the underlying PSD estimation.
pub fn total_band_power(window: &[f64], fs: f64, band: Band) -> Result<f64, FeatureError> {
    let psd = periodogram(window, fs)?;
    let (lo, hi) = band.range();
    Ok(band_power(&psd, lo, hi)?)
}

/// Computes the relative power of `band` (power in the band divided by the
/// total power of the window).
///
/// # Errors
///
/// Propagates [`FeatureError::Dsp`] from the underlying PSD estimation.
pub fn total_relative_band_power(window: &[f64], fs: f64, band: Band) -> Result<f64, FeatureError> {
    let psd = periodogram(window, fs)?;
    let (lo, hi) = band.range();
    Ok(relative_band_power(&psd, lo, hi)?)
}

/// Computes absolute and relative power for all five clinical bands from a
/// single PSD estimate (cheaper than calling the per-band helpers repeatedly).
///
/// # Errors
///
/// Propagates [`FeatureError::Dsp`] from the underlying PSD estimation.
pub fn all_band_powers(window: &[f64], fs: f64) -> Result<BandPowers, FeatureError> {
    let psd = periodogram(window, fs)?;
    Ok(band_powers_from_psd(&psd)?)
}

/// Computes absolute and relative band powers from an existing PSD.
///
/// # Errors
///
/// Propagates [`seizure_dsp::DspError`] if a band is malformed (cannot happen
/// for the fixed clinical bands).
pub fn band_powers_from_psd(psd: &PowerSpectrum) -> Result<BandPowers, seizure_dsp::DspError> {
    let total = psd.total_power();
    let mut absolute = [0.0; 5];
    let mut relative = [0.0; 5];
    for (i, band) in Band::ALL.iter().enumerate() {
        let (lo, hi) = band.range();
        absolute[i] = band_power(psd, lo, hi)?;
        relative[i] = if total > 0.0 {
            absolute[i] / total
        } else {
            0.0
        };
    }
    Ok(BandPowers {
        absolute,
        relative,
        total,
    })
}

/// Computes absolute and relative band powers straight from raw one-sided PSD
/// bins (as filled by [`seizure_dsp::spectrum::PsdPlan::power_into`]) without
/// materializing a [`PowerSpectrum`]. `window_len` is the analysis-window
/// length the bins came from. This is the allocation-free twin of
/// [`band_powers_from_psd`] used by the batch inference engine.
///
/// # Errors
///
/// Propagates [`seizure_dsp::DspError`] for a non-positive `fs` or zero
/// `window_len`.
pub fn band_powers_from_bins(
    power: &[f64],
    fs: f64,
    window_len: usize,
) -> Result<BandPowers, seizure_dsp::DspError> {
    if fs <= 0.0 || fs.is_nan() || window_len == 0 {
        return Err(seizure_dsp::DspError::InvalidParameter {
            name: "fs",
            reason: "band_powers_from_bins requires a positive fs and window length".to_string(),
        });
    }
    // One pass over the bins accumulating all five bands and the total at
    // once (the separate per-band helpers each rescan the full spectrum).
    let resolution = fs / window_len as f64;
    let ranges = Band::ALL.map(|band| band.range());
    let mut sums = [0.0; 5];
    let mut total_sum = 0.0;
    for (k, p) in power.iter().enumerate() {
        let f = k as f64 * fs / window_len as f64;
        total_sum += p;
        for (sum, (lo, hi)) in sums.iter_mut().zip(ranges.iter()) {
            if f >= *lo && f <= *hi {
                *sum += p;
            }
        }
    }
    let total = total_sum * resolution;
    let mut absolute = [0.0; 5];
    let mut relative = [0.0; 5];
    for i in 0..5 {
        absolute[i] = sums[i] * resolution;
        relative[i] = if total > 0.0 {
            absolute[i] / total
        } else {
            0.0
        };
    }
    Ok(BandPowers {
        absolute,
        relative,
        total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f64, fs: f64, n: usize, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|i| amp * (2.0 * std::f64::consts::PI * freq * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn band_ranges_match_paper() {
        assert_eq!(Band::Delta.range(), (0.5, 4.0));
        assert_eq!(Band::Theta.range(), (4.0, 8.0));
        assert_eq!(Band::Alpha.range(), (8.0, 13.0));
        assert_eq!(Band::Beta.range(), (13.0, 30.0));
        assert_eq!(Band::Gamma.range(), (30.0, 45.0));
    }

    #[test]
    fn band_display_names() {
        assert_eq!(Band::Theta.to_string(), "theta");
        assert_eq!(Band::Gamma.to_string(), "gamma");
    }

    #[test]
    fn theta_tone_dominates_theta_band() {
        let fs = 256.0;
        let window = tone(6.0, fs, 1024, 1.0);
        let theta = total_band_power(&window, fs, Band::Theta).unwrap();
        let delta = total_band_power(&window, fs, Band::Delta).unwrap();
        let beta = total_band_power(&window, fs, Band::Beta).unwrap();
        assert!(theta > 10.0 * delta);
        assert!(theta > 10.0 * beta);
    }

    #[test]
    fn relative_power_of_pure_tone_is_near_one() {
        let fs = 256.0;
        let window = tone(6.0, fs, 1024, 3.0);
        let rel = total_relative_band_power(&window, fs, Band::Theta).unwrap();
        assert!(rel > 0.95);
    }

    #[test]
    fn relative_powers_sum_to_at_most_one() {
        let fs = 256.0;
        let mut window = tone(2.0, fs, 1024, 1.0);
        let t2 = tone(10.0, fs, 1024, 0.5);
        for (a, b) in window.iter_mut().zip(t2.iter()) {
            *a += b;
        }
        let bp = all_band_powers(&window, fs).unwrap();
        let sum: f64 = bp.relative.iter().sum();
        assert!(sum <= 1.0 + 1e-9);
        assert!(bp.total > 0.0);
    }

    #[test]
    fn accessors_are_consistent_with_arrays() {
        let fs = 256.0;
        let window = tone(6.0, fs, 512, 1.0);
        let bp = all_band_powers(&window, fs).unwrap();
        assert_eq!(bp.absolute(Band::Theta), bp.absolute[1]);
        assert_eq!(bp.relative(Band::Delta), bp.relative[0]);
    }

    #[test]
    fn empty_window_is_rejected() {
        assert!(total_band_power(&[], 256.0, Band::Theta).is_err());
        assert!(all_band_powers(&[], 256.0).is_err());
    }

    #[test]
    fn zero_signal_has_zero_relative_power() {
        let bp = all_band_powers(&vec![0.0; 512], 256.0).unwrap();
        assert!(bp.relative.iter().all(|&r| r == 0.0));
    }
}
