//! Hjorth parameters (activity, mobility, complexity).
//!
//! Hjorth descriptors are part of the rich feature catalogue used by the
//! real-time random-forest detector; they characterize the variance and the
//! spectral spread of an EEG window using only time-domain differences.

use crate::error::FeatureError;
use seizure_dsp::stats;

/// The three Hjorth descriptors of a window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HjorthParameters {
    /// Activity: variance of the signal.
    pub activity: f64,
    /// Mobility: standard deviation of the derivative over the standard
    /// deviation of the signal — an estimate of the mean frequency.
    pub mobility: f64,
    /// Complexity: mobility of the derivative over the mobility of the signal —
    /// an estimate of the bandwidth.
    pub complexity: f64,
}

/// Computes the Hjorth activity, mobility and complexity of `window`.
///
/// Degenerate inputs (constant signals) yield zero mobility and complexity.
///
/// # Errors
///
/// Returns [`FeatureError::SignalTooShort`] if the window has fewer than three
/// samples.
///
/// # Example
///
/// ```
/// use seizure_features::hjorth::hjorth_parameters;
///
/// # fn main() -> Result<(), seizure_features::FeatureError> {
/// let window: Vec<f64> = (0..256).map(|i| (i as f64 * 0.1).sin()).collect();
/// let h = hjorth_parameters(&window)?;
/// assert!(h.activity > 0.0);
/// assert!(h.mobility > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn hjorth_parameters(window: &[f64]) -> Result<HjorthParameters, FeatureError> {
    if window.len() < 3 {
        return Err(FeatureError::SignalTooShort {
            actual: window.len(),
            required: 3,
        });
    }
    let activity = stats::variance(window)?;
    let first_diff: Vec<f64> = window.windows(2).map(|w| w[1] - w[0]).collect();
    let second_diff: Vec<f64> = first_diff.windows(2).map(|w| w[1] - w[0]).collect();
    let var_d1 = stats::variance(&first_diff)?;
    let var_d2 = stats::variance(&second_diff)?;
    let mobility = if activity > 0.0 {
        (var_d1 / activity).sqrt()
    } else {
        0.0
    };
    let mobility_d1 = if var_d1 > 0.0 {
        (var_d2 / var_d1).sqrt()
    } else {
        0.0
    };
    let complexity = if mobility > 0.0 {
        mobility_d1 / mobility
    } else {
        0.0
    };
    Ok(HjorthParameters {
        activity,
        mobility,
        complexity,
    })
}

/// Allocation-free computation of the same descriptors as
/// [`hjorth_parameters`], streaming the first and second differences instead
/// of materializing them (the reference implementation allocates two
/// derivative vectors per window). The difference means telescope, so their
/// sums are closed-form; results agree with [`hjorth_parameters`] to
/// floating-point rounding (≈ 1e-14 relative).
///
/// # Errors
///
/// Returns [`FeatureError::SignalTooShort`] if the window has fewer than
/// three samples.
pub fn hjorth_parameters_fused(window: &[f64]) -> Result<HjorthParameters, FeatureError> {
    let n = window.len();
    if n < 3 {
        return Err(FeatureError::SignalTooShort {
            actual: n,
            required: 3,
        });
    }
    let len = n as f64;
    let mean = window.iter().sum::<f64>() / len;
    // First differences d1[i] = x[i+1] - x[i] telescope to x[n-1] - x[0];
    // second differences telescope likewise.
    let mean_d1 = (window[n - 1] - window[0]) / (len - 1.0);
    let mean_d2 = ((window[n - 1] - window[n - 2]) - (window[1] - window[0])) / (len - 2.0);
    let mut m2 = 0.0;
    let mut m2_d1 = 0.0;
    let mut m2_d2 = 0.0;
    let mut prev = window[0];
    let mut prev_d1 = f64::NAN;
    for (i, &x) in window.iter().enumerate() {
        let d = x - mean;
        m2 += d * d;
        if i >= 1 {
            let d1 = x - prev;
            let dev = d1 - mean_d1;
            m2_d1 += dev * dev;
            if i >= 2 {
                let d2 = d1 - prev_d1;
                let dev2 = d2 - mean_d2;
                m2_d2 += dev2 * dev2;
            }
            prev_d1 = d1;
        }
        prev = x;
    }
    let activity = m2 / len;
    let var_d1 = m2_d1 / (len - 1.0);
    let var_d2 = m2_d2 / (len - 2.0);
    let mobility = if activity > 0.0 {
        (var_d1 / activity).sqrt()
    } else {
        0.0
    };
    let mobility_d1 = if var_d1 > 0.0 {
        (var_d2 / var_d1).sqrt()
    } else {
        0.0
    };
    let complexity = if mobility > 0.0 {
        mobility_d1 / mobility
    } else {
        0.0
    };
    Ok(HjorthParameters {
        activity,
        mobility,
        complexity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * freq * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn fused_matches_reference_hjorth() {
        let mut state = 5u64;
        let noisy: Vec<f64> = (0..800)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (i as f64 * 0.05).sin() + ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5)
            })
            .collect();
        for window in [tone(4.0, 256.0, 512), noisy, vec![2.0; 32]] {
            let a = hjorth_parameters(&window).unwrap();
            let b = hjorth_parameters_fused(&window).unwrap();
            assert!((a.activity - b.activity).abs() < 1e-10 * (1.0 + a.activity.abs()));
            assert!((a.mobility - b.mobility).abs() < 1e-10 * (1.0 + a.mobility.abs()));
            assert!((a.complexity - b.complexity).abs() < 1e-10 * (1.0 + a.complexity.abs()));
        }
        assert!(hjorth_parameters_fused(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn too_short_window_is_rejected() {
        assert!(hjorth_parameters(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn constant_signal_has_zero_descriptors() {
        let h = hjorth_parameters(&[5.0; 64]).unwrap();
        assert_eq!(h.activity, 0.0);
        assert_eq!(h.mobility, 0.0);
        assert_eq!(h.complexity, 0.0);
    }

    #[test]
    fn activity_scales_with_amplitude_squared() {
        let x = tone(5.0, 256.0, 1024);
        let x2: Vec<f64> = x.iter().map(|v| 2.0 * v).collect();
        let h1 = hjorth_parameters(&x).unwrap();
        let h2 = hjorth_parameters(&x2).unwrap();
        assert!((h2.activity / h1.activity - 4.0).abs() < 1e-9);
    }

    #[test]
    fn mobility_increases_with_frequency() {
        let slow = hjorth_parameters(&tone(2.0, 256.0, 2048)).unwrap();
        let fast = hjorth_parameters(&tone(30.0, 256.0, 2048)).unwrap();
        assert!(fast.mobility > slow.mobility);
    }

    #[test]
    fn mobility_estimates_normalized_frequency_of_sine() {
        // For a pure sine, mobility ~= 2*pi*f/fs for small f/fs.
        let fs = 256.0;
        let f = 4.0;
        let h = hjorth_parameters(&tone(f, fs, 4096)).unwrap();
        let expected = 2.0 * std::f64::consts::PI * f / fs;
        assert!((h.mobility - expected).abs() / expected < 0.05);
    }

    #[test]
    fn complexity_of_pure_sine_is_near_one() {
        let h = hjorth_parameters(&tone(6.0, 256.0, 4096)).unwrap();
        assert!((h.complexity - 1.0).abs() < 0.05);
    }

    #[test]
    fn complexity_of_broadband_exceeds_sine() {
        let mut state = 0.37_f64;
        let noise: Vec<f64> = (0..2048)
            .map(|_| {
                state = (state * 997.13).fract();
                state - 0.5
            })
            .collect();
        let sine = hjorth_parameters(&tone(6.0, 256.0, 2048)).unwrap();
        let broad = hjorth_parameters(&noise).unwrap();
        assert!(broad.complexity > sine.complexity);
    }
}
