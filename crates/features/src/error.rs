//! Error type for feature extraction.

use seizure_dsp::DspError;
use std::error::Error;
use std::fmt;

/// Error returned by feature-extraction routines.
#[derive(Debug, Clone, PartialEq)]
pub enum FeatureError {
    /// The underlying DSP routine failed.
    Dsp(DspError),
    /// The provided signal is too short for the requested window configuration.
    SignalTooShort {
        /// Number of samples provided.
        actual: usize,
        /// Number of samples required.
        required: usize,
    },
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// Name of the offending parameter.
        name: &'static str,
        /// Explanation of the violated constraint.
        reason: String,
    },
    /// The two EEG channels do not have the same number of samples.
    ChannelLengthMismatch {
        /// Length of the first channel (F7T3).
        left: usize,
        /// Length of the second channel (F8T4).
        right: usize,
    },
    /// A feature-matrix operation received inconsistent dimensions.
    DimensionMismatch {
        /// Description of the mismatch.
        detail: String,
    },
}

impl fmt::Display for FeatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeatureError::Dsp(e) => write!(f, "signal processing failed: {e}"),
            FeatureError::SignalTooShort { actual, required } => write!(
                f,
                "signal too short for feature extraction: {actual} samples, need at least {required}"
            ),
            FeatureError::InvalidConfig { name, reason } => {
                write!(f, "invalid configuration `{name}`: {reason}")
            }
            FeatureError::ChannelLengthMismatch { left, right } => write!(
                f,
                "channel length mismatch: F7T3 has {left} samples, F8T4 has {right}"
            ),
            FeatureError::DimensionMismatch { detail } => {
                write!(f, "dimension mismatch: {detail}")
            }
        }
    }
}

impl Error for FeatureError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FeatureError::Dsp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DspError> for FeatureError {
    fn from(e: DspError) -> Self {
        FeatureError::Dsp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = FeatureError::SignalTooShort {
            actual: 10,
            required: 1024,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("1024"));

        let e = FeatureError::ChannelLengthMismatch { left: 5, right: 6 };
        assert!(e.to_string().contains("F7T3"));

        let e = FeatureError::InvalidConfig {
            name: "overlap",
            reason: "must be in [0,1)".to_string(),
        };
        assert!(e.to_string().contains("overlap"));

        let e: FeatureError = DspError::EmptyInput { operation: "fft" }.into();
        assert!(e.to_string().contains("fft"));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FeatureError>();
    }
}
