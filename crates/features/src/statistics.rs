//! Per-window statistical descriptors (mean, variance, skewness, kurtosis,
//! RMS) used by the rich feature set of the real-time detector.

use crate::error::FeatureError;
use seizure_dsp::stats;

/// Statistical summary of one analysis window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindowStatistics {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance.
    pub variance: f64,
    /// Skewness (third standardized moment).
    pub skewness: f64,
    /// Excess kurtosis (fourth standardized moment minus 3).
    pub kurtosis: f64,
    /// Root mean square.
    pub rms: f64,
}

/// Computes the statistical summary of `window`.
///
/// # Errors
///
/// Returns [`FeatureError::SignalTooShort`] if the window is empty.
///
/// # Example
///
/// ```
/// use seizure_features::statistics::window_statistics;
///
/// # fn main() -> Result<(), seizure_features::FeatureError> {
/// let s = window_statistics(&[1.0, 2.0, 3.0, 4.0])?;
/// assert_eq!(s.mean, 2.5);
/// # Ok(())
/// # }
/// ```
pub fn window_statistics(window: &[f64]) -> Result<WindowStatistics, FeatureError> {
    if window.is_empty() {
        return Err(FeatureError::SignalTooShort {
            actual: 0,
            required: 1,
        });
    }
    Ok(WindowStatistics {
        mean: stats::mean(window)?,
        variance: stats::variance(window)?,
        skewness: stats::skewness(window)?,
        kurtosis: stats::kurtosis(window)?,
        rms: stats::rms(window)?,
    })
}

/// Fused computation of the same summary as [`window_statistics`] in three
/// data passes instead of eight (each `seizure_dsp::stats` helper rescans the
/// window and recomputes the mean). Used by the batch feature-extraction
/// engine; results agree with [`window_statistics`] to floating-point
/// rounding (≈ 1e-15 relative).
///
/// # Errors
///
/// Returns [`FeatureError::SignalTooShort`] if the window is empty.
pub fn window_statistics_fused(window: &[f64]) -> Result<WindowStatistics, FeatureError> {
    if window.is_empty() {
        return Err(FeatureError::SignalTooShort {
            actual: 0,
            required: 1,
        });
    }
    let n = window.len() as f64;
    let mean = window.iter().sum::<f64>() / n;
    let mut m2 = 0.0;
    let mut sq = 0.0;
    for &x in window {
        let d = x - mean;
        m2 += d * d;
        sq += x * x;
    }
    let variance = m2 / n;
    let rms = (sq / n).sqrt();
    let sd = variance.sqrt();
    let (skewness, kurtosis) = if sd == 0.0 {
        (0.0, 0.0)
    } else {
        let mut s3 = 0.0;
        let mut s4 = 0.0;
        for &x in window {
            let t = (x - mean) / sd;
            let t2 = t * t;
            s3 += t2 * t;
            s4 += t2 * t2;
        }
        (s3 / n, s4 / n - 3.0)
    };
    Ok(WindowStatistics {
        mean,
        variance,
        skewness,
        kurtosis,
        rms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_rejected() {
        assert!(window_statistics(&[]).is_err());
        assert!(window_statistics_fused(&[]).is_err());
    }

    #[test]
    fn fused_matches_reference_statistics() {
        let mut state = 11u64;
        let window: Vec<f64> = (0..500)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 20.0 - 10.0
            })
            .collect();
        let a = window_statistics(&window).unwrap();
        let b = window_statistics_fused(&window).unwrap();
        assert!((a.mean - b.mean).abs() < 1e-12);
        assert!((a.variance - b.variance).abs() < 1e-12 * (1.0 + a.variance.abs()));
        assert!((a.skewness - b.skewness).abs() < 1e-12);
        assert!((a.kurtosis - b.kurtosis).abs() < 1e-12);
        assert!((a.rms - b.rms).abs() < 1e-12);
        // Degenerate constant window agrees too.
        let constant = vec![3.0; 16];
        assert_eq!(
            window_statistics(&constant).unwrap(),
            window_statistics_fused(&constant).unwrap()
        );
    }

    #[test]
    fn summary_of_simple_data() {
        let s = window_statistics(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.variance - 4.0).abs() < 1e-12);
        assert!(s.rms > s.mean); // RMS exceeds mean for non-constant positive data
    }

    #[test]
    fn symmetric_data_has_zero_skewness() {
        let s = window_statistics(&[-3.0, -1.0, 0.0, 1.0, 3.0]).unwrap();
        assert!(s.skewness.abs() < 1e-12);
    }

    #[test]
    fn constant_window_is_degenerate_but_finite() {
        let s = window_statistics(&[4.0; 16]).unwrap();
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.skewness, 0.0);
        assert_eq!(s.kurtosis, 0.0);
        assert_eq!(s.rms, 4.0);
    }

    #[test]
    fn spiky_data_has_positive_kurtosis() {
        let mut data = vec![0.0; 100];
        data[50] = 10.0;
        let s = window_statistics(&data).unwrap();
        assert!(s.kurtosis > 10.0);
    }
}
