//! Per-window statistical descriptors (mean, variance, skewness, kurtosis,
//! RMS) used by the rich feature set of the real-time detector.

use crate::error::FeatureError;
use seizure_dsp::stats;

/// Statistical summary of one analysis window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindowStatistics {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance.
    pub variance: f64,
    /// Skewness (third standardized moment).
    pub skewness: f64,
    /// Excess kurtosis (fourth standardized moment minus 3).
    pub kurtosis: f64,
    /// Root mean square.
    pub rms: f64,
}

/// Computes the statistical summary of `window`.
///
/// # Errors
///
/// Returns [`FeatureError::SignalTooShort`] if the window is empty.
///
/// # Example
///
/// ```
/// use seizure_features::statistics::window_statistics;
///
/// # fn main() -> Result<(), seizure_features::FeatureError> {
/// let s = window_statistics(&[1.0, 2.0, 3.0, 4.0])?;
/// assert_eq!(s.mean, 2.5);
/// # Ok(())
/// # }
/// ```
pub fn window_statistics(window: &[f64]) -> Result<WindowStatistics, FeatureError> {
    if window.is_empty() {
        return Err(FeatureError::SignalTooShort {
            actual: 0,
            required: 1,
        });
    }
    Ok(WindowStatistics {
        mean: stats::mean(window)?,
        variance: stats::variance(window)?,
        skewness: stats::skewness(window)?,
        kurtosis: stats::kurtosis(window)?,
        rms: stats::rms(window)?,
    })
}

/// Fused computation of the same summary as [`window_statistics`] in three
/// data passes instead of eight (each `seizure_dsp::stats` helper rescans the
/// window and recomputes the mean). Used by the batch feature-extraction
/// engine; results agree with [`window_statistics`] to floating-point
/// rounding (≈ 1e-15 relative).
///
/// # Errors
///
/// Returns [`FeatureError::SignalTooShort`] if the window is empty.
pub fn window_statistics_fused(window: &[f64]) -> Result<WindowStatistics, FeatureError> {
    if window.is_empty() {
        return Err(FeatureError::SignalTooShort {
            actual: 0,
            required: 1,
        });
    }
    let n = window.len() as f64;
    let mean = window.iter().sum::<f64>() / n;
    let mut m2 = 0.0;
    let mut sq = 0.0;
    for &x in window {
        let d = x - mean;
        m2 += d * d;
        sq += x * x;
    }
    let variance = m2 / n;
    let rms = (sq / n).sqrt();
    let sd = variance.sqrt();
    let (skewness, kurtosis) = if sd == 0.0 {
        (0.0, 0.0)
    } else {
        let mut s3 = 0.0;
        let mut s4 = 0.0;
        for &x in window {
            let t = (x - mean) / sd;
            let t2 = t * t;
            s3 += t2 * t;
            s4 += t2 * t2;
        }
        (s3 / n, s4 / n - 3.0)
    };
    Ok(WindowStatistics {
        mean,
        variance,
        skewness,
        kurtosis,
        rms,
    })
}

/// Mergeable running central-moment summary: count, mean and the second to
/// fourth central moment sums (`M2 = Σ(x−μ)²`, `M3`, `M4`).
///
/// This is the per-hop building block of the streaming feature extractor:
/// each 1-s hop of a sliding window is summarized once, and every 4-s window
/// that covers the hop merges the summaries instead of rescanning the
/// samples. Merging uses the pairwise update of Chan et al. (1979), which is
/// numerically stable under the large DC offsets the hostile-scenario
/// generator produces (raw power sums Σx⁴ would cancel catastrophically
/// there). Merged results agree with the batch two-pass
/// [`window_statistics_fused`] to floating-point rounding, not bit-exactly —
/// the documented bounded-error part of the streaming equivalence model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MomentSummary {
    count: f64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
}

impl MomentSummary {
    /// Summarizes a slice in two passes (exact mean, then central sums).
    // lint: hot-path
    pub fn from_slice(data: &[f64]) -> Self {
        if data.is_empty() {
            return Self::default();
        }
        let count = data.len() as f64;
        let mean = data.iter().sum::<f64>() / count;
        let (mut m2, mut m3, mut m4) = (0.0, 0.0, 0.0);
        for &x in data {
            let d = x - mean;
            let d2 = d * d;
            m2 += d2;
            m3 += d2 * d;
            m4 += d2 * d2;
        }
        Self {
            count,
            mean,
            m2,
            m3,
            m4,
        }
    }

    /// Merges two summaries as if their underlying samples were concatenated
    /// (Chan et al. pairwise moment combination).
    // lint: hot-path
    pub fn merge(self, other: Self) -> Self {
        if other.count == 0.0 {
            return self;
        }
        if self.count == 0.0 {
            return other;
        }
        let (na, nb) = (self.count, other.count);
        let n = na + nb;
        let delta = other.mean - self.mean;
        let d2 = delta * delta;
        let mean = self.mean + delta * nb / n;
        let m2 = self.m2 + other.m2 + d2 * na * nb / n;
        let m3 = self.m3
            + other.m3
            + d2 * delta * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n;
        let m4 = self.m4
            + other.m4
            + d2 * d2 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n)
            + 6.0 * d2 * (na * na * other.m2 + nb * nb * self.m2) / (n * n)
            + 4.0 * delta * (na * other.m3 - nb * self.m3) / n;
        Self {
            count: n,
            mean,
            m2,
            m3,
            m4,
        }
    }

    /// Folds one sample into the summary (the singleton case of
    /// [`MomentSummary::merge`], hand-simplified). Used for the hop-boundary
    /// difference terms of the streaming Hjorth operator.
    // lint: hot-path
    pub fn push(&mut self, x: f64) {
        let na = self.count;
        let n = na + 1.0;
        let delta = x - self.mean;
        let d2 = delta * delta;
        self.m4 += d2 * d2 * na * (na * na - na + 1.0) / (n * n * n) + 6.0 * d2 * self.m2 / (n * n)
            - 4.0 * delta * self.m3 / n;
        self.m3 += d2 * delta * na * (na - 1.0) / (n * n) - 3.0 * delta * self.m2 / n;
        self.m2 += d2 * na / n;
        self.mean += delta / n;
        self.count = n;
    }

    /// Number of samples summarized.
    pub fn count(&self) -> f64 {
        self.count
    }

    /// Arithmetic mean of the summarized samples.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sum of squared deviations from the mean (`Σ(x−μ)²`), the numerator
    /// shared by the population variance and the Hjorth activity/mobility
    /// ratios.
    pub fn sum_sq_dev(&self) -> f64 {
        self.m2
    }

    /// Population variance (`M2 / n`; 0 for an empty summary).
    pub fn variance(&self) -> f64 {
        if self.count == 0.0 {
            0.0
        } else {
            self.m2 / self.count
        }
    }

    /// The same `(mean, variance, skewness, kurtosis, rms)` summary as
    /// [`window_statistics_fused`], computed from the merged moments plus the
    /// separately accumulated raw power sum `sum_sq = Σx²` (the RMS is not a
    /// central moment). Degenerate guards match the batch path: a zero
    /// standard deviation yields zero skewness and kurtosis.
    // lint: hot-path
    pub fn statistics(&self, sum_sq: f64) -> WindowStatistics {
        let n = self.count.max(1.0);
        let variance = self.m2 / n;
        let sd = variance.sqrt();
        let (skewness, kurtosis) = if sd == 0.0 {
            (0.0, 0.0)
        } else {
            let s3 = sd * sd * sd;
            (self.m3 / (n * s3), self.m4 / (n * s3 * sd) - 3.0)
        };
        WindowStatistics {
            mean: self.mean,
            variance,
            skewness,
            kurtosis,
            rms: (sum_sq / n).sqrt(),
        }
    }
}

/// Second-order-only sibling of [`MomentSummary`] for the streaming Hjorth
/// difference chains, which consume nothing beyond the variance.
///
/// Carries count, mean and `M2 = Σ(x−μ)²`. The [`SpreadSummary::push`] and
/// [`SpreadSummary::merge`] arithmetic copies [`MomentSummary`]'s mean/M2
/// expressions term for term — chaining either type over the same samples
/// yields bit-identical variances — but skips the third- and fourth-moment
/// updates (six extra divisions per sample) that the Hjorth mobility and
/// complexity ratios never read.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SpreadSummary {
    count: f64,
    mean: f64,
    m2: f64,
}

impl SpreadSummary {
    /// Summarizes the first differences `x[i+1] − x[i]` of `data` in two
    /// passes without materializing them: the difference sum telescopes to
    /// `x[n−1] − x[0]` (exact mean in one subtraction), and the second pass
    /// accumulates squared deviations directly — no per-sample division,
    /// unlike a push chain.
    // lint: hot-path
    pub fn from_first_differences(data: &[f64]) -> Self {
        if data.len() < 2 {
            return Self::default();
        }
        let count = (data.len() - 1) as f64;
        let mean = (data[data.len() - 1] - data[0]) / count;
        let mut m2 = 0.0;
        for pair in data.windows(2) {
            let d = (pair[1] - pair[0]) - mean;
            m2 += d * d;
        }
        Self { count, mean, m2 }
    }

    /// Summarizes the second differences `(x[i+2]−x[i+1]) − (x[i+1]−x[i])`
    /// of `data`; their sum telescopes to `(x[n−1]−x[n−2]) − (x[1]−x[0])`.
    // lint: hot-path
    pub fn from_second_differences(data: &[f64]) -> Self {
        let n = data.len();
        if n < 3 {
            return Self::default();
        }
        let count = (n - 2) as f64;
        let mean = ((data[n - 1] - data[n - 2]) - (data[1] - data[0])) / count;
        let mut m2 = 0.0;
        for triple in data.windows(3) {
            let d = ((triple[2] - triple[1]) - (triple[1] - triple[0])) - mean;
            m2 += d * d;
        }
        Self { count, mean, m2 }
    }

    /// Folds one sample in — [`MomentSummary::push`]'s mean/M2 lines,
    /// verbatim. Used for the hop-boundary difference terms.
    // lint: hot-path
    pub fn push(&mut self, x: f64) {
        let na = self.count;
        let n = na + 1.0;
        let delta = x - self.mean;
        let d2 = delta * delta;
        self.m2 += d2 * na / n;
        self.mean += delta / n;
        self.count = n;
    }

    /// Merges two summaries as if their samples were concatenated —
    /// [`MomentSummary::merge`]'s mean/M2 lines, verbatim.
    // lint: hot-path
    pub fn merge(self, other: Self) -> Self {
        if other.count == 0.0 {
            return self;
        }
        if self.count == 0.0 {
            return other;
        }
        let (na, nb) = (self.count, other.count);
        let n = na + nb;
        let delta = other.mean - self.mean;
        Self {
            count: n,
            mean: self.mean + delta * nb / n,
            m2: self.m2 + other.m2 + delta * delta * na * nb / n,
        }
    }

    /// Number of samples summarized.
    pub fn count(&self) -> f64 {
        self.count
    }

    /// Arithmetic mean of the summarized samples.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (`M2 / n`; 0 for an empty summary).
    pub fn variance(&self) -> f64 {
        if self.count == 0.0 {
            0.0
        } else {
            self.m2 / self.count
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_rejected() {
        assert!(window_statistics(&[]).is_err());
        assert!(window_statistics_fused(&[]).is_err());
    }

    #[test]
    fn fused_matches_reference_statistics() {
        let mut state = 11u64;
        let window: Vec<f64> = (0..500)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 20.0 - 10.0
            })
            .collect();
        let a = window_statistics(&window).unwrap();
        let b = window_statistics_fused(&window).unwrap();
        assert!((a.mean - b.mean).abs() < 1e-12);
        assert!((a.variance - b.variance).abs() < 1e-12 * (1.0 + a.variance.abs()));
        assert!((a.skewness - b.skewness).abs() < 1e-12);
        assert!((a.kurtosis - b.kurtosis).abs() < 1e-12);
        assert!((a.rms - b.rms).abs() < 1e-12);
        // Degenerate constant window agrees too.
        let constant = vec![3.0; 16];
        assert_eq!(
            window_statistics(&constant).unwrap(),
            window_statistics_fused(&constant).unwrap()
        );
    }

    #[test]
    fn summary_of_simple_data() {
        let s = window_statistics(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.variance - 4.0).abs() < 1e-12);
        assert!(s.rms > s.mean); // RMS exceeds mean for non-constant positive data
    }

    #[test]
    fn symmetric_data_has_zero_skewness() {
        let s = window_statistics(&[-3.0, -1.0, 0.0, 1.0, 3.0]).unwrap();
        assert!(s.skewness.abs() < 1e-12);
    }

    #[test]
    fn constant_window_is_degenerate_but_finite() {
        let s = window_statistics(&[4.0; 16]).unwrap();
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.skewness, 0.0);
        assert_eq!(s.kurtosis, 0.0);
        assert_eq!(s.rms, 4.0);
    }

    #[test]
    fn spiky_data_has_positive_kurtosis() {
        let mut data = vec![0.0; 100];
        data[50] = 10.0;
        let s = window_statistics(&data).unwrap();
        assert!(s.kurtosis > 10.0);
    }

    fn lcg_window(n: usize, seed: u64, offset: f64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                offset + ((state >> 11) as f64 / (1u64 << 53) as f64) * 20.0 - 10.0
            })
            .collect()
    }

    #[test]
    fn merged_hop_summaries_match_fused_statistics() {
        // Four 256-sample "hops" merged pairwise must reproduce the batch
        // two-pass statistics of the concatenated 1024-sample window.
        for offset in [0.0, 150.0, -1e4] {
            let window = lcg_window(1024, 0xFEED, offset);
            let sum_sq: f64 = window.iter().map(|x| x * x).sum();
            let merged = window
                .chunks(256)
                .map(MomentSummary::from_slice)
                .fold(MomentSummary::default(), MomentSummary::merge);
            let streamed = merged.statistics(sum_sq);
            let batch = window_statistics_fused(&window).unwrap();
            let tol = |b: f64| 1e-9 * (1.0 + b.abs());
            assert!(
                (streamed.mean - batch.mean).abs() < tol(batch.mean),
                "{offset}"
            );
            assert!(
                (streamed.variance - batch.variance).abs() < tol(batch.variance),
                "{offset}"
            );
            assert!((streamed.skewness - batch.skewness).abs() < tol(batch.skewness));
            assert!((streamed.kurtosis - batch.kurtosis).abs() < tol(batch.kurtosis));
            assert!((streamed.rms - batch.rms).abs() < tol(batch.rms));
        }
    }

    #[test]
    fn push_matches_singleton_merge() {
        let mut a = MomentSummary::from_slice(&[1.0, 4.0, -2.0, 7.5]);
        let b = a.merge(MomentSummary::from_slice(&[3.25]));
        a.push(3.25);
        assert!((a.mean() - b.mean()).abs() < 1e-12);
        assert!((a.sum_sq_dev() - b.sum_sq_dev()).abs() < 1e-12);
        assert_eq!(a.count(), b.count());
    }

    #[test]
    fn constant_hops_stay_exactly_degenerate() {
        // Railed (saturated) windows: every hop is constant, the merged
        // summary must report exactly zero variance so the degenerate
        // skewness/kurtosis guard fires like the batch path's.
        let hop = MomentSummary::from_slice(&[150.0; 256]);
        let merged = hop.merge(hop).merge(hop).merge(hop);
        assert_eq!(merged.variance(), 0.0);
        let s = merged.statistics(1024.0 * 150.0 * 150.0);
        assert_eq!(s.skewness, 0.0);
        assert_eq!(s.kurtosis, 0.0);
    }

    #[test]
    fn spread_summary_push_and_merge_are_bitwise_twins_of_moment_summary() {
        // Same chain of pushes and merges through both types: count, mean
        // and variance must agree exactly, since the reduced arithmetic
        // copies the full summary's mean/M2 expressions.
        let data = lcg_window(301, 0xBEEF, 42.0);
        let (head, tail) = data.split_at(150);
        let mut full_a = MomentSummary::default();
        let mut slim_a = SpreadSummary::default();
        for &x in head {
            full_a.push(x);
            slim_a.push(x);
        }
        let mut full_b = MomentSummary::default();
        let mut slim_b = SpreadSummary::default();
        for &x in tail {
            full_b.push(x);
            slim_b.push(x);
        }
        let full = full_a.merge(full_b);
        let slim = slim_a.merge(slim_b);
        assert_eq!(slim.count(), full.count());
        assert_eq!(slim.mean(), full.mean());
        assert_eq!(slim.variance(), full.variance());
    }

    #[test]
    fn difference_summaries_match_materialized_differences() {
        let data = lcg_window(257, 0xACE, -3.0);
        let d1: Vec<f64> = data.windows(2).map(|p| p[1] - p[0]).collect();
        let d2: Vec<f64> = data
            .windows(3)
            .map(|t| (t[2] - t[1]) - (t[1] - t[0]))
            .collect();
        let s1 = SpreadSummary::from_first_differences(&data);
        let s2 = SpreadSummary::from_second_differences(&data);
        let r1 = MomentSummary::from_slice(&d1);
        let r2 = MomentSummary::from_slice(&d2);
        assert_eq!(s1.count(), r1.count());
        assert_eq!(s2.count(), r2.count());
        // The telescoped mean reassociates the sum, so compare to rounding.
        assert!((s1.mean() - r1.mean()).abs() < 1e-12 * (1.0 + r1.mean().abs()));
        assert!((s1.variance() - r1.variance()).abs() < 1e-12 * (1.0 + r1.variance()));
        assert!((s2.mean() - r2.mean()).abs() < 1e-12 * (1.0 + r2.mean().abs()));
        assert!((s2.variance() - r2.variance()).abs() < 1e-12 * (1.0 + r2.variance()));
        // Degenerate lengths summarize to the empty identity.
        assert_eq!(
            SpreadSummary::from_first_differences(&[1.0]),
            SpreadSummary::default()
        );
        assert_eq!(
            SpreadSummary::from_second_differences(&[1.0, 2.0]),
            SpreadSummary::default()
        );
        assert_eq!(SpreadSummary::default().variance(), 0.0);
    }

    #[test]
    fn empty_summary_merges_as_identity() {
        let s = MomentSummary::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(MomentSummary::default().merge(s), s);
        assert_eq!(s.merge(MomentSummary::default()), s);
        assert_eq!(MomentSummary::from_slice(&[]), MomentSummary::default());
        assert_eq!(MomentSummary::default().variance(), 0.0);
    }
}
