//! Per-window statistical descriptors (mean, variance, skewness, kurtosis,
//! RMS) used by the rich feature set of the real-time detector.

use crate::error::FeatureError;
use seizure_dsp::stats;

/// Statistical summary of one analysis window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindowStatistics {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance.
    pub variance: f64,
    /// Skewness (third standardized moment).
    pub skewness: f64,
    /// Excess kurtosis (fourth standardized moment minus 3).
    pub kurtosis: f64,
    /// Root mean square.
    pub rms: f64,
}

/// Computes the statistical summary of `window`.
///
/// # Errors
///
/// Returns [`FeatureError::SignalTooShort`] if the window is empty.
///
/// # Example
///
/// ```
/// use seizure_features::statistics::window_statistics;
///
/// # fn main() -> Result<(), seizure_features::FeatureError> {
/// let s = window_statistics(&[1.0, 2.0, 3.0, 4.0])?;
/// assert_eq!(s.mean, 2.5);
/// # Ok(())
/// # }
/// ```
pub fn window_statistics(window: &[f64]) -> Result<WindowStatistics, FeatureError> {
    if window.is_empty() {
        return Err(FeatureError::SignalTooShort {
            actual: 0,
            required: 1,
        });
    }
    Ok(WindowStatistics {
        mean: stats::mean(window)?,
        variance: stats::variance(window)?,
        skewness: stats::skewness(window)?,
        kurtosis: stats::kurtosis(window)?,
        rms: stats::rms(window)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_rejected() {
        assert!(window_statistics(&[]).is_err());
    }

    #[test]
    fn summary_of_simple_data() {
        let s = window_statistics(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.variance - 4.0).abs() < 1e-12);
        assert!(s.rms > s.mean); // RMS exceeds mean for non-constant positive data
    }

    #[test]
    fn symmetric_data_has_zero_skewness() {
        let s = window_statistics(&[-3.0, -1.0, 0.0, 1.0, 3.0]).unwrap();
        assert!(s.skewness.abs() < 1e-12);
    }

    #[test]
    fn constant_window_is_degenerate_but_finite() {
        let s = window_statistics(&[4.0; 16]).unwrap();
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.skewness, 0.0);
        assert_eq!(s.kurtosis, 0.0);
        assert_eq!(s.rms, 4.0);
    }

    #[test]
    fn spiky_data_has_positive_kurtosis() {
        let mut data = vec![0.0; 100];
        data[50] = 10.0;
        let s = window_statistics(&data).unwrap();
        assert!(s.kurtosis > 10.0);
    }
}
