//! Per-feature normalization of a feature matrix.
//!
//! Line 1 of the paper's Algorithm 1 normalizes each feature across the whole
//! signal: "the mean value, across the signal, of the corresponding feature is
//! subtracted and the result is divided by the standard deviation of the
//! feature". This module implements that transformation together with a
//! reusable scaler for applying the *same* transformation to new data (needed
//! when the real-time detector is trained on one recording and applied to
//! another).

use crate::error::FeatureError;
use crate::matrix::FeatureMatrix;
use seizure_dsp::stats;

/// A fitted per-feature z-score scaler.
#[derive(Debug, Clone, PartialEq)]
pub struct ZScoreScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl ZScoreScaler {
    /// Fits the scaler to the columns of `matrix`.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::DimensionMismatch`] if the matrix has no windows.
    pub fn fit(matrix: &FeatureMatrix) -> Result<Self, FeatureError> {
        if matrix.is_empty() {
            return Err(FeatureError::DimensionMismatch {
                detail: "cannot fit a scaler on an empty feature matrix".to_string(),
            });
        }
        let mut means = Vec::with_capacity(matrix.num_features());
        let mut stds = Vec::with_capacity(matrix.num_features());
        for c in 0..matrix.num_features() {
            let col = matrix.column(c);
            means.push(stats::mean(&col)?);
            stds.push(stats::std_dev(&col)?);
        }
        Ok(Self { means, stds })
    }

    /// Per-feature means captured at fit time.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-feature standard deviations captured at fit time.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Applies the fitted transformation to `matrix`, returning a new matrix.
    ///
    /// Features whose standard deviation was zero at fit time are only
    /// mean-centred, so the output never contains NaNs.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::DimensionMismatch`] if the feature count differs
    /// from the fitted one.
    pub fn transform(&self, matrix: &FeatureMatrix) -> Result<FeatureMatrix, FeatureError> {
        if matrix.num_features() != self.means.len() {
            return Err(FeatureError::DimensionMismatch {
                detail: format!(
                    "scaler was fitted on {} features but the matrix has {}",
                    self.means.len(),
                    matrix.num_features()
                ),
            });
        }
        let mut out = matrix.clone();
        for r in 0..out.num_windows() {
            for c in 0..out.num_features() {
                let centred = out.get(r, c) - self.means[c];
                *out.get_mut(r, c) = if self.stds[c] > 0.0 {
                    centred / self.stds[c]
                } else {
                    centred
                };
            }
        }
        Ok(out)
    }
}

/// Normalizes each feature column of `matrix` to zero mean and unit standard
/// deviation (Algorithm 1, Line 1). Constant columns are only mean-centred.
///
/// # Errors
///
/// Returns [`FeatureError::DimensionMismatch`] if the matrix has no windows.
///
/// # Example
///
/// ```
/// use seizure_features::{FeatureMatrix, normalize::normalize_features};
///
/// # fn main() -> Result<(), seizure_features::FeatureError> {
/// let m = FeatureMatrix::from_rows(
///     vec!["a".into()],
///     vec![vec![1.0], vec![2.0], vec![3.0]],
/// )?;
/// let z = normalize_features(&m)?;
/// assert!((z.column(0).iter().sum::<f64>()).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn normalize_features(matrix: &FeatureMatrix) -> Result<FeatureMatrix, FeatureError> {
    let scaler = ZScoreScaler::fit(matrix)?;
    scaler.transform(matrix)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FeatureMatrix {
        FeatureMatrix::from_rows(
            vec!["a".into(), "b".into(), "const".into()],
            vec![
                vec![1.0, 10.0, 5.0],
                vec![2.0, 20.0, 5.0],
                vec![3.0, 30.0, 5.0],
                vec![4.0, 40.0, 5.0],
            ],
        )
        .unwrap()
    }

    #[test]
    fn normalized_columns_have_zero_mean_unit_std() {
        let z = normalize_features(&sample()).unwrap();
        for c in 0..2 {
            let col = z.column(c);
            assert!(stats::mean(&col).unwrap().abs() < 1e-12);
            assert!((stats::std_dev(&col).unwrap() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_column_becomes_zero_without_nan() {
        let z = normalize_features(&sample()).unwrap();
        assert!(z.column(2).iter().all(|v| v.abs() < 1e-12 && v.is_finite()));
    }

    #[test]
    fn empty_matrix_rejected() {
        let m = FeatureMatrix::with_names(vec!["a".into()]);
        assert!(normalize_features(&m).is_err());
        assert!(ZScoreScaler::fit(&m).is_err());
    }

    #[test]
    fn scaler_applies_training_statistics_to_new_data() {
        let train = sample();
        let scaler = ZScoreScaler::fit(&train).unwrap();
        assert_eq!(scaler.means()[0], 2.5);
        let test = FeatureMatrix::from_rows(
            vec!["a".into(), "b".into(), "const".into()],
            vec![vec![2.5, 25.0, 5.0]],
        )
        .unwrap();
        let z = scaler.transform(&test).unwrap();
        // The training mean maps exactly to zero.
        assert!(z.row(0).iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn scaler_rejects_feature_count_mismatch() {
        let scaler = ZScoreScaler::fit(&sample()).unwrap();
        let other = FeatureMatrix::from_rows(vec!["x".into()], vec![vec![1.0]]).unwrap();
        assert!(scaler.transform(&other).is_err());
    }

    #[test]
    fn normalization_is_idempotent_up_to_tolerance() {
        let z1 = normalize_features(&sample()).unwrap();
        let z2 = normalize_features(&z1).unwrap();
        for r in 0..z1.num_windows() {
            for c in 0..z1.num_features() {
                assert!((z1.get(r, c) - z2.get(r, c)).abs() < 1e-9);
            }
        }
    }
}
