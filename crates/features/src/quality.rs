//! Cheap per-window signal-quality indicators for artifact rejection.
//!
//! A wearable EEG front end sees railed amplifiers, dropped electrodes,
//! mains hum, baseline wander and electrode pops long before it sees a
//! seizure. This module computes a small set of O(n) indicators per sliding
//! window — no FFT, no wavelet decomposition — that a downstream quality
//! gate can threshold into `Clean / Suspect / Reject` verdicts:
//!
//! | indicator | catches |
//! |---|---|
//! | `line_length` | overall waveform activity (context for the others) |
//! | `railed_frac` | amplifier saturation / clipping (plus non-finite samples) |
//! | `flat_run_frac` | dropouts: longest run of identical samples |
//! | `hum_ratio` | mains interference at the aliased 50/60 Hz family |
//! | `drift_ratio` | baseline wander: sub-1 Hz + DC share of window energy |
//! | `max_jump_sigma` | electrode pops: largest step in robust-sigma units |
//! | `log_std` | per-channel amplitude envelope (feeds gain tracking) |
//!
//! plus one cross-channel feature, the absolute difference of the two
//! channels' `log_std` (a loose electrode makes one channel disagree wildly
//! with the other).
//!
//! All indicators are deterministic and guaranteed finite, including on
//! flatline, railed and NaN/∞-contaminated inputs: non-finite samples are
//! counted as railed and replaced by zero before any arithmetic.
//!
//! Mains bins are *aliased*: at the wearable's low sampling rates the
//! 50/60 Hz family folds below Nyquist (50 Hz → 14 Hz at fs = 64). Folded
//! bins that land below [`MIN_HUM_FREQ`] are skipped because they would
//! collide with the ictal fundamental band (≈ 2.5–12 Hz) — a documented
//! blind spot of the cheap detector, not a bug.

use crate::error::FeatureError;
use crate::extractor::SlidingWindowConfig;
use crate::matrix::FeatureMatrix;
use std::f64::consts::PI;

/// Number of per-channel indicators.
pub const QUALITY_FEATURES_PER_CHANNEL: usize = 7;
/// Total quality features per window (two channels plus one cross-channel).
pub const NUM_QUALITY_FEATURES: usize = 2 * QUALITY_FEATURES_PER_CHANNEL + 1;

/// Per-channel column offset of the line-length indicator.
pub const IDX_LINE_LENGTH: usize = 0;
/// Per-channel column offset of the railed-sample fraction.
pub const IDX_RAILED_FRAC: usize = 1;
/// Per-channel column offset of the longest flat-run fraction.
pub const IDX_FLAT_RUN_FRAC: usize = 2;
/// Per-channel column offset of the aliased mains-hum energy ratio.
pub const IDX_HUM_RATIO: usize = 3;
/// Per-channel column offset of the baseline-drift energy ratio.
pub const IDX_DRIFT_RATIO: usize = 4;
/// Per-channel column offset of the largest sample step in robust sigmas.
pub const IDX_MAX_JUMP_SIGMA: usize = 5;
/// Per-channel column offset of the log standard deviation.
pub const IDX_LOG_STD: usize = 6;
/// Column of the cross-channel log-amplitude disagreement.
pub const IDX_DISAGREEMENT: usize = NUM_QUALITY_FEATURES - 1;

/// Folded mains bins below this frequency are skipped: they would overlap
/// the ictal fundamental band and its first harmonics.
pub const MIN_HUM_FREQ: f64 = 12.0;

/// Mains fundamentals and first harmonics probed (before aliasing).
const MAINS_FAMILY: [f64; 4] = [50.0, 60.0, 100.0, 120.0];

/// Column of `indicator` (an `IDX_*` per-channel offset) for `channel`
/// (0 = F7T3, 1 = F8T4) in the quality feature matrix.
#[must_use]
pub fn channel_column(channel: usize, indicator: usize) -> usize {
    channel * QUALITY_FEATURES_PER_CHANNEL + indicator
}

/// Folds a frequency below Nyquist (classic aliasing map).
fn fold(freq: f64, fs: f64) -> f64 {
    let r = freq % fs;
    if r > fs / 2.0 {
        fs - r
    } else {
        r
    }
}

/// Goertzel recurrence: squared DFT magnitude of `x` at `freq` Hz.
fn goertzel_power(x: &[f64], fs: f64, freq: f64) -> f64 {
    let coeff = 2.0 * (2.0 * PI * freq / fs).cos();
    let (mut s1, mut s2) = (0.0_f64, 0.0_f64);
    for &v in x {
        let s0 = v + coeff * s1 - s2;
        s2 = s1;
        s1 = s0;
    }
    (s1 * s1 + s2 * s2 - coeff * s1 * s2).max(0.0)
}

/// Reusable buffers for one window's worth of quality arithmetic. Acquire
/// one per worker (or per streaming detector) and hand it to
/// [`QualityExtractor::assess_window_into`] so repeated assessments stay
/// allocation-free after warm-up.
#[derive(Debug, Default)]
pub struct QualityScratch {
    cleaned: Vec<f64>,
    diffs: Vec<f64>,
}

/// Computes the per-window quality indicator matrix for a channel pair.
///
/// Construction pre-resolves which aliased mains bins are observable at the
/// given sampling rate; everything else is stateless.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityExtractor {
    fs: f64,
    hum_bins: Vec<f64>,
}

impl QualityExtractor {
    /// Creates the extractor for signals sampled at `fs` Hz.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::InvalidConfig`] if `fs` is not a positive
    /// finite number.
    pub fn new(fs: f64) -> Result<Self, FeatureError> {
        if !(fs.is_finite() && fs > 0.0) {
            return Err(FeatureError::InvalidConfig {
                name: "fs",
                reason: format!("sampling frequency must be positive and finite, got {fs}"),
            });
        }
        let mut hum_bins: Vec<f64> = Vec::new();
        for f in MAINS_FAMILY {
            let alias = fold(f, fs);
            // Keep bins clear of the seizure band and of Nyquist (their ±2 Hz
            // sharpness neighbours must also stay inside (0, fs/2)).
            if alias >= MIN_HUM_FREQ
                && alias + 2.0 < fs / 2.0
                && !hum_bins.iter().any(|&b| (b - alias).abs() < 1e-9)
            {
                hum_bins.push(alias);
            }
        }
        Ok(Self { fs, hum_bins })
    }

    /// Sampling frequency the extractor was built for.
    #[must_use]
    pub fn sampling_frequency(&self) -> f64 {
        self.fs
    }

    /// Aliased mains bins (Hz) actually probed at this sampling rate.
    #[must_use]
    pub fn hum_bins(&self) -> &[f64] {
        &self.hum_bins
    }

    /// Names of the produced quality features, in column order.
    #[must_use]
    pub fn feature_names() -> Vec<String> {
        let per_channel = [
            "line_length",
            "railed_frac",
            "flat_run_frac",
            "hum_ratio",
            "drift_ratio",
            "max_jump_sigma",
            "log_std",
        ];
        let mut names: Vec<String> = Vec::with_capacity(NUM_QUALITY_FEATURES);
        for prefix in ["f7t3", "f8t4"] {
            for name in per_channel {
                names.push(format!("quality_{prefix}_{name}"));
            }
        }
        names.push("quality_cross_channel_disagreement".to_string());
        names
    }

    /// Quality indicators of a single window pair as a fresh vector.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::ChannelLengthMismatch`] on unequal channels
    /// and [`FeatureError::SignalTooShort`] for windows of fewer than four
    /// samples.
    pub fn assess_window(&self, f7t3: &[f64], f8t4: &[f64]) -> Result<Vec<f64>, FeatureError> {
        let mut out = vec![0.0; NUM_QUALITY_FEATURES];
        let mut scratch = QualityScratch::default();
        self.assess_window_into(f7t3, f8t4, &mut out, &mut scratch)?;
        Ok(out)
    }

    /// Fills the quality feature matrix for every sliding window of the
    /// channel pair, reusing `matrix`'s allocation across calls.
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::extractor::FeatureExtractor::extract_matrix`].
    pub fn extract_batch_into(
        &self,
        f7t3: &[f64],
        f8t4: &[f64],
        config: &SlidingWindowConfig,
        matrix: &mut FeatureMatrix,
    ) -> Result<(), FeatureError> {
        if f7t3.len() != f8t4.len() {
            return Err(FeatureError::ChannelLengthMismatch {
                left: f7t3.len(),
                right: f8t4.len(),
            });
        }
        let count = config.num_windows(f7t3.len());
        if count == 0 {
            return Err(FeatureError::SignalTooShort {
                actual: f7t3.len(),
                required: config.window_samples(),
            });
        }
        matrix.ensure_names(Self::feature_names);
        let data = matrix.reset_rows(count);
        let mut scratch = QualityScratch::default();
        for ((row, w1), w2) in data
            .chunks_mut(NUM_QUALITY_FEATURES)
            .zip(config.windows(f7t3))
            .zip(config.windows(f8t4))
        {
            self.assess_window_into(w1, w2, row, &mut scratch)?;
        }
        Ok(())
    }

    /// Assesses one window pair into a caller-provided row of
    /// [`NUM_QUALITY_FEATURES`] slots, reusing `scratch` buffers — the
    /// single-window building block behind
    /// [`QualityExtractor::extract_batch_into`], exposed so streaming
    /// callers can grade windows as they complete without a matrix.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::ChannelLengthMismatch`] if the windows differ
    /// in length and [`FeatureError::SignalTooShort`] below four samples.
    // lint: hot-path
    pub fn assess_window_into(
        &self,
        f7t3: &[f64],
        f8t4: &[f64],
        out: &mut [f64],
        scratch: &mut QualityScratch,
    ) -> Result<(), FeatureError> {
        if f7t3.len() != f8t4.len() {
            return Err(FeatureError::ChannelLengthMismatch {
                left: f7t3.len(),
                right: f8t4.len(),
            });
        }
        debug_assert_eq!(out.len(), NUM_QUALITY_FEATURES);
        self.channel_into(f7t3, &mut out[..QUALITY_FEATURES_PER_CHANNEL], scratch)?;
        self.channel_into(
            f8t4,
            &mut out[QUALITY_FEATURES_PER_CHANNEL..2 * QUALITY_FEATURES_PER_CHANNEL],
            scratch,
        )?;
        let log_a = out[channel_column(0, IDX_LOG_STD)];
        let log_b = out[channel_column(1, IDX_LOG_STD)];
        out[IDX_DISAGREEMENT] = (log_a - log_b).abs();
        Ok(())
    }

    fn channel_into(
        &self,
        raw: &[f64],
        out: &mut [f64],
        scratch: &mut QualityScratch,
    ) -> Result<(), FeatureError> {
        let n = raw.len();
        if n < 4 {
            return Err(FeatureError::SignalTooShort {
                actual: n,
                required: 4,
            });
        }
        let nf = n as f64;

        // Pass 1: finite extrema and non-finite census.
        let mut non_finite = 0usize;
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in raw {
            if v.is_finite() {
                lo = lo.min(v);
                hi = hi.max(v);
            } else {
                non_finite += 1;
            }
        }

        // Railed fraction: samples pinned to either finite rail, plus every
        // non-finite sample (an overflowed ADC reads as railed, not absent).
        let railed = if hi > lo {
            let pinned = raw.iter().filter(|v| **v == lo || **v == hi).count();
            ((pinned + non_finite) as f64 / nf).min(1.0)
        } else {
            (non_finite as f64 / nf).min(1.0)
        };

        // Longest run of repeated samples (non-finite values count as equal
        // to each other: a dead channel full of NaN is one long dropout).
        let mut longest = 1usize;
        let mut run = 1usize;
        for pair in raw.windows(2) {
            let same = pair[0] == pair[1] || (!pair[0].is_finite() && !pair[1].is_finite());
            run = if same { run + 1 } else { 1 };
            longest = longest.max(run);
        }
        let flat_run = longest as f64 / nf;

        // Sanitized copy: all downstream arithmetic sees finite samples.
        scratch.cleaned.clear();
        scratch
            .cleaned
            .extend(raw.iter().map(|v| if v.is_finite() { *v } else { 0.0 }));
        let cleaned = &mut scratch.cleaned;
        let total_energy: f64 = cleaned.iter().map(|v| v * v).sum();
        let mean = cleaned.iter().sum::<f64>() / nf;
        for v in cleaned.iter_mut() {
            *v -= mean;
        }
        let ac_energy: f64 = cleaned.iter().map(|v| v * v).sum();
        let std = (ac_energy / nf).sqrt();
        let log_std = (std + 1e-12).ln();

        // Line length and step statistics over first differences.
        scratch.diffs.clear();
        scratch
            .diffs
            .extend(cleaned.windows(2).map(|p| (p[1] - p[0]).abs()));
        let line_length = scratch.diffs.iter().sum::<f64>() / (nf - 1.0);
        let max_step = scratch.diffs.iter().copied().fold(0.0_f64, f64::max);
        // `total_cmp` instead of `partial_cmp().expect(...)`: the diffs are
        // built from the sanitized copy so they are finite today, but a NaN
        // must never be able to panic the quality front end that exists to
        // absorb hostile inputs.
        scratch.diffs.sort_by(f64::total_cmp);
        let median_step = scratch.diffs[scratch.diffs.len() / 2];
        let max_jump = (max_step / (1.4826 * median_step + 1e-12)).min(1e6);

        // Aliased mains hum: tone-energy fraction at each observable folded
        // bin, weighted by spectral sharpness against ±2 Hz neighbours so
        // broadband (or ictal) energy cannot trip it.
        let tone_norm = 2.0 / (nf * ac_energy + 1e-12);
        let mut hum: f64 = 0.0;
        for &bin in &self.hum_bins {
            let p = goertzel_power(cleaned, self.fs, bin);
            let p_lo = goertzel_power(cleaned, self.fs, bin - 2.0);
            let p_hi = goertzel_power(cleaned, self.fs, bin + 2.0);
            let sharpness = p / (p + p_lo + p_hi + 1e-12);
            // A pure tone scores sharpness ≈ 1, broadband noise ≈ 1/3.
            let weight = ((sharpness - 1.0 / 3.0) / (2.0 / 3.0)).clamp(0.0, 1.0);
            hum = hum.max((p * tone_norm).min(1.0) * weight);
        }

        // Baseline drift: DC offset plus the lowest three DFT bins of the
        // window (k / window_secs for k = 1..3, i.e. < 1 Hz for 4 s windows)
        // as a share of total window energy.
        let mut drift_energy = nf * mean * mean;
        for k in 1..=3 {
            let freq = k as f64 * self.fs / nf;
            if freq < self.fs / 2.0 {
                drift_energy += goertzel_power(cleaned, self.fs, freq) * 2.0 / nf;
            }
        }
        let drift = (drift_energy / (total_energy + 1e-12)).clamp(0.0, 1.0);

        out[IDX_LINE_LENGTH] = line_length;
        out[IDX_RAILED_FRAC] = railed;
        out[IDX_FLAT_RUN_FRAC] = flat_run;
        out[IDX_HUM_RATIO] = hum;
        out[IDX_DRIFT_RATIO] = drift;
        out[IDX_MAX_JUMP_SIGMA] = max_jump;
        out[IDX_LOG_STD] = log_std;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(fs: f64, freq: f64, amp: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| amp * (2.0 * PI * freq * i as f64 / fs).sin())
            .collect()
    }

    fn noise(seed: u64, n: usize) -> Vec<f64> {
        // Tiny deterministic LCG; good enough for indicator-level tests.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    #[test]
    fn names_match_layout() {
        let names = QualityExtractor::feature_names();
        assert_eq!(names.len(), NUM_QUALITY_FEATURES);
        assert_eq!(
            names[channel_column(0, IDX_HUM_RATIO)],
            "quality_f7t3_hum_ratio"
        );
        assert_eq!(
            names[channel_column(1, IDX_LOG_STD)],
            "quality_f8t4_log_std"
        );
        assert_eq!(
            names[IDX_DISAGREEMENT],
            "quality_cross_channel_disagreement"
        );
    }

    #[test]
    fn aliased_bins_skip_the_seizure_band() {
        // At 64 Hz: 50 → 14 and 100 → 28 are kept; 60 → 4 and 120 → 8 fold
        // into the ictal band and are skipped.
        let q = QualityExtractor::new(64.0).unwrap();
        assert_eq!(q.hum_bins(), &[14.0, 28.0]);
        // At 256 Hz nothing folds and everything is observable.
        let q = QualityExtractor::new(256.0).unwrap();
        assert_eq!(q.hum_bins(), &[50.0, 60.0, 100.0, 120.0]);
    }

    #[test]
    fn indicators_are_deterministic() {
        let q = QualityExtractor::new(64.0).unwrap();
        let a = noise(7, 256);
        let b = noise(9, 256);
        assert_eq!(
            q.assess_window(&a, &b).unwrap(),
            q.assess_window(&a, &b).unwrap()
        );
    }

    #[test]
    fn nan_laced_window_yields_finite_deterministic_indicators() {
        // Regression for the NaN-unsafe median-step sort: indicators must
        // come out finite and reproducible even when the raw window carries
        // NaN/±inf samples (they are sanitized to 0 before any arithmetic).
        let q = QualityExtractor::new(64.0).unwrap();
        let mut a = noise(11, 256);
        a[3] = f64::NAN;
        a[100] = f64::INFINITY;
        a[200] = f64::NEG_INFINITY;
        let b = noise(13, 256);
        let first = q.assess_window(&a, &b).unwrap();
        assert!(first.iter().all(|v| v.is_finite()), "{first:?}");
        assert_eq!(first, q.assess_window(&a, &b).unwrap());
    }

    #[test]
    fn hum_is_detected_and_clean_noise_is_not() {
        let q = QualityExtractor::new(64.0).unwrap();
        let n = 256;
        let clean = noise(3, n);
        let mut hummy = clean.clone();
        for (i, v) in hummy.iter_mut().enumerate() {
            // 50 Hz sampled at 64 Hz lands on the 14 Hz alias.
            *v += 2.0 * (2.0 * PI * 50.0 * i as f64 / 64.0).sin();
        }
        let base = q.assess_window(&clean, &clean).unwrap();
        let hum = q.assess_window(&hummy, &hummy).unwrap();
        assert!(base[IDX_HUM_RATIO] < 0.1, "clean {}", base[IDX_HUM_RATIO]);
        assert!(hum[IDX_HUM_RATIO] > 0.5, "hum {}", hum[IDX_HUM_RATIO]);
    }

    #[test]
    fn drift_is_detected() {
        let q = QualityExtractor::new(64.0).unwrap();
        let n = 256;
        let mut wander = noise(5, n);
        let slow = sine(64.0, 0.4, 6.0, n);
        for (v, s) in wander.iter_mut().zip(&slow) {
            *v += s;
        }
        let clean = q.assess_window(&noise(5, n), &noise(6, n)).unwrap();
        let drifted = q.assess_window(&wander, &wander).unwrap();
        assert!(drifted[IDX_DRIFT_RATIO] > 0.8);
        assert!(clean[IDX_DRIFT_RATIO] < drifted[IDX_DRIFT_RATIO]);
    }

    #[test]
    fn hostile_inputs_stay_finite_and_deterministic() {
        let q = QualityExtractor::new(64.0).unwrap();
        let n = 256;
        let flat = vec![3.25; n];
        let mut railed = noise(1, n);
        for v in railed.iter_mut() {
            *v = v.clamp(-0.1, 0.1);
        }
        let mut nans = noise(2, n);
        for v in nans.iter_mut().step_by(5) {
            *v = f64::NAN;
        }
        nans[17] = f64::INFINITY;
        nans[42] = f64::NEG_INFINITY;
        let all_nan = vec![f64::NAN; n];
        let zeros = vec![0.0; n];

        for (a, b) in [
            (&flat, &zeros),
            (&railed, &flat),
            (&nans, &railed),
            (&all_nan, &all_nan),
        ] {
            let row = q.assess_window(a, b).unwrap();
            assert_eq!(row.len(), NUM_QUALITY_FEATURES);
            assert!(row.iter().all(|v| v.is_finite()), "{row:?}");
            assert_eq!(row, q.assess_window(a, b).unwrap());
        }

        let flat_row = q.assess_window(&flat, &flat).unwrap();
        assert!(flat_row[IDX_FLAT_RUN_FRAC] > 0.99);
        let rail_row = q.assess_window(&railed, &railed).unwrap();
        assert!(
            rail_row[IDX_RAILED_FRAC] > 0.3,
            "{}",
            rail_row[IDX_RAILED_FRAC]
        );
        let nan_row = q.assess_window(&all_nan, &all_nan).unwrap();
        assert!(nan_row[IDX_RAILED_FRAC] > 0.99);
        assert!(nan_row[IDX_FLAT_RUN_FRAC] > 0.99);
    }

    #[test]
    fn electrode_pop_spikes_the_jump_indicator() {
        let q = QualityExtractor::new(64.0).unwrap();
        let mut popped = noise(11, 256);
        let rms = (popped.iter().map(|v| v * v).sum::<f64>() / 256.0).sqrt();
        for v in popped.iter_mut().skip(100) {
            *v += 12.0 * rms;
        }
        let clean = q.assess_window(&noise(11, 256), &noise(12, 256)).unwrap();
        let pop = q.assess_window(&popped, &popped).unwrap();
        assert!(pop[IDX_MAX_JUMP_SIGMA] > 3.0 * clean[IDX_MAX_JUMP_SIGMA]);
    }

    #[test]
    fn disagreement_tracks_amplitude_mismatch() {
        let q = QualityExtractor::new(64.0).unwrap();
        let a = noise(21, 256);
        let big: Vec<f64> = a.iter().map(|v| v * 40.0).collect();
        let same = q.assess_window(&a, &a).unwrap();
        let differ = q.assess_window(&a, &big).unwrap();
        assert!(same[IDX_DISAGREEMENT] < 1e-9);
        assert!((differ[IDX_DISAGREEMENT] - 40.0_f64.ln()).abs() < 1e-6);
    }

    #[test]
    fn batch_fill_matches_single_window_and_reuses_the_matrix() {
        let q = QualityExtractor::new(64.0).unwrap();
        let config = SlidingWindowConfig::new(64.0, 4.0, 0.75).unwrap();
        let a = noise(31, 64 * 20);
        let b = noise(32, 64 * 20);
        let mut matrix = FeatureMatrix::with_names(QualityExtractor::feature_names());
        q.extract_batch_into(&a, &b, &config, &mut matrix).unwrap();
        assert_eq!(matrix.num_features(), NUM_QUALITY_FEATURES);
        assert_eq!(matrix.num_windows(), config.num_windows(a.len()));
        let w = config.window_samples();
        let step = config.step_samples();
        for i in [0usize, 3, matrix.num_windows() - 1] {
            let s = i * step;
            let row = q.assess_window(&a[s..s + w], &b[s..s + w]).unwrap();
            assert_eq!(matrix.row(i), row.as_slice());
        }
        // Refill with a shorter signal: the matrix shrinks accordingly.
        q.extract_batch_into(&a[..64 * 8], &b[..64 * 8], &config, &mut matrix)
            .unwrap();
        assert_eq!(matrix.num_windows(), config.num_windows(64 * 8));
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(QualityExtractor::new(0.0).is_err());
        assert!(QualityExtractor::new(f64::NAN).is_err());
        let q = QualityExtractor::new(64.0).unwrap();
        assert!(q.assess_window(&[1.0; 8], &[1.0; 9]).is_err());
        assert!(q.assess_window(&[1.0; 2], &[1.0; 2]).is_err());
    }
}
