//! Feature selection by backward elimination.
//!
//! The paper sorts the candidate features "in order of relevance" with backward
//! elimination (Devijver & Kittler, 1982) and keeps the ten most relevant ones.
//! This module implements the generic backward-elimination wrapper together
//! with a simple class-separability criterion that does not require training a
//! classifier, plus per-feature Fisher scores used for reporting.

use crate::error::FeatureError;
use crate::matrix::FeatureMatrix;
use seizure_dsp::stats;

/// A criterion that scores a subset of feature columns for a binary labeling
/// (seizure vs. non-seizure windows); larger is better.
pub trait SubsetScorer {
    /// Scores the feature subset `subset` (column indices into `matrix`).
    fn score(&self, matrix: &FeatureMatrix, subset: &[usize], labels: &[bool]) -> f64;
}

/// Separation between the class centroids in the (z-scored) subset space,
/// normalized by the pooled within-class spread — a multivariate
/// Fisher-discriminant-style criterion that is cheap enough to evaluate inside
/// the backward-elimination loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CentroidSeparation;

impl SubsetScorer for CentroidSeparation {
    fn score(&self, matrix: &FeatureMatrix, subset: &[usize], labels: &[bool]) -> f64 {
        if subset.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for &col in subset {
            total += fisher_score_column(&matrix.column(col), labels);
        }
        total / subset.len() as f64
    }
}

/// Fisher score of one feature column for a binary labeling:
/// `(mean_1 - mean_0)^2 / (var_1 + var_0)`. Returns `0` for degenerate cases
/// (one class empty or both variances zero with equal means).
pub fn fisher_score_column(column: &[f64], labels: &[bool]) -> f64 {
    let positives: Vec<f64> = column
        .iter()
        .zip(labels.iter())
        .filter_map(|(x, &l)| l.then_some(*x))
        .collect();
    let negatives: Vec<f64> = column
        .iter()
        .zip(labels.iter())
        .filter_map(|(x, &l)| (!l).then_some(*x))
        .collect();
    if positives.is_empty() || negatives.is_empty() {
        return 0.0;
    }
    let m1 = stats::mean(&positives).unwrap_or(0.0);
    let m0 = stats::mean(&negatives).unwrap_or(0.0);
    let v1 = stats::variance(&positives).unwrap_or(0.0);
    let v0 = stats::variance(&negatives).unwrap_or(0.0);
    let denom = v1 + v0;
    let num = (m1 - m0) * (m1 - m0);
    if denom <= 0.0 {
        if num > 0.0 {
            return f64::INFINITY;
        }
        return 0.0;
    }
    num / denom
}

/// Per-feature Fisher scores for every column of `matrix`.
///
/// # Errors
///
/// Returns [`FeatureError::DimensionMismatch`] if `labels` does not have one
/// entry per window.
pub fn fisher_scores(matrix: &FeatureMatrix, labels: &[bool]) -> Result<Vec<f64>, FeatureError> {
    validate_labels(matrix, labels)?;
    Ok((0..matrix.num_features())
        .map(|c| fisher_score_column(&matrix.column(c), labels))
        .collect())
}

/// Result of a backward-elimination run.
#[derive(Debug, Clone, PartialEq)]
pub struct EliminationResult {
    /// Feature indices sorted from most to least relevant.
    pub ranking: Vec<usize>,
    /// Score of the surviving subset after each elimination step; entry `i`
    /// corresponds to a subset of `num_features - i` features (entry 0 is the
    /// full set).
    pub scores: Vec<f64>,
}

impl EliminationResult {
    /// The `k` most relevant feature indices.
    pub fn top_k(&self, k: usize) -> &[usize] {
        &self.ranking[..k.min(self.ranking.len())]
    }
}

/// Ranks all features by relevance with backward elimination.
///
/// Starting from the full feature set, the feature whose removal maximizes the
/// criterion on the remaining subset is repeatedly eliminated; the elimination
/// order, reversed, gives the relevance ranking (the last surviving feature is
/// the most relevant).
///
/// # Errors
///
/// Returns [`FeatureError::DimensionMismatch`] if `labels` does not have one
/// entry per window or the matrix has no features.
///
/// # Example
///
/// ```
/// use seizure_features::FeatureMatrix;
/// use seizure_features::selection::{backward_elimination, CentroidSeparation};
///
/// # fn main() -> Result<(), seizure_features::FeatureError> {
/// // Feature 0 separates the classes, feature 1 is pure noise.
/// let matrix = FeatureMatrix::from_rows(
///     vec!["informative".into(), "noise".into()],
///     vec![
///         vec![0.0, 0.3], vec![0.1, -0.2], vec![0.05, 0.9],
///         vec![5.0, 0.1], vec![5.2, -0.7], vec![4.9, 0.4],
///     ],
/// )?;
/// let labels = vec![false, false, false, true, true, true];
/// let result = backward_elimination(&matrix, &labels, &CentroidSeparation)?;
/// assert_eq!(result.ranking[0], 0);
/// # Ok(())
/// # }
/// ```
pub fn backward_elimination<S: SubsetScorer>(
    matrix: &FeatureMatrix,
    labels: &[bool],
    scorer: &S,
) -> Result<EliminationResult, FeatureError> {
    validate_labels(matrix, labels)?;
    if matrix.num_features() == 0 {
        return Err(FeatureError::DimensionMismatch {
            detail: "cannot run backward elimination without features".to_string(),
        });
    }
    let mut remaining: Vec<usize> = (0..matrix.num_features()).collect();
    let mut eliminated: Vec<usize> = Vec::with_capacity(matrix.num_features());
    let mut scores = vec![total_score(scorer.score(matrix, &remaining, labels))];

    while remaining.len() > 1 {
        // Find the feature whose removal leaves the best-scoring subset.
        let mut best_idx = 0;
        let mut best_score = f64::NEG_INFINITY;
        for (pos, _) in remaining.iter().enumerate() {
            let candidate: Vec<usize> = remaining
                .iter()
                .enumerate()
                .filter_map(|(p, &f)| (p != pos).then_some(f))
                .collect();
            let s = total_score(scorer.score(matrix, &candidate, labels));
            if s > best_score {
                best_score = s;
                best_idx = pos;
            }
        }
        eliminated.push(remaining.remove(best_idx));
        scores.push(best_score);
    }
    eliminated.push(remaining[0]);
    eliminated.reverse();
    Ok(EliminationResult {
        ranking: eliminated,
        scores,
    })
}

/// Convenience wrapper: runs [`backward_elimination`] with the
/// [`CentroidSeparation`] criterion and returns the projection of `matrix`
/// onto its `k` most relevant features.
///
/// # Errors
///
/// Propagates the errors of [`backward_elimination`] and of
/// [`FeatureMatrix::select_columns`].
pub fn select_top_k(
    matrix: &FeatureMatrix,
    labels: &[bool],
    k: usize,
) -> Result<(FeatureMatrix, EliminationResult), FeatureError> {
    let result = backward_elimination(matrix, labels, &CentroidSeparation)?;
    let projected = matrix.select_columns(result.top_k(k))?;
    Ok((projected, result))
}

/// Maps a criterion score into the total order the elimination loop ranks
/// by: a NaN score (e.g. a corrupted feature column propagating NaN through
/// the criterion) counts as the worst possible subset, so the offending
/// feature is eliminated first instead of scrambling the ranking.
fn total_score(s: f64) -> f64 {
    if s.is_nan() {
        f64::NEG_INFINITY
    } else {
        s
    }
}

fn validate_labels(matrix: &FeatureMatrix, labels: &[bool]) -> Result<(), FeatureError> {
    if labels.len() != matrix.num_windows() {
        return Err(FeatureError::DimensionMismatch {
            detail: format!(
                "expected one label per window ({} windows, {} labels)",
                matrix.num_windows(),
                labels.len()
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three features: #0 strongly separates classes, #1 weakly, #2 is noise.
    fn labeled_matrix() -> (FeatureMatrix, Vec<bool>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let noise = ((i * 37 + 11) % 17) as f64 / 17.0 - 0.5;
            if i < 20 {
                rows.push(vec![0.0 + noise * 0.1, 1.0 + noise, noise]);
                labels.push(false);
            } else {
                rows.push(vec![10.0 + noise * 0.1, 1.8 + noise, noise]);
                labels.push(true);
            }
        }
        (
            FeatureMatrix::from_rows(vec!["strong".into(), "weak".into(), "noise".into()], rows)
                .unwrap(),
            labels,
        )
    }

    #[test]
    fn fisher_score_orders_by_separability() {
        let (m, labels) = labeled_matrix();
        let scores = fisher_scores(&m, &labels).unwrap();
        assert!(scores[0] > scores[1]);
        assert!(scores[1] > scores[2]);
    }

    #[test]
    fn fisher_score_degenerate_cases() {
        assert_eq!(fisher_score_column(&[1.0, 2.0], &[true, true]), 0.0);
        assert_eq!(fisher_score_column(&[1.0, 1.0], &[true, false]), 0.0);
        assert_eq!(
            fisher_score_column(&[1.0, 2.0], &[false, true]),
            f64::INFINITY
        );
    }

    #[test]
    fn backward_elimination_ranks_strong_feature_first() {
        let (m, labels) = labeled_matrix();
        let result = backward_elimination(&m, &labels, &CentroidSeparation).unwrap();
        assert_eq!(result.ranking.len(), 3);
        assert_eq!(result.ranking[0], 0);
        assert_eq!(result.ranking[2], 2);
        assert_eq!(result.scores.len(), 3);
    }

    #[test]
    fn top_k_projection() {
        let (m, labels) = labeled_matrix();
        let (projected, result) = select_top_k(&m, &labels, 2).unwrap();
        assert_eq!(projected.num_features(), 2);
        assert_eq!(projected.feature_names()[0], "strong");
        assert_eq!(result.top_k(10).len(), 3);
    }

    #[test]
    fn nan_feature_column_is_ranked_last_without_panicking() {
        // A corrupted (NaN) column makes every subset containing it score
        // NaN; the ranking must shed it first instead of letting NaN
        // comparisons scramble the elimination order.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            let x = if i < 15 { 0.0 } else { 10.0 };
            rows.push(vec![x, f64::NAN]);
            labels.push(i >= 15);
        }
        let m = FeatureMatrix::from_rows(vec!["clean".into(), "nan".into()], rows).unwrap();
        let result = backward_elimination(&m, &labels, &CentroidSeparation).unwrap();
        assert_eq!(result.ranking, vec![0, 1]);
    }

    #[test]
    fn label_length_mismatch_rejected() {
        let (m, _) = labeled_matrix();
        assert!(fisher_scores(&m, &[true, false]).is_err());
        assert!(backward_elimination(&m, &[true], &CentroidSeparation).is_err());
    }

    #[test]
    fn empty_feature_matrix_rejected() {
        let m = FeatureMatrix::with_names(vec![]);
        assert!(backward_elimination(&m, &[], &CentroidSeparation).is_err());
    }

    #[test]
    fn centroid_separation_empty_subset_scores_zero() {
        let (m, labels) = labeled_matrix();
        assert_eq!(CentroidSeparation.score(&m, &[], &labels), 0.0);
    }

    #[test]
    fn single_feature_matrix_ranks_trivially() {
        let m = FeatureMatrix::from_rows(
            vec!["only".into()],
            vec![vec![0.0], vec![1.0], vec![5.0], vec![6.0]],
        )
        .unwrap();
        let labels = vec![false, false, true, true];
        let result = backward_elimination(&m, &labels, &CentroidSeparation).unwrap();
        assert_eq!(result.ranking, vec![0]);
    }
}
