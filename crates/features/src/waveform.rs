//! Time-domain waveform features: line length, nonlinear (Teager) energy,
//! zero crossings and peak-to-peak amplitude.
//!
//! These cheap descriptors are prominent in embedded seizure detectors because
//! they track the amplitude/frequency increase of ictal EEG at negligible
//! computational cost; they belong to the rich feature catalogue of the
//! real-time detector.

use crate::error::FeatureError;

/// Line length: the sum of absolute first differences of the window.
///
/// # Errors
///
/// Returns [`FeatureError::SignalTooShort`] if the window has fewer than two
/// samples.
///
/// # Example
///
/// ```
/// use seizure_features::waveform::line_length;
///
/// # fn main() -> Result<(), seizure_features::FeatureError> {
/// assert_eq!(line_length(&[0.0, 1.0, -1.0])?, 3.0);
/// # Ok(())
/// # }
/// ```
pub fn line_length(window: &[f64]) -> Result<f64, FeatureError> {
    if window.len() < 2 {
        return Err(FeatureError::SignalTooShort {
            actual: window.len(),
            required: 2,
        });
    }
    Ok(window.windows(2).map(|w| (w[1] - w[0]).abs()).sum())
}

/// Mean Teager–Kaiser nonlinear energy: `mean(x[n]^2 - x[n-1] * x[n+1])`.
///
/// # Errors
///
/// Returns [`FeatureError::SignalTooShort`] if the window has fewer than three
/// samples.
pub fn nonlinear_energy(window: &[f64]) -> Result<f64, FeatureError> {
    if window.len() < 3 {
        return Err(FeatureError::SignalTooShort {
            actual: window.len(),
            required: 3,
        });
    }
    let sum: f64 = window.windows(3).map(|w| w[1] * w[1] - w[0] * w[2]).sum();
    Ok(sum / (window.len() - 2) as f64)
}

/// Number of zero crossings in the window.
///
/// # Errors
///
/// Returns [`FeatureError::SignalTooShort`] if the window has fewer than two
/// samples.
pub fn zero_crossings(window: &[f64]) -> Result<usize, FeatureError> {
    if window.len() < 2 {
        return Err(FeatureError::SignalTooShort {
            actual: window.len(),
            required: 2,
        });
    }
    Ok(window
        .windows(2)
        .filter(|w| (w[0] >= 0.0) != (w[1] >= 0.0))
        .count())
}

/// Peak-to-peak amplitude (max minus min) of the window.
///
/// # Errors
///
/// Returns [`FeatureError::SignalTooShort`] if the window is empty.
pub fn peak_to_peak(window: &[f64]) -> Result<f64, FeatureError> {
    if window.is_empty() {
        return Err(FeatureError::SignalTooShort {
            actual: 0,
            required: 1,
        });
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in window {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    Ok(hi - lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f64, fs: f64, n: usize, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|i| amp * (2.0 * std::f64::consts::PI * freq * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn line_length_known_value() {
        assert_eq!(line_length(&[0.0, 2.0, -1.0, -1.0]).unwrap(), 5.0);
        assert!(line_length(&[1.0]).is_err());
    }

    #[test]
    fn line_length_grows_with_amplitude_and_frequency() {
        let base = line_length(&tone(5.0, 256.0, 1024, 1.0)).unwrap();
        let louder = line_length(&tone(5.0, 256.0, 1024, 3.0)).unwrap();
        let faster = line_length(&tone(20.0, 256.0, 1024, 1.0)).unwrap();
        assert!(louder > 2.5 * base);
        assert!(faster > 2.5 * base);
    }

    #[test]
    fn nonlinear_energy_of_constant_is_zero() {
        assert!(nonlinear_energy(&[2.0; 32]).unwrap().abs() < 1e-12);
        assert!(nonlinear_energy(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn nonlinear_energy_tracks_amplitude_times_frequency() {
        // Teager energy of A*sin(w n) is approximately A^2 sin^2(w).
        let fs = 256.0;
        let e1 = nonlinear_energy(&tone(4.0, fs, 4096, 1.0)).unwrap();
        let e2 = nonlinear_energy(&tone(8.0, fs, 4096, 1.0)).unwrap();
        let e3 = nonlinear_energy(&tone(4.0, fs, 4096, 2.0)).unwrap();
        assert!(e2 > 3.0 * e1); // frequency doubled -> ~4x
        assert!((e3 / e1 - 4.0).abs() < 0.2); // amplitude doubled -> 4x
    }

    #[test]
    fn zero_crossings_of_sine() {
        // A 4 Hz sine over 4 s crosses zero about 2 * 4 * 4 = 32 times.
        let zc = zero_crossings(&tone(4.0, 256.0, 1024, 1.0)).unwrap();
        assert!((31..=33).contains(&zc), "zc = {zc}");
        assert!(zero_crossings(&[1.0]).is_err());
    }

    #[test]
    fn zero_crossings_of_positive_signal_is_zero() {
        assert_eq!(zero_crossings(&[1.0, 2.0, 0.5, 3.0]).unwrap(), 0);
    }

    #[test]
    fn peak_to_peak_known_value() {
        assert_eq!(peak_to_peak(&[-1.0, 4.0, 2.0]).unwrap(), 5.0);
        assert_eq!(peak_to_peak(&[2.0; 8]).unwrap(), 0.0);
        assert!(peak_to_peak(&[]).is_err());
    }
}
