//! Feature matrix: the `X[L][F]` array consumed by Algorithm 1 and by the
//! machine-learning substrate.

use crate::error::FeatureError;

/// A dense row-major matrix of `L` windows × `F` features with named columns.
///
/// This is the `X[L][F]` input of the paper's Algorithm 1: each row holds the
/// feature vector extracted from one sliding window.
///
/// # Example
///
/// ```
/// use seizure_features::FeatureMatrix;
///
/// # fn main() -> Result<(), seizure_features::FeatureError> {
/// let mut m = FeatureMatrix::with_names(vec!["a".into(), "b".into()]);
/// m.push_row(vec![1.0, 2.0])?;
/// m.push_row(vec![3.0, 4.0])?;
/// assert_eq!(m.num_windows(), 2);
/// assert_eq!(m.row(1), &[3.0, 4.0]);
/// assert_eq!(m.column(0), vec![1.0, 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FeatureMatrix {
    names: Vec<String>,
    data: Vec<f64>,
    rows: usize,
}

impl FeatureMatrix {
    /// Creates an empty matrix with the given feature (column) names.
    pub fn with_names(names: Vec<String>) -> Self {
        Self {
            names,
            data: Vec::new(),
            rows: 0,
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::DimensionMismatch`] if any row's length differs
    /// from the number of feature names.
    pub fn from_rows(names: Vec<String>, rows: Vec<Vec<f64>>) -> Result<Self, FeatureError> {
        let mut m = Self::with_names(names);
        for row in rows {
            m.push_row(row)?;
        }
        Ok(m)
    }

    /// Creates a matrix from a single flat row-major buffer, the layout the
    /// batch extraction path fills in parallel.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::DimensionMismatch`] if there are no feature
    /// names or `data.len()` is not a multiple of the feature count.
    pub fn from_flat(names: Vec<String>, data: Vec<f64>) -> Result<Self, FeatureError> {
        if names.is_empty() {
            return Err(FeatureError::DimensionMismatch {
                detail: "a feature matrix needs at least one named column".to_string(),
            });
        }
        if !data.len().is_multiple_of(names.len()) {
            return Err(FeatureError::DimensionMismatch {
                detail: format!(
                    "flat buffer of {} values is not a multiple of {} features",
                    data.len(),
                    names.len()
                ),
            });
        }
        let rows = data.len() / names.len();
        Ok(Self { names, data, rows })
    }

    /// The underlying flat row-major buffer (`num_windows() * num_features()`
    /// values). This is the zero-copy input of the flat-forest batch
    /// prediction path.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix and returns its flat row-major buffer, for
    /// callers that want to transform the features in place (e.g. batch
    /// standardization) without copying.
    pub fn into_data(self) -> Vec<f64> {
        self.data
    }

    /// Mutable access to the flat row-major buffer, for in-place batch
    /// transforms (e.g. standardization) that keep the matrix alive for
    /// reuse.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Clears the matrix and prepares `rows` zeroed windows in place,
    /// reusing the existing allocation; returns the mutable flat buffer.
    /// This is the multi-record reuse entry of the batch extraction path.
    pub(crate) fn reset_rows(&mut self, rows: usize) -> &mut [f64] {
        let len = rows * self.names.len();
        self.rows = rows;
        self.data.clear();
        self.data.resize(len, 0.0);
        &mut self.data
    }

    /// Installs the column names produced by `names` unless the matrix
    /// already carries exactly those names, clearing stale rows on a change.
    /// Building the names to compare is trivial next to extracting even one
    /// record, and comparing the full set keeps a workspace safe to share
    /// between extractors of equal width.
    pub(crate) fn ensure_names(&mut self, names: impl FnOnce() -> Vec<String>) {
        let names = names();
        if self.names != names {
            self.names = names;
            self.data.clear();
            self.rows = 0;
        }
    }

    /// Appends one window's feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::DimensionMismatch`] if the row length differs
    /// from the number of feature names.
    pub fn push_row(&mut self, row: Vec<f64>) -> Result<(), FeatureError> {
        if row.len() != self.names.len() {
            return Err(FeatureError::DimensionMismatch {
                detail: format!(
                    "row has {} values but the matrix has {} features",
                    row.len(),
                    self.names.len()
                ),
            });
        }
        self.data.extend_from_slice(&row);
        self.rows += 1;
        Ok(())
    }

    /// Number of windows (rows), the `L` of Algorithm 1.
    pub fn num_windows(&self) -> usize {
        self.rows
    }

    /// Number of features (columns), the `F` of Algorithm 1.
    pub fn num_features(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if the matrix holds no windows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Feature (column) names.
    pub fn feature_names(&self) -> &[String] {
        &self.names
    }

    /// One window's feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_windows()`.
    pub fn row(&self, index: usize) -> &[f64] {
        let f = self.num_features();
        &self.data[index * f..(index + 1) * f]
    }

    /// Iterator over all rows.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks(self.num_features().max(1)).take(self.rows)
    }

    /// Copies one feature column.
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_features()`.
    pub fn column(&self, index: usize) -> Vec<f64> {
        assert!(index < self.num_features(), "column index out of range");
        (0..self.rows).map(|r| self.row(r)[index]).collect()
    }

    /// Value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(col < self.num_features(), "column index out of range");
        self.row(row)[col]
    }

    /// Mutable access to the value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn get_mut(&mut self, row: usize, col: usize) -> &mut f64 {
        let f = self.num_features();
        assert!(col < f, "column index out of range");
        assert!(row < self.rows, "row index out of range");
        &mut self.data[row * f + col]
    }

    /// Returns a new matrix containing only the columns at the given indices,
    /// in the given order.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::DimensionMismatch`] if any index is out of range.
    pub fn select_columns(&self, indices: &[usize]) -> Result<FeatureMatrix, FeatureError> {
        for &i in indices {
            if i >= self.num_features() {
                return Err(FeatureError::DimensionMismatch {
                    detail: format!(
                        "column index {i} out of range for a matrix with {} features",
                        self.num_features()
                    ),
                });
            }
        }
        let names = indices.iter().map(|&i| self.names[i].clone()).collect();
        let mut out = FeatureMatrix::with_names(names);
        for r in 0..self.rows {
            let row = indices.iter().map(|&i| self.get(r, i)).collect();
            out.push_row(row)
                .expect("selected row length matches names");
        }
        Ok(out)
    }

    /// Returns a new matrix containing only the rows in `range`.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::DimensionMismatch`] if the range exceeds the
    /// number of windows.
    pub fn select_rows(
        &self,
        range: std::ops::Range<usize>,
    ) -> Result<FeatureMatrix, FeatureError> {
        if range.end > self.rows || range.start > range.end {
            return Err(FeatureError::DimensionMismatch {
                detail: format!(
                    "row range {:?} out of bounds for a matrix with {} windows",
                    range, self.rows
                ),
            });
        }
        let mut out = FeatureMatrix::with_names(self.names.clone());
        for r in range {
            out.push_row(self.row(r).to_vec())
                .expect("row length matches");
        }
        Ok(out)
    }

    /// Appends all rows of `other` to this matrix.
    ///
    /// # Errors
    ///
    /// Returns [`FeatureError::DimensionMismatch`] if the feature counts differ.
    pub fn append(&mut self, other: &FeatureMatrix) -> Result<(), FeatureError> {
        if other.num_features() != self.num_features() {
            return Err(FeatureError::DimensionMismatch {
                detail: format!(
                    "cannot append a matrix with {} features to one with {}",
                    other.num_features(),
                    self.num_features()
                ),
            });
        }
        self.data.extend_from_slice(&other.data);
        self.rows += other.rows;
        Ok(())
    }

    /// Converts the matrix into plain row vectors (used by the ML substrate).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.rows().map(|r| r.to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FeatureMatrix {
        FeatureMatrix::from_rows(
            vec!["f1".into(), "f2".into(), "f3".into()],
            vec![
                vec![1.0, 2.0, 3.0],
                vec![4.0, 5.0, 6.0],
                vec![7.0, 8.0, 9.0],
            ],
        )
        .unwrap()
    }

    #[test]
    fn dimensions_and_access() {
        let m = sample();
        assert_eq!(m.num_windows(), 3);
        assert_eq!(m.num_features(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.column(2), vec![3.0, 6.0, 9.0]);
        assert_eq!(m.get(2, 0), 7.0);
        assert_eq!(m.feature_names()[1], "f2");
    }

    #[test]
    fn push_row_validates_length() {
        let mut m = FeatureMatrix::with_names(vec!["a".into(), "b".into()]);
        assert!(m.push_row(vec![1.0]).is_err());
        assert!(m.push_row(vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn get_mut_modifies_value() {
        let mut m = sample();
        *m.get_mut(0, 0) = 42.0;
        assert_eq!(m.get(0, 0), 42.0);
    }

    #[test]
    fn select_columns_projects_and_orders() {
        let m = sample();
        let p = m.select_columns(&[2, 0]).unwrap();
        assert_eq!(p.num_features(), 2);
        assert_eq!(p.feature_names(), &["f3".to_string(), "f1".to_string()]);
        assert_eq!(p.row(1), &[6.0, 4.0]);
        assert!(m.select_columns(&[5]).is_err());
    }

    #[test]
    fn select_rows_subsets() {
        let m = sample();
        let s = m.select_rows(1..3).unwrap();
        assert_eq!(s.num_windows(), 2);
        assert_eq!(s.row(0), &[4.0, 5.0, 6.0]);
        assert!(m.select_rows(2..5).is_err());
    }

    #[test]
    fn append_concatenates_windows() {
        let mut a = sample();
        let b = sample();
        a.append(&b).unwrap();
        assert_eq!(a.num_windows(), 6);
        let other = FeatureMatrix::with_names(vec!["x".into()]);
        assert!(a.append(&other).is_err());
    }

    #[test]
    fn rows_iterator_yields_all_rows() {
        let m = sample();
        let rows: Vec<_> = m.rows().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], &[7.0, 8.0, 9.0]);
    }

    #[test]
    fn to_rows_round_trips() {
        let m = sample();
        let rows = m.to_rows();
        let m2 = FeatureMatrix::from_rows(m.feature_names().to_vec(), rows).unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn empty_matrix_behaviour() {
        let m = FeatureMatrix::with_names(vec!["a".into()]);
        assert!(m.is_empty());
        assert_eq!(m.num_windows(), 0);
        assert_eq!(m.rows().count(), 0);
    }

    #[test]
    #[should_panic(expected = "column index out of range")]
    fn column_out_of_range_panics() {
        sample().column(9);
    }
}
