//! Property-based tests for the feature-extraction crate.

use proptest::prelude::*;
use seizure_features::bandpower::{all_band_powers, Band};
use seizure_features::entropy::{
    permutation_entropy, renyi_entropy, sample_entropy, shannon_entropy,
};
use seizure_features::extractor::{FeatureExtractor, PaperFeatureSet, SlidingWindowConfig};
use seizure_features::matrix::FeatureMatrix;
use seizure_features::normalize::normalize_features;
use seizure_features::waveform::{line_length, peak_to_peak, zero_crossings};

fn signal(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn relative_band_powers_are_a_sub_probability(window in signal(64..512)) {
        let bp = all_band_powers(&window, 256.0).unwrap();
        let sum: f64 = bp.relative.iter().sum();
        prop_assert!(sum <= 1.0 + 1e-9);
        for band in Band::ALL {
            prop_assert!(bp.relative(band) >= 0.0);
            prop_assert!(bp.absolute(band) >= -1e-12);
        }
    }

    #[test]
    fn permutation_entropy_is_normalized(window in signal(10..300), order in 2usize..6) {
        let pe = permutation_entropy(&window, order, 1).unwrap();
        prop_assert!((0.0..=1.0).contains(&pe));
    }

    #[test]
    fn permutation_entropy_is_invariant_to_monotone_scaling(window in signal(20..200), scale in 0.1f64..10.0, shift in -50.0f64..50.0) {
        let transformed: Vec<f64> = window.iter().map(|x| x * scale + shift).collect();
        let a = permutation_entropy(&window, 3, 1).unwrap();
        let b = permutation_entropy(&transformed, 3, 1).unwrap();
        prop_assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn shannon_entropy_is_bounded_by_log_n(window in signal(2..200)) {
        let h = shannon_entropy(&window);
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= (window.len() as f64).ln() + 1e-9);
    }

    #[test]
    fn renyi_entropy_never_exceeds_shannon(window in signal(4..200)) {
        let shannon = shannon_entropy(&window);
        let renyi2 = renyi_entropy(&window, 2.0).unwrap();
        prop_assert!(renyi2 <= shannon + 1e-9);
    }

    #[test]
    fn sample_entropy_is_non_negative(window in signal(10..150), k in 0.1f64..0.5) {
        let se = sample_entropy(&window, 2, k).unwrap();
        prop_assert!(se >= 0.0);
        prop_assert!(se.is_finite());
    }

    #[test]
    fn waveform_features_are_scale_consistent(window in signal(8..200), scale in 1.0f64..10.0) {
        let scaled: Vec<f64> = window.iter().map(|x| x * scale).collect();
        let ll = line_length(&window).unwrap();
        let ll_scaled = line_length(&scaled).unwrap();
        prop_assert!((ll_scaled - scale * ll).abs() < 1e-6 * ll.max(1.0));

        let ptp = peak_to_peak(&window).unwrap();
        let ptp_scaled = peak_to_peak(&scaled).unwrap();
        prop_assert!((ptp_scaled - scale * ptp).abs() < 1e-6 * ptp.max(1.0));

        // Zero crossings are invariant to positive scaling.
        prop_assert_eq!(zero_crossings(&window).unwrap(), zero_crossings(&scaled).unwrap());
    }

    #[test]
    fn normalized_matrix_columns_have_zero_mean(rows in 2usize..30, cols in 1usize..6, seed in 0u64..1000) {
        let mut state = seed + 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 10.0 - 5.0
        };
        let names = (0..cols).map(|i| format!("f{i}")).collect();
        let data: Vec<Vec<f64>> = (0..rows).map(|_| (0..cols).map(|_| next()).collect()).collect();
        let matrix = FeatureMatrix::from_rows(names, data).unwrap();
        let normalized = normalize_features(&matrix).unwrap();
        for c in 0..cols {
            let col = normalized.column(c);
            let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
            prop_assert!(mean.abs() < 1e-9);
        }
    }

    #[test]
    fn sliding_window_count_is_consistent(signal_len in 1usize..5000, window_secs in 1.0f64..8.0, overlap in 0.0f64..0.9) {
        let fs = 32.0;
        let cfg = SlidingWindowConfig::new(fs, window_secs, overlap).unwrap();
        let n = cfg.num_windows(signal_len);
        if n > 0 {
            // The last window must fit inside the signal.
            let last_start = cfg.window_start_sample(n - 1);
            prop_assert!(last_start + cfg.window_samples() <= signal_len);
            // One more window would not fit.
            prop_assert!(cfg.window_start_sample(n) + cfg.window_samples() > signal_len);
        } else {
            prop_assert!(signal_len < cfg.window_samples());
        }
    }

    #[test]
    fn paper_features_are_finite_on_arbitrary_windows(window in signal(32..600)) {
        let extractor = PaperFeatureSet::new(64.0).unwrap();
        let features = extractor.extract_window(&window, &window).unwrap();
        prop_assert_eq!(features.len(), 10);
        prop_assert!(features.iter().all(|f| f.is_finite()));
    }
}
