//! # seizure-lint
//!
//! A hand-rolled static analyzer for the invariants this workspace depends
//! on but `clippy` cannot know about. Three separate PRs fixed the same
//! NaN-unsafe comparator bug class; the persistence layer promises to never
//! panic on hostile bytes; the batch hot paths promise to never allocate;
//! node-identity across save/resume depends on every source of randomness
//! being seeded. Each of those invariants lives here as a mechanical rule
//! instead of reviewer memory.
//!
//! The scanner is a lightweight masking tokenizer, not a full parser: it
//! blanks comments, string/char literals and doc text out of a byte-exact
//! copy of each source file (so offsets and line numbers still line up),
//! then runs substring rules over the remaining code. `#[cfg(test)]`
//! blocks, marked hot-path blocks and escape-hatch annotations are tracked
//! as byte ranges via brace matching on the masked text. `syn` is neither
//! vendored nor needed for rules of this shape.
//!
//! ## Rules
//!
//! | rule | invariant |
//! |------|-----------|
//! | `nan-ordering` | float comparisons use `f64::total_cmp`, never `partial_cmp` + `unwrap`/`expect`/`unwrap_or` |
//! | `panic-free-decode` | `ml/src/persist/` never panics on untrusted bytes (no `unwrap`/`expect`/`panic!`/literal indexing) |
//! | `hot-path-alloc` | blocks marked hot never allocate (`Vec::new`, `vec!`, `collect`, `format!`, `.clone()`, ...) |
//! | `determinism` | `ml`/`features`/`dsp`/`core` non-test code never uses wall clocks, OS entropy or hash-ordered containers |
//! | `unsafe-audit` | every `unsafe` carries an adjacent `SAFETY:` comment; unsafe-free crates carry `#![forbid(unsafe_code)]` |
//!
//! ## Escape hatch
//!
//! A provably-safe site is annotated, never silently exempted. The
//! annotation is a comment of the form `lint: allow(<rule>) — <reason>`
//! (an ASCII `-` separator also works) placed on the flagged line or on
//! the line directly above it. An annotation without a reason, for an
//! unknown rule, or covering no violation is itself a violation.
//!
//! Hot blocks are opted in with a `lint: hot-path` comment directly above
//! the function (or impl block): the marker covers the next braced block.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// The five repo-specific rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    NanOrdering,
    PanicFreeDecode,
    HotPathAlloc,
    Determinism,
    UnsafeAudit,
}

impl Rule {
    pub const ALL: [Rule; 5] = [
        Rule::NanOrdering,
        Rule::PanicFreeDecode,
        Rule::HotPathAlloc,
        Rule::Determinism,
        Rule::UnsafeAudit,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Rule::NanOrdering => "nan-ordering",
            Rule::PanicFreeDecode => "panic-free-decode",
            Rule::HotPathAlloc => "hot-path-alloc",
            Rule::Determinism => "determinism",
            Rule::UnsafeAudit => "unsafe-audit",
        }
    }

    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }

    /// One-line fix hint printed next to every diagnostic.
    pub fn hint(self) -> &'static str {
        match self {
            Rule::NanOrdering => "compare floats with f64::total_cmp (NaN-safe total order)",
            Rule::PanicFreeDecode => {
                "decode must return PersistError, never panic: validate lengths, use checked reads"
            }
            Rule::HotPathAlloc => {
                "hot paths reuse caller-owned scratch; move the allocation to setup or a workspace"
            }
            Rule::Determinism => {
                "use seeded ChaCha8 rngs and order-deterministic containers (BTreeMap/Vec)"
            }
            Rule::UnsafeAudit => {
                "document the invariant in an adjacent SAFETY: comment, or drop the unsafe"
            }
        }
    }
}

/// A single finding. `rule` is the rule label; annotation problems use the
/// reserved label `lint-annotation`.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
    pub hint: &'static str,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {} (fix: {})",
            self.file, self.line, self.rule, self.message, self.hint
        )
    }
}

/// How a file's path scopes the rules that run over it.
#[derive(Clone, Debug, Default)]
pub struct FileClass {
    /// Directory name under `crates/`, or `None` for the root package.
    pub crate_dir: Option<String>,
    /// Whole file is test/bench/example scope.
    pub is_test_file: bool,
    /// File participates in the persist decode surface.
    pub in_persist: bool,
}

/// Classifies a workspace-relative path (forward slashes).
pub fn classify(rel_path: &str) -> FileClass {
    let components: Vec<&str> = rel_path.split('/').collect();
    let crate_dir = match components.as_slice() {
        ["crates", name, ..] => Some((*name).to_string()),
        _ => None,
    };
    let is_test_file = components
        .iter()
        .any(|c| matches!(*c, "tests" | "benches" | "examples"));
    let in_persist = rel_path.contains("ml/src/persist");
    FileClass {
        crate_dir,
        is_test_file,
        in_persist,
    }
}

/// Crates whose non-test code must be deterministic (node-identity across
/// save/resume depends on them).
const DETERMINISTIC_CRATES: [&str; 4] = ["core", "dsp", "features", "ml"];

// ---------------------------------------------------------------------------
// Masking tokenizer
// ---------------------------------------------------------------------------

struct CommentSpan {
    line: usize,
    text: String,
}

struct Masked {
    /// Source with comments and string/char literals blanked to spaces,
    /// newlines preserved — byte offsets and line numbers match the input.
    code: String,
    comments: Vec<CommentSpan>,
    /// Byte offset of the start of each line (1-indexed via `line_of`).
    line_starts: Vec<usize>,
}

impl Masked {
    fn line_of(&self, offset: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= offset)
    }

    fn line_range(&self, line: usize) -> (usize, usize) {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .copied()
            .unwrap_or(self.code.len());
        (start, end)
    }
}

fn mask(src: &str) -> Masked {
    let bytes = src.as_bytes();
    let len = bytes.len();
    let mut code: Vec<u8> = Vec::with_capacity(len);
    let mut comments = Vec::new();
    let mut line_starts = vec![0usize];
    let mut line = 1usize;
    let mut i = 0usize;

    // Copies one source byte into the masked buffer verbatim.
    macro_rules! keep {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                line_starts.push(i + 1);
                code.push(b'\n');
            } else {
                code.push(bytes[i]);
            }
            i += 1;
        }};
    }
    // Blanks one source byte (newlines still advance the line map).
    macro_rules! blank {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                line_starts.push(i + 1);
                code.push(b'\n');
            } else {
                code.push(b' ');
            }
            i += 1;
        }};
    }

    while i < len {
        let b = bytes[i];
        let next = if i + 1 < len { bytes[i + 1] } else { 0 };
        let prev_byte_is_ident = !code.is_empty() && {
            let c = code[code.len() - 1];
            c.is_ascii_alphanumeric() || c == b'_'
        };

        if b == b'/' && next == b'/' {
            // Line comment (incl. doc comments).
            let start = i;
            let start_line = line;
            while i < len && bytes[i] != b'\n' {
                blank!();
            }
            comments.push(CommentSpan {
                line: start_line,
                text: src[start..i].to_string(),
            });
        } else if b == b'/' && next == b'*' {
            // Block comment, nesting honoured.
            let start = i;
            let start_line = line;
            let mut depth = 0usize;
            while i < len {
                if i + 1 < len && bytes[i] == b'/' && bytes[i + 1] == b'*' {
                    depth += 1;
                    blank!();
                    blank!();
                } else if i + 1 < len && bytes[i] == b'*' && bytes[i + 1] == b'/' {
                    depth -= 1;
                    blank!();
                    blank!();
                    if depth == 0 {
                        break;
                    }
                } else {
                    blank!();
                }
            }
            comments.push(CommentSpan {
                line: start_line,
                text: src[start..i.min(len)].to_string(),
            });
        } else if b == b'"' {
            // Ordinary string literal.
            blank!();
            while i < len {
                if bytes[i] == b'\\' && i + 1 < len {
                    blank!();
                    blank!();
                } else if bytes[i] == b'"' {
                    blank!();
                    break;
                } else {
                    blank!();
                }
            }
        } else if (b == b'r' || b == b'b') && !prev_byte_is_ident && starts_raw_string(bytes, i) {
            // Raw (and raw byte) string: r"...", r#"..."#, br#"..."#.
            let mut j = i;
            if bytes[j] == b'b' {
                keep!();
                j = i;
            }
            debug_assert_eq!(bytes[j], b'r');
            keep!();
            let mut hashes = 0usize;
            while i < len && bytes[i] == b'#' {
                hashes += 1;
                keep!();
            }
            if i < len && bytes[i] == b'"' {
                blank!();
                'raw: while i < len {
                    if bytes[i] == b'"' {
                        // A closing quote must be followed by `hashes` hashes.
                        let mut k = 0usize;
                        while k < hashes && i + 1 + k < len && bytes[i + 1 + k] == b'#' {
                            k += 1;
                        }
                        if k == hashes {
                            blank!();
                            for _ in 0..hashes {
                                blank!();
                            }
                            break 'raw;
                        }
                    }
                    blank!();
                }
            }
        } else if b == b'b' && next == b'\'' && !prev_byte_is_ident {
            // Byte char literal b'x' / b'\n'.
            keep!();
            mask_char_literal(bytes, len, &mut i, &mut line, &mut line_starts, &mut code);
        } else if b == b'\'' {
            if next == b'\\' || (i + 2 < len && bytes[i + 2] == b'\'' && next != b'\'') {
                mask_char_literal(bytes, len, &mut i, &mut line, &mut line_starts, &mut code);
            } else {
                // Lifetime (or stray quote): keep as code.
                keep!();
            }
        } else {
            keep!();
        }
    }

    Masked {
        code: String::from_utf8(code).expect("masking preserves UTF-8"),
        comments,
        line_starts,
    }
}

fn starts_raw_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if j >= bytes.len() || bytes[j] != b'r' {
        // Plain b"..." is handled by the ordinary-string arm after the `b`
        // passes through as code.
        return false;
    }
    j += 1;
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'"'
}

fn mask_char_literal(
    bytes: &[u8],
    len: usize,
    i: &mut usize,
    line: &mut usize,
    line_starts: &mut Vec<usize>,
    code: &mut Vec<u8>,
) {
    let mut push_blank = |i: &mut usize| {
        if bytes[*i] == b'\n' {
            *line += 1;
            line_starts.push(*i + 1);
            code.push(b'\n');
        } else {
            code.push(b' ');
        }
        *i += 1;
    };
    debug_assert_eq!(bytes[*i], b'\'');
    push_blank(i); // opening quote
    while *i < len {
        if bytes[*i] == b'\\' && *i + 1 < len {
            push_blank(i);
            push_blank(i);
        } else if bytes[*i] == b'\'' {
            push_blank(i);
            break;
        } else {
            push_blank(i);
        }
    }
}

// ---------------------------------------------------------------------------
// Annotations and regions
// ---------------------------------------------------------------------------

struct Allow {
    rule: Rule,
    /// Lines this annotation covers (its own line and the next code line).
    covered: Vec<usize>,
    used: bool,
    line: usize,
}

struct Regions {
    test: Vec<(usize, usize)>,
    hot: Vec<(usize, usize)>,
}

impl Regions {
    fn in_test(&self, offset: usize) -> bool {
        self.test.iter().any(|&(a, b)| offset >= a && offset < b)
    }
    fn in_hot(&self, offset: usize) -> bool {
        self.hot.iter().any(|&(a, b)| offset >= a && offset < b)
    }
}

/// Finds the byte range of the first `{ ... }` block starting at or after
/// `from` in masked code. Returns `None` when no block opens.
fn next_block(code: &str, from: usize) -> Option<(usize, usize)> {
    let bytes = code.as_bytes();
    let open = (from..bytes.len()).find(|&i| bytes[i] == b'{')?;
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, i + 1));
                }
            }
            _ => {}
        }
    }
    Some((open, bytes.len()))
}

/// Strips comment sigils from a comment's text and returns a `lint:`
/// directive body, if the comment is one.
fn directive_body(text: &str) -> Option<&str> {
    let mut t = text.trim_start();
    for sigil in ["//!", "///", "//", "/*!", "/**", "/*"] {
        if let Some(rest) = t.strip_prefix(sigil) {
            t = rest;
            break;
        }
    }
    let t = t.trim_start().trim_end_matches("*/").trim();
    t.strip_prefix("lint:").map(str::trim)
}

fn parse_annotations(file: &str, masked: &Masked) -> (Vec<Allow>, Vec<usize>, Vec<Diagnostic>) {
    let mut allows = Vec::new();
    let mut hot_markers = Vec::new();
    let mut diags = Vec::new();
    for comment in &masked.comments {
        let Some(body) = directive_body(&comment.text) else {
            continue;
        };
        if body == "hot-path" {
            hot_markers.push(comment.line);
            continue;
        }
        if let Some(rest) = body.strip_prefix("allow(") {
            let Some(close) = rest.find(')') else {
                diags.push(annotation_diag(
                    file,
                    comment.line,
                    "malformed lint allow: missing `)`".to_string(),
                ));
                continue;
            };
            let rule_name = rest[..close].trim();
            let Some(rule) = Rule::from_name(rule_name) else {
                diags.push(annotation_diag(
                    file,
                    comment.line,
                    format!("lint allow names unknown rule `{rule_name}`"),
                ));
                continue;
            };
            let after = rest[close + 1..].trim_start();
            let reason = after
                .strip_prefix('\u{2014}')
                .or_else(|| after.strip_prefix("--"))
                .or_else(|| after.strip_prefix('-'))
                .map(str::trim)
                .unwrap_or("");
            if reason.is_empty() {
                diags.push(annotation_diag(
                    file,
                    comment.line,
                    format!(
                        "lint allow({}) has no reason: write `lint: allow({}) — <why this site is safe>`",
                        rule.name(),
                        rule.name()
                    ),
                ));
                continue;
            }
            let covered = covered_lines(masked, comment.line);
            allows.push(Allow {
                rule,
                covered,
                used: false,
                line: comment.line,
            });
        } else {
            diags.push(annotation_diag(
                file,
                comment.line,
                format!("unknown lint directive `{body}` (expected `hot-path` or `allow(<rule>) — <reason>`)"),
            ));
        }
    }
    (allows, hot_markers, diags)
}

fn annotation_diag(file: &str, line: usize, message: String) -> Diagnostic {
    Diagnostic {
        file: file.to_string(),
        line,
        rule: "lint-annotation",
        message,
        hint: "see the Static analysis section of the README for the annotation grammar",
    }
}

/// An allow covers its own line (trailing-comment form) plus the next line
/// that contains any code (standalone-comment form).
fn covered_lines(masked: &Masked, comment_line: usize) -> Vec<usize> {
    let mut covered = vec![comment_line];
    let last_line = masked.line_starts.len();
    for line in comment_line + 1..=(comment_line + 8).min(last_line) {
        let (a, b) = masked.line_range(line);
        if masked.code[a..b].trim().is_empty() {
            continue;
        }
        covered.push(line);
        break;
    }
    covered
}

fn find_regions(masked: &Masked, hot_markers: &[usize], file: &str) -> (Regions, Vec<Diagnostic>) {
    let mut diags = Vec::new();
    let code = &masked.code;
    let mut test = Vec::new();
    for pat in ["#[cfg(test)]", "#[cfg(all(test"] {
        let mut from = 0usize;
        while let Some(pos) = code[from..].find(pat) {
            let at = from + pos;
            from = at + pat.len();
            if let Some((open, close)) = next_block(code, at) {
                // Guard against the attribute applying to a non-block item
                // (`#[cfg(test)] use ...;`): a `;` before the block opener
                // means the next `{` belongs to something else.
                if !code[at..open].contains(';') {
                    test.push((open, close));
                }
            }
        }
    }
    let mut hot = Vec::new();
    for &marker_line in hot_markers {
        let (line_start, _) = masked.line_range(marker_line);
        match next_block(code, line_start) {
            Some((open, close)) => hot.push((open, close)),
            None => diags.push(annotation_diag(
                file,
                marker_line,
                "hot-path marker is not followed by a block".to_string(),
            )),
        }
    }
    (Regions { test, hot }, diags)
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

fn find_all(code: &str, pat: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = code[from..].find(pat) {
        out.push(from + pos);
        from += pos + pat.len();
    }
    out
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Word-boundary occurrences of `pat` in `code`.
fn find_words(code: &str, pat: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    find_all(code, pat)
        .into_iter()
        .filter(|&at| {
            let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
            let end = at + pat.len();
            let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
            before_ok && after_ok
        })
        .collect()
}

struct RuleCtx<'a> {
    class: &'a FileClass,
    masked: &'a Masked,
    regions: &'a Regions,
    findings: Vec<(Rule, usize, String)>, // (rule, byte offset, message)
}

impl RuleCtx<'_> {
    fn push(&mut self, rule: Rule, offset: usize, message: String) {
        self.findings.push((rule, offset, message));
    }
}

fn rule_nan_ordering(ctx: &mut RuleCtx<'_>) {
    let code = &ctx.masked.code;
    for at in find_words(code, "partial_cmp") {
        // Scan the rest of the statement (or a bounded window) for a
        // panicking or Equal-defaulting consumer of the ordering.
        let tail_end = code[at..]
            .find(';')
            .map_or_else(|| code.len(), |p| at + p)
            .min(at + 240);
        let tail = &code[at..tail_end];
        if tail.contains(".unwrap") || tail.contains(".expect") {
            ctx.push(
                Rule::NanOrdering,
                at,
                "float ordering built on `partial_cmp` with a panicking/Equal-defaulting fallback"
                    .to_string(),
            );
        }
    }
}

fn rule_panic_free_decode(ctx: &mut RuleCtx<'_>) {
    if !ctx.class.in_persist || ctx.class.is_test_file {
        return;
    }
    let code = &ctx.masked.code;
    let patterns: [(&str, &str); 6] = [
        (".unwrap()", "`unwrap()` in the persist surface"),
        (".expect(", "`expect(..)` in the persist surface"),
        ("panic!", "`panic!` in the persist surface"),
        ("unreachable!", "`unreachable!` in the persist surface"),
        ("todo!", "`todo!` in the persist surface"),
        ("unimplemented!", "`unimplemented!` in the persist surface"),
    ];
    for (pat, what) in patterns {
        for at in find_all(code, pat) {
            if !ctx.regions.in_test(at) {
                ctx.push(
                    Rule::PanicFreeDecode,
                    at,
                    format!("{what} can panic on hostile bytes"),
                );
            }
        }
    }
    // Literal-bound indexing (`buf[12..20]`, `buf[..8]`, `buf[4]`): the
    // fixed-width header reads that panic when a torn buffer runs short.
    for at in find_all(code, "[") {
        if ctx.regions.in_test(at) {
            continue;
        }
        let prev = code[..at].trim_end().as_bytes().last().copied();
        let indexes_value = prev.is_some_and(|p| is_ident_byte(p) || p == b')' || p == b']');
        if !indexes_value {
            continue;
        }
        let Some(close_rel) = code[at..].find(']') else {
            continue;
        };
        let inner = code[at + 1..at + close_rel].trim();
        let literal_bounds = !inner.is_empty()
            && inner.bytes().any(|b| b.is_ascii_digit())
            && inner
                .bytes()
                .all(|b| b.is_ascii_digit() || b == b'.' || b == b'_' || b == b' ');
        if literal_bounds {
            ctx.push(
                Rule::PanicFreeDecode,
                at,
                format!("literal-bound indexing `[{inner}]` panics when the buffer runs short"),
            );
        }
    }
}

fn rule_hot_path_alloc(ctx: &mut RuleCtx<'_>) {
    if ctx.regions.hot.is_empty() {
        return;
    }
    let code = &ctx.masked.code;
    let patterns: [&str; 14] = [
        "Vec::new",
        "Vec::with_capacity",
        "vec!",
        ".to_vec(",
        ".collect(",
        "collect::<",
        "Box::new",
        "format!",
        ".clone(",
        "String::new",
        "String::from",
        ".to_string(",
        ".to_owned(",
        "HashMap::new",
    ];
    for pat in patterns {
        for at in find_all(code, pat) {
            if ctx.regions.in_hot(at) {
                ctx.push(
                    Rule::HotPathAlloc,
                    at,
                    format!(
                        "`{}` allocates inside a `hot-path` block",
                        pat.trim_matches('.')
                    ),
                );
            }
        }
    }
}

fn rule_determinism(ctx: &mut RuleCtx<'_>) {
    let in_scope = ctx
        .class
        .crate_dir
        .as_deref()
        .is_some_and(|c| DETERMINISTIC_CRATES.contains(&c));
    if !in_scope || ctx.class.is_test_file {
        return;
    }
    let code = &ctx.masked.code;
    let patterns: [(&str, &str); 5] = [
        ("thread_rng", "OS-entropy rng breaks seeded reproducibility"),
        (
            "Instant::now",
            "wall-clock reads make runs non-reproducible",
        ),
        (
            "SystemTime::now",
            "wall-clock reads make runs non-reproducible",
        ),
        ("HashMap", "hash-ordered iteration varies between processes"),
        ("HashSet", "hash-ordered iteration varies between processes"),
    ];
    for (pat, why) in patterns {
        for at in find_words(code, pat) {
            if !ctx.regions.in_test(at) {
                ctx.push(
                    Rule::Determinism,
                    at,
                    format!("`{pat}` in deterministic non-test code: {why}"),
                );
            }
        }
    }
}

fn rule_unsafe_audit(ctx: &mut RuleCtx<'_>) {
    let code = &ctx.masked.code;
    for at in find_words(code, "unsafe") {
        let line = ctx.masked.line_of(at);
        let documented = ctx
            .masked
            .comments
            .iter()
            .any(|c| c.text.contains("SAFETY:") && c.line + 3 >= line && c.line <= line);
        if !documented {
            ctx.push(
                Rule::UnsafeAudit,
                at,
                "`unsafe` without an adjacent `// SAFETY:` comment".to_string(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Per-file driver
// ---------------------------------------------------------------------------

/// Result of scanning one file: diagnostics plus the facts the crate-level
/// unsafe audit needs.
pub struct FileReport {
    pub diagnostics: Vec<Diagnostic>,
    pub has_unsafe: bool,
    pub has_forbid_unsafe: bool,
}

/// Runs every line-level rule over one file. `rel_path` is the
/// workspace-relative path with forward slashes; it determines rule scope.
pub fn scan_file(rel_path: &str, src: &str) -> FileReport {
    let class = classify(rel_path);
    let masked = mask(src);
    let (mut allows, hot_markers, mut diagnostics) = parse_annotations(rel_path, &masked);
    let (regions, region_diags) = find_regions(&masked, &hot_markers, rel_path);
    diagnostics.extend(region_diags);

    let mut ctx = RuleCtx {
        class: &class,
        masked: &masked,
        regions: &regions,
        findings: Vec::new(),
    };
    rule_nan_ordering(&mut ctx);
    rule_panic_free_decode(&mut ctx);
    rule_hot_path_alloc(&mut ctx);
    rule_determinism(&mut ctx);
    rule_unsafe_audit(&mut ctx);

    let has_unsafe = !find_words(&masked.code, "unsafe").is_empty();
    let has_forbid_unsafe = masked.code.contains("#![forbid(unsafe_code)]");

    for (rule, offset, message) in ctx.findings.drain(..) {
        let line = masked.line_of(offset);
        let allowed = allows
            .iter_mut()
            .find(|a| a.rule == rule && a.covered.contains(&line));
        if let Some(allow) = allowed {
            allow.used = true;
            continue;
        }
        diagnostics.push(Diagnostic {
            file: rel_path.to_string(),
            line,
            rule: rule.name(),
            message,
            hint: rule.hint(),
        });
    }

    for allow in &allows {
        if !allow.used {
            diagnostics.push(annotation_diag(
                rel_path,
                allow.line,
                format!(
                    "unused lint allow({}): nothing on the covered lines violates the rule",
                    allow.rule.name()
                ),
            ));
        }
    }

    diagnostics.sort_by_key(|d| d.line);
    FileReport {
        diagnostics,
        has_unsafe,
        has_forbid_unsafe,
    }
}

/// Crate-level pass: a crate whose files contain zero `unsafe` must forbid
/// it at the root so none can creep back in.
pub fn crate_forbid_diagnostic(
    crate_label: &str,
    lib_rel_path: &str,
    any_unsafe: bool,
    lib_has_forbid: bool,
) -> Option<Diagnostic> {
    if any_unsafe || lib_has_forbid {
        return None;
    }
    Some(Diagnostic {
        file: lib_rel_path.to_string(),
        line: 1,
        rule: Rule::UnsafeAudit.name(),
        message: format!(
            "crate `{crate_label}` has no unsafe code but its root lacks `#![forbid(unsafe_code)]`"
        ),
        hint: Rule::UnsafeAudit.hint(),
    })
}

// ---------------------------------------------------------------------------
// Workspace driver
// ---------------------------------------------------------------------------

/// Directories never scanned: third-party stubs, build output, VCS metadata
/// and the lint crate's own deliberately-violating fixtures.
const EXCLUDED_DIRS: [&str; 4] = ["vendor", "target", ".git", "fixtures"];

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if EXCLUDED_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans every workspace `.rs` file under `root` and returns all
/// diagnostics plus the number of files scanned.
pub fn lint_workspace(root: &Path) -> std::io::Result<(Vec<Diagnostic>, usize)> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;

    let mut reports: BTreeMap<String, FileReport> = BTreeMap::new();
    let mut diagnostics = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(path)?;
        let report = scan_file(&rel, &src);
        diagnostics.extend(report.diagnostics.iter().cloned());
        reports.insert(rel, report);
    }

    // Crate-level unsafe audit: every `crates/<name>` plus the root package.
    let mut crate_roots: Vec<(String, String)> = Vec::new();
    for rel in reports.keys() {
        if let Some(name) = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
        {
            let lib = format!("crates/{name}/src/lib.rs");
            if rel == &lib {
                crate_roots.push((name.to_string(), lib));
            }
        }
    }
    if reports.contains_key("src/lib.rs") {
        crate_roots.push(("selflearn-seizure".to_string(), "src/lib.rs".to_string()));
    }
    for (name, lib) in crate_roots {
        let src_prefix = lib.trim_end_matches("lib.rs").to_string();
        // A crate's unsafe census covers everything under its directory
        // (src, tests, benches), not just the library tree. The root
        // package owns everything outside `crates/`.
        let crate_prefix = src_prefix.trim_end_matches("src/").to_string();
        let in_crate = |rel: &str| {
            if crate_prefix.is_empty() {
                !rel.starts_with("crates/")
            } else {
                rel.starts_with(&crate_prefix)
            }
        };
        let any_unsafe = reports.iter().any(|(rel, r)| in_crate(rel) && r.has_unsafe);
        let lib_has_forbid = reports.get(&lib).is_some_and(|r| r.has_forbid_unsafe);
        if let Some(diag) = crate_forbid_diagnostic(&name, &lib, any_unsafe, lib_has_forbid) {
            diagnostics.push(diag);
        }
    }

    diagnostics.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok((diagnostics, files.len()))
}

#[cfg(test)]
mod masking_tests {
    use super::mask;

    #[test]
    fn string_contents_are_blanked_but_offsets_hold() {
        let src = "let s = \"partial_cmp().unwrap()\";\nlet x = 1;\n";
        let m = mask(src);
        assert_eq!(m.code.len(), src.len());
        assert!(!m.code.contains("partial_cmp"));
        assert!(m.code.contains("let x = 1;"));
        assert_eq!(m.line_of(src.find('x').unwrap()), 2);
    }

    #[test]
    fn nested_block_comments_close_at_the_right_depth() {
        let src = "/* outer /* inner */ still comment */ fn f() {}\n";
        let m = mask(src);
        assert!(!m.code.contains("still"));
        assert!(m.code.contains("fn f() {}"));
    }

    #[test]
    fn raw_strings_with_hashes_are_blanked() {
        let src = "let s = r#\"unsafe { \"quoted\" }\"#; let t = 2;\n";
        let m = mask(src);
        assert!(!m.code.contains("unsafe"));
        assert!(m.code.contains("let t = 2;"));
    }

    #[test]
    fn lifetimes_are_not_mistaken_for_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = '\\'';\nlet d = 'x';\n";
        let m = mask(src);
        // Lifetime syntax survives; char literal payloads are blanked.
        assert!(m.code.contains("&'a str"));
        assert!(!m.code.contains("'x'"));
    }

    #[test]
    fn comments_are_captured_with_their_line_numbers() {
        let src = "fn f() {}\n// trailing note\nfn g() {}\n";
        let m = mask(src);
        assert_eq!(m.comments.len(), 1);
        assert_eq!(m.comments[0].line, 2);
        assert!(m.comments[0].text.contains("trailing note"));
        assert!(!m.code.contains("trailing"));
    }
}
