//! `seizure-lint` binary: scans the workspace and exits nonzero on any
//! unannotated violation of the repo's invariants.
//!
//! Usage: `cargo run --release -p seizure-lint [workspace-root]`
//!
//! With no argument the workspace root is found by walking up from the
//! current directory to the first `Cargo.toml` containing `[workspace]`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(arg) => PathBuf::from(arg),
        None => match find_workspace_root() {
            Some(root) => root,
            None => {
                eprintln!("seizure-lint: no workspace root found above the current directory");
                return ExitCode::FAILURE;
            }
        },
    };
    let started = Instant::now();
    let (diagnostics, files) = match seizure_lint::lint_workspace(&root) {
        Ok(result) => result,
        Err(err) => {
            eprintln!("seizure-lint: failed to scan {}: {err}", root.display());
            return ExitCode::FAILURE;
        }
    };
    let elapsed = started.elapsed();
    for diag in &diagnostics {
        println!("{diag}");
    }
    let rules = seizure_lint::Rule::ALL.len();
    if diagnostics.is_empty() {
        println!(
            "seizure-lint: clean — {files} files, {rules} rules, {:.1} ms",
            elapsed.as_secs_f64() * 1e3
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "seizure-lint: {} violation(s) across {files} files ({rules} rules, {:.1} ms)",
            diagnostics.len(),
            elapsed.as_secs_f64() * 1e3
        );
        ExitCode::FAILURE
    }
}
