// Corrected forms: total_cmp everywhere, plus a partial_cmp use that feeds
// an Option combinator instead of panicking.

fn rank(values: &mut Vec<f64>) {
    values.sort_by(f64::total_cmp);
}

fn peak(values: &[f64]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

fn maybe_less(a: f64, b: f64) -> bool {
    matches!(a.partial_cmp(&b), Some(std::cmp::Ordering::Less))
}
