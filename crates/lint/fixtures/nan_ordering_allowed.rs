// Both escape-hatch placements: standalone comment above the line, and a
// trailing comment on the line itself.

fn rank(values: &mut Vec<i32>) {
    // lint: allow(nan-ordering) — i32 comparison, partial_cmp is total here
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

fn rank_trailing(values: &mut Vec<i32>) {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap()); // lint: allow(nan-ordering) — i32 comparison, total by construction
}
