// Seeded panic-free-decode violations. Scanned under a synthetic
// `crates/ml/src/persist/...` label so the rule applies.

fn decode(bytes: &[u8]) -> u64 {
    if bytes[..8] != [0u8; 8] {
        panic!("bad magic");
    }
    let declared = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let _kind = bytes.get(10).copied().unwrap();
    declared
}

fn route(tag: u8) -> u8 {
    match tag {
        0 => 1,
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    // Test scope is exempt: decode tests exercise panics on purpose.
    #[test]
    fn corrupt_header_is_detected() {
        let bytes = [0u8; 32];
        assert_eq!(super::decode(&bytes[..]), bytes[12..20].len() as u64 - 8);
    }
}
