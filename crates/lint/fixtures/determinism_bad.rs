// Seeded determinism violations for a deterministic-scope crate label.

use std::collections::HashMap;
use std::time::Instant;

fn draw() -> f64 {
    let _rng = rand::thread_rng();
    0.5
}

fn stamp() -> Instant {
    Instant::now()
}

fn tally(keys: &[u32]) -> HashMap<u32, usize> {
    let mut counts = HashMap::new();
    for k in keys {
        *counts.entry(*k).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    // Test scope is exempt: a HashSet in a test only checks membership.
    #[test]
    fn unique() {
        let seen: std::collections::HashSet<u32> = [1, 2, 3].into_iter().collect();
        assert_eq!(seen.len(), 3);
    }
}
