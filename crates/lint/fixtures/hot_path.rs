// Hot-path fixture: the marked block allocates six different ways; the
// unmarked twin below is free to allocate; one marked allocation carries an
// annotated exemption.

// lint: hot-path
fn hot(samples: &[f64], out: &mut Vec<f64>) -> String {
    let staged: Vec<f64> = samples.iter().map(|v| v * 2.0).collect();
    let copy = staged.to_vec();
    let boxed = Box::new(copy.clone());
    out.extend(boxed.iter());
    let mut extra = Vec::new();
    extra.push(vec![1.0]);
    format!("{}", extra.len())
}

fn cold(samples: &[f64]) -> Vec<f64> {
    // No marker: setup code allocates freely.
    let staged: Vec<f64> = samples.to_vec();
    staged.clone()
}

// lint: hot-path
fn hot_clean(samples: &[f64], out: &mut [f64]) {
    for (o, s) in out.iter_mut().zip(samples) {
        *o = s * 2.0;
    }
}

// lint: hot-path
fn hot_with_exemption(samples: &[f64]) -> Vec<f64> {
    // lint: allow(hot-path-alloc) — cold error path, runs once per record at most
    samples.to_vec()
}
