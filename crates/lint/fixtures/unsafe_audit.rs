// Unsafe-audit fixture: one documented block, one undocumented block.

fn documented(ptr: *const u8) -> u8 {
    // SAFETY: caller guarantees ptr is valid for one byte (checked above).
    unsafe { *ptr }
}

fn undocumented(ptr: *const u8) -> u8 {
    unsafe { *ptr }
}
