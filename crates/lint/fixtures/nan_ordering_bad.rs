// Seeded nan-ordering violations: every pattern this repo has shipped (and
// fixed) at least once.

fn rank(values: &mut Vec<f64>) {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

fn peak(values: &[f64]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .unwrap()
        .0
}

fn rank_equal_default(values: &mut Vec<f64>) {
    // The silent variant: a NaN freezes mid-sort instead of panicking.
    values.sort_by(|a, b| {
        a.partial_cmp(b)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
}
