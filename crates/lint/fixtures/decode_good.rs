// Corrected decode: typed errors and checked reads, no panic paths.

enum PersistError {
    Truncated,
    BadMagic,
}

fn decode(bytes: &[u8]) -> Result<u64, PersistError> {
    let magic = bytes.get(..8).ok_or(PersistError::Truncated)?;
    if magic != [0u8; 8] {
        return Err(PersistError::BadMagic);
    }
    let declared = bytes
        .get(12..20)
        .and_then(|s| <[u8; 8]>::try_from(s).ok())
        .ok_or(PersistError::Truncated)?;
    Ok(u64::from_le_bytes(declared))
}
