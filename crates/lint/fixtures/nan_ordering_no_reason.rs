// An annotation without a reason must be rejected, and the violation it
// tried to cover must still be reported.

fn rank(values: &mut Vec<f64>) {
    // lint: allow(nan-ordering)
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
