//! Fixture tests: every rule must fire on its seeded violation file, stay
//! silent on the corrected form, and honor the annotated escape hatch —
//! including rejecting an annotation that carries no reason.

use seizure_lint::{classify, crate_forbid_diagnostic, scan_file, Rule};

const NAN_BAD: &str = include_str!("../fixtures/nan_ordering_bad.rs");
const NAN_GOOD: &str = include_str!("../fixtures/nan_ordering_good.rs");
const NAN_ALLOWED: &str = include_str!("../fixtures/nan_ordering_allowed.rs");
const NAN_NO_REASON: &str = include_str!("../fixtures/nan_ordering_no_reason.rs");
const DECODE_BAD: &str = include_str!("../fixtures/decode_bad.rs");
const DECODE_GOOD: &str = include_str!("../fixtures/decode_good.rs");
const HOT_PATH: &str = include_str!("../fixtures/hot_path.rs");
const DETERMINISM_BAD: &str = include_str!("../fixtures/determinism_bad.rs");
const UNSAFE_AUDIT: &str = include_str!("../fixtures/unsafe_audit.rs");

fn rule_lines(src: &str, label: &str, rule: Rule) -> Vec<usize> {
    scan_file(label, src)
        .diagnostics
        .iter()
        .filter(|d| d.rule == rule.name())
        .map(|d| d.line)
        .collect()
}

#[test]
fn nan_ordering_fires_on_every_seeded_pattern() {
    let lines = rule_lines(NAN_BAD, "crates/dsp/src/fixture.rs", Rule::NanOrdering);
    // sort_by + unwrap, max_by + expect, and the multi-line unwrap_or(Equal).
    assert_eq!(lines, vec![5, 12, 20]);
}

#[test]
fn nan_ordering_applies_to_test_scope_too() {
    // The repo keeps even test code violation-free, so test paths are in
    // scope for this rule (unlike determinism/panic-free-decode).
    let lines = rule_lines(NAN_BAD, "crates/ml/tests/fixture.rs", Rule::NanOrdering);
    assert_eq!(lines.len(), 3);
}

#[test]
fn nan_ordering_silent_on_corrected_form() {
    let report = scan_file("crates/dsp/src/fixture.rs", NAN_GOOD);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

#[test]
fn nan_ordering_honors_both_allow_placements() {
    let report = scan_file("crates/dsp/src/fixture.rs", NAN_ALLOWED);
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

#[test]
fn allow_without_reason_is_rejected_and_violation_survives() {
    let report = scan_file("crates/dsp/src/fixture.rs", NAN_NO_REASON);
    let rules: Vec<&str> = report.diagnostics.iter().map(|d| d.rule).collect();
    assert!(rules.contains(&"lint-annotation"), "{rules:?}");
    assert!(rules.contains(&Rule::NanOrdering.name()), "{rules:?}");
}

#[test]
fn unknown_rule_in_allow_is_rejected() {
    let src = "// lint: allow(no-such-rule) — because\nfn f() {}\n";
    let report = scan_file("crates/dsp/src/fixture.rs", src);
    assert_eq!(report.diagnostics.len(), 1);
    assert_eq!(report.diagnostics[0].rule, "lint-annotation");
}

#[test]
fn unused_allow_is_rejected() {
    let src = "// lint: allow(nan-ordering) — stale exemption\nfn f() {}\n";
    let report = scan_file("crates/dsp/src/fixture.rs", src);
    assert_eq!(report.diagnostics.len(), 1);
    assert!(report.diagnostics[0].message.contains("unused"));
}

#[test]
fn panic_free_decode_fires_inside_persist_only() {
    let lines = rule_lines(
        DECODE_BAD,
        "crates/ml/src/persist/fixture.rs",
        Rule::PanicFreeDecode,
    );
    // bytes[..8], panic!, the expect + [12..20] line (two findings), the
    // unwrap line, and unreachable! — the cfg(test) block stays silent.
    assert_eq!(lines, vec![5, 6, 8, 8, 9, 16]);

    // The same file outside the persist surface is out of scope.
    let elsewhere = rule_lines(DECODE_BAD, "crates/ml/src/flat.rs", Rule::PanicFreeDecode);
    assert!(elsewhere.is_empty(), "{elsewhere:?}");
}

#[test]
fn panic_free_decode_silent_on_checked_reads() {
    let lines = rule_lines(
        DECODE_GOOD,
        "crates/ml/src/persist/fixture.rs",
        Rule::PanicFreeDecode,
    );
    assert!(lines.is_empty(), "{lines:?}");
}

#[test]
fn hot_path_alloc_fires_only_inside_marked_blocks() {
    let lines = rule_lines(
        HOT_PATH,
        "crates/features/src/fixture.rs",
        Rule::HotPathAlloc,
    );
    // Seven allocations in `hot` (Box::new and .clone() share a line);
    // `cold` allocates freely; `hot_clean` is silent; the annotated
    // exemption in `hot_with_exemption` is honored.
    assert_eq!(lines, vec![7, 8, 9, 9, 11, 12, 13]);
}

#[test]
fn determinism_fires_in_scope_and_only_outside_tests() {
    let lines = rule_lines(
        DETERMINISM_BAD,
        "crates/ml/src/fixture.rs",
        Rule::Determinism,
    );
    // use HashMap, thread_rng, Instant::now, HashMap return type, and
    // HashMap::new — the HashSet inside cfg(test) stays silent.
    assert_eq!(lines, vec![3, 7, 12, 15, 16]);

    // The same code in a non-deterministic-scope crate is out of scope.
    let data = rule_lines(
        DETERMINISM_BAD,
        "crates/data/src/fixture.rs",
        Rule::Determinism,
    );
    assert!(data.is_empty(), "{data:?}");

    // ... and in test files of in-scope crates.
    let tests = rule_lines(
        DETERMINISM_BAD,
        "crates/ml/tests/fixture.rs",
        Rule::Determinism,
    );
    assert!(tests.is_empty(), "{tests:?}");
}

#[test]
fn unsafe_audit_requires_adjacent_safety_comment() {
    let lines = rule_lines(
        UNSAFE_AUDIT,
        "crates/parallel/src/fixture.rs",
        Rule::UnsafeAudit,
    );
    // Only the undocumented block fires.
    assert_eq!(lines, vec![9]);
}

#[test]
fn unsafe_free_crate_must_forbid_unsafe() {
    let missing = crate_forbid_diagnostic("demo", "crates/demo/src/lib.rs", false, false);
    assert!(missing.is_some());
    let diag = missing.unwrap();
    assert_eq!(diag.rule, Rule::UnsafeAudit.name());
    assert_eq!(diag.line, 1);

    // Present attribute, or a crate that really uses unsafe: no finding.
    assert!(crate_forbid_diagnostic("demo", "crates/demo/src/lib.rs", false, true).is_none());
    assert!(crate_forbid_diagnostic("demo", "crates/demo/src/lib.rs", true, false).is_none());
}

#[test]
fn scan_file_reports_unsafe_census() {
    let report = scan_file("crates/parallel/src/fixture.rs", UNSAFE_AUDIT);
    assert!(report.has_unsafe);
    assert!(!report.has_forbid_unsafe);
    let report = scan_file("crates/parallel/src/lib.rs", "#![forbid(unsafe_code)]\n");
    assert!(!report.has_unsafe);
    assert!(report.has_forbid_unsafe);
}

#[test]
fn classification_scopes_paths() {
    let persist = classify("crates/ml/src/persist/journal.rs");
    assert_eq!(persist.crate_dir.as_deref(), Some("ml"));
    assert!(persist.in_persist);
    assert!(!persist.is_test_file);

    let bench = classify("crates/bench/benches/inference.rs");
    assert!(bench.is_test_file);

    let root_example = classify("examples/quickstart.rs");
    assert!(root_example.is_test_file);
    assert_eq!(root_example.crate_dir, None);
}

#[test]
fn the_workspace_itself_is_violation_free() {
    // The acceptance criterion as a test: the real tree must carry zero
    // unannotated violations at all times.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let (diagnostics, files) = seizure_lint::lint_workspace(&root).expect("scan");
    assert!(files > 50, "unexpectedly small scan: {files} files");
    assert!(
        diagnostics.is_empty(),
        "workspace has lint violations:\n{}",
        diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
