//! Property-based tests for the DSP substrate.

use proptest::prelude::*;
use seizure_dsp::fft::{fft, ifft, Complex};
use seizure_dsp::spectrum::{band_power, periodogram, relative_band_power};
use seizure_dsp::stats;
use seizure_dsp::wavelet::{dwt_single, idwt_single, wavedec, waverec, Wavelet};
use seizure_dsp::window::{coefficients, WindowKind};

fn finite_signal(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3f64..1e3f64, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_ifft_roundtrip(signal in finite_signal(1..300)) {
        let input: Vec<Complex> = signal.iter().map(|&x| Complex::from(x)).collect();
        let spectrum = fft(&input).unwrap();
        let restored = ifft(&spectrum).unwrap();
        // Tolerance scales with the signal amplitude (inputs go up to 1e3) and
        // length, since the DFT fallback accumulates rounding over n terms.
        let tol = 1e-9 * (1.0 + signal.iter().fold(0.0f64, |m, x| m.max(x.abs()))) * signal.len() as f64;
        for (a, b) in input.iter().zip(restored.iter()) {
            prop_assert!((a.re - b.re).abs() < tol);
            prop_assert!((a.im - b.im).abs() < tol);
        }
    }

    #[test]
    fn fft_is_linear(a in finite_signal(64..65), b in finite_signal(64..65), alpha in -10.0f64..10.0) {
        let ca: Vec<Complex> = a.iter().map(|&x| Complex::from(x)).collect();
        let cb: Vec<Complex> = b.iter().map(|&x| Complex::from(x)).collect();
        let combined: Vec<Complex> = ca
            .iter()
            .zip(cb.iter())
            .map(|(x, y)| *x + y.scale(alpha))
            .collect();
        let lhs = fft(&combined).unwrap();
        let fa = fft(&ca).unwrap();
        let fb = fft(&cb).unwrap();
        let scale_bound = a
            .iter()
            .chain(b.iter())
            .fold(0.0f64, |m, x| m.max(x.abs()))
            * (1.0 + alpha.abs());
        let tol = 1e-10 * (1.0 + scale_bound) * a.len() as f64;
        for ((l, x), y) in lhs.iter().zip(fa.iter()).zip(fb.iter()) {
            let rhs = *x + y.scale(alpha);
            prop_assert!((l.re - rhs.re).abs() < tol);
            prop_assert!((l.im - rhs.im).abs() < tol);
        }
    }

    #[test]
    fn parseval_holds_for_power_of_two(signal in finite_signal(128..129)) {
        let input: Vec<Complex> = signal.iter().map(|&x| Complex::from(x)).collect();
        let time: f64 = input.iter().map(Complex::magnitude_squared).sum();
        let spec = fft(&input).unwrap();
        let freq: f64 = spec.iter().map(Complex::magnitude_squared).sum::<f64>() / input.len() as f64;
        let scale = time.abs().max(1.0);
        prop_assert!((time - freq).abs() / scale < 1e-9);
    }

    #[test]
    fn dwt_single_roundtrip_even_lengths(signal in finite_signal(8..200).prop_filter("even", |v| v.len() % 2 == 0)) {
        for wavelet in [Wavelet::Haar, Wavelet::Daubechies2, Wavelet::Daubechies4] {
            if signal.len() < wavelet.filter_len() {
                continue;
            }
            let (a, d) = dwt_single(&signal, wavelet).unwrap();
            let rec = idwt_single(&a, &d, wavelet, signal.len()).unwrap();
            for (x, y) in signal.iter().zip(rec.iter()) {
                prop_assert!((x - y).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn wavedec_waverec_roundtrip(seed in 0u64..1000, levels in 1usize..5) {
        // Generate a deterministic pseudo-random signal of power-of-two length.
        let mut state = seed as f64 + 1.0;
        let signal: Vec<f64> = (0..256)
            .map(|_| {
                state = (state * 16807.0) % 2147483647.0;
                state / 2147483647.0 - 0.5
            })
            .collect();
        let dec = wavedec(&signal, Wavelet::Daubechies4, levels).unwrap();
        let rec = waverec(&dec).unwrap();
        for (x, y) in signal.iter().zip(rec.iter()) {
            prop_assert!((x - y).abs() < 1e-8);
        }
    }

    #[test]
    fn zscore_is_location_scale_invariant_in_shape(signal in finite_signal(4..100), shift in -100.0f64..100.0, scale in 0.1f64..10.0) {
        let z1 = stats::zscore(&signal).unwrap();
        let transformed: Vec<f64> = signal.iter().map(|x| x * scale + shift).collect();
        let z2 = stats::zscore(&transformed).unwrap();
        for (a, b) in z1.iter().zip(z2.iter()) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn relative_band_power_is_bounded(signal in finite_signal(64..512)) {
        let psd = periodogram(&signal, 256.0).unwrap();
        let rel = relative_band_power(&psd, 4.0, 8.0).unwrap();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&rel));
    }

    #[test]
    fn band_power_is_monotone_in_band_width(signal in finite_signal(64..512)) {
        let psd = periodogram(&signal, 256.0).unwrap();
        let narrow = band_power(&psd, 4.0, 8.0).unwrap();
        let wide = band_power(&psd, 0.5, 30.0).unwrap();
        prop_assert!(wide + 1e-12 >= narrow);
    }

    #[test]
    fn windows_are_bounded_by_one(len in 1usize..512) {
        for kind in [WindowKind::Rectangular, WindowKind::Hann, WindowKind::Hamming, WindowKind::Blackman] {
            let w = coefficients(kind, len).unwrap();
            prop_assert!(w.iter().all(|&c| (-1e-9..=1.0 + 1e-12).contains(&c)));
        }
    }

    #[test]
    fn percentile_lies_within_data_range(signal in finite_signal(1..64), p in 0.0f64..100.0) {
        let v = stats::percentile(&signal, p).unwrap();
        let (lo, hi) = stats::min_max(&signal).unwrap();
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    #[test]
    fn geometric_mean_between_min_and_max(signal in prop::collection::vec(1e-3f64..1e3, 1..64)) {
        let g = stats::geometric_mean(&signal).unwrap();
        let (lo, hi) = stats::min_max(&signal).unwrap();
        prop_assert!(g >= lo - 1e-9 && g <= hi + 1e-9);
    }
}
