//! Taper windows used by spectral estimation.

use crate::error::DspError;

/// Taper window shapes supported by [`coefficients`].
///
/// # Example
///
/// ```
/// use seizure_dsp::window::{coefficients, WindowKind};
///
/// # fn main() -> Result<(), seizure_dsp::DspError> {
/// let hann = coefficients(WindowKind::Hann, 8)?;
/// assert_eq!(hann.len(), 8);
/// assert!(hann[0] < 1e-12); // Hann starts at zero
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WindowKind {
    /// Rectangular (boxcar) window: all coefficients equal to one.
    Rectangular,
    /// Hann window, the default choice for Welch PSD estimation.
    #[default]
    Hann,
    /// Hamming window.
    Hamming,
    /// Blackman window, with stronger side-lobe suppression.
    Blackman,
}

/// Returns the coefficients of a window of the given kind and length.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if `len` is zero.
pub fn coefficients(kind: WindowKind, len: usize) -> Result<Vec<f64>, DspError> {
    if len == 0 {
        return Err(DspError::InvalidParameter {
            name: "len",
            reason: "window length must be at least 1".to_string(),
        });
    }
    if len == 1 {
        return Ok(vec![1.0]);
    }
    let n = len as f64 - 1.0;
    let two_pi = 2.0 * std::f64::consts::PI;
    let coeffs = (0..len)
        .map(|i| {
            let x = i as f64 / n;
            match kind {
                WindowKind::Rectangular => 1.0,
                WindowKind::Hann => 0.5 - 0.5 * (two_pi * x).cos(),
                WindowKind::Hamming => 0.54 - 0.46 * (two_pi * x).cos(),
                WindowKind::Blackman => {
                    0.42 - 0.5 * (two_pi * x).cos() + 0.08 * (2.0 * two_pi * x).cos()
                }
            }
        })
        .collect();
    Ok(coeffs)
}

/// Multiplies `signal` element-wise by the window of the given kind.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `signal` is empty.
pub fn apply(kind: WindowKind, signal: &[f64]) -> Result<Vec<f64>, DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput {
            operation: "window::apply",
        });
    }
    let w = coefficients(kind, signal.len())?;
    Ok(signal.iter().zip(w.iter()).map(|(s, c)| s * c).collect())
}

/// Sum of squared window coefficients, used to normalize PSD estimates so that
/// power is preserved (the "window power" correction factor).
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if `len` is zero.
pub fn power_correction(kind: WindowKind, len: usize) -> Result<f64, DspError> {
    Ok(coefficients(kind, len)?.iter().map(|c| c * c).sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_all_ones() {
        let w = coefficients(WindowKind::Rectangular, 16).unwrap();
        assert!(w.iter().all(|&c| (c - 1.0).abs() < 1e-15));
    }

    #[test]
    fn hann_is_symmetric_and_peaks_at_center() {
        let w = coefficients(WindowKind::Hann, 33).unwrap();
        for i in 0..w.len() {
            assert!((w[i] - w[w.len() - 1 - i]).abs() < 1e-12);
        }
        assert!((w[16] - 1.0).abs() < 1e-12);
        assert!(w[0].abs() < 1e-12);
    }

    #[test]
    fn hamming_endpoints() {
        let w = coefficients(WindowKind::Hamming, 11).unwrap();
        assert!((w[0] - 0.08).abs() < 1e-12);
        assert!((w[10] - 0.08).abs() < 1e-12);
    }

    #[test]
    fn blackman_is_nonnegative() {
        let w = coefficients(WindowKind::Blackman, 64).unwrap();
        assert!(w.iter().all(|&c| c >= -1e-12));
    }

    #[test]
    fn zero_length_rejected() {
        assert!(coefficients(WindowKind::Hann, 0).is_err());
    }

    #[test]
    fn length_one_is_unity() {
        assert_eq!(coefficients(WindowKind::Hann, 1).unwrap(), vec![1.0]);
    }

    #[test]
    fn apply_multiplies_elementwise() {
        let signal = vec![2.0; 8];
        let windowed = apply(WindowKind::Hann, &signal).unwrap();
        let w = coefficients(WindowKind::Hann, 8).unwrap();
        for (x, c) in windowed.iter().zip(w.iter()) {
            assert!((x - 2.0 * c).abs() < 1e-12);
        }
    }

    #[test]
    fn apply_empty_rejected() {
        assert!(apply(WindowKind::Hann, &[]).is_err());
    }

    #[test]
    fn power_correction_rectangular_equals_length() {
        let p = power_correction(WindowKind::Rectangular, 50).unwrap();
        assert!((p - 50.0).abs() < 1e-12);
    }

    #[test]
    fn default_kind_is_hann() {
        assert_eq!(WindowKind::default(), WindowKind::Hann);
    }
}
