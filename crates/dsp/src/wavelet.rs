//! Discrete wavelet transform.
//!
//! The paper decomposes each 4-second EEG window "until level seven using the
//! Daubechies 4 (db4) wavelet basis function" (§III-A) and computes nonlinear
//! entropy features on the resulting sub-band coefficients. This module
//! implements the db4 analysis/synthesis filter bank (alongside Haar and db2),
//! single-level and multi-level decompositions with periodic signal extension,
//! and the corresponding reconstructions.

use crate::error::DspError;

/// Wavelet families supported by the transform.
///
/// # Example
///
/// ```
/// use seizure_dsp::Wavelet;
///
/// let db4 = Wavelet::Daubechies4;
/// assert_eq!(db4.low_pass().len(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Wavelet {
    /// Haar wavelet (db1), 2 filter taps.
    Haar,
    /// Daubechies-2 wavelet, 4 filter taps.
    Daubechies2,
    /// Daubechies-4 wavelet, 8 filter taps — the basis used by the paper.
    #[default]
    Daubechies4,
}

// db2 scaling coefficients (4 taps).
const DB2_LOW: [f64; 4] = [
    0.482_962_913_144_690_2,
    0.836_516_303_737_469,
    0.224_143_868_041_857_35,
    -0.129_409_522_550_921_45,
];

// db4 scaling coefficients (8 taps).
const DB4_LOW: [f64; 8] = [
    0.230_377_813_308_855_23,
    0.714_846_570_552_541_5,
    0.630_880_767_929_590_4,
    -0.027_983_769_416_983_85,
    -0.187_034_811_718_881_14,
    0.030_841_381_835_986_965,
    0.032_883_011_666_982_945,
    -0.010_597_401_784_997_278,
];

const HAAR_LOW: [f64; 2] = [
    std::f64::consts::FRAC_1_SQRT_2,
    std::f64::consts::FRAC_1_SQRT_2,
];

impl Wavelet {
    /// Low-pass (scaling) analysis filter coefficients.
    pub fn low_pass(&self) -> &'static [f64] {
        match self {
            Wavelet::Haar => &HAAR_LOW,
            Wavelet::Daubechies2 => &DB2_LOW,
            Wavelet::Daubechies4 => &DB4_LOW,
        }
    }

    /// High-pass (wavelet) analysis filter coefficients, derived from the
    /// low-pass filter by the quadrature-mirror relation.
    pub fn high_pass(&self) -> Vec<f64> {
        let low = self.low_pass();
        let n = low.len();
        (0..n)
            .map(|k| {
                let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
                sign * low[n - 1 - k]
            })
            .collect()
    }

    /// Number of filter taps.
    pub fn filter_len(&self) -> usize {
        self.low_pass().len()
    }

    /// Short lowercase name of the wavelet (e.g. `"db4"`).
    pub fn name(&self) -> &'static str {
        match self {
            Wavelet::Haar => "haar",
            Wavelet::Daubechies2 => "db2",
            Wavelet::Daubechies4 => "db4",
        }
    }

    /// Maximum number of decomposition levels that keeps every level at least
    /// as long as the filter, following the usual `wmaxlev` convention.
    pub fn max_level(&self, signal_len: usize) -> usize {
        if signal_len < self.filter_len() {
            return 0;
        }
        let ratio = signal_len as f64 / (self.filter_len() as f64 - 1.0);
        ratio.log2().floor().max(0.0) as usize
    }
}

impl std::fmt::Display for Wavelet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Result of a multi-level wavelet decomposition (the analogue of `wavedec`).
///
/// The decomposition of a signal at level `L` consists of one approximation
/// band `a_L` and detail bands `d_L, d_{L-1}, …, d_1`, ordered from the coarsest
/// (lowest-frequency) to the finest (highest-frequency) detail.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveletDecomposition {
    wavelet: Wavelet,
    levels: usize,
    original_len: usize,
    approximation: Vec<f64>,
    details: Vec<Vec<f64>>,
}

impl WaveletDecomposition {
    /// The wavelet family used for the decomposition.
    pub fn wavelet(&self) -> Wavelet {
        self.wavelet
    }

    /// Number of decomposition levels.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Length of the signal that was decomposed.
    pub fn original_len(&self) -> usize {
        self.original_len
    }

    /// Approximation coefficients at the deepest level.
    pub fn approximation(&self) -> &[f64] {
        &self.approximation
    }

    /// Detail coefficients for a given level, `1` being the finest level and
    /// `levels()` the coarsest. Returns `None` if the level is out of range.
    pub fn detail(&self, level: usize) -> Option<&[f64]> {
        if level == 0 || level > self.levels {
            return None;
        }
        // details are stored from coarsest (index 0 == level `levels`) to finest.
        Some(&self.details[self.levels - level])
    }

    /// All detail bands ordered from the coarsest (level `levels()`) to the
    /// finest (level 1), mirroring the MATLAB `wavedec` coefficient ordering.
    pub fn details(&self) -> &[Vec<f64>] {
        &self.details
    }

    /// Approximate frequency band `[low, high]` in Hz covered by the detail
    /// coefficients at `level`, for a signal sampled at `fs` Hz.
    ///
    /// Level `l` details cover `[fs / 2^(l+1), fs / 2^l]`; for instance at
    /// 256 Hz the level-7 detail band is `[1, 2]` Hz, squarely inside the delta
    /// band the paper's features focus on.
    pub fn detail_band(&self, level: usize, fs: f64) -> Option<(f64, f64)> {
        if level == 0 || level > self.levels {
            return None;
        }
        let high = fs / 2f64.powi(level as i32);
        let low = fs / 2f64.powi(level as i32 + 1);
        Some((low, high))
    }
}

/// Symmetrically maps an arbitrary (possibly negative) index into `0..len` via
/// periodic extension.
fn periodic_index(idx: isize, len: usize) -> usize {
    let len = len as isize;
    (((idx % len) + len) % len) as usize
}

/// Single-level DWT: returns `(approximation, detail)` coefficient vectors,
/// each of length `ceil(signal.len() / 2)`, using periodic extension.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if the signal is empty and
/// [`DspError::InvalidLength`] if it is shorter than the wavelet filter.
///
/// # Example
///
/// ```
/// use seizure_dsp::{dwt_single, Wavelet};
///
/// # fn main() -> Result<(), seizure_dsp::DspError> {
/// let signal: Vec<f64> = (0..64).map(|i| (i as f64 * 0.2).sin()).collect();
/// let (approx, detail) = dwt_single(&signal, Wavelet::Daubechies4)?;
/// assert_eq!(approx.len(), 32);
/// assert_eq!(detail.len(), 32);
/// # Ok(())
/// # }
/// ```
pub fn dwt_single(signal: &[f64], wavelet: Wavelet) -> Result<(Vec<f64>, Vec<f64>), DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput {
            operation: "dwt_single",
        });
    }
    if signal.len() < wavelet.filter_len() {
        return Err(DspError::InvalidLength {
            operation: "dwt_single",
            actual: signal.len(),
            requirement: "signal must be at least as long as the wavelet filter",
        });
    }
    let half = signal.len().div_ceil(2);
    let mut approx = vec![0.0; half];
    let mut detail = vec![0.0; half];
    dwt_step(
        signal,
        wavelet.low_pass(),
        &wavelet.high_pass(),
        &mut approx,
        &mut detail,
    );
    Ok((approx, detail))
}

/// One analysis filter-bank step with periodic extension, writing into
/// caller-provided coefficient slices of length `ceil(signal.len() / 2)`.
///
/// The output range is split into an interior part, where all filter taps
/// land inside the signal and index with a plain slice window, and a small
/// boundary tail that wraps periodically — the interior loop carries no
/// modulo arithmetic, which is where nearly all of the time goes on the
/// paper's 1024-sample windows.
fn dwt_step(signal: &[f64], low: &[f64], high: &[f64], approx: &mut [f64], detail: &mut [f64]) {
    let n = signal.len();
    let taps = low.len();
    // Outputs with 2i + taps - 1 < n never wrap.
    let interior = if n >= taps { (n - taps) / 2 + 1 } else { 0 };
    let interior = interior.min(approx.len());
    for (i, (a_slot, d_slot)) in approx[..interior]
        .iter_mut()
        .zip(detail[..interior].iter_mut())
        .enumerate()
    {
        let window = &signal[2 * i..2 * i + taps];
        let mut a = 0.0;
        let mut d = 0.0;
        for ((&lo, &hi), &x) in low.iter().zip(high.iter()).zip(window.iter()) {
            a += lo * x;
            d += hi * x;
        }
        *a_slot = a;
        *d_slot = d;
    }
    for (i, (a_slot, d_slot)) in approx
        .iter_mut()
        .zip(detail.iter_mut())
        .enumerate()
        .skip(interior)
    {
        let mut a = 0.0;
        let mut d = 0.0;
        for (k, (&lo, &hi)) in low.iter().zip(high.iter()).enumerate() {
            let idx = periodic_index(2 * i as isize + k as isize, n);
            a += lo * signal[idx];
            d += hi * signal[idx];
        }
        *a_slot = a;
        *d_slot = d;
    }
}

/// Single-level inverse DWT reconstructing a signal of length `output_len` from
/// approximation and detail coefficients produced by [`dwt_single`].
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if either coefficient vector is empty and
/// [`DspError::InvalidLength`] if the vectors have different lengths or
/// `output_len` is inconsistent with them.
pub fn idwt_single(
    approx: &[f64],
    detail: &[f64],
    wavelet: Wavelet,
    output_len: usize,
) -> Result<Vec<f64>, DspError> {
    if approx.is_empty() || detail.is_empty() {
        return Err(DspError::EmptyInput {
            operation: "idwt_single",
        });
    }
    if approx.len() != detail.len() {
        return Err(DspError::InvalidLength {
            operation: "idwt_single",
            actual: detail.len(),
            requirement: "approximation and detail must have the same length",
        });
    }
    if output_len > 2 * approx.len() || output_len + 1 < 2 * approx.len() {
        return Err(DspError::InvalidLength {
            operation: "idwt_single",
            actual: output_len,
            requirement: "output length must be 2*len or 2*len-1 of the coefficient vectors",
        });
    }
    let low = wavelet.low_pass();
    let high = wavelet.high_pass();
    let mut out = vec![0.0; output_len];
    for i in 0..approx.len() {
        for (k, (&lo, &hi)) in low.iter().zip(high.iter()).enumerate() {
            let idx = periodic_index(2 * i as isize + k as isize, output_len);
            out[idx] += lo * approx[i] + hi * detail[i];
        }
    }
    Ok(out)
}

/// Multi-level wavelet decomposition (`wavedec`) down to `levels` levels.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty signal,
/// [`DspError::InvalidParameter`] if `levels` is zero and
/// [`DspError::InvalidLength`] if the signal is too short to support the
/// requested number of levels.
///
/// # Example
///
/// Decompose a 4-second, 256 Hz window to level 7, as the paper does:
///
/// ```
/// use seizure_dsp::{wavedec, Wavelet};
///
/// # fn main() -> Result<(), seizure_dsp::DspError> {
/// let window: Vec<f64> = (0..1024).map(|i| (i as f64 * 0.05).sin()).collect();
/// let dec = wavedec(&window, Wavelet::Daubechies4, 7)?;
/// assert_eq!(dec.levels(), 7);
/// assert_eq!(dec.detail(7).unwrap().len(), 8);
/// // Level 7 details at 256 Hz cover [1, 2] Hz.
/// let (lo, hi) = dec.detail_band(7, 256.0).unwrap();
/// assert!((lo - 1.0).abs() < 1e-9 && (hi - 2.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn wavedec(
    signal: &[f64],
    wavelet: Wavelet,
    levels: usize,
) -> Result<WaveletDecomposition, DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput {
            operation: "wavedec",
        });
    }
    if levels == 0 {
        return Err(DspError::InvalidParameter {
            name: "levels",
            reason: "decomposition requires at least one level".to_string(),
        });
    }
    // Follow the `wmaxlev` convention: the requested depth must not exceed
    // `max_level`, which guarantees that the input of every level stays at
    // least as long as the analysis filter.
    if levels > wavelet.max_level(signal.len()) || signal.len() < wavelet.filter_len() * 2 {
        return Err(DspError::InvalidLength {
            operation: "wavedec",
            actual: signal.len(),
            requirement: "signal too short for the requested number of levels",
        });
    }
    let mut details: Vec<Vec<f64>> = Vec::with_capacity(levels);
    let mut current = signal.to_vec();
    for _ in 0..levels {
        let (a, d) = dwt_single(&current, wavelet)?;
        details.push(d);
        current = a;
    }
    details.reverse(); // coarsest first
    Ok(WaveletDecomposition {
        wavelet,
        levels,
        original_len: signal.len(),
        approximation: current,
        details,
    })
}

/// Reusable multi-level wavelet decomposition workspace.
///
/// A `WaveletWorkspace` is built once per (wavelet, signal length, depth)
/// triple; [`WaveletWorkspace::decompose`] then re-runs `wavedec` into
/// preallocated flat coefficient storage with **zero heap allocations** per
/// call. This is the wavelet half of the batch inference engine's scratch
/// space: each worker thread owns one workspace and reuses it for every
/// sliding window it processes.
///
/// Coefficients live in one flat buffer laid out `[d1 | d2 | … | dL | aL]`
/// (finest detail first, approximation last); [`WaveletWorkspace::detail`]
/// and [`WaveletWorkspace::approximation`] expose the familiar views.
///
/// # Example
///
/// ```
/// use seizure_dsp::wavelet::{wavedec, WaveletWorkspace, Wavelet};
///
/// # fn main() -> Result<(), seizure_dsp::DspError> {
/// let window: Vec<f64> = (0..1024).map(|i| (i as f64 * 0.05).sin()).collect();
/// let mut ws = WaveletWorkspace::new(Wavelet::Daubechies4, window.len(), 7)?;
/// ws.decompose(&window)?;
///
/// let reference = wavedec(&window, Wavelet::Daubechies4, 7)?;
/// assert_eq!(ws.detail(7).unwrap(), reference.detail(7).unwrap());
/// assert_eq!(ws.approximation(), reference.approximation());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WaveletWorkspace {
    wavelet: Wavelet,
    levels: usize,
    signal_len: usize,
    /// Precomputed high-pass filter (the low-pass is borrowed from the
    /// wavelet's static table).
    high: Vec<f64>,
    /// Flat coefficient storage: `[d1 | d2 | … | dL | aL]`.
    coeffs: Vec<f64>,
    /// Per-level `(start, len)` of the detail bands in `coeffs`, finest
    /// (level 1) first.
    detail_bounds: Vec<(usize, usize)>,
    /// `(start, len)` of the deepest approximation band in `coeffs`.
    approx_bounds: (usize, usize),
    /// Ping/pong buffers holding the running approximation between levels.
    ping: Vec<f64>,
    pong: Vec<f64>,
    /// Whether `decompose` has run at least once.
    ready: bool,
}

impl WaveletWorkspace {
    /// Builds a workspace decomposing signals of `signal_len` samples down to
    /// `levels` levels.
    ///
    /// # Errors
    ///
    /// Rejects the same degenerate requests as [`wavedec`]:
    /// [`DspError::EmptyInput`] for a zero-length signal,
    /// [`DspError::InvalidParameter`] for zero levels and
    /// [`DspError::InvalidLength`] when the signal cannot support the depth.
    pub fn new(wavelet: Wavelet, signal_len: usize, levels: usize) -> Result<Self, DspError> {
        if signal_len == 0 {
            return Err(DspError::EmptyInput {
                operation: "WaveletWorkspace::new",
            });
        }
        if levels == 0 {
            return Err(DspError::InvalidParameter {
                name: "levels",
                reason: "decomposition requires at least one level".to_string(),
            });
        }
        if levels > wavelet.max_level(signal_len) || signal_len < wavelet.filter_len() * 2 {
            return Err(DspError::InvalidLength {
                operation: "WaveletWorkspace::new",
                actual: signal_len,
                requirement: "signal too short for the requested number of levels",
            });
        }
        let mut detail_bounds = Vec::with_capacity(levels);
        let mut offset = 0;
        let mut len = signal_len;
        for _ in 0..levels {
            len = len.div_ceil(2);
            detail_bounds.push((offset, len));
            offset += len;
        }
        let approx_bounds = (offset, len);
        let max_band = signal_len.div_ceil(2);
        Ok(Self {
            wavelet,
            levels,
            signal_len,
            high: wavelet.high_pass(),
            coeffs: vec![0.0; offset + len],
            detail_bounds,
            approx_bounds,
            ping: vec![0.0; max_band],
            pong: vec![0.0; max_band],
            ready: false,
        })
    }

    /// The wavelet family of the workspace.
    pub fn wavelet(&self) -> Wavelet {
        self.wavelet
    }

    /// Number of decomposition levels.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The signal length the workspace was built for.
    pub fn signal_len(&self) -> usize {
        self.signal_len
    }

    /// Decomposes `signal` in place of the previous contents. No heap
    /// allocations are performed.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidLength`] if `signal` does not match the
    /// planned length.
    pub fn decompose(&mut self, signal: &[f64]) -> Result<(), DspError> {
        if signal.len() != self.signal_len {
            return Err(DspError::InvalidLength {
                operation: "WaveletWorkspace::decompose",
                actual: signal.len(),
                requirement: "signal length must match the workspace's planned length",
            });
        }
        let low = self.wavelet.low_pass();
        let mut current_len = self.signal_len;
        for level in 0..self.levels {
            let (d_start, d_len) = self.detail_bounds[level];
            let detail = &mut self.coeffs[d_start..d_start + d_len];
            let half = current_len.div_ceil(2);
            debug_assert_eq!(half, d_len);
            if level == 0 {
                dwt_step(signal, low, &self.high, &mut self.ping[..half], detail);
            } else {
                dwt_step(
                    &self.pong[..current_len],
                    low,
                    &self.high,
                    &mut self.ping[..half],
                    detail,
                );
            }
            std::mem::swap(&mut self.ping, &mut self.pong);
            current_len = half;
        }
        let (a_start, a_len) = self.approx_bounds;
        debug_assert_eq!(a_len, current_len);
        self.coeffs[a_start..a_start + a_len].copy_from_slice(&self.pong[..a_len]);
        self.ready = true;
        Ok(())
    }

    /// Detail coefficients of the most recent decomposition, `1` being the
    /// finest level. Returns `None` before the first [`decompose`] call or
    /// for an out-of-range level.
    ///
    /// [`decompose`]: WaveletWorkspace::decompose
    pub fn detail(&self, level: usize) -> Option<&[f64]> {
        if !self.ready || level == 0 || level > self.levels {
            return None;
        }
        let (start, len) = self.detail_bounds[level - 1];
        Some(&self.coeffs[start..start + len])
    }

    /// Approximation coefficients at the deepest level of the most recent
    /// decomposition (empty before the first [`decompose`] call).
    ///
    /// [`decompose`]: WaveletWorkspace::decompose
    pub fn approximation(&self) -> &[f64] {
        if !self.ready {
            return &[];
        }
        let (start, len) = self.approx_bounds;
        &self.coeffs[start..start + len]
    }
}

/// Multi-level decomposition into a reusable [`WaveletWorkspace`] — the
/// allocation-free counterpart of [`wavedec`].
///
/// # Errors
///
/// Returns [`DspError::InvalidLength`] if the signal length does not match
/// the workspace.
pub fn wavedec_into(signal: &[f64], workspace: &mut WaveletWorkspace) -> Result<(), DspError> {
    workspace.decompose(signal)
}

/// Reconstructs the original signal from a [`WaveletDecomposition`] (`waverec`).
///
/// # Errors
///
/// Returns the errors of [`idwt_single`] if the stored coefficient vectors are
/// inconsistent (which cannot happen for values produced by [`wavedec`]).
pub fn waverec(decomposition: &WaveletDecomposition) -> Result<Vec<f64>, DspError> {
    let mut lengths = Vec::with_capacity(decomposition.levels);
    let mut len = decomposition.original_len;
    for _ in 0..decomposition.levels {
        lengths.push(len);
        len = len.div_ceil(2);
    }
    let mut current = decomposition.approximation.clone();
    // details are stored coarsest-first; reconstruct from the deepest level up.
    for (i, detail) in decomposition.details.iter().enumerate() {
        let target_len = lengths[decomposition.levels - 1 - i];
        current = idwt_single(&current, detail, decomposition.wavelet, target_len)?;
    }
    Ok(current)
}

/// Streaming multi-level DWT over sliding windows that advance by a fixed
/// hop, reusing every coefficient the window overlap already paid for.
///
/// With periodic extension, a window's level-`l` coefficient band splits into
/// a **clean prefix** — coefficients whose filter taps land entirely inside
/// the clean prefix of the band above, which are therefore shift-covariant:
/// window `w+1`'s clean coefficient `i` equals window `w`'s coefficient
/// `i + step/2^l` — and a short **corrupted tail** (at most `taps - 2`
/// coefficients per level for the wrap, plus the few that read the previous
/// band's own tail) that must be recomputed for every window. Per window this
/// operator shifts each clean prefix left with `copy_within`, computes only
/// the `step/2^l` newly exposed clean coefficients, and recomputes the tail,
/// instead of re-running the full filter bank — for the paper's 1024-sample
/// window with a 256-sample hop that is roughly a 4–5× reduction in filter
/// work.
///
/// Outputs are **bit-identical** to [`WaveletWorkspace::decompose`] on the
/// same window: clean, interior-tail and wrapping-tail coefficients are all
/// produced by the same ascending-tap accumulation as the batch filter step,
/// so there is no error model to carry — only the operation schedule changes.
///
/// Approximation bands are maintained for every level (each feeds the next);
/// detail bands are maintained only for `min_detail_level..=levels`, so
/// callers that consume only coarse sub-bands (like the rich feature set's
/// level 3–5 wavelet entropies) don't pay memory or shifts for the fine ones.
///
/// The contract is that consecutive [`StreamingWavelet::update`] calls
/// receive windows of the same record offset by exactly `step` samples;
/// [`StreamingWavelet::reset`] starts a new record.
///
/// # Example
///
/// ```
/// use seizure_dsp::wavelet::{StreamingWavelet, Wavelet, WaveletWorkspace};
///
/// # fn main() -> Result<(), seizure_dsp::DspError> {
/// let record: Vec<f64> = (0..2048).map(|i| (i as f64 * 0.05).sin()).collect();
/// let mut streaming = StreamingWavelet::new(Wavelet::Daubechies4, 1024, 256, 5, 3)?;
/// let mut batch = WaveletWorkspace::new(Wavelet::Daubechies4, 1024, 5)?;
/// for start in (0..=1024).step_by(256) {
///     let window = &record[start..start + 1024];
///     streaming.update(window)?;
///     batch.decompose(window)?;
///     assert_eq!(streaming.detail(4).unwrap(), batch.detail(4).unwrap());
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingWavelet {
    wavelet: Wavelet,
    levels: usize,
    window_len: usize,
    step: usize,
    min_detail_level: usize,
    /// Precomputed high-pass filter.
    high: Vec<f64>,
    /// Per-level clean-prefix length `c_l`, level 1 first; follows the
    /// recurrence `c_l = (c_{l-1} - taps) / 2 + 1` with `c_0 = window_len`.
    clean: Vec<usize>,
    /// Per-level approximation band of the current window, level 1 first,
    /// `window_len >> l` coefficients each: clean prefix then corrupted tail.
    approx: Vec<Vec<f64>>,
    /// Per-level detail band, empty below `min_detail_level`.
    detail: Vec<Vec<f64>>,
    /// Whether `update` has run at least once since construction/reset.
    ready: bool,
}

impl StreamingWavelet {
    /// Builds a streaming decomposition of `window_len`-sample windows
    /// advancing by `step` samples, down to `levels` levels, keeping detail
    /// bands from `min_detail_level` up.
    ///
    /// # Errors
    ///
    /// Returns the [`WaveletWorkspace::new`] errors for degenerate window
    /// geometry, plus [`DspError::InvalidParameter`] when `step` or
    /// `window_len` is not a positive multiple of `2^levels` or
    /// `min_detail_level` is outside `1..=levels`, and
    /// [`DspError::InvalidLength`] when the window/hop geometry leaves a
    /// level with fewer clean coefficients than it must produce per hop
    /// (i.e. nothing would be reusable and batch recompute is the answer).
    pub fn new(
        wavelet: Wavelet,
        window_len: usize,
        step: usize,
        levels: usize,
        min_detail_level: usize,
    ) -> Result<Self, DspError> {
        if window_len == 0 {
            return Err(DspError::EmptyInput {
                operation: "StreamingWavelet::new",
            });
        }
        if levels == 0 {
            return Err(DspError::InvalidParameter {
                name: "levels",
                reason: "decomposition requires at least one level".to_string(),
            });
        }
        if levels > wavelet.max_level(window_len) || window_len < wavelet.filter_len() * 2 {
            return Err(DspError::InvalidLength {
                operation: "StreamingWavelet::new",
                actual: window_len,
                requirement: "signal too short for the requested number of levels",
            });
        }
        let scale = 1usize << levels;
        if step == 0 || !step.is_multiple_of(scale) {
            return Err(DspError::InvalidParameter {
                name: "step",
                reason: format!(
                    "hop must be a positive multiple of 2^levels = {scale}, got {step}"
                ),
            });
        }
        if !window_len.is_multiple_of(scale) {
            return Err(DspError::InvalidParameter {
                name: "window_len",
                reason: format!(
                    "window length must be a multiple of 2^levels = {scale}, got {window_len}"
                ),
            });
        }
        if min_detail_level == 0 || min_detail_level > levels {
            return Err(DspError::InvalidParameter {
                name: "min_detail_level",
                reason: format!("must be within 1..=levels ({levels}), got {min_detail_level}"),
            });
        }
        let taps = wavelet.filter_len();
        let mut clean = Vec::with_capacity(levels);
        let mut c_prev = window_len;
        for level in 1..=levels {
            let c = if c_prev >= taps {
                (c_prev - taps) / 2 + 1
            } else {
                0
            };
            if c < step >> level {
                return Err(DspError::InvalidLength {
                    operation: "StreamingWavelet::new",
                    actual: window_len,
                    requirement:
                        "window/hop geometry must retain at least one hop of clean coefficients per level",
                });
            }
            clean.push(c);
            c_prev = c;
        }
        let approx = (1..=levels).map(|l| vec![0.0; window_len >> l]).collect();
        let detail = (1..=levels)
            .map(|l| {
                if l >= min_detail_level {
                    vec![0.0; window_len >> l]
                } else {
                    Vec::new()
                }
            })
            .collect();
        Ok(Self {
            wavelet,
            levels,
            window_len,
            step,
            min_detail_level,
            high: wavelet.high_pass(),
            clean,
            approx,
            detail,
            ready: false,
        })
    }

    /// The wavelet family of the operator.
    pub fn wavelet(&self) -> Wavelet {
        self.wavelet
    }

    /// Number of decomposition levels.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The window length the operator was built for.
    pub fn window_len(&self) -> usize {
        self.window_len
    }

    /// Samples the window advances between consecutive `update` calls.
    pub fn step(&self) -> usize {
        self.step
    }

    /// Finest detail level that is maintained.
    pub fn min_detail_level(&self) -> usize {
        self.min_detail_level
    }

    /// Number of `f64` coefficient slots carried across windows (approximation
    /// plus maintained detail bands) — the retained state the edge memory
    /// model prices per channel.
    pub fn state_len(&self) -> usize {
        let approx: usize = self.approx.iter().map(Vec::len).sum();
        let detail: usize = self.detail.iter().map(Vec::len).sum();
        approx + detail
    }

    /// Forgets all carried coefficients so the next [`update`] treats its
    /// window as the start of a new record.
    ///
    /// [`update`]: StreamingWavelet::update
    pub fn reset(&mut self) {
        self.ready = false;
    }

    /// Decomposes the next window of the record. The first call after
    /// construction or [`reset`] computes every band in full; subsequent
    /// calls assume `window` is the previous window advanced by exactly
    /// `step` samples and only compute what the overlap cannot supply.
    /// No heap allocations are performed.
    ///
    /// [`reset`]: StreamingWavelet::reset
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidLength`] if `window` does not match the
    /// planned length.
    // lint: hot-path
    pub fn update(&mut self, window: &[f64]) -> Result<(), DspError> {
        if window.len() != self.window_len {
            return Err(DspError::InvalidLength {
                operation: "StreamingWavelet::update",
                actual: window.len(),
                requirement: "window length must match the operator's planned length",
            });
        }
        let first = !self.ready;
        let low = self.wavelet.low_pass();
        let taps = low.len();
        for level in 1..=self.levels {
            let n = self.window_len >> level;
            let n_prev = self.window_len >> (level - 1);
            let c = self.clean[level - 1];
            let hop = self.step >> level;
            let (prev_bufs, cur_bufs) = self.approx.split_at_mut(level - 1);
            let prev_full: &[f64] = if level == 1 {
                window
            } else {
                &prev_bufs[level - 2]
            };
            let approx = &mut cur_bufs[0];
            let detail = &mut self.detail[level - 1];
            let has_detail = !detail.is_empty();
            let new_start = if first { 0 } else { c - hop };
            if !first {
                // Clean coefficients are shift-covariant: drop the first
                // `hop` of them, keep the rest.
                approx.copy_within(hop..c, 0);
                if has_detail {
                    detail.copy_within(hop..c, 0);
                }
            }
            // Newly exposed clean coefficients: every tap lands inside the
            // previous band's clean prefix (guaranteed by the `clean`
            // recurrence), so a plain slice window suffices — identical
            // arithmetic to the batch filter step's interior loop.
            for i in new_start..c {
                let input = &prev_full[2 * i..2 * i + taps];
                let mut a = 0.0;
                let mut d = 0.0;
                for ((&lo, &hi), &x) in low.iter().zip(self.high.iter()).zip(input.iter()) {
                    a += lo * x;
                    d += hi * x;
                }
                approx[i] = a;
                if has_detail {
                    detail[i] = d;
                }
            }
            // Corrupted tail: taps either read the previous band's own tail
            // or wrap around the periodic boundary; recomputed every window
            // with the same indexing as the batch boundary loop.
            for i in c..n {
                let mut a = 0.0;
                let mut d = 0.0;
                for (k, (&lo, &hi)) in low.iter().zip(self.high.iter()).enumerate() {
                    let idx = periodic_index(2 * i as isize + k as isize, n_prev);
                    let x = prev_full[idx];
                    a += lo * x;
                    d += hi * x;
                }
                approx[i] = a;
                if has_detail {
                    detail[i] = d;
                }
            }
        }
        self.ready = true;
        Ok(())
    }

    /// Detail coefficients of the most recent window, `1` being the finest
    /// level. Returns `None` before the first [`update`] call, for an
    /// out-of-range level, or for a level below `min_detail_level`.
    ///
    /// [`update`]: StreamingWavelet::update
    pub fn detail(&self, level: usize) -> Option<&[f64]> {
        if !self.ready || level == 0 || level > self.levels {
            return None;
        }
        let buf = &self.detail[level - 1];
        if buf.is_empty() {
            None
        } else {
            Some(buf.as_slice())
        }
    }

    /// Approximation coefficients at the deepest level of the most recent
    /// window (empty before the first [`update`] call).
    ///
    /// [`update`]: StreamingWavelet::update
    pub fn approximation(&self) -> &[f64] {
        if !self.ready {
            return &[];
        }
        self.approx[self.levels - 1].as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    fn test_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / 256.0;
                (2.0 * std::f64::consts::PI * 3.0 * t).sin()
                    + 0.5 * (2.0 * std::f64::consts::PI * 17.0 * t).cos()
                    + 0.1 * (i as f64 * 0.71).sin()
            })
            .collect()
    }

    #[test]
    fn filters_have_expected_lengths() {
        assert_eq!(Wavelet::Haar.filter_len(), 2);
        assert_eq!(Wavelet::Daubechies2.filter_len(), 4);
        assert_eq!(Wavelet::Daubechies4.filter_len(), 8);
    }

    #[test]
    fn low_pass_filters_sum_to_sqrt_two() {
        for w in [Wavelet::Haar, Wavelet::Daubechies2, Wavelet::Daubechies4] {
            let sum: f64 = w.low_pass().iter().sum();
            assert!((sum - std::f64::consts::SQRT_2).abs() < 1e-9, "{w}");
        }
    }

    #[test]
    fn high_pass_filters_sum_to_zero() {
        for w in [Wavelet::Haar, Wavelet::Daubechies2, Wavelet::Daubechies4] {
            let sum: f64 = w.high_pass().iter().sum();
            assert!(sum.abs() < 1e-9, "{w}");
        }
    }

    #[test]
    fn filters_are_orthonormal() {
        for w in [Wavelet::Haar, Wavelet::Daubechies2, Wavelet::Daubechies4] {
            let low = w.low_pass();
            let norm: f64 = low.iter().map(|c| c * c).sum();
            assert!((norm - 1.0).abs() < 1e-9, "{w}");
        }
    }

    #[test]
    fn dwt_rejects_degenerate_inputs() {
        assert!(dwt_single(&[], Wavelet::Haar).is_err());
        assert!(dwt_single(&[1.0, 2.0, 3.0], Wavelet::Daubechies4).is_err());
    }

    #[test]
    fn dwt_output_lengths() {
        let x = test_signal(100);
        let (a, d) = dwt_single(&x, Wavelet::Daubechies4).unwrap();
        assert_eq!(a.len(), 50);
        assert_eq!(d.len(), 50);
        let x = test_signal(101);
        let (a, d) = dwt_single(&x, Wavelet::Daubechies4).unwrap();
        assert_eq!(a.len(), 51);
        assert_eq!(d.len(), 51);
    }

    #[test]
    fn single_level_perfect_reconstruction_even_length() {
        for w in [Wavelet::Haar, Wavelet::Daubechies2, Wavelet::Daubechies4] {
            let x = test_signal(256);
            let (a, d) = dwt_single(&x, w).unwrap();
            let rec = idwt_single(&a, &d, w, x.len()).unwrap();
            assert!(max_abs_diff(&x, &rec) < 1e-9, "{w}");
        }
    }

    #[test]
    fn constant_signal_has_zero_details() {
        let x = vec![3.0; 128];
        let (_, d) = dwt_single(&x, Wavelet::Daubechies4).unwrap();
        assert!(d.iter().all(|v| v.abs() < 1e-9));
    }

    #[test]
    fn db4_kills_cubic_polynomials_in_detail_band() {
        // db4 has 4 vanishing moments, so details of a cubic are ~0 away from
        // the periodic wrap-around boundary.
        let x: Vec<f64> = (0..256)
            .map(|i| {
                let t = i as f64 / 256.0;
                1.0 + t + t * t + t * t * t
            })
            .collect();
        let (_, d) = dwt_single(&x, Wavelet::Daubechies4).unwrap();
        // Ignore the last few coefficients affected by periodic wrap-around.
        let interior = &d[..d.len() - 4];
        assert!(interior.iter().all(|v| v.abs() < 1e-6));
    }

    #[test]
    fn wavedec_level7_on_paper_window() {
        // 4-second window at 256 Hz = 1024 samples, decomposed to level 7.
        let x = test_signal(1024);
        let dec = wavedec(&x, Wavelet::Daubechies4, 7).unwrap();
        assert_eq!(dec.levels(), 7);
        assert_eq!(dec.approximation().len(), 8);
        assert_eq!(dec.detail(1).unwrap().len(), 512);
        assert_eq!(dec.detail(7).unwrap().len(), 8);
        assert!(dec.detail(8).is_none());
        assert!(dec.detail(0).is_none());
    }

    #[test]
    fn wavedec_rejects_invalid_requests() {
        let x = test_signal(64);
        assert!(wavedec(&[], Wavelet::Daubechies4, 3).is_err());
        assert!(wavedec(&x, Wavelet::Daubechies4, 0).is_err());
        // 64 samples cannot support 7 levels of db4.
        assert!(wavedec(&x, Wavelet::Daubechies4, 7).is_err());
    }

    #[test]
    fn waverec_inverts_wavedec() {
        for levels in 1..=5 {
            let x = test_signal(1024);
            let dec = wavedec(&x, Wavelet::Daubechies4, levels).unwrap();
            let rec = waverec(&dec).unwrap();
            assert_eq!(rec.len(), x.len());
            assert!(max_abs_diff(&x, &rec) < 1e-8, "levels={levels}");
        }
    }

    #[test]
    fn waverec_inverts_wavedec_level7() {
        let x = test_signal(1024);
        let dec = wavedec(&x, Wavelet::Daubechies4, 7).unwrap();
        let rec = waverec(&dec).unwrap();
        assert!(max_abs_diff(&x, &rec) < 1e-8);
    }

    #[test]
    fn energy_is_preserved_by_orthonormal_transform() {
        let x = test_signal(512);
        let dec = wavedec(&x, Wavelet::Daubechies4, 4).unwrap();
        let coeff_energy: f64 = dec.approximation().iter().map(|c| c * c).sum::<f64>()
            + dec
                .details()
                .iter()
                .map(|d| d.iter().map(|c| c * c).sum::<f64>())
                .sum::<f64>();
        let signal_energy: f64 = x.iter().map(|v| v * v).sum();
        assert!((coeff_energy - signal_energy).abs() / signal_energy < 1e-9);
    }

    #[test]
    fn detail_band_frequencies_at_256hz() {
        let x = test_signal(1024);
        let dec = wavedec(&x, Wavelet::Daubechies4, 7).unwrap();
        let (lo1, hi1) = dec.detail_band(1, 256.0).unwrap();
        assert_eq!((lo1, hi1), (64.0, 128.0));
        let (lo6, hi6) = dec.detail_band(6, 256.0).unwrap();
        assert_eq!((lo6, hi6), (2.0, 4.0));
        assert!(dec.detail_band(0, 256.0).is_none());
        assert!(dec.detail_band(8, 256.0).is_none());
    }

    #[test]
    fn max_level_matches_wmaxlev_convention() {
        assert_eq!(Wavelet::Daubechies4.max_level(1024), 7);
        assert_eq!(Wavelet::Haar.max_level(1024), 10);
        assert_eq!(Wavelet::Daubechies4.max_level(4), 0);
    }

    #[test]
    fn workspace_matches_wavedec_exactly() {
        let x = test_signal(1024);
        for levels in [1usize, 3, 5, 7] {
            let mut ws = WaveletWorkspace::new(Wavelet::Daubechies4, x.len(), levels).unwrap();
            wavedec_into(&x, &mut ws).unwrap();
            let reference = wavedec(&x, Wavelet::Daubechies4, levels).unwrap();
            for level in 1..=levels {
                assert_eq!(
                    ws.detail(level).unwrap(),
                    reference.detail(level).unwrap(),
                    "levels={levels} level={level}"
                );
            }
            assert_eq!(ws.approximation(), reference.approximation());
        }
    }

    #[test]
    fn workspace_is_reusable_across_signals() {
        let a = test_signal(256);
        let b: Vec<f64> = a.iter().map(|v| v * 2.0 + 1.0).collect();
        let mut ws = WaveletWorkspace::new(Wavelet::Daubechies4, 256, 4).unwrap();
        ws.decompose(&a).unwrap();
        let first_d2 = ws.detail(2).unwrap().to_vec();
        ws.decompose(&b).unwrap();
        let reference = wavedec(&b, Wavelet::Daubechies4, 4).unwrap();
        assert_eq!(ws.detail(2).unwrap(), reference.detail(2).unwrap());
        assert_ne!(ws.detail(2).unwrap(), &first_d2[..]);
        // Going back to the first signal reproduces the original output.
        ws.decompose(&a).unwrap();
        assert_eq!(ws.detail(2).unwrap(), &first_d2[..]);
    }

    #[test]
    fn workspace_on_odd_lengths_matches_wavedec() {
        let x = test_signal(100);
        let mut ws = WaveletWorkspace::new(Wavelet::Daubechies2, x.len(), 3).unwrap();
        ws.decompose(&x).unwrap();
        let reference = wavedec(&x, Wavelet::Daubechies2, 3).unwrap();
        for level in 1..=3 {
            assert_eq!(ws.detail(level).unwrap(), reference.detail(level).unwrap());
        }
        assert_eq!(ws.approximation(), reference.approximation());
    }

    #[test]
    fn workspace_validation_and_accessors() {
        assert!(WaveletWorkspace::new(Wavelet::Daubechies4, 0, 3).is_err());
        assert!(WaveletWorkspace::new(Wavelet::Daubechies4, 64, 0).is_err());
        assert!(WaveletWorkspace::new(Wavelet::Daubechies4, 64, 7).is_err());
        let mut ws = WaveletWorkspace::new(Wavelet::Haar, 64, 3).unwrap();
        assert_eq!(ws.wavelet(), Wavelet::Haar);
        assert_eq!(ws.levels(), 3);
        assert_eq!(ws.signal_len(), 64);
        // Before the first decomposition no views are available.
        assert!(ws.detail(1).is_none());
        assert!(ws.approximation().is_empty());
        assert!(ws.decompose(&[0.0; 32]).is_err());
        ws.decompose(&[1.0; 64]).unwrap();
        assert!(ws.detail(0).is_none());
        assert!(ws.detail(4).is_none());
        assert_eq!(ws.detail(1).unwrap().len(), 32);
        assert_eq!(ws.approximation().len(), 8);
    }

    #[test]
    fn streaming_matches_workspace_bit_exactly() {
        let record = test_signal(1024 + 12 * 256);
        let mut streaming = StreamingWavelet::new(Wavelet::Daubechies4, 1024, 256, 5, 1).unwrap();
        let mut batch = WaveletWorkspace::new(Wavelet::Daubechies4, 1024, 5).unwrap();
        let mut windows = 0;
        for start in (0..=record.len() - 1024).step_by(256) {
            let window = &record[start..start + 1024];
            streaming.update(window).unwrap();
            batch.decompose(window).unwrap();
            for level in 1..=5 {
                assert_eq!(
                    streaming.detail(level).unwrap(),
                    batch.detail(level).unwrap(),
                    "start={start} level={level}"
                );
            }
            assert_eq!(
                streaming.approximation(),
                batch.approximation(),
                "start={start}"
            );
            windows += 1;
        }
        assert_eq!(windows, 13);
    }

    #[test]
    fn streaming_min_detail_level_skips_fine_bands() {
        let record = test_signal(1024 + 4 * 256);
        let mut streaming = StreamingWavelet::new(Wavelet::Daubechies4, 1024, 256, 5, 3).unwrap();
        let mut batch = WaveletWorkspace::new(Wavelet::Daubechies4, 1024, 5).unwrap();
        for start in (0..=record.len() - 1024).step_by(256) {
            let window = &record[start..start + 1024];
            streaming.update(window).unwrap();
            batch.decompose(window).unwrap();
            assert!(streaming.detail(1).is_none());
            assert!(streaming.detail(2).is_none());
            for level in 3..=5 {
                assert_eq!(
                    streaming.detail(level).unwrap(),
                    batch.detail(level).unwrap(),
                    "start={start} level={level}"
                );
            }
        }
        // Skipped fine bands shrink the carried state accordingly.
        let full = StreamingWavelet::new(Wavelet::Daubechies4, 1024, 256, 5, 1).unwrap();
        assert_eq!(full.state_len() - streaming.state_len(), 512 + 256);
    }

    #[test]
    fn streaming_matches_workspace_across_geometries() {
        for (wavelet, window, step, levels) in [
            (Wavelet::Daubechies4, 512usize, 128usize, 4usize),
            (Wavelet::Daubechies4, 256, 64, 5),
            (Wavelet::Daubechies2, 256, 64, 3),
            (Wavelet::Haar, 256, 128, 2),
        ] {
            let record = test_signal(window + 6 * step);
            let mut streaming = StreamingWavelet::new(wavelet, window, step, levels, 1).unwrap();
            let mut batch = WaveletWorkspace::new(wavelet, window, levels).unwrap();
            for start in (0..=record.len() - window).step_by(step) {
                let w = &record[start..start + window];
                streaming.update(w).unwrap();
                batch.decompose(w).unwrap();
                for level in 1..=levels {
                    assert_eq!(
                        streaming.detail(level).unwrap(),
                        batch.detail(level).unwrap(),
                        "{wavelet} window={window} step={step} start={start} level={level}"
                    );
                }
                assert_eq!(streaming.approximation(), batch.approximation());
            }
        }
    }

    #[test]
    fn streaming_reset_restarts_the_record() {
        let record = test_signal(1024 + 2 * 256);
        let mut streaming = StreamingWavelet::new(Wavelet::Daubechies4, 1024, 256, 5, 1).unwrap();
        for start in (0..=record.len() - 1024).step_by(256) {
            streaming.update(&record[start..start + 1024]).unwrap();
        }
        // Jump to an unrelated offset: without a reset the shift assumption
        // is violated, with one the output matches a fresh decomposition.
        streaming.reset();
        assert!(streaming.detail(3).is_none());
        let window = &record[128..128 + 1024];
        streaming.update(window).unwrap();
        let mut batch = WaveletWorkspace::new(Wavelet::Daubechies4, 1024, 5).unwrap();
        batch.decompose(window).unwrap();
        assert_eq!(streaming.detail(3).unwrap(), batch.detail(3).unwrap());
    }

    #[test]
    fn streaming_validation() {
        // Hop not a multiple of 2^levels.
        assert!(StreamingWavelet::new(Wavelet::Daubechies4, 1024, 100, 5, 1).is_err());
        // Zero hop, zero levels, empty window.
        assert!(StreamingWavelet::new(Wavelet::Daubechies4, 1024, 0, 5, 1).is_err());
        assert!(StreamingWavelet::new(Wavelet::Daubechies4, 1024, 256, 0, 1).is_err());
        assert!(StreamingWavelet::new(Wavelet::Daubechies4, 0, 256, 5, 1).is_err());
        // Non-overlapping windows leave no reusable coefficients.
        assert!(StreamingWavelet::new(Wavelet::Daubechies4, 1024, 1024, 5, 1).is_err());
        // min_detail_level outside 1..=levels.
        assert!(StreamingWavelet::new(Wavelet::Daubechies4, 1024, 256, 5, 0).is_err());
        assert!(StreamingWavelet::new(Wavelet::Daubechies4, 1024, 256, 5, 6).is_err());
        // Too deep for the window.
        assert!(StreamingWavelet::new(Wavelet::Daubechies4, 64, 32, 7, 1).is_err());

        let mut ok = StreamingWavelet::new(Wavelet::Daubechies4, 1024, 256, 5, 3).unwrap();
        assert_eq!(ok.wavelet(), Wavelet::Daubechies4);
        assert_eq!(ok.levels(), 5);
        assert_eq!(ok.window_len(), 1024);
        assert_eq!(ok.step(), 256);
        assert_eq!(ok.min_detail_level(), 3);
        assert!(ok.detail(3).is_none());
        assert!(ok.approximation().is_empty());
        assert!(ok.update(&[0.0; 512]).is_err());
    }

    #[test]
    fn display_names() {
        assert_eq!(Wavelet::Daubechies4.to_string(), "db4");
        assert_eq!(Wavelet::Haar.to_string(), "haar");
        assert_eq!(Wavelet::Daubechies2.to_string(), "db2");
    }
}
