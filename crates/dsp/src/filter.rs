//! Digital filtering used to condition raw EEG channels.
//!
//! Wearable EEG front-ends typically apply a high-pass filter to remove
//! electrode drift, a power-line notch and optionally a band-pass restricted to
//! the clinically relevant 0.5–40 Hz range before feature extraction. This
//! module provides windowed-sinc FIR design, biquad IIR sections and
//! forward–backward (zero-phase) filtering.

use crate::error::DspError;
use crate::window::{coefficients, WindowKind};

/// A finite-impulse-response filter described by its tap coefficients.
///
/// # Example
///
/// ```
/// use seizure_dsp::filter::FirFilter;
///
/// # fn main() -> Result<(), seizure_dsp::DspError> {
/// let lp = FirFilter::low_pass(64.0, 256.0, 65)?;
/// let filtered = lp.filter(&vec![1.0; 512]);
/// assert_eq!(filtered.len(), 512);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FirFilter {
    taps: Vec<f64>,
}

impl FirFilter {
    /// Creates a filter from explicit tap coefficients.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] if `taps` is empty.
    pub fn from_taps(taps: Vec<f64>) -> Result<Self, DspError> {
        if taps.is_empty() {
            return Err(DspError::EmptyInput {
                operation: "FirFilter::from_taps",
            });
        }
        Ok(Self { taps })
    }

    /// Designs a windowed-sinc low-pass filter with the given cutoff.
    ///
    /// `num_taps` should be odd so that the filter has a symmetric, linear-phase
    /// impulse response centred on an integer delay.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if the cutoff does not lie in
    /// `(0, fs/2)`, `fs` is not positive, or `num_taps` is zero or even.
    pub fn low_pass(cutoff_hz: f64, fs: f64, num_taps: usize) -> Result<Self, DspError> {
        validate_design(cutoff_hz, fs, num_taps)?;
        let fc = cutoff_hz / fs;
        let m = (num_taps - 1) as f64;
        let hamming = coefficients(WindowKind::Hamming, num_taps)?;
        let mut taps: Vec<f64> = (0..num_taps)
            .map(|n| {
                let x = n as f64 - m / 2.0;
                let sinc = if x == 0.0 {
                    2.0 * fc
                } else {
                    (2.0 * std::f64::consts::PI * fc * x).sin() / (std::f64::consts::PI * x)
                };
                sinc * hamming[n]
            })
            .collect();
        // Normalize to unit DC gain.
        let sum: f64 = taps.iter().sum();
        for t in &mut taps {
            *t /= sum;
        }
        Ok(Self { taps })
    }

    /// Designs a windowed-sinc high-pass filter by spectral inversion of the
    /// corresponding low-pass design.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FirFilter::low_pass`].
    pub fn high_pass(cutoff_hz: f64, fs: f64, num_taps: usize) -> Result<Self, DspError> {
        let lp = Self::low_pass(cutoff_hz, fs, num_taps)?;
        let mut taps: Vec<f64> = lp.taps.iter().map(|t| -t).collect();
        let centre = (num_taps - 1) / 2;
        taps[centre] += 1.0;
        Ok(Self { taps })
    }

    /// Designs a band-pass filter as the cascade-free difference of two
    /// low-pass designs.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `low_hz >= high_hz` or either
    /// edge fails the single-edge validation.
    pub fn band_pass(
        low_hz: f64,
        high_hz: f64,
        fs: f64,
        num_taps: usize,
    ) -> Result<Self, DspError> {
        if low_hz >= high_hz {
            return Err(DspError::InvalidParameter {
                name: "band",
                reason: format!("band edges must satisfy low < high, got [{low_hz}, {high_hz}]"),
            });
        }
        let lp_high = Self::low_pass(high_hz, fs, num_taps)?;
        let lp_low = Self::low_pass(low_hz, fs, num_taps)?;
        let taps = lp_high
            .taps
            .iter()
            .zip(lp_low.taps.iter())
            .map(|(h, l)| h - l)
            .collect();
        Ok(Self { taps })
    }

    /// Filter tap coefficients.
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// Number of taps.
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// Returns `true` if the filter has no taps (cannot happen for constructed
    /// filters, provided for completeness).
    pub fn is_empty(&self) -> bool {
        self.taps.is_empty()
    }

    /// Causal convolution of the filter with `signal`, returning an output of
    /// the same length (the leading transient is included).
    pub fn filter(&self, signal: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; signal.len()];
        for (i, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (k, &tap) in self.taps.iter().enumerate() {
                if i >= k {
                    acc += tap * signal[i - k];
                }
            }
            *o = acc;
        }
        out
    }

    /// Zero-phase filtering: runs the filter forward and then backward so the
    /// result has no group delay, mirroring `filtfilt`.
    pub fn filtfilt(&self, signal: &[f64]) -> Vec<f64> {
        let forward = self.filter(signal);
        let mut reversed: Vec<f64> = forward.into_iter().rev().collect();
        reversed = self.filter(&reversed);
        reversed.into_iter().rev().collect()
    }
}

fn validate_design(cutoff_hz: f64, fs: f64, num_taps: usize) -> Result<(), DspError> {
    if fs <= 0.0 || fs.is_nan() {
        return Err(DspError::InvalidParameter {
            name: "fs",
            reason: format!("sampling frequency must be positive, got {fs}"),
        });
    }
    if !(cutoff_hz > 0.0 && cutoff_hz < fs / 2.0) {
        return Err(DspError::InvalidParameter {
            name: "cutoff_hz",
            reason: format!(
                "cutoff must lie in (0, fs/2) = (0, {}), got {cutoff_hz}",
                fs / 2.0
            ),
        });
    }
    if num_taps == 0 || num_taps.is_multiple_of(2) {
        return Err(DspError::InvalidParameter {
            name: "num_taps",
            reason: format!("tap count must be odd and non-zero, got {num_taps}"),
        });
    }
    Ok(())
}

/// A second-order IIR (biquad) section in direct form I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Biquad {
    b0: f64,
    b1: f64,
    b2: f64,
    a1: f64,
    a2: f64,
}

impl Biquad {
    /// Designs a notch filter centred at `freq_hz` with the given quality
    /// factor, typically used to suppress 50/60 Hz power-line interference.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if the centre frequency does not
    /// lie in `(0, fs/2)` or `q` is not positive.
    pub fn notch(freq_hz: f64, fs: f64, q: f64) -> Result<Self, DspError> {
        if fs <= 0.0 || freq_hz <= 0.0 || freq_hz >= fs / 2.0 {
            return Err(DspError::InvalidParameter {
                name: "freq_hz",
                reason: format!("notch frequency must lie in (0, fs/2), got {freq_hz} at fs={fs}"),
            });
        }
        if q <= 0.0 || q.is_nan() {
            return Err(DspError::InvalidParameter {
                name: "q",
                reason: format!("quality factor must be positive, got {q}"),
            });
        }
        let omega = 2.0 * std::f64::consts::PI * freq_hz / fs;
        let alpha = omega.sin() / (2.0 * q);
        let cosw = omega.cos();
        let a0 = 1.0 + alpha;
        Ok(Self {
            b0: 1.0 / a0,
            b1: -2.0 * cosw / a0,
            b2: 1.0 / a0,
            a1: -2.0 * cosw / a0,
            a2: (1.0 - alpha) / a0,
        })
    }

    /// Applies the biquad to `signal`, returning a same-length output.
    pub fn filter(&self, signal: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(signal.len());
        let (mut x1, mut x2, mut y1, mut y2) = (0.0, 0.0, 0.0, 0.0);
        for &x in signal {
            let y = self.b0 * x + self.b1 * x1 + self.b2 * x2 - self.a1 * y1 - self.a2 * y2;
            x2 = x1;
            x1 = x;
            y2 = y1;
            y1 = y;
            out.push(y);
        }
        out
    }
}

/// Centred moving average with the given window length (smoothing helper used
/// by the synthetic data generator and plots).
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if the signal is empty and
/// [`DspError::InvalidParameter`] if `window` is zero.
pub fn moving_average(signal: &[f64], window: usize) -> Result<Vec<f64>, DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput {
            operation: "moving_average",
        });
    }
    if window == 0 {
        return Err(DspError::InvalidParameter {
            name: "window",
            reason: "window length must be at least 1".to_string(),
        });
    }
    let half = window / 2;
    let mut out = Vec::with_capacity(signal.len());
    for i in 0..signal.len() {
        let start = i.saturating_sub(half);
        let end = (i + half + 1).min(signal.len());
        let sum: f64 = signal[start..end].iter().sum();
        out.push(sum / (end - start) as f64);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(freq: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * freq * i as f64 / fs).sin())
            .collect()
    }

    fn rms(signal: &[f64]) -> f64 {
        (signal.iter().map(|x| x * x).sum::<f64>() / signal.len() as f64).sqrt()
    }

    #[test]
    fn design_validation() {
        assert!(FirFilter::low_pass(0.0, 256.0, 33).is_err());
        assert!(FirFilter::low_pass(200.0, 256.0, 33).is_err());
        assert!(FirFilter::low_pass(10.0, 0.0, 33).is_err());
        assert!(FirFilter::low_pass(10.0, 256.0, 0).is_err());
        assert!(FirFilter::low_pass(10.0, 256.0, 32).is_err());
        assert!(FirFilter::from_taps(vec![]).is_err());
    }

    #[test]
    fn low_pass_keeps_low_and_attenuates_high() {
        let fs = 256.0;
        let lp = FirFilter::low_pass(20.0, fs, 101).unwrap();
        let low = lp.filter(&sine(5.0, fs, 2048));
        let high = lp.filter(&sine(80.0, fs, 2048));
        // Skip the transient before measuring.
        assert!(rms(&low[200..]) > 0.6);
        assert!(rms(&high[200..]) < 0.05);
    }

    #[test]
    fn high_pass_keeps_high_and_attenuates_low() {
        let fs = 256.0;
        let hp = FirFilter::high_pass(20.0, fs, 101).unwrap();
        let low = hp.filter(&sine(2.0, fs, 2048));
        let high = hp.filter(&sine(60.0, fs, 2048));
        assert!(rms(&low[200..]) < 0.05);
        assert!(rms(&high[200..]) > 0.6);
    }

    #[test]
    fn band_pass_selects_band() {
        let fs = 256.0;
        let bp = FirFilter::band_pass(4.0, 8.0, fs, 201).unwrap();
        let inside = bp.filter(&sine(6.0, fs, 4096));
        let below = bp.filter(&sine(1.0, fs, 4096));
        let above = bp.filter(&sine(30.0, fs, 4096));
        assert!(rms(&inside[400..]) > 0.5);
        assert!(rms(&below[400..]) < 0.1);
        assert!(rms(&above[400..]) < 0.1);
    }

    #[test]
    fn band_pass_rejects_inverted_edges() {
        assert!(FirFilter::band_pass(8.0, 4.0, 256.0, 101).is_err());
    }

    #[test]
    fn unit_dc_gain_of_low_pass() {
        let lp = FirFilter::low_pass(30.0, 256.0, 65).unwrap();
        let sum: f64 = lp.taps().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(lp.len(), 65);
        assert!(!lp.is_empty());
    }

    #[test]
    fn filtfilt_preserves_phase_of_passband_tone() {
        let fs = 256.0;
        let lp = FirFilter::low_pass(30.0, fs, 65).unwrap();
        let x = sine(5.0, fs, 2048);
        let y = lp.filtfilt(&x);
        // Compare mid-sections: zero-phase filtering should not shift the tone.
        let x_mid = &x[1000..1100];
        let y_mid = &y[1000..1100];
        let corr: f64 = x_mid.iter().zip(y_mid.iter()).map(|(a, b)| a * b).sum();
        let norm = (x_mid.iter().map(|a| a * a).sum::<f64>()
            * y_mid.iter().map(|b| b * b).sum::<f64>())
        .sqrt();
        assert!(corr / norm > 0.99);
    }

    #[test]
    fn notch_attenuates_target_frequency() {
        let fs = 256.0;
        let notch = Biquad::notch(50.0, fs, 30.0).unwrap();
        let at_50 = notch.filter(&sine(50.0, fs, 4096));
        let at_10 = notch.filter(&sine(10.0, fs, 4096));
        assert!(rms(&at_50[1000..]) < 0.1);
        assert!(rms(&at_10[1000..]) > 0.6);
    }

    #[test]
    fn notch_rejects_bad_parameters() {
        assert!(Biquad::notch(0.0, 256.0, 30.0).is_err());
        assert!(Biquad::notch(200.0, 256.0, 30.0).is_err());
        assert!(Biquad::notch(50.0, 256.0, 0.0).is_err());
    }

    #[test]
    fn moving_average_smooths_and_preserves_mean() {
        let x: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let smoothed = moving_average(&x, 4).unwrap();
        assert!(rms(&smoothed) < rms(&x));
        assert!(moving_average(&[], 3).is_err());
        assert!(moving_average(&x, 0).is_err());
    }

    #[test]
    fn moving_average_of_constant_is_constant() {
        let smoothed = moving_average(&[2.0; 32], 5).unwrap();
        assert!(smoothed.iter().all(|v| (v - 2.0).abs() < 1e-12));
    }
}
