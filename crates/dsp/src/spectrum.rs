//! Power spectral density estimation and band-power integration.
//!
//! The paper's selected feature set (§III-A) uses total and relative delta
//! ([0.5, 4] Hz) and theta ([4, 8] Hz) band powers computed from 4-second EEG
//! windows; this module provides the PSD estimators those features are built on.

use crate::error::DspError;
use crate::fft::{real_fft, Complex, RealFftPlan};
use crate::window::{self, WindowKind};

/// A one-sided power spectral density estimate.
///
/// Frequencies run from DC to the Nyquist frequency with a uniform spacing of
/// [`PowerSpectrum::resolution`] Hz.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerSpectrum {
    /// Frequency axis in Hz, one entry per PSD bin.
    freqs: Vec<f64>,
    /// Power density per bin (signal-units² / Hz).
    power: Vec<f64>,
    /// Sampling frequency of the originating signal, in Hz.
    fs: f64,
}

impl PowerSpectrum {
    /// Creates a spectrum from raw frequency and power vectors.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidLength`] if the vectors are empty or of
    /// different lengths, and [`DspError::InvalidParameter`] if `fs` is not
    /// strictly positive.
    pub fn new(freqs: Vec<f64>, power: Vec<f64>, fs: f64) -> Result<Self, DspError> {
        if freqs.is_empty() || freqs.len() != power.len() {
            return Err(DspError::InvalidLength {
                operation: "PowerSpectrum::new",
                actual: power.len(),
                requirement: "non-empty and matching the frequency axis length",
            });
        }
        if fs <= 0.0 || fs.is_nan() {
            return Err(DspError::InvalidParameter {
                name: "fs",
                reason: format!("sampling frequency must be positive, got {fs}"),
            });
        }
        Ok(Self { freqs, power, fs })
    }

    /// Frequency axis in Hz.
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Power density values, aligned with [`PowerSpectrum::freqs`].
    pub fn power(&self) -> &[f64] {
        &self.power
    }

    /// Sampling frequency of the signal the spectrum was estimated from.
    pub fn sampling_frequency(&self) -> f64 {
        self.fs
    }

    /// Frequency spacing between consecutive bins in Hz.
    pub fn resolution(&self) -> f64 {
        if self.freqs.len() > 1 {
            self.freqs[1] - self.freqs[0]
        } else {
            self.fs / 2.0
        }
    }

    /// Total power integrated over the whole spectrum.
    pub fn total_power(&self) -> f64 {
        self.power.iter().sum::<f64>() * self.resolution()
    }

    /// Number of frequency bins.
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    /// Returns `true` if the spectrum has no bins (never the case for values
    /// produced by this crate's estimators).
    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }
}

/// Estimates the PSD of `signal` with a single rectangular-windowed periodogram.
///
/// The estimate is one-sided and scaled so that integrating it over frequency
/// recovers the signal power (Parseval-consistent).
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if the signal is empty and
/// [`DspError::InvalidParameter`] if `fs` is not strictly positive.
///
/// # Example
///
/// ```
/// use seizure_dsp::spectrum::periodogram;
///
/// # fn main() -> Result<(), seizure_dsp::DspError> {
/// let fs = 256.0;
/// let x: Vec<f64> = (0..1024)
///     .map(|n| (2.0 * std::f64::consts::PI * 10.0 * n as f64 / fs).sin())
///     .collect();
/// let psd = periodogram(&x, fs)?;
/// // Total power of a unit sine is 0.5.
/// assert!((psd.total_power() - 0.5).abs() < 0.05);
/// # Ok(())
/// # }
/// ```
pub fn periodogram(signal: &[f64], fs: f64) -> Result<PowerSpectrum, DspError> {
    periodogram_windowed(signal, fs, WindowKind::Rectangular)
}

/// Estimates the PSD of `signal` with a single periodogram using the given taper.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if the signal is empty and
/// [`DspError::InvalidParameter`] if `fs` is not strictly positive.
pub fn periodogram_windowed(
    signal: &[f64],
    fs: f64,
    kind: WindowKind,
) -> Result<PowerSpectrum, DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput {
            operation: "periodogram",
        });
    }
    if fs <= 0.0 || fs.is_nan() {
        return Err(DspError::InvalidParameter {
            name: "fs",
            reason: format!("sampling frequency must be positive, got {fs}"),
        });
    }
    let n = signal.len();
    let windowed = window::apply(kind, signal)?;
    let spectrum = real_fft(&windowed)?;
    let correction = window::power_correction(kind, n)?;
    let half = n / 2 + 1;
    let mut power = Vec::with_capacity(half);
    let mut freqs = Vec::with_capacity(half);
    for (k, bin) in spectrum.iter().take(half).enumerate() {
        // One-sided scaling: interior bins carry the energy of their negative-
        // frequency mirror as well.
        let two_sided = bin.magnitude_squared() / (fs * correction);
        let one_sided = if k == 0 || (n.is_multiple_of(2) && k == half - 1) {
            two_sided
        } else {
            2.0 * two_sided
        };
        power.push(one_sided);
        freqs.push(k as f64 * fs / n as f64);
    }
    PowerSpectrum::new(freqs, power, fs)
}

/// A precomputed periodogram plan for windows of one fixed length.
///
/// Bundles a [`RealFftPlan`] with the taper coefficients and the window power
/// correction so the one-sided PSD of each analysis window can be computed
/// into caller-provided buffers with **zero heap allocations** on the hot
/// path. Build one per window length, reuse it for every window.
///
/// # Example
///
/// ```
/// use seizure_dsp::fft::Complex;
/// use seizure_dsp::spectrum::{periodogram, PsdPlan};
/// use seizure_dsp::window::WindowKind;
///
/// # fn main() -> Result<(), seizure_dsp::DspError> {
/// let fs = 256.0;
/// let x: Vec<f64> = (0..1024)
///     .map(|n| (2.0 * std::f64::consts::PI * 10.0 * n as f64 / fs).sin())
///     .collect();
///
/// let plan = PsdPlan::new(x.len(), WindowKind::Rectangular)?;
/// let mut power = vec![0.0; plan.num_bins()];
/// let mut scratch = vec![Complex::zero(); plan.scratch_len()];
/// plan.power_into(&x, fs, &mut power, &mut scratch)?;
///
/// let reference = periodogram(&x, fs)?;
/// for (a, b) in power.iter().zip(reference.power()) {
///     assert!((a - b).abs() < 1e-9);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PsdPlan {
    fft: RealFftPlan,
    kind: WindowKind,
    /// Taper coefficients; `None` for the rectangular window, whose taper is
    /// the identity.
    taper: Option<Vec<f64>>,
    correction: f64,
}

impl PsdPlan {
    /// Builds a plan for analysis windows of `n` samples tapered with `kind`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] if `n` is zero.
    pub fn new(n: usize, kind: WindowKind) -> Result<Self, DspError> {
        if n == 0 {
            return Err(DspError::EmptyInput {
                operation: "PsdPlan::new",
            });
        }
        let fft = RealFftPlan::new(n)?;
        let taper = match kind {
            WindowKind::Rectangular => None,
            _ => Some(window::coefficients(kind, n)?),
        };
        let correction = window::power_correction(kind, n)?;
        Ok(Self {
            fft,
            kind,
            taper,
            correction,
        })
    }

    /// The window length the plan was built for.
    pub fn window_len(&self) -> usize {
        self.fft.len()
    }

    /// Number of one-sided PSD bins (`n/2 + 1`).
    pub fn num_bins(&self) -> usize {
        self.fft.len() / 2 + 1
    }

    /// Minimum scratch length required by [`PsdPlan::power_into`] (`n/2` on
    /// the packed real-FFT path, `n` on the fallback path).
    pub fn scratch_len(&self) -> usize {
        self.fft.scratch_len()
    }

    /// The taper kind of the plan.
    pub fn window_kind(&self) -> WindowKind {
        self.kind
    }

    /// Frequency spacing between consecutive bins for a signal sampled at
    /// `fs` Hz.
    pub fn resolution(&self, fs: f64) -> f64 {
        fs / self.fft.len() as f64
    }

    /// Computes the one-sided PSD of `signal` into `power`, using `scratch`
    /// for the intermediate spectrum. Produces the same estimate as
    /// [`periodogram_windowed`] without allocating.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidLength`] if `signal` does not match the
    /// planned window length, `power` does not have [`PsdPlan::num_bins`]
    /// slots, or `scratch` is shorter than [`PsdPlan::scratch_len`], and
    /// [`DspError::InvalidParameter`] if `fs` is not strictly positive.
    pub fn power_into(
        &self,
        signal: &[f64],
        fs: f64,
        power: &mut [f64],
        scratch: &mut [Complex],
    ) -> Result<(), DspError> {
        if fs <= 0.0 || fs.is_nan() {
            return Err(DspError::InvalidParameter {
                name: "fs",
                reason: format!("sampling frequency must be positive, got {fs}"),
            });
        }
        let n = self.fft.len();
        if power.len() != self.num_bins() {
            return Err(DspError::InvalidLength {
                operation: "PsdPlan::power_into",
                actual: power.len(),
                requirement: "power buffer must have n/2 + 1 bins",
            });
        }
        if scratch.len() < self.fft.scratch_len() {
            return Err(DspError::InvalidLength {
                operation: "PsdPlan::power_into",
                actual: scratch.len(),
                requirement: "scratch buffer must cover PsdPlan::scratch_len()",
            });
        }
        self.fft
            .magnitudes_squared_into(signal, self.taper.as_deref(), power, scratch)?;
        let half = self.num_bins();
        let denom = fs * self.correction;
        for (k, slot) in power.iter_mut().enumerate() {
            let two_sided = *slot / denom;
            *slot = if k == 0 || (n.is_multiple_of(2) && k == half - 1) {
                two_sided
            } else {
                2.0 * two_sided
            };
        }
        Ok(())
    }

    /// Convenience wrapper turning one window into an owned [`PowerSpectrum`]
    /// (allocates; the batch paths use [`PsdPlan::power_into`] instead).
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`PsdPlan::power_into`].
    pub fn power_spectrum(&self, signal: &[f64], fs: f64) -> Result<PowerSpectrum, DspError> {
        let mut power = vec![0.0; self.num_bins()];
        let mut scratch = vec![Complex::zero(); self.scratch_len()];
        self.power_into(signal, fs, &mut power, &mut scratch)?;
        let n = self.window_len();
        let freqs = (0..self.num_bins())
            .map(|k| k as f64 * fs / n as f64)
            .collect();
        PowerSpectrum::new(freqs, power, fs)
    }
}

/// Welch's averaged-periodogram PSD estimate.
///
/// The signal is split into segments of `segment_len` samples with 50 % overlap,
/// each segment is tapered with a Hann window, and the per-segment periodograms
/// are averaged. If the signal is shorter than `segment_len` a single
/// periodogram over the whole signal is returned.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if the signal is empty,
/// [`DspError::InvalidParameter`] if `fs` is not strictly positive or
/// `segment_len` is zero.
pub fn welch(signal: &[f64], fs: f64, segment_len: usize) -> Result<PowerSpectrum, DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput { operation: "welch" });
    }
    if segment_len == 0 {
        return Err(DspError::InvalidParameter {
            name: "segment_len",
            reason: "segment length must be at least 1".to_string(),
        });
    }
    if signal.len() < segment_len {
        return periodogram_windowed(signal, fs, WindowKind::Hann);
    }
    let hop = (segment_len / 2).max(1);
    // One plan for all segments: the per-segment taper, FFT twiddles and
    // scratch are computed once and the periodograms accumulate in place
    // instead of allocating fresh frequency/power vectors per segment.
    let plan = PsdPlan::new(segment_len, WindowKind::Hann)?;
    let mut power = vec![0.0; plan.num_bins()];
    let mut segment_power = vec![0.0; plan.num_bins()];
    let mut scratch = vec![Complex::zero(); segment_len];
    let mut count = 0usize;
    let mut start = 0usize;
    while start + segment_len <= signal.len() {
        plan.power_into(
            &signal[start..start + segment_len],
            fs,
            &mut segment_power,
            &mut scratch,
        )?;
        for (acc, p) in power.iter_mut().zip(segment_power.iter()) {
            *acc += p;
        }
        count += 1;
        start += hop;
    }
    debug_assert!(
        count > 0,
        "signal.len() >= segment_len guarantees one segment"
    );
    for p in &mut power {
        *p /= count as f64;
    }
    let freqs = (0..plan.num_bins())
        .map(|k| k as f64 * fs / segment_len as f64)
        .collect();
    PowerSpectrum::new(freqs, power, fs)
}

/// Welch-style segment reuse for sliding windows that advance by one hop.
///
/// Each hop of samples is periodogrammed **once** (rectangular taper, hop
/// resolution) and the bins are kept in a ring of `segments` slots; a window
/// estimate is then the Bartlett average of the `segments` hop periodograms
/// it covers. With 75 % overlap every hop is shared by four windows, so the
/// per-window FFT cost drops from one `window_len`-point transform to one
/// `hop_len`-point transform — a 4× reduction in segments times the
/// `log(n)` factor.
///
/// The estimate is *not* the single long periodogram the batch extractor
/// computes: averaging short rectangular segments trades frequency
/// resolution (`fs / hop_len` instead of `fs / window_len`) for variance,
/// exactly as Welch's method does. Total power is preserved (the average of
/// per-segment mean squares equals the window mean square), while narrow
/// band powers differ by the estimator's resolution — callers that need
/// bit-exact band features keep the per-window [`PsdPlan`] path instead.
///
/// Averaging always runs in temporal order (oldest hop first), so the output
/// is a pure function of the hop history and independent of ring phase.
///
/// # Example
///
/// ```
/// use seizure_dsp::spectrum::{periodogram, total_power_bins, HopPeriodogram};
///
/// # fn main() -> Result<(), seizure_dsp::DspError> {
/// let fs = 256.0;
/// let record: Vec<f64> = (0..1024)
///     .map(|n| (2.0 * std::f64::consts::PI * 10.0 * n as f64 / fs).sin())
///     .collect();
/// let mut hops = HopPeriodogram::new(256, 4)?;
/// for hop in record.chunks_exact(256) {
///     hops.push_hop(hop, fs)?;
/// }
/// let mut power = vec![0.0; hops.num_bins()];
/// hops.average_into(&mut power)?;
/// let window_total = periodogram(&record, fs)?.total_power();
/// assert!((total_power_bins(&power, fs, 256) - window_total).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HopPeriodogram {
    plan: PsdPlan,
    segments: usize,
    /// Ring of per-hop one-sided PSD bins, `segments * num_bins` slots.
    ring: Vec<f64>,
    /// FFT scratch reused by every [`HopPeriodogram::push_hop`] call.
    scratch: Vec<Complex>,
    /// Number of hops pushed so far, saturating at `segments`.
    filled: usize,
    /// Ring slot the next hop will overwrite (equivalently: the slot holding
    /// the oldest hop once the ring is full).
    next: usize,
}

impl HopPeriodogram {
    /// Builds an averager for hops of `hop_len` samples and windows covering
    /// `segments` consecutive hops.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] if `hop_len` is zero and
    /// [`DspError::InvalidParameter`] if `segments` is zero.
    pub fn new(hop_len: usize, segments: usize) -> Result<Self, DspError> {
        if segments == 0 {
            return Err(DspError::InvalidParameter {
                name: "segments",
                reason: "a window must cover at least one hop".to_string(),
            });
        }
        let plan = PsdPlan::new(hop_len, WindowKind::Rectangular)?;
        let ring = vec![0.0; segments * plan.num_bins()];
        let scratch = vec![Complex::zero(); plan.scratch_len()];
        Ok(Self {
            plan,
            segments,
            ring,
            scratch,
            filled: 0,
            next: 0,
        })
    }

    /// Number of samples per hop.
    pub fn hop_len(&self) -> usize {
        self.plan.window_len()
    }

    /// Number of hops a window covers (the Bartlett averaging factor).
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Number of one-sided PSD bins per hop (`hop_len / 2 + 1`).
    pub fn num_bins(&self) -> usize {
        self.plan.num_bins()
    }

    /// `true` once `segments` hops have been pushed and a window average is
    /// available.
    pub fn ready(&self) -> bool {
        self.filled >= self.segments
    }

    /// Number of `f64` bin slots carried across hops — the retained state the
    /// edge memory model prices per channel.
    pub fn state_len(&self) -> usize {
        self.ring.len()
    }

    /// Forgets all carried periodograms so the next hop starts a new record.
    pub fn reset(&mut self) {
        self.filled = 0;
        self.next = 0;
    }

    /// Periodograms one hop of samples into the ring, evicting the oldest
    /// hop once the ring is full. No heap allocations are performed.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidLength`] if `hop` does not match the
    /// planned hop length and [`DspError::InvalidParameter`] if `fs` is not
    /// strictly positive.
    // lint: hot-path
    pub fn push_hop(&mut self, hop: &[f64], fs: f64) -> Result<(), DspError> {
        let bins = self.plan.num_bins();
        let slot = self.next;
        let power = &mut self.ring[slot * bins..(slot + 1) * bins];
        self.plan.power_into(hop, fs, power, &mut self.scratch)?;
        self.next = (self.next + 1) % self.segments;
        self.filled = (self.filled + 1).min(self.segments);
        Ok(())
    }

    /// Writes the Bartlett average of the last `segments` hop periodograms
    /// into `power`, oldest hop first. No heap allocations are performed.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidLength`] if fewer than `segments` hops have
    /// been pushed or `power` does not have [`HopPeriodogram::num_bins`]
    /// slots.
    // lint: hot-path
    pub fn average_into(&self, power: &mut [f64]) -> Result<(), DspError> {
        let bins = self.plan.num_bins();
        if !self.ready() {
            return Err(DspError::InvalidLength {
                operation: "HopPeriodogram::average_into",
                actual: self.filled,
                requirement: "all segments must be filled before averaging",
            });
        }
        if power.len() != bins {
            return Err(DspError::InvalidLength {
                operation: "HopPeriodogram::average_into",
                actual: power.len(),
                requirement: "power buffer must have hop_len / 2 + 1 bins",
            });
        }
        power.fill(0.0);
        // `next` points at the oldest slot once the ring is full.
        for j in 0..self.segments {
            let slot = (self.next + j) % self.segments;
            let seg = &self.ring[slot * bins..(slot + 1) * bins];
            for (acc, p) in power.iter_mut().zip(seg.iter()) {
                *acc += p;
            }
        }
        let inv = 1.0 / self.segments as f64;
        for p in power.iter_mut() {
            *p *= inv;
        }
        Ok(())
    }
}

/// Integrates the PSD over the frequency band `[low_hz, high_hz]` (inclusive).
///
/// This is the "total band power" quantity used by the paper's spectral
/// features. Relative band power is obtained by dividing by
/// [`PowerSpectrum::total_power`].
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if the band is malformed
/// (`low_hz >= high_hz`, negative bounds, or NaN).
pub fn band_power(psd: &PowerSpectrum, low_hz: f64, high_hz: f64) -> Result<f64, DspError> {
    if low_hz.is_nan() || high_hz.is_nan() || low_hz < 0.0 || low_hz >= high_hz {
        return Err(DspError::InvalidParameter {
            name: "band",
            reason: format!("invalid frequency band [{low_hz}, {high_hz}]"),
        });
    }
    let resolution = psd.resolution();
    let mut acc = 0.0;
    for (f, p) in psd.freqs().iter().zip(psd.power()) {
        if *f >= low_hz && *f <= high_hz {
            acc += p * resolution;
        }
    }
    Ok(acc)
}

/// Relative power of a band: the band power divided by the total power of the
/// spectrum. Returns `0.0` when the spectrum carries no power at all.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if the band is malformed.
pub fn relative_band_power(
    psd: &PowerSpectrum,
    low_hz: f64,
    high_hz: f64,
) -> Result<f64, DspError> {
    let band = band_power(psd, low_hz, high_hz)?;
    let total = psd.total_power();
    if total <= 0.0 {
        return Ok(0.0);
    }
    Ok(band / total)
}

/// Integrates a raw one-sided PSD bin slice (as produced by
/// [`PsdPlan::power_into`]) over `[low_hz, high_hz]`, without materializing a
/// [`PowerSpectrum`]. `window_len` is the analysis-window length the bins
/// came from; bin `k` sits at `k * fs / window_len` Hz, exactly as in
/// [`periodogram`].
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] for a malformed band (as
/// [`band_power`]) or a non-positive `fs`/`window_len`.
pub fn band_power_bins(
    power: &[f64],
    fs: f64,
    window_len: usize,
    low_hz: f64,
    high_hz: f64,
) -> Result<f64, DspError> {
    if low_hz.is_nan() || high_hz.is_nan() || low_hz < 0.0 || low_hz >= high_hz {
        return Err(DspError::InvalidParameter {
            name: "band",
            reason: format!("invalid frequency band [{low_hz}, {high_hz}]"),
        });
    }
    if fs <= 0.0 || fs.is_nan() || window_len == 0 {
        return Err(DspError::InvalidParameter {
            name: "fs",
            reason: "band_power_bins requires a positive fs and window length".to_string(),
        });
    }
    let resolution = fs / window_len as f64;
    let mut acc = 0.0;
    for (k, p) in power.iter().enumerate() {
        let f = k as f64 * fs / window_len as f64;
        if f >= low_hz && f <= high_hz {
            acc += p * resolution;
        }
    }
    Ok(acc)
}

/// Total power of a raw one-sided PSD bin slice: the bin sum times the
/// frequency resolution, matching [`PowerSpectrum::total_power`].
pub fn total_power_bins(power: &[f64], fs: f64, window_len: usize) -> f64 {
    if window_len == 0 {
        return 0.0;
    }
    power.iter().sum::<f64>() * (fs / window_len as f64)
}

/// Convenience helper returning the magnitude spectrum of a real signal; kept
/// here so that callers that need a quick spectral sketch do not have to deal
/// with [`Complex`] values.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if the signal is empty.
pub fn magnitude_spectrum(signal: &[f64]) -> Result<Vec<f64>, DspError> {
    let spec = real_fft(signal)?;
    Ok(spec
        .iter()
        .take(signal.len() / 2 + 1)
        .map(Complex::magnitude)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(freq: f64, fs: f64, n: usize, amplitude: f64) -> Vec<f64> {
        (0..n)
            .map(|i| amplitude * (2.0 * std::f64::consts::PI * freq * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn periodogram_rejects_empty_and_bad_fs() {
        assert!(periodogram(&[], 256.0).is_err());
        assert!(periodogram(&[1.0, 2.0], 0.0).is_err());
        assert!(periodogram(&[1.0, 2.0], -5.0).is_err());
    }

    #[test]
    fn periodogram_total_power_matches_signal_power() {
        let fs = 256.0;
        let x = sine(16.0, fs, 1024, 1.0);
        let psd = periodogram(&x, fs).unwrap();
        // A unit-amplitude sine has power 0.5.
        assert!((psd.total_power() - 0.5).abs() < 0.02);
    }

    #[test]
    fn periodogram_peak_at_tone_frequency() {
        let fs = 256.0;
        let x = sine(20.0, fs, 2048, 2.0);
        let psd = periodogram(&x, fs).unwrap();
        let (idx, _) = psd
            .power()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        assert!((psd.freqs()[idx] - 20.0).abs() < 0.2);
    }

    #[test]
    fn psd_peak_selection_is_nan_safe() {
        // Regression companion to the `total_cmp` sweep: the peak-bin idiom
        // used across these tests must not panic or scramble when a power
        // bin is poisoned with NaN — NaN ranks above all finite bins.
        let power = [0.1, 2.0, f64::NAN, 0.4];
        let (idx, _) = power
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        assert_eq!(idx, 2);
    }

    #[test]
    fn band_power_isolates_tone() {
        let fs = 256.0;
        let n = 1024;
        let mut x = sine(6.0, fs, n, 1.0); // theta tone
        let x2 = sine(30.0, fs, n, 1.0); // beta tone
        for (a, b) in x.iter_mut().zip(x2.iter()) {
            *a += b;
        }
        let psd = periodogram(&x, fs).unwrap();
        let theta = band_power(&psd, 4.0, 8.0).unwrap();
        let beta = band_power(&psd, 25.0, 35.0).unwrap();
        let delta = band_power(&psd, 0.5, 4.0).unwrap();
        assert!(theta > 0.4 && theta < 0.6);
        assert!(beta > 0.4 && beta < 0.6);
        assert!(delta < 0.05);
    }

    #[test]
    fn relative_band_power_sums_close_to_one_over_full_range() {
        let fs = 256.0;
        let x = sine(10.0, fs, 512, 1.5);
        let psd = periodogram(&x, fs).unwrap();
        let rel = relative_band_power(&psd, 0.0, fs / 2.0).unwrap();
        assert!((rel - 1.0).abs() < 1e-9);
    }

    #[test]
    fn relative_band_power_zero_signal() {
        let psd = periodogram(&vec![0.0; 256], 256.0).unwrap();
        assert_eq!(relative_band_power(&psd, 4.0, 8.0).unwrap(), 0.0);
    }

    #[test]
    fn band_power_rejects_bad_band() {
        let psd = periodogram(&vec![1.0; 64], 64.0).unwrap();
        assert!(band_power(&psd, 8.0, 4.0).is_err());
        assert!(band_power(&psd, -1.0, 4.0).is_err());
        assert!(band_power(&psd, f64::NAN, 4.0).is_err());
    }

    #[test]
    fn welch_reduces_variance_relative_to_periodogram() {
        // White-ish noise from a deterministic chaotic-ish generator.
        let mut state = 0.123_f64;
        let noise: Vec<f64> = (0..4096)
            .map(|_| {
                state = (state * 997.0).fract();
                state - 0.5
            })
            .collect();
        let fs = 256.0;
        let p1 = periodogram(&noise, fs).unwrap();
        let pw = welch(&noise, fs, 512).unwrap();
        let var = |p: &PowerSpectrum| {
            let m = p.power().iter().sum::<f64>() / p.len() as f64;
            p.power().iter().map(|x| (x - m) * (x - m)).sum::<f64>() / p.len() as f64
        };
        assert!(var(&pw) < var(&p1));
    }

    #[test]
    fn welch_short_signal_falls_back_to_single_segment() {
        let x = sine(5.0, 64.0, 100, 1.0);
        let psd = welch(&x, 64.0, 1024).unwrap();
        assert_eq!(psd.len(), 100 / 2 + 1);
    }

    #[test]
    fn welch_rejects_zero_segment() {
        assert!(welch(&[1.0, 2.0], 10.0, 0).is_err());
    }

    #[test]
    fn power_spectrum_accessors() {
        let psd = PowerSpectrum::new(vec![0.0, 1.0, 2.0], vec![0.5, 0.25, 0.25], 4.0).unwrap();
        assert_eq!(psd.len(), 3);
        assert!(!psd.is_empty());
        assert_eq!(psd.resolution(), 1.0);
        assert_eq!(psd.sampling_frequency(), 4.0);
        assert!((psd.total_power() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn power_spectrum_rejects_mismatched_lengths() {
        assert!(PowerSpectrum::new(vec![0.0, 1.0], vec![1.0], 2.0).is_err());
        assert!(PowerSpectrum::new(vec![], vec![], 2.0).is_err());
        assert!(PowerSpectrum::new(vec![0.0], vec![1.0], 0.0).is_err());
    }

    #[test]
    fn psd_plan_matches_periodogram_for_all_tapers() {
        let fs = 256.0;
        let x = sine(12.0, fs, 600, 1.3);
        for kind in [
            WindowKind::Rectangular,
            WindowKind::Hann,
            WindowKind::Hamming,
            WindowKind::Blackman,
        ] {
            let plan = PsdPlan::new(x.len(), kind).unwrap();
            assert_eq!(plan.window_kind(), kind);
            let mut power = vec![0.0; plan.num_bins()];
            let mut scratch = vec![Complex::zero(); plan.window_len()];
            plan.power_into(&x, fs, &mut power, &mut scratch).unwrap();
            let reference = periodogram_windowed(&x, fs, kind).unwrap();
            for (a, b) in power.iter().zip(reference.power()) {
                assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()), "{kind:?}");
            }
        }
    }

    #[test]
    fn psd_plan_power_spectrum_equals_periodogram() {
        let fs = 128.0;
        let x = sine(9.0, fs, 256, 0.7);
        let plan = PsdPlan::new(x.len(), WindowKind::Rectangular).unwrap();
        let a = plan.power_spectrum(&x, fs).unwrap();
        let b = periodogram(&x, fs).unwrap();
        assert_eq!(a.freqs(), b.freqs());
        for (pa, pb) in a.power().iter().zip(b.power()) {
            assert!((pa - pb).abs() < 1e-10 * (1.0 + pb.abs()));
        }
    }

    #[test]
    fn psd_plan_rejects_bad_buffers() {
        assert!(PsdPlan::new(0, WindowKind::Hann).is_err());
        let plan = PsdPlan::new(64, WindowKind::Hann).unwrap();
        assert_eq!(plan.num_bins(), 33);
        assert!((plan.resolution(64.0) - 1.0).abs() < 1e-12);
        let x = vec![0.0; 64];
        let mut power = vec![0.0; 33];
        let mut scratch = vec![Complex::zero(); 64];
        assert!(plan.power_into(&x, 0.0, &mut power, &mut scratch).is_err());
        assert!(plan
            .power_into(&x[..10], 64.0, &mut power, &mut scratch)
            .is_err());
        let mut bad_power = vec![0.0; 10];
        assert!(plan
            .power_into(&x, 64.0, &mut bad_power, &mut scratch)
            .is_err());
        let mut bad_scratch = vec![Complex::zero(); 10];
        assert!(plan
            .power_into(&x, 64.0, &mut power, &mut bad_scratch)
            .is_err());
    }

    #[test]
    fn band_power_bins_matches_band_power() {
        let fs = 256.0;
        let x = sine(6.0, fs, 1024, 1.0);
        let psd = periodogram(&x, fs).unwrap();
        let from_psd = band_power(&psd, 4.0, 8.0).unwrap();
        let from_bins = band_power_bins(psd.power(), fs, x.len(), 4.0, 8.0).unwrap();
        assert!((from_psd - from_bins).abs() < 1e-12);
        let total_psd = psd.total_power();
        let total_bins = total_power_bins(psd.power(), fs, x.len());
        assert!((total_psd - total_bins).abs() < 1e-12);
        assert!(band_power_bins(psd.power(), fs, x.len(), 8.0, 4.0).is_err());
        assert!(band_power_bins(psd.power(), 0.0, x.len(), 4.0, 8.0).is_err());
        assert_eq!(total_power_bins(&[], fs, 0), 0.0);
    }

    #[test]
    fn hop_periodogram_average_is_mean_of_hop_periodograms() {
        let fs = 256.0;
        let record = sine(11.0, fs, 256 * 7, 1.4);
        let mut hops = HopPeriodogram::new(256, 4).unwrap();
        let mut avg = vec![0.0; hops.num_bins()];
        for (h, hop) in record.chunks_exact(256).enumerate() {
            hops.push_hop(hop, fs).unwrap();
            if h + 1 < 4 {
                assert!(!hops.ready());
                assert!(hops.average_into(&mut avg).is_err());
                continue;
            }
            hops.average_into(&mut avg).unwrap();
            // Reference: mean of the 4 covered hop periodograms.
            let start_hop = h + 1 - 4;
            let mut reference = vec![0.0; hops.num_bins()];
            for j in start_hop..=h {
                let psd = periodogram(&record[j * 256..(j + 1) * 256], fs).unwrap();
                for (acc, p) in reference.iter_mut().zip(psd.power()) {
                    *acc += p / 4.0;
                }
            }
            for (a, b) in avg.iter().zip(reference.iter()) {
                assert!((a - b).abs() < 1e-12 * (1.0 + b.abs()), "hop={h}");
            }
        }
    }

    #[test]
    fn hop_periodogram_preserves_total_power() {
        let fs = 256.0;
        let mut state = 0.37_f64;
        let record: Vec<f64> = (0..1024 + 3 * 256)
            .map(|_| {
                state = (state * 997.0).fract();
                state - 0.5
            })
            .collect();
        let mut hops = HopPeriodogram::new(256, 4).unwrap();
        let mut avg = vec![0.0; hops.num_bins()];
        for start in (0..=record.len() - 1024).step_by(256) {
            let window = &record[start..start + 1024];
            if start == 0 {
                for hop in window.chunks_exact(256) {
                    hops.push_hop(hop, fs).unwrap();
                }
            } else {
                hops.push_hop(&window[1024 - 256..], fs).unwrap();
            }
            hops.average_into(&mut avg).unwrap();
            let streaming_total = total_power_bins(&avg, fs, 256);
            let batch_total = periodogram(window, fs).unwrap().total_power();
            assert!(
                (streaming_total - batch_total).abs() < 1e-9 * (1.0 + batch_total.abs()),
                "start={start}: {streaming_total} vs {batch_total}"
            );
        }
    }

    #[test]
    fn hop_periodogram_reset_and_validation() {
        assert!(HopPeriodogram::new(0, 4).is_err());
        assert!(HopPeriodogram::new(256, 0).is_err());
        let mut hops = HopPeriodogram::new(64, 2).unwrap();
        assert_eq!(hops.hop_len(), 64);
        assert_eq!(hops.segments(), 2);
        assert_eq!(hops.num_bins(), 33);
        assert_eq!(hops.state_len(), 2 * 33);
        assert!(hops.push_hop(&[0.0; 32], 64.0).is_err());
        assert!(hops.push_hop(&[0.0; 64], 0.0).is_err());
        hops.push_hop(&[1.0; 64], 64.0).unwrap();
        hops.push_hop(&[1.0; 64], 64.0).unwrap();
        assert!(hops.ready());
        let mut wrong = vec![0.0; 5];
        assert!(hops.average_into(&mut wrong).is_err());
        hops.reset();
        assert!(!hops.ready());
    }

    #[test]
    fn magnitude_spectrum_has_expected_length() {
        let x = vec![1.0; 128];
        assert_eq!(magnitude_spectrum(&x).unwrap().len(), 65);
    }
}
