//! Power spectral density estimation and band-power integration.
//!
//! The paper's selected feature set (§III-A) uses total and relative delta
//! ([0.5, 4] Hz) and theta ([4, 8] Hz) band powers computed from 4-second EEG
//! windows; this module provides the PSD estimators those features are built on.

use crate::error::DspError;
use crate::fft::{real_fft, Complex};
use crate::window::{self, WindowKind};

/// A one-sided power spectral density estimate.
///
/// Frequencies run from DC to the Nyquist frequency with a uniform spacing of
/// [`PowerSpectrum::resolution`] Hz.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerSpectrum {
    /// Frequency axis in Hz, one entry per PSD bin.
    freqs: Vec<f64>,
    /// Power density per bin (signal-units² / Hz).
    power: Vec<f64>,
    /// Sampling frequency of the originating signal, in Hz.
    fs: f64,
}

impl PowerSpectrum {
    /// Creates a spectrum from raw frequency and power vectors.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidLength`] if the vectors are empty or of
    /// different lengths, and [`DspError::InvalidParameter`] if `fs` is not
    /// strictly positive.
    pub fn new(freqs: Vec<f64>, power: Vec<f64>, fs: f64) -> Result<Self, DspError> {
        if freqs.is_empty() || freqs.len() != power.len() {
            return Err(DspError::InvalidLength {
                operation: "PowerSpectrum::new",
                actual: power.len(),
                requirement: "non-empty and matching the frequency axis length",
            });
        }
        if fs <= 0.0 || fs.is_nan() {
            return Err(DspError::InvalidParameter {
                name: "fs",
                reason: format!("sampling frequency must be positive, got {fs}"),
            });
        }
        Ok(Self { freqs, power, fs })
    }

    /// Frequency axis in Hz.
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Power density values, aligned with [`PowerSpectrum::freqs`].
    pub fn power(&self) -> &[f64] {
        &self.power
    }

    /// Sampling frequency of the signal the spectrum was estimated from.
    pub fn sampling_frequency(&self) -> f64 {
        self.fs
    }

    /// Frequency spacing between consecutive bins in Hz.
    pub fn resolution(&self) -> f64 {
        if self.freqs.len() > 1 {
            self.freqs[1] - self.freqs[0]
        } else {
            self.fs / 2.0
        }
    }

    /// Total power integrated over the whole spectrum.
    pub fn total_power(&self) -> f64 {
        self.power.iter().sum::<f64>() * self.resolution()
    }

    /// Number of frequency bins.
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    /// Returns `true` if the spectrum has no bins (never the case for values
    /// produced by this crate's estimators).
    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }
}

/// Estimates the PSD of `signal` with a single rectangular-windowed periodogram.
///
/// The estimate is one-sided and scaled so that integrating it over frequency
/// recovers the signal power (Parseval-consistent).
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if the signal is empty and
/// [`DspError::InvalidParameter`] if `fs` is not strictly positive.
///
/// # Example
///
/// ```
/// use seizure_dsp::spectrum::periodogram;
///
/// # fn main() -> Result<(), seizure_dsp::DspError> {
/// let fs = 256.0;
/// let x: Vec<f64> = (0..1024)
///     .map(|n| (2.0 * std::f64::consts::PI * 10.0 * n as f64 / fs).sin())
///     .collect();
/// let psd = periodogram(&x, fs)?;
/// // Total power of a unit sine is 0.5.
/// assert!((psd.total_power() - 0.5).abs() < 0.05);
/// # Ok(())
/// # }
/// ```
pub fn periodogram(signal: &[f64], fs: f64) -> Result<PowerSpectrum, DspError> {
    periodogram_windowed(signal, fs, WindowKind::Rectangular)
}

/// Estimates the PSD of `signal` with a single periodogram using the given taper.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if the signal is empty and
/// [`DspError::InvalidParameter`] if `fs` is not strictly positive.
pub fn periodogram_windowed(
    signal: &[f64],
    fs: f64,
    kind: WindowKind,
) -> Result<PowerSpectrum, DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput {
            operation: "periodogram",
        });
    }
    if fs <= 0.0 || fs.is_nan() {
        return Err(DspError::InvalidParameter {
            name: "fs",
            reason: format!("sampling frequency must be positive, got {fs}"),
        });
    }
    let n = signal.len();
    let windowed = window::apply(kind, signal)?;
    let spectrum = real_fft(&windowed)?;
    let correction = window::power_correction(kind, n)?;
    let half = n / 2 + 1;
    let mut power = Vec::with_capacity(half);
    let mut freqs = Vec::with_capacity(half);
    for (k, bin) in spectrum.iter().take(half).enumerate() {
        // One-sided scaling: interior bins carry the energy of their negative-
        // frequency mirror as well.
        let two_sided = bin.magnitude_squared() / (fs * correction);
        let one_sided = if k == 0 || (n % 2 == 0 && k == half - 1) {
            two_sided
        } else {
            2.0 * two_sided
        };
        power.push(one_sided);
        freqs.push(k as f64 * fs / n as f64);
    }
    PowerSpectrum::new(freqs, power, fs)
}

/// Welch's averaged-periodogram PSD estimate.
///
/// The signal is split into segments of `segment_len` samples with 50 % overlap,
/// each segment is tapered with a Hann window, and the per-segment periodograms
/// are averaged. If the signal is shorter than `segment_len` a single
/// periodogram over the whole signal is returned.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if the signal is empty,
/// [`DspError::InvalidParameter`] if `fs` is not strictly positive or
/// `segment_len` is zero.
pub fn welch(signal: &[f64], fs: f64, segment_len: usize) -> Result<PowerSpectrum, DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput { operation: "welch" });
    }
    if segment_len == 0 {
        return Err(DspError::InvalidParameter {
            name: "segment_len",
            reason: "segment length must be at least 1".to_string(),
        });
    }
    if signal.len() < segment_len {
        return periodogram_windowed(signal, fs, WindowKind::Hann);
    }
    let hop = (segment_len / 2).max(1);
    let mut averaged: Option<Vec<f64>> = None;
    let mut freqs: Vec<f64> = Vec::new();
    let mut count = 0usize;
    let mut start = 0usize;
    while start + segment_len <= signal.len() {
        let psd = periodogram_windowed(&signal[start..start + segment_len], fs, WindowKind::Hann)?;
        match &mut averaged {
            None => {
                freqs = psd.freqs().to_vec();
                averaged = Some(psd.power().to_vec());
            }
            Some(acc) => {
                for (a, p) in acc.iter_mut().zip(psd.power()) {
                    *a += p;
                }
            }
        }
        count += 1;
        start += hop;
    }
    let mut power = averaged.expect("at least one segment fits because signal.len() >= segment_len");
    for p in &mut power {
        *p /= count as f64;
    }
    PowerSpectrum::new(freqs, power, fs)
}

/// Integrates the PSD over the frequency band `[low_hz, high_hz]` (inclusive).
///
/// This is the "total band power" quantity used by the paper's spectral
/// features. Relative band power is obtained by dividing by
/// [`PowerSpectrum::total_power`].
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if the band is malformed
/// (`low_hz >= high_hz`, negative bounds, or NaN).
pub fn band_power(psd: &PowerSpectrum, low_hz: f64, high_hz: f64) -> Result<f64, DspError> {
    if low_hz.is_nan() || high_hz.is_nan() || low_hz < 0.0 || low_hz >= high_hz {
        return Err(DspError::InvalidParameter {
            name: "band",
            reason: format!("invalid frequency band [{low_hz}, {high_hz}]"),
        });
    }
    let resolution = psd.resolution();
    let mut acc = 0.0;
    for (f, p) in psd.freqs().iter().zip(psd.power()) {
        if *f >= low_hz && *f <= high_hz {
            acc += p * resolution;
        }
    }
    Ok(acc)
}

/// Relative power of a band: the band power divided by the total power of the
/// spectrum. Returns `0.0` when the spectrum carries no power at all.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if the band is malformed.
pub fn relative_band_power(
    psd: &PowerSpectrum,
    low_hz: f64,
    high_hz: f64,
) -> Result<f64, DspError> {
    let band = band_power(psd, low_hz, high_hz)?;
    let total = psd.total_power();
    if total <= 0.0 {
        return Ok(0.0);
    }
    Ok(band / total)
}

/// Convenience helper returning the magnitude spectrum of a real signal; kept
/// here so that callers that need a quick spectral sketch do not have to deal
/// with [`Complex`] values.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if the signal is empty.
pub fn magnitude_spectrum(signal: &[f64]) -> Result<Vec<f64>, DspError> {
    let spec = real_fft(signal)?;
    Ok(spec
        .iter()
        .take(signal.len() / 2 + 1)
        .map(Complex::magnitude)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(freq: f64, fs: f64, n: usize, amplitude: f64) -> Vec<f64> {
        (0..n)
            .map(|i| amplitude * (2.0 * std::f64::consts::PI * freq * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn periodogram_rejects_empty_and_bad_fs() {
        assert!(periodogram(&[], 256.0).is_err());
        assert!(periodogram(&[1.0, 2.0], 0.0).is_err());
        assert!(periodogram(&[1.0, 2.0], -5.0).is_err());
    }

    #[test]
    fn periodogram_total_power_matches_signal_power() {
        let fs = 256.0;
        let x = sine(16.0, fs, 1024, 1.0);
        let psd = periodogram(&x, fs).unwrap();
        // A unit-amplitude sine has power 0.5.
        assert!((psd.total_power() - 0.5).abs() < 0.02);
    }

    #[test]
    fn periodogram_peak_at_tone_frequency() {
        let fs = 256.0;
        let x = sine(20.0, fs, 2048, 2.0);
        let psd = periodogram(&x, fs).unwrap();
        let (idx, _) = psd
            .power()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert!((psd.freqs()[idx] - 20.0).abs() < 0.2);
    }

    #[test]
    fn band_power_isolates_tone() {
        let fs = 256.0;
        let n = 1024;
        let mut x = sine(6.0, fs, n, 1.0); // theta tone
        let x2 = sine(30.0, fs, n, 1.0); // beta tone
        for (a, b) in x.iter_mut().zip(x2.iter()) {
            *a += b;
        }
        let psd = periodogram(&x, fs).unwrap();
        let theta = band_power(&psd, 4.0, 8.0).unwrap();
        let beta = band_power(&psd, 25.0, 35.0).unwrap();
        let delta = band_power(&psd, 0.5, 4.0).unwrap();
        assert!(theta > 0.4 && theta < 0.6);
        assert!(beta > 0.4 && beta < 0.6);
        assert!(delta < 0.05);
    }

    #[test]
    fn relative_band_power_sums_close_to_one_over_full_range() {
        let fs = 256.0;
        let x = sine(10.0, fs, 512, 1.5);
        let psd = periodogram(&x, fs).unwrap();
        let rel = relative_band_power(&psd, 0.0, fs / 2.0).unwrap();
        assert!((rel - 1.0).abs() < 1e-9);
    }

    #[test]
    fn relative_band_power_zero_signal() {
        let psd = periodogram(&vec![0.0; 256], 256.0).unwrap();
        assert_eq!(relative_band_power(&psd, 4.0, 8.0).unwrap(), 0.0);
    }

    #[test]
    fn band_power_rejects_bad_band() {
        let psd = periodogram(&vec![1.0; 64], 64.0).unwrap();
        assert!(band_power(&psd, 8.0, 4.0).is_err());
        assert!(band_power(&psd, -1.0, 4.0).is_err());
        assert!(band_power(&psd, f64::NAN, 4.0).is_err());
    }

    #[test]
    fn welch_reduces_variance_relative_to_periodogram() {
        // White-ish noise from a deterministic chaotic-ish generator.
        let mut state = 0.123_f64;
        let noise: Vec<f64> = (0..4096)
            .map(|_| {
                state = (state * 997.0).fract();
                state - 0.5
            })
            .collect();
        let fs = 256.0;
        let p1 = periodogram(&noise, fs).unwrap();
        let pw = welch(&noise, fs, 512).unwrap();
        let var = |p: &PowerSpectrum| {
            let m = p.power().iter().sum::<f64>() / p.len() as f64;
            p.power().iter().map(|x| (x - m) * (x - m)).sum::<f64>() / p.len() as f64
        };
        assert!(var(&pw) < var(&p1));
    }

    #[test]
    fn welch_short_signal_falls_back_to_single_segment() {
        let x = sine(5.0, 64.0, 100, 1.0);
        let psd = welch(&x, 64.0, 1024).unwrap();
        assert_eq!(psd.len(), 100 / 2 + 1);
    }

    #[test]
    fn welch_rejects_zero_segment() {
        assert!(welch(&[1.0, 2.0], 10.0, 0).is_err());
    }

    #[test]
    fn power_spectrum_accessors() {
        let psd = PowerSpectrum::new(vec![0.0, 1.0, 2.0], vec![0.5, 0.25, 0.25], 4.0).unwrap();
        assert_eq!(psd.len(), 3);
        assert!(!psd.is_empty());
        assert_eq!(psd.resolution(), 1.0);
        assert_eq!(psd.sampling_frequency(), 4.0);
        assert!((psd.total_power() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn power_spectrum_rejects_mismatched_lengths() {
        assert!(PowerSpectrum::new(vec![0.0, 1.0], vec![1.0], 2.0).is_err());
        assert!(PowerSpectrum::new(vec![], vec![], 2.0).is_err());
        assert!(PowerSpectrum::new(vec![0.0], vec![1.0], 0.0).is_err());
    }

    #[test]
    fn magnitude_spectrum_has_expected_length() {
        let x = vec![1.0; 128];
        assert_eq!(magnitude_spectrum(&x).unwrap().len(), 65);
    }
}
