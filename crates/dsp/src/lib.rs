//! # seizure-dsp
//!
//! Digital signal processing substrate for EEG analysis.
//!
//! This crate provides the numerical building blocks used by the self-learning
//! epileptic seizure detection pipeline described in *Pascual, Aminifar, Atienza,
//! "A Self-Learning Methodology for Epileptic Seizure Detection with
//! Minimally-Supervised Edge Labeling" (DATE 2019)*:
//!
//! * [`fft`] — iterative radix-2 fast Fourier transform with a DFT fallback for
//!   arbitrary lengths, plus real-signal helpers.
//! * [`spectrum`] — periodogram and Welch power spectral density estimates and
//!   frequency-band power integration.
//! * [`wavelet`] — Daubechies-4 discrete wavelet transform, the multi-level
//!   decomposition (level 7 in the paper) and its inverse.
//! * [`filter`] — windowed-sinc FIR design, biquad IIR sections and zero-phase
//!   filtering used to condition raw EEG channels.
//! * [`window`] — Hann, Hamming and rectangular tapers.
//! * [`stats`] — descriptive statistics, z-scoring and robust scaling.
//!
//! # Example
//!
//! Estimate the theta-band ([4, 8] Hz) power of a 4-second EEG window sampled at
//! 256 Hz:
//!
//! ```
//! use seizure_dsp::spectrum::{periodogram, band_power};
//!
//! # fn main() -> Result<(), seizure_dsp::DspError> {
//! let fs = 256.0;
//! let signal: Vec<f64> = (0..1024)
//!     .map(|n| (2.0 * std::f64::consts::PI * 6.0 * n as f64 / fs).sin())
//!     .collect();
//! let psd = periodogram(&signal, fs)?;
//! let theta = band_power(&psd, 4.0, 8.0)?;
//! assert!(theta > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod fft;
pub mod filter;
pub mod spectrum;
pub mod stats;
pub mod wavelet;
pub mod window;

pub use error::DspError;
pub use fft::{fft, ifft, real_fft_magnitude, Complex, FftPlan};
pub use spectrum::{band_power, periodogram, welch, HopPeriodogram, PowerSpectrum, PsdPlan};
pub use wavelet::{
    dwt_single, idwt_single, wavedec, wavedec_into, waverec, StreamingWavelet, Wavelet,
    WaveletDecomposition, WaveletWorkspace,
};
