//! Fast Fourier transform.
//!
//! Provides an iterative radix-2 decimation-in-time FFT for power-of-two lengths
//! and a direct DFT fallback for arbitrary lengths, together with helpers for
//! real-valued signals. Everything is implemented from scratch on `f64` so the
//! crate carries no external numerical dependencies.

use crate::error::DspError;

/// A complex number with `f64` components.
///
/// This is a minimal value type used by the FFT routines; it intentionally only
/// implements the operations the crate needs.
///
/// # Example
///
/// ```
/// use seizure_dsp::Complex;
///
/// let a = Complex::new(1.0, 2.0);
/// let b = Complex::new(3.0, -1.0);
/// let sum = a + b;
/// assert_eq!(sum, Complex::new(4.0, 1.0));
/// assert!((a.magnitude() - 5.0_f64.sqrt()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from real and imaginary parts.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The additive identity.
    pub fn zero() -> Self {
        Self { re: 0.0, im: 0.0 }
    }

    /// Creates a complex number on the unit circle with the given phase angle
    /// in radians, i.e. `e^{i theta}`.
    pub fn from_polar_unit(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Magnitude (absolute value).
    pub fn magnitude(&self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude, cheaper than [`Complex::magnitude`] when only the
    /// power is needed.
    pub fn magnitude_squared(&self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Complex conjugate.
    pub fn conj(&self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Scales both components by a real factor.
    pub fn scale(&self, factor: f64) -> Self {
        Self {
            re: self.re * factor,
            im: self.im * factor,
        }
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;

    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;

    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;

    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

/// Returns `true` when `n` is a power of two (and non-zero).
fn is_power_of_two(n: usize) -> bool {
    n != 0 && (n & (n - 1)) == 0
}

/// Computes the forward discrete Fourier transform of `input`.
///
/// Power-of-two lengths use an iterative radix-2 Cooley–Tukey FFT
/// (`O(n log n)`); other lengths fall back to a direct `O(n^2)` DFT, which is
/// adequate for the short windows used in EEG feature extraction.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `input` is empty.
///
/// # Example
///
/// ```
/// use seizure_dsp::{fft, Complex};
///
/// # fn main() -> Result<(), seizure_dsp::DspError> {
/// let x = vec![Complex::from(1.0); 8];
/// let spectrum = fft(&x)?;
/// // A constant signal concentrates all energy in bin 0.
/// assert!((spectrum[0].re - 8.0).abs() < 1e-12);
/// assert!(spectrum[1].magnitude() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn fft(input: &[Complex]) -> Result<Vec<Complex>, DspError> {
    transform(input, Direction::Forward)
}

/// Computes the inverse discrete Fourier transform of `input`.
///
/// The output is scaled by `1/n` so that `ifft(fft(x)) == x` up to rounding.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `input` is empty.
pub fn ifft(input: &[Complex]) -> Result<Vec<Complex>, DspError> {
    let mut out = transform(input, Direction::Inverse)?;
    let scale = 1.0 / input.len() as f64;
    for v in &mut out {
        *v = v.scale(scale);
    }
    Ok(out)
}

/// Computes the forward FFT of a real-valued signal.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `signal` is empty.
pub fn real_fft(signal: &[f64]) -> Result<Vec<Complex>, DspError> {
    let buf: Vec<Complex> = signal.iter().map(|&x| Complex::from(x)).collect();
    fft(&buf)
}

/// Returns the single-sided magnitude spectrum of a real signal.
///
/// The result has `n/2 + 1` entries covering DC up to the Nyquist frequency.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `signal` is empty.
///
/// # Example
///
/// ```
/// use seizure_dsp::real_fft_magnitude;
///
/// # fn main() -> Result<(), seizure_dsp::DspError> {
/// let fs = 64.0;
/// let signal: Vec<f64> = (0..64)
///     .map(|n| (2.0 * std::f64::consts::PI * 8.0 * n as f64 / fs).cos())
///     .collect();
/// let mag = real_fft_magnitude(&signal)?;
/// // The peak lies at bin 8 (8 Hz with a 1 Hz resolution).
/// let peak = mag
///     .iter()
///     .enumerate()
///     .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
///     .map(|(i, _)| i)
///     .unwrap();
/// assert_eq!(peak, 8);
/// # Ok(())
/// # }
/// ```
pub fn real_fft_magnitude(signal: &[f64]) -> Result<Vec<f64>, DspError> {
    let spectrum = real_fft(signal)?;
    let half = signal.len() / 2 + 1;
    Ok(spectrum[..half].iter().map(Complex::magnitude).collect())
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Direction {
    Forward,
    Inverse,
}

impl Direction {
    fn sign(self) -> f64 {
        match self {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        }
    }
}

fn transform(input: &[Complex], direction: Direction) -> Result<Vec<Complex>, DspError> {
    if input.is_empty() {
        return Err(DspError::EmptyInput { operation: "fft" });
    }
    if is_power_of_two(input.len()) {
        Ok(radix2(input, direction))
    } else {
        Ok(dft(input, direction))
    }
}

/// Iterative radix-2 decimation-in-time FFT. `input.len()` must be a power of two.
fn radix2(input: &[Complex], direction: Direction) -> Vec<Complex> {
    let n = input.len();
    let mut data = input.to_vec();
    if n == 1 {
        // A single-point transform is the identity; the bit-reversal shift
        // below would be undefined for n = 1.
        return data;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            data.swap(i, j);
        }
    }

    let sign = direction.sign();
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_polar_unit(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::from(1.0);
            for k in 0..len / 2 {
                let even = data[start + k];
                let odd = data[start + k + len / 2] * w;
                data[start + k] = even + odd;
                data[start + k + len / 2] = even - odd;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
    data
}

/// Direct DFT used for non-power-of-two lengths.
fn dft(input: &[Complex], direction: Direction) -> Vec<Complex> {
    let n = input.len();
    let sign = direction.sign();
    let mut out = vec![Complex::zero(); n];
    for (k, out_k) in out.iter_mut().enumerate() {
        let mut acc = Complex::zero();
        for (t, &x) in input.iter().enumerate() {
            let ang = sign * 2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
            acc = acc + x * Complex::from_polar_unit(ang);
        }
        *out_k = acc;
    }
    out
}

/// Next power of two greater than or equal to `n`.
///
/// Useful for zero-padding signals before calling [`fft`].
///
/// # Example
///
/// ```
/// assert_eq!(seizure_dsp::fft::next_power_of_two(1000), 1024);
/// assert_eq!(seizure_dsp::fft::next_power_of_two(1024), 1024);
/// ```
pub fn next_power_of_two(n: usize) -> usize {
    n.next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn fft_of_empty_is_error() {
        assert!(fft(&[]).is_err());
        assert!(ifft(&[]).is_err());
    }

    #[test]
    fn fft_of_single_sample_is_identity() {
        let x = vec![Complex::new(3.5, -1.25)];
        let spec = fft(&x).unwrap();
        assert_eq!(spec, x);
        let back = ifft(&spec).unwrap();
        assert!(close(back[0].re, 3.5, 1e-12));
        assert!(close(back[0].im, -1.25, 1e-12));
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut x = vec![Complex::zero(); 16];
        x[0] = Complex::from(1.0);
        let spec = fft(&x).unwrap();
        for bin in spec {
            assert!(close(bin.re, 1.0, 1e-12));
            assert!(close(bin.im, 0.0, 1e-12));
        }
    }

    #[test]
    fn fft_of_constant_concentrates_in_dc() {
        let x = vec![Complex::from(2.5); 32];
        let spec = fft(&x).unwrap();
        assert!(close(spec[0].re, 80.0, 1e-9));
        for bin in &spec[1..] {
            assert!(bin.magnitude() < 1e-9);
        }
    }

    #[test]
    fn fft_single_tone_peaks_at_expected_bin() {
        let n = 128;
        let k0 = 10;
        let x: Vec<Complex> = (0..n)
            .map(|n_| {
                Complex::from((2.0 * std::f64::consts::PI * k0 as f64 * n_ as f64 / n as f64).sin())
            })
            .collect();
        let spec = fft(&x).unwrap();
        let peak = spec
            .iter()
            .take(n / 2)
            .enumerate()
            .max_by(|a, b| a.1.magnitude().partial_cmp(&b.1.magnitude()).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, k0);
    }

    #[test]
    fn ifft_inverts_fft_power_of_two() {
        let x: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let y = ifft(&fft(&x).unwrap()).unwrap();
        for (a, b) in x.iter().zip(y.iter()) {
            assert!(close(a.re, b.re, 1e-10));
            assert!(close(a.im, b.im, 1e-10));
        }
    }

    #[test]
    fn ifft_inverts_fft_arbitrary_length() {
        let x: Vec<Complex> = (0..50)
            .map(|i| Complex::new((i as f64 * 0.11).cos(), (i as f64 * 0.23).sin()))
            .collect();
        let y = ifft(&fft(&x).unwrap()).unwrap();
        for (a, b) in x.iter().zip(y.iter()) {
            assert!(close(a.re, b.re, 1e-9));
            assert!(close(a.im, b.im, 1e-9));
        }
    }

    #[test]
    fn dft_matches_radix2_on_power_of_two() {
        let x: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.5).cos()))
            .collect();
        let a = radix2(&x, Direction::Forward);
        let b = dft(&x, Direction::Forward);
        for (u, v) in a.iter().zip(b.iter()) {
            assert!(close(u.re, v.re, 1e-8));
            assert!(close(u.im, v.im, 1e-8));
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let x: Vec<Complex> = (0..256)
            .map(|i| Complex::from((i as f64 * 0.05).sin() + 0.3 * (i as f64 * 0.31).cos()))
            .collect();
        let time_energy: f64 = x.iter().map(Complex::magnitude_squared).sum();
        let spec = fft(&x).unwrap();
        let freq_energy: f64 =
            spec.iter().map(Complex::magnitude_squared).sum::<f64>() / x.len() as f64;
        assert!(close(time_energy, freq_energy, 1e-6));
    }

    #[test]
    fn real_fft_magnitude_length() {
        let signal = vec![0.0; 100];
        let mag = real_fft_magnitude(&signal).unwrap();
        assert_eq!(mag.len(), 51);
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert_eq!(a + b, Complex::new(-2.0, 2.5));
        assert_eq!(a - b, Complex::new(4.0, 1.5));
        let p = a * b;
        assert!(close(p.re, -4.0, 1e-12));
        assert!(close(p.im, -5.5, 1e-12));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
        assert_eq!(a.scale(2.0), Complex::new(2.0, 4.0));
    }

    #[test]
    fn next_power_of_two_values() {
        assert_eq!(next_power_of_two(1), 1);
        assert_eq!(next_power_of_two(3), 4);
        assert_eq!(next_power_of_two(1024), 1024);
        assert_eq!(next_power_of_two(1025), 2048);
    }
}
