//! Fast Fourier transform.
//!
//! Provides an iterative radix-2 decimation-in-time FFT for power-of-two lengths
//! and a direct DFT fallback for arbitrary lengths, together with helpers for
//! real-valued signals. Everything is implemented from scratch on `f64` so the
//! crate carries no external numerical dependencies.

use crate::error::DspError;

/// A complex number with `f64` components.
///
/// This is a minimal value type used by the FFT routines; it intentionally only
/// implements the operations the crate needs.
///
/// # Example
///
/// ```
/// use seizure_dsp::Complex;
///
/// let a = Complex::new(1.0, 2.0);
/// let b = Complex::new(3.0, -1.0);
/// let sum = a + b;
/// assert_eq!(sum, Complex::new(4.0, 1.0));
/// assert!((a.magnitude() - 5.0_f64.sqrt()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from real and imaginary parts.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The additive identity.
    pub fn zero() -> Self {
        Self { re: 0.0, im: 0.0 }
    }

    /// Creates a complex number on the unit circle with the given phase angle
    /// in radians, i.e. `e^{i theta}`.
    pub fn from_polar_unit(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Magnitude (absolute value).
    pub fn magnitude(&self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude, cheaper than [`Complex::magnitude`] when only the
    /// power is needed.
    pub fn magnitude_squared(&self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Complex conjugate.
    pub fn conj(&self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Scales both components by a real factor.
    pub fn scale(&self, factor: f64) -> Self {
        Self {
            re: self.re * factor,
            im: self.im * factor,
        }
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;

    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;

    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;

    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

/// Returns `true` when `n` is a power of two (and non-zero).
fn is_power_of_two(n: usize) -> bool {
    n != 0 && (n & (n - 1)) == 0
}

/// Computes the forward discrete Fourier transform of `input`.
///
/// Power-of-two lengths use an iterative radix-2 Cooley–Tukey FFT
/// (`O(n log n)`); other lengths fall back to a direct `O(n^2)` DFT, which is
/// adequate for the short windows used in EEG feature extraction.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `input` is empty.
///
/// # Example
///
/// ```
/// use seizure_dsp::{fft, Complex};
///
/// # fn main() -> Result<(), seizure_dsp::DspError> {
/// let x = vec![Complex::from(1.0); 8];
/// let spectrum = fft(&x)?;
/// // A constant signal concentrates all energy in bin 0.
/// assert!((spectrum[0].re - 8.0).abs() < 1e-12);
/// assert!(spectrum[1].magnitude() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn fft(input: &[Complex]) -> Result<Vec<Complex>, DspError> {
    transform(input, Direction::Forward)
}

/// Computes the inverse discrete Fourier transform of `input`.
///
/// The output is scaled by `1/n` so that `ifft(fft(x)) == x` up to rounding.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `input` is empty.
pub fn ifft(input: &[Complex]) -> Result<Vec<Complex>, DspError> {
    let mut out = transform(input, Direction::Inverse)?;
    let scale = 1.0 / input.len() as f64;
    for v in &mut out {
        *v = v.scale(scale);
    }
    Ok(out)
}

/// Computes the forward FFT of a real-valued signal.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `signal` is empty.
pub fn real_fft(signal: &[f64]) -> Result<Vec<Complex>, DspError> {
    let buf: Vec<Complex> = signal.iter().map(|&x| Complex::from(x)).collect();
    fft(&buf)
}

/// Returns the single-sided magnitude spectrum of a real signal.
///
/// The result has `n/2 + 1` entries covering DC up to the Nyquist frequency.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `signal` is empty.
///
/// # Example
///
/// ```
/// use seizure_dsp::real_fft_magnitude;
///
/// # fn main() -> Result<(), seizure_dsp::DspError> {
/// let fs = 64.0;
/// let signal: Vec<f64> = (0..64)
///     .map(|n| (2.0 * std::f64::consts::PI * 8.0 * n as f64 / fs).cos())
///     .collect();
/// let mag = real_fft_magnitude(&signal)?;
/// // The peak lies at bin 8 (8 Hz with a 1 Hz resolution).
/// let peak = mag
///     .iter()
///     .enumerate()
///     .max_by(|a, b| a.1.total_cmp(b.1))
///     .map(|(i, _)| i)
///     .unwrap();
/// assert_eq!(peak, 8);
/// # Ok(())
/// # }
/// ```
pub fn real_fft_magnitude(signal: &[f64]) -> Result<Vec<f64>, DspError> {
    let spectrum = real_fft(signal)?;
    let half = signal.len() / 2 + 1;
    Ok(spectrum[..half].iter().map(Complex::magnitude).collect())
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Direction {
    Forward,
    Inverse,
}

impl Direction {
    fn sign(self) -> f64 {
        match self {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        }
    }
}

fn transform(input: &[Complex], direction: Direction) -> Result<Vec<Complex>, DspError> {
    if input.is_empty() {
        return Err(DspError::EmptyInput { operation: "fft" });
    }
    if is_power_of_two(input.len()) {
        Ok(radix2(input, direction))
    } else {
        Ok(dft(input, direction))
    }
}

/// Iterative radix-2 decimation-in-time FFT. `input.len()` must be a power of two.
fn radix2(input: &[Complex], direction: Direction) -> Vec<Complex> {
    let n = input.len();
    let mut data = input.to_vec();
    if n == 1 {
        // A single-point transform is the identity; the bit-reversal shift
        // below would be undefined for n = 1.
        return data;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            data.swap(i, j);
        }
    }

    let sign = direction.sign();
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_polar_unit(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::from(1.0);
            for k in 0..len / 2 {
                let even = data[start + k];
                let odd = data[start + k + len / 2] * w;
                data[start + k] = even + odd;
                data[start + k + len / 2] = even - odd;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
    data
}

/// Direct DFT used for non-power-of-two lengths.
fn dft(input: &[Complex], direction: Direction) -> Vec<Complex> {
    let n = input.len();
    let sign = direction.sign();
    let mut out = vec![Complex::zero(); n];
    for (k, out_k) in out.iter_mut().enumerate() {
        let mut acc = Complex::zero();
        for (t, &x) in input.iter().enumerate() {
            let ang = sign * 2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
            acc = acc + x * Complex::from_polar_unit(ang);
        }
        *out_k = acc;
    }
    out
}

/// A precomputed FFT execution plan for signals of one fixed length.
///
/// The plan front-loads everything `fft` recomputes per call — the
/// bit-reversal permutation and the per-stage twiddle factors for
/// power-of-two lengths, or the table of roots of unity for the direct-DFT
/// fallback — and executes into a caller-provided output buffer, so the hot
/// path performs **no heap allocations**. This is the building block of the
/// batch inference engine: one plan is built per analysis-window length and
/// reused across every window of a recording.
///
/// # Example
///
/// ```
/// use seizure_dsp::fft::{fft, Complex, FftPlan};
///
/// # fn main() -> Result<(), seizure_dsp::DspError> {
/// let signal: Vec<f64> = (0..64).map(|i| (i as f64 * 0.3).sin()).collect();
/// let plan = FftPlan::new(signal.len())?;
/// let mut spectrum = vec![Complex::zero(); signal.len()];
/// plan.forward_real_into(&signal, &mut spectrum)?;
///
/// let reference = fft(&signal.iter().map(|&x| Complex::from(x)).collect::<Vec<_>>())?;
/// for (a, b) in spectrum.iter().zip(reference.iter()) {
///     assert!((a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FftPlan {
    n: usize,
    kind: PlanKind,
}

#[derive(Debug, Clone, PartialEq)]
enum PlanKind {
    /// Radix-2 Cooley–Tukey: bit-reversal table plus per-stage twiddles
    /// `e^{-2πik/len}` flattened stage after stage (`n - 1` values total).
    Radix2 {
        rev: Vec<u32>,
        twiddles: Vec<Complex>,
    },
    /// Direct DFT fallback: the `n` roots of unity `e^{-2πij/n}`.
    Dft { roots: Vec<Complex> },
}

/// Bit-reversal permutation table for a power-of-two length.
fn bit_reversal_table(n: usize) -> Vec<u32> {
    let bits = n.trailing_zeros();
    (0..n)
        .map(|i| {
            if n == 1 {
                0
            } else {
                ((i.reverse_bits() >> (usize::BITS - bits)) & (n - 1)) as u32
            }
        })
        .collect()
}

/// Flattened per-stage forward twiddle factors (`n - 1` values) for an
/// iterative radix-2 FFT of a power-of-two length.
fn stage_twiddles(n: usize) -> Vec<Complex> {
    let mut twiddles = Vec::with_capacity(n.saturating_sub(1));
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        for k in 0..len / 2 {
            twiddles.push(Complex::from_polar_unit(ang * k as f64));
        }
        len <<= 1;
    }
    twiddles
}

/// In-place radix-2 butterfly passes over bit-reversal-ordered data.
///
/// Each stage walks the buffer in fixed-width `len` chunks via
/// `chunks_exact_mut` and splits every chunk into its even/odd halves up
/// front, so the inner loop is a straight zip over three equal-length slices
/// with all bounds checks hoisted — the shape the autovectorizer wants. The
/// arithmetic (twiddle multiply, add/sub order) is unchanged from the
/// indexed form.
fn butterfly_passes(data: &mut [Complex], twiddles: &[Complex]) {
    let n = data.len();
    let mut len = 2;
    let mut stage_offset = 0;
    while len <= n {
        let half = len / 2;
        let stage = &twiddles[stage_offset..stage_offset + half];
        for block in data.chunks_exact_mut(len) {
            let (evens, odds) = block.split_at_mut(half);
            for ((a, b), &w) in evens.iter_mut().zip(odds.iter_mut()).zip(stage) {
                let even = *a;
                let odd = *b * w;
                *a = even + odd;
                *b = even - odd;
            }
        }
        stage_offset += half;
        len <<= 1;
    }
}

impl FftPlan {
    /// Builds a forward-transform plan for signals of length `n`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] if `n` is zero.
    pub fn new(n: usize) -> Result<Self, DspError> {
        if n == 0 {
            return Err(DspError::EmptyInput {
                operation: "FftPlan::new",
            });
        }
        let kind = if is_power_of_two(n) {
            PlanKind::Radix2 {
                rev: bit_reversal_table(n),
                twiddles: stage_twiddles(n),
            }
        } else {
            let roots = (0..n)
                .map(|j| {
                    Complex::from_polar_unit(-2.0 * std::f64::consts::PI * j as f64 / n as f64)
                })
                .collect();
            PlanKind::Dft { roots }
        };
        Ok(Self { n, kind })
    }

    /// The signal length the plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `false`; plans always cover at least one sample.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Computes the forward FFT of a real signal into `out` without
    /// allocating.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidLength`] if `signal` or `out` does not match
    /// the planned length.
    pub fn forward_real_into(&self, signal: &[f64], out: &mut [Complex]) -> Result<(), DspError> {
        self.forward_real_windowed_into(signal, None, out)
    }

    /// Computes the forward FFT of `signal` tapered element-wise by `window`
    /// into `out`, fusing the windowing into the bit-reversal load so no
    /// intermediate windowed copy is needed.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidLength`] if `signal`, `window` (when given)
    /// or `out` does not match the planned length.
    pub fn forward_real_windowed_into(
        &self,
        signal: &[f64],
        window: Option<&[f64]>,
        out: &mut [Complex],
    ) -> Result<(), DspError> {
        if signal.len() != self.n {
            return Err(DspError::InvalidLength {
                operation: "FftPlan::forward_real_into",
                actual: signal.len(),
                requirement: "signal length must match the planned length",
            });
        }
        if out.len() != self.n {
            return Err(DspError::InvalidLength {
                operation: "FftPlan::forward_real_into",
                actual: out.len(),
                requirement: "output length must match the planned length",
            });
        }
        if let Some(w) = window {
            if w.len() != self.n {
                return Err(DspError::InvalidLength {
                    operation: "FftPlan::forward_real_into",
                    actual: w.len(),
                    requirement: "window length must match the planned length",
                });
            }
        }
        match &self.kind {
            PlanKind::Radix2 { rev, twiddles } => {
                match window {
                    Some(w) => {
                        for (slot, &src) in out.iter_mut().zip(rev.iter()) {
                            let i = src as usize;
                            *slot = Complex::from(signal[i] * w[i]);
                        }
                    }
                    None => {
                        for (slot, &src) in out.iter_mut().zip(rev.iter()) {
                            *slot = Complex::from(signal[src as usize]);
                        }
                    }
                }
                butterfly_passes(out, twiddles);
            }
            PlanKind::Dft { roots } => {
                let n = self.n;
                for (k, slot) in out.iter_mut().enumerate() {
                    let mut acc = Complex::zero();
                    let mut idx = 0;
                    for (t, &x) in signal.iter().enumerate() {
                        let tapered = match window {
                            Some(w) => x * w[t],
                            None => x,
                        };
                        acc = acc + roots[idx].scale(tapered);
                        idx += k;
                        if idx >= n {
                            idx -= n;
                        }
                    }
                    *slot = acc;
                }
            }
        }
        Ok(())
    }
}

/// A real-input FFT plan computing the one-sided power spectrum with the
/// classic "two-for-one" trick.
///
/// For even power-of-two lengths the real signal is packed into a half-length
/// complex buffer (`z[j] = x[2j] + i·x[2j+1]`), transformed with an `n/2`
/// point FFT and untangled into `|X[k]|²` for `k = 0..=n/2` — half the
/// butterfly work of a full complex transform and no materialized spectrum.
/// Other lengths fall back to a full [`FftPlan`]. Like the complex plan,
/// execution is allocation-free into caller-provided buffers.
///
/// # Example
///
/// ```
/// use seizure_dsp::fft::{real_fft, Complex, RealFftPlan};
///
/// # fn main() -> Result<(), seizure_dsp::DspError> {
/// let signal: Vec<f64> = (0..128).map(|i| (i as f64 * 0.2).sin()).collect();
/// let plan = RealFftPlan::new(signal.len())?;
/// let mut power = vec![0.0; plan.num_bins()];
/// let mut scratch = vec![Complex::zero(); plan.scratch_len()];
/// plan.magnitudes_squared_into(&signal, None, &mut power, &mut scratch)?;
///
/// let reference = real_fft(&signal)?;
/// for (p, bin) in power.iter().zip(reference.iter()) {
///     assert!((p - bin.magnitude_squared()).abs() < 1e-6);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RealFftPlan {
    n: usize,
    kind: RealPlanKind,
}

#[derive(Debug, Clone, PartialEq)]
enum RealPlanKind {
    /// Packed two-for-one path: tables for the half-length complex FFT plus
    /// the untangling twiddles `e^{-2πik/n}` for `k = 0..=n/4`.
    Packed {
        rev: Vec<u32>,
        twiddles: Vec<Complex>,
        untangle: Vec<Complex>,
    },
    /// Full complex transform for lengths the packed path cannot handle.
    Fallback(FftPlan),
}

impl RealFftPlan {
    /// Builds a plan for real signals of length `n`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] if `n` is zero.
    pub fn new(n: usize) -> Result<Self, DspError> {
        if n == 0 {
            return Err(DspError::EmptyInput {
                operation: "RealFftPlan::new",
            });
        }
        let kind = if n >= 2 && is_power_of_two(n) {
            let m = n / 2;
            let untangle = (0..=m / 2)
                .map(|k| {
                    Complex::from_polar_unit(-2.0 * std::f64::consts::PI * k as f64 / n as f64)
                })
                .collect();
            RealPlanKind::Packed {
                rev: bit_reversal_table(m),
                twiddles: stage_twiddles(m),
                untangle,
            }
        } else {
            RealPlanKind::Fallback(FftPlan::new(n)?)
        };
        Ok(Self { n, kind })
    }

    /// The signal length the plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `false`; plans always cover at least one sample.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of one-sided output bins (`n/2 + 1`).
    pub fn num_bins(&self) -> usize {
        self.n / 2 + 1
    }

    /// Required scratch length: `n/2` on the packed path, `n` on the
    /// fallback path.
    pub fn scratch_len(&self) -> usize {
        match &self.kind {
            RealPlanKind::Packed { .. } => self.n / 2,
            RealPlanKind::Fallback(_) => self.n,
        }
    }

    /// Computes `|X[k]|²` of the (optionally tapered) real signal for
    /// `k = 0..=n/2` into `out`, without allocating.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidLength`] if `signal`, `window` (when
    /// given), `out` or `scratch` has the wrong length.
    pub fn magnitudes_squared_into(
        &self,
        signal: &[f64],
        window: Option<&[f64]>,
        out: &mut [f64],
        scratch: &mut [Complex],
    ) -> Result<(), DspError> {
        if signal.len() != self.n {
            return Err(DspError::InvalidLength {
                operation: "RealFftPlan::magnitudes_squared_into",
                actual: signal.len(),
                requirement: "signal length must match the planned length",
            });
        }
        if let Some(w) = window {
            if w.len() != self.n {
                return Err(DspError::InvalidLength {
                    operation: "RealFftPlan::magnitudes_squared_into",
                    actual: w.len(),
                    requirement: "window length must match the planned length",
                });
            }
        }
        if out.len() != self.num_bins() {
            return Err(DspError::InvalidLength {
                operation: "RealFftPlan::magnitudes_squared_into",
                actual: out.len(),
                requirement: "output must have n/2 + 1 bins",
            });
        }
        if scratch.len() < self.scratch_len() {
            return Err(DspError::InvalidLength {
                operation: "RealFftPlan::magnitudes_squared_into",
                actual: scratch.len(),
                requirement: "scratch must cover the plan's scratch length",
            });
        }
        match &self.kind {
            RealPlanKind::Fallback(plan) => {
                plan.forward_real_windowed_into(signal, window, &mut scratch[..self.n])?;
                for (slot, bin) in out.iter_mut().zip(scratch.iter()) {
                    *slot = bin.magnitude_squared();
                }
                Ok(())
            }
            RealPlanKind::Packed {
                rev,
                twiddles,
                untangle,
            } => {
                let m = self.n / 2;
                let z = &mut scratch[..m];
                // Load sample pairs straight into bit-reversed order, fusing
                // the taper into the load.
                match window {
                    Some(w) => {
                        for (j, &dst) in rev.iter().enumerate() {
                            z[dst as usize] = Complex::new(
                                signal[2 * j] * w[2 * j],
                                signal[2 * j + 1] * w[2 * j + 1],
                            );
                        }
                    }
                    None => {
                        for (j, &dst) in rev.iter().enumerate() {
                            z[dst as usize] = Complex::new(signal[2 * j], signal[2 * j + 1]);
                        }
                    }
                }
                butterfly_passes(z, twiddles);

                // Untangle: with E/O the transforms of the even/odd samples,
                // Z[k] = E[k] + i·O[k] and conj(Z[m-k]) = E[k] - i·O[k], so
                // X[k]   = E[k] + W_k·O[k]      (W_k = e^{-2πik/n})
                // X[m-k] = conj(E[k] - W_k·O[k])
                // and only the squared magnitudes are kept.
                out[0] = {
                    let s = z[0].re + z[0].im;
                    s * s
                };
                out[m] = {
                    let d = z[0].re - z[0].im;
                    d * d
                };
                for k in 1..=m / 2 {
                    let a = z[k];
                    let b = z[m - k].conj();
                    let e = (a + b).scale(0.5);
                    let o = (a - b).scale(0.5);
                    // W_k · O[k], with O[k] = -i·o.
                    let w = untangle[k];
                    let t = Complex::new(w.re * o.im + w.im * o.re, w.im * o.im - w.re * o.re);
                    out[k] = (e + t).magnitude_squared();
                    out[m - k] = (e - t).magnitude_squared();
                }
                Ok(())
            }
        }
    }
}

/// Next power of two greater than or equal to `n`.
///
/// Useful for zero-padding signals before calling [`fft`].
///
/// # Example
///
/// ```
/// assert_eq!(seizure_dsp::fft::next_power_of_two(1000), 1024);
/// assert_eq!(seizure_dsp::fft::next_power_of_two(1024), 1024);
/// ```
pub fn next_power_of_two(n: usize) -> usize {
    n.next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn fft_of_empty_is_error() {
        assert!(fft(&[]).is_err());
        assert!(ifft(&[]).is_err());
    }

    #[test]
    fn fft_of_single_sample_is_identity() {
        let x = vec![Complex::new(3.5, -1.25)];
        let spec = fft(&x).unwrap();
        assert_eq!(spec, x);
        let back = ifft(&spec).unwrap();
        assert!(close(back[0].re, 3.5, 1e-12));
        assert!(close(back[0].im, -1.25, 1e-12));
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut x = vec![Complex::zero(); 16];
        x[0] = Complex::from(1.0);
        let spec = fft(&x).unwrap();
        for bin in spec {
            assert!(close(bin.re, 1.0, 1e-12));
            assert!(close(bin.im, 0.0, 1e-12));
        }
    }

    #[test]
    fn fft_of_constant_concentrates_in_dc() {
        let x = vec![Complex::from(2.5); 32];
        let spec = fft(&x).unwrap();
        assert!(close(spec[0].re, 80.0, 1e-9));
        for bin in &spec[1..] {
            assert!(bin.magnitude() < 1e-9);
        }
    }

    #[test]
    fn fft_single_tone_peaks_at_expected_bin() {
        let n = 128;
        let k0 = 10;
        let x: Vec<Complex> = (0..n)
            .map(|n_| {
                Complex::from((2.0 * std::f64::consts::PI * k0 as f64 * n_ as f64 / n as f64).sin())
            })
            .collect();
        let spec = fft(&x).unwrap();
        let peak = spec
            .iter()
            .take(n / 2)
            .enumerate()
            .max_by(|a, b| a.1.magnitude().total_cmp(&b.1.magnitude()))
            .unwrap()
            .0;
        assert_eq!(peak, k0);
    }

    #[test]
    fn total_cmp_peak_selection_survives_nan_bins() {
        // Regression for the NaN-unsafe peak argmax this test file used to
        // carry: with `total_cmp` a NaN magnitude ranks above every finite
        // bin (it is selected, not silently scrambled), and removing it
        // restores the true peak — no comparator panic either way.
        let mags = [1.0, 5.0, f64::NAN, 3.0];
        let peak = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(peak, 2);
        let finite_peak = mags
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_finite())
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(finite_peak, 1);
    }

    #[test]
    fn ifft_inverts_fft_power_of_two() {
        let x: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let y = ifft(&fft(&x).unwrap()).unwrap();
        for (a, b) in x.iter().zip(y.iter()) {
            assert!(close(a.re, b.re, 1e-10));
            assert!(close(a.im, b.im, 1e-10));
        }
    }

    #[test]
    fn ifft_inverts_fft_arbitrary_length() {
        let x: Vec<Complex> = (0..50)
            .map(|i| Complex::new((i as f64 * 0.11).cos(), (i as f64 * 0.23).sin()))
            .collect();
        let y = ifft(&fft(&x).unwrap()).unwrap();
        for (a, b) in x.iter().zip(y.iter()) {
            assert!(close(a.re, b.re, 1e-9));
            assert!(close(a.im, b.im, 1e-9));
        }
    }

    #[test]
    fn dft_matches_radix2_on_power_of_two() {
        let x: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.5).cos()))
            .collect();
        let a = radix2(&x, Direction::Forward);
        let b = dft(&x, Direction::Forward);
        for (u, v) in a.iter().zip(b.iter()) {
            assert!(close(u.re, v.re, 1e-8));
            assert!(close(u.im, v.im, 1e-8));
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let x: Vec<Complex> = (0..256)
            .map(|i| Complex::from((i as f64 * 0.05).sin() + 0.3 * (i as f64 * 0.31).cos()))
            .collect();
        let time_energy: f64 = x.iter().map(Complex::magnitude_squared).sum();
        let spec = fft(&x).unwrap();
        let freq_energy: f64 =
            spec.iter().map(Complex::magnitude_squared).sum::<f64>() / x.len() as f64;
        assert!(close(time_energy, freq_energy, 1e-6));
    }

    #[test]
    fn real_fft_magnitude_length() {
        let signal = vec![0.0; 100];
        let mag = real_fft_magnitude(&signal).unwrap();
        assert_eq!(mag.len(), 51);
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert_eq!(a + b, Complex::new(-2.0, 2.5));
        assert_eq!(a - b, Complex::new(4.0, 1.5));
        let p = a * b;
        assert!(close(p.re, -4.0, 1e-12));
        assert!(close(p.im, -5.5, 1e-12));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
        assert_eq!(a.scale(2.0), Complex::new(2.0, 4.0));
    }

    #[test]
    fn plan_matches_fft_on_power_of_two() {
        let signal: Vec<f64> = (0..256).map(|i| (i as f64 * 0.13).sin()).collect();
        let plan = FftPlan::new(signal.len()).unwrap();
        let mut out = vec![Complex::zero(); signal.len()];
        plan.forward_real_into(&signal, &mut out).unwrap();
        let reference = real_fft(&signal).unwrap();
        for (a, b) in out.iter().zip(reference.iter()) {
            assert!(close(a.re, b.re, 1e-8));
            assert!(close(a.im, b.im, 1e-8));
        }
    }

    #[test]
    fn plan_matches_fft_on_arbitrary_length() {
        let signal: Vec<f64> = (0..77).map(|i| (i as f64 * 0.31).cos()).collect();
        let plan = FftPlan::new(signal.len()).unwrap();
        let mut out = vec![Complex::zero(); signal.len()];
        plan.forward_real_into(&signal, &mut out).unwrap();
        let reference = real_fft(&signal).unwrap();
        for (a, b) in out.iter().zip(reference.iter()) {
            assert!(close(a.re, b.re, 1e-7));
            assert!(close(a.im, b.im, 1e-7));
        }
    }

    #[test]
    fn plan_windowed_load_matches_pre_windowed_signal() {
        let signal: Vec<f64> = (0..128).map(|i| (i as f64 * 0.21).sin()).collect();
        let taper: Vec<f64> = (0..128)
            .map(|i| 0.5 + 0.4 * (i as f64 * 0.05).cos())
            .collect();
        let plan = FftPlan::new(signal.len()).unwrap();
        let mut fused = vec![Complex::zero(); signal.len()];
        plan.forward_real_windowed_into(&signal, Some(&taper), &mut fused)
            .unwrap();
        let pre: Vec<f64> = signal
            .iter()
            .zip(taper.iter())
            .map(|(s, w)| s * w)
            .collect();
        let mut separate = vec![Complex::zero(); signal.len()];
        plan.forward_real_into(&pre, &mut separate).unwrap();
        for (a, b) in fused.iter().zip(separate.iter()) {
            assert!(close(a.re, b.re, 1e-12));
            assert!(close(a.im, b.im, 1e-12));
        }
    }

    #[test]
    fn plan_rejects_mismatched_buffers() {
        assert!(FftPlan::new(0).is_err());
        let plan = FftPlan::new(16).unwrap();
        assert_eq!(plan.len(), 16);
        assert!(!plan.is_empty());
        let signal = vec![0.0; 16];
        let mut short_out = vec![Complex::zero(); 8];
        assert!(plan.forward_real_into(&signal, &mut short_out).is_err());
        let mut out = vec![Complex::zero(); 16];
        assert!(plan.forward_real_into(&signal[..8], &mut out).is_err());
        let bad_window = vec![1.0; 4];
        assert!(plan
            .forward_real_windowed_into(&signal, Some(&bad_window), &mut out)
            .is_err());
    }

    #[test]
    fn plan_single_sample_is_identity() {
        let plan = FftPlan::new(1).unwrap();
        let mut out = vec![Complex::zero(); 1];
        plan.forward_real_into(&[2.5], &mut out).unwrap();
        assert!(close(out[0].re, 2.5, 1e-15));
        assert!(close(out[0].im, 0.0, 1e-15));
    }

    #[test]
    fn next_power_of_two_values() {
        assert_eq!(next_power_of_two(1), 1);
        assert_eq!(next_power_of_two(3), 4);
        assert_eq!(next_power_of_two(1024), 1024);
        assert_eq!(next_power_of_two(1025), 2048);
    }
}
