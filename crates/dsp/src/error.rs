//! Error type shared by all DSP routines.

use std::error::Error;
use std::fmt;

/// Error returned by signal-processing routines in this crate.
///
/// # Example
///
/// ```
/// use seizure_dsp::spectrum::periodogram;
/// use seizure_dsp::DspError;
///
/// let err = periodogram(&[], 256.0).unwrap_err();
/// assert!(matches!(err, DspError::EmptyInput { .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum DspError {
    /// The input slice was empty but the operation requires at least one sample.
    EmptyInput {
        /// Name of the routine that rejected the input.
        operation: &'static str,
    },
    /// The input length is invalid for the requested operation
    /// (for instance shorter than a filter or a decomposition level requires).
    InvalidLength {
        /// Name of the routine that rejected the input.
        operation: &'static str,
        /// Length that was provided.
        actual: usize,
        /// Human-readable description of the requirement that was violated.
        requirement: &'static str,
    },
    /// A numeric parameter was out of its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Description of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DspError::EmptyInput { operation } => {
                write!(f, "empty input passed to {operation}")
            }
            DspError::InvalidLength {
                operation,
                actual,
                requirement,
            } => write!(
                f,
                "invalid input length {actual} for {operation}: {requirement}"
            ),
            DspError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl Error for DspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_empty_input() {
        let e = DspError::EmptyInput { operation: "fft" };
        assert_eq!(e.to_string(), "empty input passed to fft");
    }

    #[test]
    fn display_invalid_length() {
        let e = DspError::InvalidLength {
            operation: "wavedec",
            actual: 3,
            requirement: "at least 8 samples",
        };
        assert!(e.to_string().contains("wavedec"));
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn display_invalid_parameter() {
        let e = DspError::InvalidParameter {
            name: "fs",
            reason: "must be positive".to_string(),
        };
        assert!(e.to_string().contains("fs"));
        assert!(e.to_string().contains("positive"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DspError>();
    }
}
