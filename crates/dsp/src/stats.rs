//! Descriptive statistics and normalization helpers.
//!
//! These routines back both the feature-extraction stage (paper §III-A) and the
//! feature normalization in Line 1 of Algorithm 1 (subtract the per-feature mean
//! and divide by the per-feature standard deviation).

use crate::error::DspError;

/// Arithmetic mean of `data`.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `data` is empty.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), seizure_dsp::DspError> {
/// let m = seizure_dsp::stats::mean(&[1.0, 2.0, 3.0, 4.0])?;
/// assert_eq!(m, 2.5);
/// # Ok(())
/// # }
/// ```
pub fn mean(data: &[f64]) -> Result<f64, DspError> {
    if data.is_empty() {
        return Err(DspError::EmptyInput { operation: "mean" });
    }
    Ok(data.iter().sum::<f64>() / data.len() as f64)
}

/// Population variance of `data` (normalized by `n`).
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `data` is empty.
pub fn variance(data: &[f64]) -> Result<f64, DspError> {
    let m = mean(data)?;
    Ok(data.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / data.len() as f64)
}

/// Population standard deviation of `data`.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `data` is empty.
pub fn std_dev(data: &[f64]) -> Result<f64, DspError> {
    Ok(variance(data)?.sqrt())
}

/// Sample variance of `data` (normalized by `n - 1`).
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `data` is empty and
/// [`DspError::InvalidLength`] if it has fewer than two samples.
pub fn sample_variance(data: &[f64]) -> Result<f64, DspError> {
    if data.is_empty() {
        return Err(DspError::EmptyInput {
            operation: "sample_variance",
        });
    }
    if data.len() < 2 {
        return Err(DspError::InvalidLength {
            operation: "sample_variance",
            actual: data.len(),
            requirement: "at least 2 samples",
        });
    }
    let m = mean(data)?;
    Ok(data.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (data.len() - 1) as f64)
}

/// Minimum and maximum of `data` as a `(min, max)` pair.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `data` is empty.
pub fn min_max(data: &[f64]) -> Result<(f64, f64), DspError> {
    if data.is_empty() {
        return Err(DspError::EmptyInput {
            operation: "min_max",
        });
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in data {
        if x < lo {
            lo = x;
        }
        if x > hi {
            hi = x;
        }
    }
    Ok((lo, hi))
}

/// Median of `data` (average of the two central values for even lengths).
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `data` is empty.
pub fn median(data: &[f64]) -> Result<f64, DspError> {
    percentile(data, 50.0)
}

/// Linearly interpolated percentile of `data`, with `p` in `[0, 100]`.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `data` is empty and
/// [`DspError::InvalidParameter`] if `p` is outside `[0, 100]` or NaN.
pub fn percentile(data: &[f64], p: f64) -> Result<f64, DspError> {
    if data.is_empty() {
        return Err(DspError::EmptyInput {
            operation: "percentile",
        });
    }
    if !(0.0..=100.0).contains(&p) || p.is_nan() {
        return Err(DspError::InvalidParameter {
            name: "p",
            reason: format!("percentile must lie in [0, 100], got {p}"),
        });
    }
    // `total_cmp` keeps the rank order deterministic when the signal carries
    // NaN (sorted to the ends as the worst-ranked values); the former
    // `Equal` fallback produced an arbitrarily mis-sorted buffer. A NaN
    // still occupies a rank — top-end percentiles interpolate against it —
    // but the finite samples now stay properly ordered.
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        Ok(sorted[lo])
    } else {
        let frac = rank - lo as f64;
        Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Skewness (third standardized moment) of `data`.
///
/// Returns `0.0` for constant signals, whose standard deviation is zero.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `data` is empty.
pub fn skewness(data: &[f64]) -> Result<f64, DspError> {
    let m = mean(data)?;
    let sd = std_dev(data)?;
    if sd == 0.0 {
        return Ok(0.0);
    }
    let n = data.len() as f64;
    Ok(data.iter().map(|x| ((x - m) / sd).powi(3)).sum::<f64>() / n)
}

/// Excess kurtosis (fourth standardized moment minus 3) of `data`.
///
/// Returns `0.0` for constant signals.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `data` is empty.
pub fn kurtosis(data: &[f64]) -> Result<f64, DspError> {
    let m = mean(data)?;
    let sd = std_dev(data)?;
    if sd == 0.0 {
        return Ok(0.0);
    }
    let n = data.len() as f64;
    Ok(data.iter().map(|x| ((x - m) / sd).powi(4)).sum::<f64>() / n - 3.0)
}

/// Root mean square of `data`.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `data` is empty.
pub fn rms(data: &[f64]) -> Result<f64, DspError> {
    if data.is_empty() {
        return Err(DspError::EmptyInput { operation: "rms" });
    }
    Ok((data.iter().map(|x| x * x).sum::<f64>() / data.len() as f64).sqrt())
}

/// Z-scores `data` in place: subtracts the mean and divides by the standard
/// deviation. If the standard deviation is zero (constant signal), the data is
/// only mean-centred, matching the behaviour needed by Algorithm 1's feature
/// normalization where a constant feature must not produce NaNs.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `data` is empty.
pub fn zscore_in_place(data: &mut [f64]) -> Result<(), DspError> {
    let m = mean(data)?;
    let sd = std_dev(data)?;
    if sd == 0.0 {
        for x in data.iter_mut() {
            *x -= m;
        }
    } else {
        for x in data.iter_mut() {
            *x = (*x - m) / sd;
        }
    }
    Ok(())
}

/// Returns a z-scored copy of `data`; see [`zscore_in_place`].
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `data` is empty.
pub fn zscore(data: &[f64]) -> Result<Vec<f64>, DspError> {
    let mut out = data.to_vec();
    zscore_in_place(&mut out)?;
    Ok(out)
}

/// Scales `data` into `[0, 1]` by min–max normalization. A constant signal maps
/// to all zeros.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `data` is empty.
pub fn min_max_scale(data: &[f64]) -> Result<Vec<f64>, DspError> {
    let (lo, hi) = min_max(data)?;
    let range = hi - lo;
    if range == 0.0 {
        return Ok(vec![0.0; data.len()]);
    }
    Ok(data.iter().map(|x| (x - lo) / range).collect())
}

/// Geometric mean of strictly positive values, the "only correct average of
/// normalized values" the paper cites (Fleming & Wallace, 1986). Values are
/// clamped to a tiny positive floor so that a single zero does not collapse the
/// whole average to zero.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `data` is empty and
/// [`DspError::InvalidParameter`] if any value is negative or NaN.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), seizure_dsp::DspError> {
/// let g = seizure_dsp::stats::geometric_mean(&[1.0, 4.0, 16.0])?;
/// assert!((g - 4.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn geometric_mean(data: &[f64]) -> Result<f64, DspError> {
    if data.is_empty() {
        return Err(DspError::EmptyInput {
            operation: "geometric_mean",
        });
    }
    const FLOOR: f64 = 1e-12;
    let mut log_sum = 0.0;
    for &x in data {
        if x < 0.0 || x.is_nan() {
            return Err(DspError::InvalidParameter {
                name: "data",
                reason: format!("geometric mean requires non-negative values, got {x}"),
            });
        }
        log_sum += x.max(FLOOR).ln();
    }
    Ok((log_sum / data.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basic() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&data).unwrap() - 5.0).abs() < 1e-12);
        assert!((variance(&data).unwrap() - 4.0).abs() < 1e-12);
        assert!((std_dev(&data).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sample_variance_uses_n_minus_one() {
        let data = [1.0, 2.0, 3.0];
        assert!((sample_variance(&data).unwrap() - 1.0).abs() < 1e-12);
        assert!(sample_variance(&[1.0]).is_err());
    }

    #[test]
    fn empty_inputs_are_rejected() {
        assert!(mean(&[]).is_err());
        assert!(variance(&[]).is_err());
        assert!(median(&[]).is_err());
        assert!(rms(&[]).is_err());
        assert!(min_max(&[]).is_err());
        assert!(geometric_mean(&[]).is_err());
        assert!(zscore(&[]).is_err());
        assert!(min_max_scale(&[]).is_err());
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]).unwrap(), 2.5);
    }

    #[test]
    fn percentile_bounds_and_interpolation() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&data, 0.0).unwrap(), 1.0);
        assert_eq!(percentile(&data, 100.0).unwrap(), 5.0);
        assert_eq!(percentile(&data, 25.0).unwrap(), 2.0);
        assert!(percentile(&data, -1.0).is_err());
        assert!(percentile(&data, 101.0).is_err());
    }

    /// Regression for the NaN-unsafe rank sort: a NaN sample must sort to
    /// the worst (top) end deterministically — no panic, and the ranks of
    /// the finite samples stay intact instead of being scrambled by the
    /// former `Equal` fallback.
    #[test]
    fn percentile_tolerates_nan_samples() {
        let data = [3.0, f64::NAN, 1.0, 2.0];
        assert_eq!(median(&data).unwrap(), 2.5);
        assert_eq!(percentile(&data, 0.0).unwrap(), 1.0);
        assert!(percentile(&data, 100.0).unwrap().is_nan());
        assert!(median(&[f64::NAN]).unwrap().is_nan());
    }

    #[test]
    fn zscore_has_zero_mean_unit_std() {
        let data: Vec<f64> = (0..100)
            .map(|i| (i as f64 * 0.37).sin() * 5.0 + 3.0)
            .collect();
        let z = zscore(&data).unwrap();
        assert!(mean(&z).unwrap().abs() < 1e-10);
        assert!((std_dev(&z).unwrap() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn zscore_constant_signal_does_not_nan() {
        let z = zscore(&[5.0; 10]).unwrap();
        assert!(z.iter().all(|x| x.abs() < 1e-15));
    }

    #[test]
    fn min_max_scale_range() {
        let s = min_max_scale(&[2.0, 6.0, 4.0]).unwrap();
        assert_eq!(s, vec![0.0, 1.0, 0.5]);
        assert_eq!(min_max_scale(&[3.0; 4]).unwrap(), vec![0.0; 4]);
    }

    #[test]
    fn skewness_of_symmetric_data_is_zero() {
        let data = [-2.0, -1.0, 0.0, 1.0, 2.0];
        assert!(skewness(&data).unwrap().abs() < 1e-12);
        assert_eq!(skewness(&[1.0; 8]).unwrap(), 0.0);
    }

    #[test]
    fn kurtosis_of_constant_is_zero() {
        assert_eq!(kurtosis(&[2.0; 16]).unwrap(), 0.0);
    }

    #[test]
    fn rms_of_known_signal() {
        assert!((rms(&[3.0, 4.0]).unwrap() - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_matches_arithmetic_for_equal_values() {
        assert!((geometric_mean(&[7.0; 5]).unwrap() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_rejects_negatives() {
        assert!(geometric_mean(&[1.0, -0.5]).is_err());
    }

    #[test]
    fn geometric_mean_handles_zero_via_floor() {
        let g = geometric_mean(&[0.0, 1.0]).unwrap();
        assert!((0.0..1.0).contains(&g));
    }
}
