//! Error type for the data substrate.

use std::error::Error;
use std::fmt;

/// Error returned by the synthetic-data substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// A generation or sampling parameter was invalid.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Description of the violated constraint.
        reason: String,
    },
    /// A patient or seizure index was out of range for the cohort.
    IndexOutOfRange {
        /// What kind of entity the index refers to ("patient" or "seizure").
        entity: &'static str,
        /// The offending index.
        index: usize,
        /// Number of available entities.
        available: usize,
    },
    /// Reading or writing record files failed.
    Io {
        /// Human-readable description of the failure.
        detail: String,
    },
    /// A record file had an unexpected format.
    Format {
        /// Description of the formatting problem.
        detail: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            DataError::IndexOutOfRange {
                entity,
                index,
                available,
            } => write!(
                f,
                "{entity} index {index} out of range: only {available} available"
            ),
            DataError::Io { detail } => write!(f, "record i/o failed: {detail}"),
            DataError::Format { detail } => write!(f, "malformed record: {detail}"),
        }
    }
}

impl Error for DataError {}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io {
            detail: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = DataError::InvalidParameter {
            name: "fs",
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains("fs"));
        let e = DataError::IndexOutOfRange {
            entity: "patient",
            index: 12,
            available: 9,
        };
        assert!(e.to_string().contains("12"));
        assert!(e.to_string().contains('9'));
        let e: DataError = std::io::Error::new(std::io::ErrorKind::NotFound, "nope").into();
        assert!(e.to_string().contains("nope"));
        let e = DataError::Format {
            detail: "bad header".into(),
        };
        assert!(e.to_string().contains("bad header"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DataError>();
    }
}
