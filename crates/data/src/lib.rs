//! # seizure-data
//!
//! Synthetic EEG data substrate for the self-learning seizure detection
//! reproduction.
//!
//! The original paper evaluates on the PhysioNet CHB-MIT Scalp EEG database
//! (9 compliant patients, 45 seizures, 256 Hz, electrode pairs F7T3/F8T4).
//! That data cannot be redistributed here, so this crate generates a
//! **CHB-MIT-like synthetic cohort** with the statistical properties the
//! labeling algorithm relies on:
//!
//! * 1/f ("pink") background EEG with patient-specific alpha/theta rhythms,
//! * ictal segments with increased amplitude and rhythmic 2.5–5 Hz spike-wave
//!   activity that evolves over the seizure,
//! * movement/noise artifacts, including — for the "hard" patients — large
//!   noise bursts near the seizure, which the paper identifies as the cause of
//!   its three mislabeled seizures,
//! * per-patient seizure counts matching Table II of the paper
//!   (7, 3, 7, 4, 5, 3, 5, 4, 7 seizures for patients 1–9; 45 in total).
//!
//! Everything is deterministic given a seed, so experiments are reproducible.
//!
//! # Example
//!
//! ```
//! use seizure_data::cohort::Cohort;
//! use seizure_data::sampler::SampleConfig;
//!
//! # fn main() -> Result<(), seizure_data::DataError> {
//! let cohort = Cohort::chb_mit_like(42);
//! assert_eq!(cohort.patients().len(), 9);
//! assert_eq!(cohort.total_seizures(), 45);
//!
//! // Generate one short test record containing the first seizure of patient 1.
//! let config = SampleConfig::new(60.0, 120.0, 64.0)?; // 1–2 min at 64 Hz (tests)
//! let record = cohort.sample_record(0, 0, &config, 7)?;
//! assert!(record.annotation().duration() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annotation;
pub mod cohort;
pub mod error;
pub mod io;
pub mod patient;
pub mod sampler;
pub mod signal;
pub mod synth;

pub use annotation::SeizureAnnotation;
pub use cohort::Cohort;
pub use error::DataError;
pub use patient::PatientProfile;
pub use sampler::{EegRecord, SampleConfig};
pub use signal::EegSignal;
