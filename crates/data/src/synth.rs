//! Synthetic EEG generation.
//!
//! The generator reproduces the statistical structure of scalp EEG that the
//! labeling algorithm relies on, without reproducing any real patient data:
//!
//! * **Background** activity is 1/f ("pink") noise with a patient-specific RMS
//!   amplitude, an alpha rhythm (~10 Hz) with slow amplitude modulation and a
//!   small theta component.
//! * **Ictal** activity (the seizure) is rhythmic spike-wave discharge at the
//!   patient's dominant ictal frequency with harmonics, an amplitude envelope
//!   that builds up, plateaus and decays, superimposed on the background.
//! * **Artifacts** are short, high-amplitude broadband bursts mimicking
//!   movement/electrode artifacts. For noisy patients an additional large burst
//!   can be placed *near* the seizure — the confounder that the paper reports
//!   as the cause of its three mislabeled seizures.

use crate::annotation::SeizureAnnotation;
use crate::error::DataError;
use crate::patient::PatientProfile;
use crate::signal::EegSignal;
use rand::Rng;

/// Draws a standard-normal sample using the Box–Muller transform.
pub(crate) fn randn<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generates `n` samples of 1/f-like ("pink") noise with approximately unit
/// variance, using the Paul Kellet filter cascade.
pub fn pink_noise<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<f64> {
    let (mut b0, mut b1, mut b2, mut b3, mut b4, mut b5, mut b6) =
        (0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let white = randn(rng);
        b0 = 0.99886 * b0 + white * 0.0555179;
        b1 = 0.99332 * b1 + white * 0.0750759;
        b2 = 0.96900 * b2 + white * 0.1538520;
        b3 = 0.86650 * b3 + white * 0.3104856;
        b4 = 0.55000 * b4 + white * 0.5329522;
        b5 = -0.7616 * b5 - white * 0.0168980;
        let pink = b0 + b1 + b2 + b3 + b4 + b5 + b6 + white * 0.5362;
        b6 = white * 0.115926;
        // The cascade has a gain of roughly 5; scale back to ~unit variance.
        out.push(pink / 5.0);
    }
    out
}

/// Generates one channel of background (interictal) EEG for `duration_secs`
/// seconds at `fs` Hz.
fn background_channel<R: Rng + ?Sized>(
    profile: &PatientProfile,
    duration_secs: f64,
    fs: f64,
    rng: &mut R,
) -> Vec<f64> {
    let n = (duration_secs * fs).round() as usize;
    let mut signal = pink_noise(n, rng);
    let amplitude = profile.background_amplitude;
    // Alpha rhythm with slow amplitude modulation and a small theta component.
    let alpha_freq = 9.0 + rng.gen_range(0.0..2.0);
    let theta_freq = 5.0 + rng.gen_range(0.0..1.5);
    let alpha_phase = rng.gen_range(0.0..std::f64::consts::TAU);
    let theta_phase = rng.gen_range(0.0..std::f64::consts::TAU);
    let mod_freq = rng.gen_range(0.05..0.15);
    for (i, x) in signal.iter_mut().enumerate() {
        let t = i as f64 / fs;
        let alpha_env = 0.25 * (1.0 + (std::f64::consts::TAU * mod_freq * t).sin());
        let alpha = alpha_env * (std::f64::consts::TAU * alpha_freq * t + alpha_phase).sin();
        let theta = 0.12 * (std::f64::consts::TAU * theta_freq * t + theta_phase).sin();
        *x = amplitude * (*x + alpha + theta);
    }
    signal
}

/// Adds movement-artifact bursts to a channel in place. Returns the burst
/// onset times in seconds (useful for tests).
fn add_artifacts<R: Rng + ?Sized>(
    channel: &mut [f64],
    profile: &PatientProfile,
    fs: f64,
    rng: &mut R,
) -> Vec<f64> {
    let duration_hours = channel.len() as f64 / fs / 3600.0;
    let expected = profile.artifact_rate_per_hour * duration_hours;
    // Draw the artifact count from a Poisson-like distribution (normal approx
    // clamped at zero is adequate here).
    let count = (expected + randn(rng) * expected.sqrt()).round().max(0.0) as usize;
    let mut onsets = Vec::with_capacity(count);
    for _ in 0..count {
        let burst_len = (rng.gen_range(0.4..2.0) * fs) as usize;
        if channel.len() <= burst_len + 1 {
            continue;
        }
        let start = rng.gen_range(0..channel.len() - burst_len);
        apply_burst(channel, start, burst_len, profile, rng);
        onsets.push(start as f64 / fs);
    }
    onsets
}

/// Sorts event times ascending under a NaN-safe total order (`total_cmp`,
/// NaN last as the worst value). The placement arithmetic above only emits
/// finite times today, but the former `partial_cmp().unwrap()` turned any
/// future NaN into a panic inside record synthesis — taking a whole
/// labeling experiment down with it.
fn sort_onsets(onsets: &mut [f64]) {
    onsets.sort_by(|a, b| a.total_cmp(b));
}

/// Applies one broadband high-amplitude burst starting at `start`.
fn apply_burst<R: Rng + ?Sized>(
    channel: &mut [f64],
    start: usize,
    burst_len: usize,
    profile: &PatientProfile,
    rng: &mut R,
) {
    let amplitude = profile.background_amplitude * profile.artifact_gain;
    for i in 0..burst_len {
        let envelope = (std::f64::consts::PI * i as f64 / burst_len as f64).sin();
        channel[start + i] += amplitude * envelope * randn(rng);
    }
}

/// Generates one channel of ictal (seizure) EEG for `duration_secs` seconds.
///
/// `lateralization` scales the ictal amplitude for the channel (seizures are
/// rarely perfectly symmetric across hemispheres).
fn ictal_channel<R: Rng + ?Sized>(
    profile: &PatientProfile,
    duration_secs: f64,
    fs: f64,
    lateralization: f64,
    rng: &mut R,
) -> Vec<f64> {
    let n = (duration_secs * fs).round() as usize;
    let mut signal = pink_noise(n, rng);
    let base_amp = profile.background_amplitude;
    let ictal_amp = base_amp * profile.ictal_gain * lateralization;
    let f0 = profile.ictal_frequency * (1.0 + 0.05 * randn(rng));
    let phase = rng.gen_range(0.0..std::f64::consts::TAU);
    // Rise over the first 20 %, sustain, decay over the last 25 %, with the
    // discharge frequency slowing slightly towards the end (typical of tonic-
    // clonic evolution).
    for (i, x) in signal.iter_mut().enumerate() {
        let t = i as f64 / fs;
        let progress = i as f64 / n.max(1) as f64;
        let envelope = if progress < 0.2 {
            progress / 0.2
        } else if progress > 0.75 {
            ((1.0 - progress) / 0.25).max(0.0)
        } else {
            1.0
        };
        let freq = f0 * (1.0 - 0.25 * progress);
        let fundamental = (std::f64::consts::TAU * freq * t + phase).sin();
        let spike = profile.spike_sharpness
            * ((std::f64::consts::TAU * 2.0 * freq * t + phase).sin()
                + 0.5 * (std::f64::consts::TAU * 3.0 * freq * t + phase).sin());
        *x = base_amp * 0.6 * *x + ictal_amp * envelope * (fundamental + spike);
    }
    signal
}

/// Output of [`generate_record`]: the synthetic recording, its ground-truth
/// annotation, and the onset times (seconds) of any injected artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedRecord {
    /// The two-channel synthetic EEG signal.
    pub signal: EegSignal,
    /// Ground-truth position of the single seizure contained in the record.
    pub annotation: SeizureAnnotation,
    /// Onset times in seconds of the background artifacts that were injected.
    pub artifact_onsets: Vec<f64>,
    /// `true` if a large noise burst was placed near the seizure.
    pub near_seizure_burst: bool,
}

/// Generates a complete recording of `total_secs` seconds containing exactly
/// one seizure.
///
/// The seizure starts at `seizure_onset_secs` and lasts `seizure_duration_secs`
/// seconds; both channels carry the ictal discharge with slightly different
/// amplitudes. Background artifacts are injected at the patient's artifact
/// rate, and — with the patient's `near_seizure_burst_probability` — one large
/// burst is placed within ±90 s of the seizure boundary.
///
/// # Errors
///
/// Returns [`DataError::InvalidParameter`] if the durations are not positive,
/// the seizure does not fit inside the recording, or `fs` is not positive.
pub fn generate_record<R: Rng + ?Sized>(
    profile: &PatientProfile,
    total_secs: f64,
    seizure_onset_secs: f64,
    seizure_duration_secs: f64,
    fs: f64,
    rng: &mut R,
) -> Result<GeneratedRecord, DataError> {
    if fs <= 0.0 || fs.is_nan() {
        return Err(DataError::InvalidParameter {
            name: "fs",
            reason: format!("sampling frequency must be positive, got {fs}"),
        });
    }
    if total_secs <= 0.0 || seizure_duration_secs <= 0.0 {
        return Err(DataError::InvalidParameter {
            name: "duration",
            reason: "durations must be positive".to_string(),
        });
    }
    if seizure_onset_secs < 0.0 || seizure_onset_secs + seizure_duration_secs > total_secs {
        return Err(DataError::InvalidParameter {
            name: "seizure_onset_secs",
            reason: format!(
                "seizure [{seizure_onset_secs}, {}] does not fit in a {total_secs}-second record",
                seizure_onset_secs + seizure_duration_secs
            ),
        });
    }

    let pre_secs = seizure_onset_secs;
    let post_secs = total_secs - seizure_onset_secs - seizure_duration_secs;

    let mut f7t3 = Vec::new();
    let mut f8t4 = Vec::new();
    if pre_secs > 0.0 {
        f7t3.extend(background_channel(profile, pre_secs, fs, rng));
        f8t4.extend(background_channel(profile, pre_secs, fs, rng));
    }
    let lateral_left = 1.0 + 0.15 * randn(rng).clamp(-1.5, 1.5);
    let lateral_right = 1.0 + 0.15 * randn(rng).clamp(-1.5, 1.5);
    f7t3.extend(ictal_channel(
        profile,
        seizure_duration_secs,
        fs,
        lateral_left.max(0.4),
        rng,
    ));
    f8t4.extend(ictal_channel(
        profile,
        seizure_duration_secs,
        fs,
        lateral_right.max(0.4),
        rng,
    ));
    if post_secs > 0.0 {
        f7t3.extend(background_channel(profile, post_secs, fs, rng));
        f8t4.extend(background_channel(profile, post_secs, fs, rng));
    }

    // Background artifacts across the whole record.
    let mut artifact_onsets = add_artifacts(&mut f7t3, profile, fs, rng);
    artifact_onsets.extend(add_artifacts(&mut f8t4, profile, fs, rng));
    sort_onsets(&mut artifact_onsets);

    // Optionally place a large confounding burst near the seizure. The burst is
    // long, strong and partly rhythmic (movement artifacts on scalp EEG often
    // contain quasi-periodic components), so in the ten-feature space it can
    // compete with the genuine seizure — the failure mode the paper reports for
    // its three mislabeled seizures.
    let near_seizure_burst = rng.gen_bool(profile.near_seizure_burst_probability.clamp(0.0, 1.0));
    if near_seizure_burst {
        let offset = rng.gen_range(30.0..180.0);
        let before = rng.gen_bool(0.5);
        let burst_time = if before {
            (seizure_onset_secs - offset).max(0.0)
        } else {
            (seizure_onset_secs + seizure_duration_secs + offset).min(total_secs - 30.0)
        };
        let burst_secs = rng.gen_range(10.0..25.0);
        let burst_len = (burst_secs * fs) as usize;
        let start = ((burst_time * fs) as usize).min(f7t3.len().saturating_sub(burst_len + 1));
        // The confounding burst is strong and appears on both channels.
        let strong = PatientProfile {
            artifact_gain: profile.artifact_gain * 2.2,
            ..profile.clone()
        };
        apply_burst(&mut f7t3, start, burst_len, &strong, rng);
        apply_burst(&mut f8t4, start, burst_len, &strong, rng);
        // Rhythmic low-frequency component riding on the broadband burst.
        let rhythm_freq = rng.gen_range(2.0..6.0);
        let rhythm_amp = profile.background_amplitude * profile.artifact_gain;
        let phase = rng.gen_range(0.0..std::f64::consts::TAU);
        for i in 0..burst_len {
            let t = i as f64 / fs;
            let envelope = (std::f64::consts::PI * i as f64 / burst_len as f64).sin();
            let rhythm =
                rhythm_amp * envelope * (std::f64::consts::TAU * rhythm_freq * t + phase).sin();
            f7t3[start + i] += rhythm;
            f8t4[start + i] += 0.8 * rhythm;
        }
        artifact_onsets.push(burst_time);
    }

    let signal = EegSignal::new(f7t3, f8t4, fs)?;
    let annotation = SeizureAnnotation::new(
        seizure_onset_secs,
        seizure_onset_secs + seizure_duration_secs,
    )?;
    Ok(GeneratedRecord {
        signal,
        annotation,
        artifact_onsets,
        near_seizure_burst,
    })
}

/// Generates a seizure-free background recording of `total_secs` seconds
/// (used to build the non-seizure half of balanced training sets).
///
/// # Errors
///
/// Returns [`DataError::InvalidParameter`] if the duration or `fs` is not
/// positive.
pub fn generate_background_record<R: Rng + ?Sized>(
    profile: &PatientProfile,
    total_secs: f64,
    fs: f64,
    rng: &mut R,
) -> Result<EegSignal, DataError> {
    if fs <= 0.0 || total_secs <= 0.0 {
        return Err(DataError::InvalidParameter {
            name: "duration",
            reason: "duration and sampling frequency must be positive".to_string(),
        });
    }
    let mut f7t3 = background_channel(profile, total_secs, fs, rng);
    let mut f8t4 = background_channel(profile, total_secs, fs, rng);
    add_artifacts(&mut f7t3, profile, fs, rng);
    add_artifacts(&mut f8t4, profile, fs, rng);
    EegSignal::new(f7t3, f8t4, fs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn profile() -> PatientProfile {
        PatientProfile::chb_mit_like_cohort()[0].clone()
    }

    fn rms(x: &[f64]) -> f64 {
        (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt()
    }

    #[test]
    fn pink_noise_has_unit_scale_and_more_low_frequency_energy() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let noise = pink_noise(8192, &mut rng);
        let r = rms(&noise);
        assert!(r > 0.3 && r < 3.0, "rms = {r}");
        // Compare energy in low vs high frequency halves via simple first
        // differences: pink noise has much weaker differences than white noise.
        let diff_energy: f64 = noise.windows(2).map(|w| (w[1] - w[0]).powi(2)).sum();
        let total_energy: f64 = noise.iter().map(|v| v * v).sum();
        assert!(diff_energy < total_energy);
    }

    #[test]
    fn generated_record_has_expected_length_and_annotation() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let rec = generate_record(&profile(), 120.0, 40.0, 30.0, 64.0, &mut rng).unwrap();
        assert_eq!(rec.signal.len(), (120.0 * 64.0) as usize);
        assert_eq!(rec.annotation.onset(), 40.0);
        assert_eq!(rec.annotation.offset(), 70.0);
    }

    #[test]
    fn ictal_segment_has_higher_amplitude_than_background() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let rec = generate_record(&profile(), 180.0, 60.0, 40.0, 64.0, &mut rng).unwrap();
        let fs = 64.0;
        let ictal = &rec.signal.f7t3()[(62.0 * fs) as usize..(98.0 * fs) as usize];
        let background = &rec.signal.f7t3()[0..(50.0 * fs) as usize];
        assert!(rms(ictal) > 1.5 * rms(background));
    }

    #[test]
    fn ictal_activity_appears_on_both_channels() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let rec = generate_record(&profile(), 180.0, 60.0, 40.0, 64.0, &mut rng).unwrap();
        let fs = 64.0;
        for channel in [rec.signal.f7t3(), rec.signal.f8t4()] {
            let ictal = &channel[(62.0 * fs) as usize..(98.0 * fs) as usize];
            let background = &channel[0..(50.0 * fs) as usize];
            assert!(rms(ictal) > 1.3 * rms(background));
        }
    }

    #[test]
    fn generation_is_deterministic_given_a_seed() {
        let mut rng1 = ChaCha8Rng::seed_from_u64(42);
        let mut rng2 = ChaCha8Rng::seed_from_u64(42);
        let a = generate_record(&profile(), 90.0, 30.0, 20.0, 64.0, &mut rng1).unwrap();
        let b = generate_record(&profile(), 90.0, 30.0, 20.0, 64.0, &mut rng2).unwrap();
        assert_eq!(a.signal, b.signal);
        assert_eq!(a.annotation, b.annotation);
    }

    #[test]
    fn different_seeds_give_different_records() {
        let mut rng1 = ChaCha8Rng::seed_from_u64(1);
        let mut rng2 = ChaCha8Rng::seed_from_u64(2);
        let a = generate_record(&profile(), 90.0, 30.0, 20.0, 64.0, &mut rng1).unwrap();
        let b = generate_record(&profile(), 90.0, 30.0, 20.0, 64.0, &mut rng2).unwrap();
        assert_ne!(a.signal, b.signal);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let p = profile();
        assert!(generate_record(&p, 100.0, 90.0, 30.0, 64.0, &mut rng).is_err());
        assert!(generate_record(&p, 0.0, 0.0, 30.0, 64.0, &mut rng).is_err());
        assert!(generate_record(&p, 100.0, 10.0, 0.0, 64.0, &mut rng).is_err());
        assert!(generate_record(&p, 100.0, 10.0, 30.0, 0.0, &mut rng).is_err());
        assert!(generate_background_record(&p, 0.0, 64.0, &mut rng).is_err());
    }

    #[test]
    fn background_record_is_seizure_free_scale() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let p = profile();
        let bg = generate_background_record(&p, 120.0, 64.0, &mut rng).unwrap();
        assert_eq!(bg.len(), (120.0 * 64.0) as usize);
        // The background RMS stays in the vicinity of the configured amplitude.
        let r = rms(bg.f7t3());
        assert!(r > 0.3 * p.background_amplitude && r < 3.0 * p.background_amplitude);
    }

    #[test]
    fn noisy_patient_gets_near_seizure_bursts_sometimes() {
        // Patient 2 has a 45 % near-seizure-burst probability; over 40 records
        // at least one burst should occur and at least one should not.
        let p = PatientProfile::chb_mit_like_cohort()[1].clone();
        let mut with_burst = 0;
        for seed in 0..40 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let rec = generate_record(&p, 150.0, 60.0, 30.0, 32.0, &mut rng).unwrap();
            if rec.near_seizure_burst {
                with_burst += 1;
            }
        }
        assert!(
            with_burst > 0 && with_burst < 40,
            "with_burst = {with_burst}"
        );
    }

    /// Regression for the NaN-unsafe onset sort: a NaN time must sort last
    /// (worst) without panicking and without disturbing the finite order.
    #[test]
    fn onset_sorting_tolerates_nan_without_panicking() {
        let mut onsets = vec![3.5, f64::NAN, 1.0, 2.5];
        sort_onsets(&mut onsets);
        assert_eq!(&onsets[..3], &[1.0, 2.5, 3.5]);
        assert!(onsets[3].is_nan());
    }

    #[test]
    fn randn_has_roughly_standard_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let samples: Vec<f64> = (0..20000).map(|_| randn(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.05);
        assert!((var - 1.0).abs() < 0.1);
    }
}
