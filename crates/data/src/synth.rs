//! Synthetic EEG generation.
//!
//! The generator reproduces the statistical structure of scalp EEG that the
//! labeling algorithm relies on, without reproducing any real patient data:
//!
//! * **Background** activity is 1/f ("pink") noise with a patient-specific RMS
//!   amplitude, an alpha rhythm (~10 Hz) with slow amplitude modulation and a
//!   small theta component.
//! * **Ictal** activity (the seizure) is rhythmic spike-wave discharge at the
//!   patient's dominant ictal frequency with harmonics, an amplitude envelope
//!   that builds up, plateaus and decays, superimposed on the background.
//! * **Artifacts** are short, high-amplitude broadband bursts mimicking
//!   movement/electrode artifacts. For noisy patients an additional large burst
//!   can be placed *near* the seizure — the confounder that the paper reports
//!   as the cause of its three mislabeled seizures.

use crate::annotation::SeizureAnnotation;
use crate::error::DataError;
use crate::patient::PatientProfile;
use crate::signal::EegSignal;
use rand::Rng;

/// Draws a standard-normal sample using the Box–Muller transform.
pub(crate) fn randn<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generates `n` samples of 1/f-like ("pink") noise with approximately unit
/// variance, using the Paul Kellet filter cascade.
pub fn pink_noise<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<f64> {
    let (mut b0, mut b1, mut b2, mut b3, mut b4, mut b5, mut b6) =
        (0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let white = randn(rng);
        b0 = 0.99886 * b0 + white * 0.0555179;
        b1 = 0.99332 * b1 + white * 0.0750759;
        b2 = 0.96900 * b2 + white * 0.1538520;
        b3 = 0.86650 * b3 + white * 0.3104856;
        b4 = 0.55000 * b4 + white * 0.5329522;
        b5 = -0.7616 * b5 - white * 0.0168980;
        let pink = b0 + b1 + b2 + b3 + b4 + b5 + b6 + white * 0.5362;
        b6 = white * 0.115926;
        // The cascade has a gain of roughly 5; scale back to ~unit variance.
        out.push(pink / 5.0);
    }
    out
}

/// Generates one channel of background (interictal) EEG for `duration_secs`
/// seconds at `fs` Hz.
fn background_channel<R: Rng + ?Sized>(
    profile: &PatientProfile,
    duration_secs: f64,
    fs: f64,
    rng: &mut R,
) -> Vec<f64> {
    let n = (duration_secs * fs).round() as usize;
    let mut signal = pink_noise(n, rng);
    let amplitude = profile.background_amplitude;
    // Alpha rhythm with slow amplitude modulation and a small theta component.
    let alpha_freq = 9.0 + rng.gen_range(0.0..2.0);
    let theta_freq = 5.0 + rng.gen_range(0.0..1.5);
    let alpha_phase = rng.gen_range(0.0..std::f64::consts::TAU);
    let theta_phase = rng.gen_range(0.0..std::f64::consts::TAU);
    let mod_freq = rng.gen_range(0.05..0.15);
    for (i, x) in signal.iter_mut().enumerate() {
        let t = i as f64 / fs;
        let alpha_env = 0.25 * (1.0 + (std::f64::consts::TAU * mod_freq * t).sin());
        let alpha = alpha_env * (std::f64::consts::TAU * alpha_freq * t + alpha_phase).sin();
        let theta = 0.12 * (std::f64::consts::TAU * theta_freq * t + theta_phase).sin();
        *x = amplitude * (*x + alpha + theta);
    }
    signal
}

/// Adds movement-artifact bursts to a channel in place. Returns the burst
/// onset times in seconds (useful for tests).
fn add_artifacts<R: Rng + ?Sized>(
    channel: &mut [f64],
    profile: &PatientProfile,
    fs: f64,
    rng: &mut R,
) -> Vec<f64> {
    let duration_hours = channel.len() as f64 / fs / 3600.0;
    let expected = profile.artifact_rate_per_hour * duration_hours;
    // Draw the artifact count from a Poisson-like distribution (normal approx
    // is adequate here). The draw is clamped on both sides: hostile profiles
    // can request absurd or non-finite rates, and an unbounded draw would try
    // to place billions of bursts (or panic on a negative-rate NaN).
    let draw = expected + randn(rng) * expected.sqrt();
    let ceiling = (3.0 * expected + 10.0).min(channel.len() as f64).max(0.0);
    let count = if draw.is_finite() {
        draw.round().clamp(0.0, ceiling) as usize
    } else {
        0
    };
    let mut onsets = Vec::with_capacity(count);
    for _ in 0..count {
        let burst_len = (rng.gen_range(0.4..2.0) * fs) as usize;
        if channel.len() <= burst_len + 1 {
            continue;
        }
        let start = rng.gen_range(0..channel.len() - burst_len);
        apply_burst(channel, start, burst_len, profile, rng);
        onsets.push(start as f64 / fs);
    }
    onsets
}

/// Sorts event times ascending under a NaN-safe total order (`total_cmp`,
/// NaN last as the worst value). The placement arithmetic above only emits
/// finite times today, but the former `partial_cmp().unwrap()` turned any
/// future NaN into a panic inside record synthesis — taking a whole
/// labeling experiment down with it.
fn sort_onsets(onsets: &mut [f64]) {
    onsets.sort_by(|a, b| a.total_cmp(b));
}

/// Applies one broadband high-amplitude burst starting at `start`.
fn apply_burst<R: Rng + ?Sized>(
    channel: &mut [f64],
    start: usize,
    burst_len: usize,
    profile: &PatientProfile,
    rng: &mut R,
) {
    let amplitude = profile.background_amplitude * profile.artifact_gain;
    for i in 0..burst_len {
        let envelope = (std::f64::consts::PI * i as f64 / burst_len as f64).sin();
        channel[start + i] += amplitude * envelope * randn(rng);
    }
}

/// Generates one channel of ictal (seizure) EEG for `duration_secs` seconds.
///
/// `lateralization` scales the ictal amplitude for the channel (seizures are
/// rarely perfectly symmetric across hemispheres).
fn ictal_channel<R: Rng + ?Sized>(
    profile: &PatientProfile,
    duration_secs: f64,
    fs: f64,
    lateralization: f64,
    rng: &mut R,
) -> Vec<f64> {
    let n = (duration_secs * fs).round() as usize;
    let mut signal = pink_noise(n, rng);
    let base_amp = profile.background_amplitude;
    let ictal_amp = base_amp * profile.ictal_gain * lateralization;
    let f0 = profile.ictal_frequency * (1.0 + 0.05 * randn(rng));
    let phase = rng.gen_range(0.0..std::f64::consts::TAU);
    // Rise over the first 20 %, sustain, decay over the last 25 %, with the
    // discharge frequency slowing slightly towards the end (typical of tonic-
    // clonic evolution).
    for (i, x) in signal.iter_mut().enumerate() {
        let t = i as f64 / fs;
        let progress = i as f64 / n.max(1) as f64;
        let envelope = if progress < 0.2 {
            progress / 0.2
        } else if progress > 0.75 {
            ((1.0 - progress) / 0.25).max(0.0)
        } else {
            1.0
        };
        let freq = f0 * (1.0 - 0.25 * progress);
        let fundamental = (std::f64::consts::TAU * freq * t + phase).sin();
        let spike = profile.spike_sharpness
            * ((std::f64::consts::TAU * 2.0 * freq * t + phase).sin()
                + 0.5 * (std::f64::consts::TAU * 3.0 * freq * t + phase).sin());
        *x = base_amp * 0.6 * *x + ictal_amp * envelope * (fundamental + spike);
    }
    signal
}

/// Output of [`generate_record`]: the synthetic recording, its ground-truth
/// annotation, and the onset times (seconds) of any injected artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedRecord {
    /// The two-channel synthetic EEG signal.
    pub signal: EegSignal,
    /// Ground-truth position of the single seizure contained in the record.
    pub annotation: SeizureAnnotation,
    /// Onset times in seconds of the background artifacts that were injected.
    pub artifact_onsets: Vec<f64>,
    /// `true` if a large noise burst was placed near the seizure.
    pub near_seizure_burst: bool,
}

/// Generates a complete recording of `total_secs` seconds containing exactly
/// one seizure.
///
/// The seizure starts at `seizure_onset_secs` and lasts `seizure_duration_secs`
/// seconds; both channels carry the ictal discharge with slightly different
/// amplitudes. Background artifacts are injected at the patient's artifact
/// rate, and — with the patient's `near_seizure_burst_probability` — one large
/// burst is placed within ±90 s of the seizure boundary.
///
/// # Errors
///
/// Returns [`DataError::InvalidParameter`] if the durations are not positive,
/// the seizure does not fit inside the recording, or `fs` is not positive.
pub fn generate_record<R: Rng + ?Sized>(
    profile: &PatientProfile,
    total_secs: f64,
    seizure_onset_secs: f64,
    seizure_duration_secs: f64,
    fs: f64,
    rng: &mut R,
) -> Result<GeneratedRecord, DataError> {
    if fs <= 0.0 || fs.is_nan() {
        return Err(DataError::InvalidParameter {
            name: "fs",
            reason: format!("sampling frequency must be positive, got {fs}"),
        });
    }
    if total_secs <= 0.0 || seizure_duration_secs <= 0.0 {
        return Err(DataError::InvalidParameter {
            name: "duration",
            reason: "durations must be positive".to_string(),
        });
    }
    if seizure_onset_secs < 0.0 || seizure_onset_secs + seizure_duration_secs > total_secs {
        return Err(DataError::InvalidParameter {
            name: "seizure_onset_secs",
            reason: format!(
                "seizure [{seizure_onset_secs}, {}] does not fit in a {total_secs}-second record",
                seizure_onset_secs + seizure_duration_secs
            ),
        });
    }

    let pre_secs = seizure_onset_secs;
    let post_secs = total_secs - seizure_onset_secs - seizure_duration_secs;

    let mut f7t3 = Vec::new();
    let mut f8t4 = Vec::new();
    if pre_secs > 0.0 {
        f7t3.extend(background_channel(profile, pre_secs, fs, rng));
        f8t4.extend(background_channel(profile, pre_secs, fs, rng));
    }
    let lateral_left = 1.0 + 0.15 * randn(rng).clamp(-1.5, 1.5);
    let lateral_right = 1.0 + 0.15 * randn(rng).clamp(-1.5, 1.5);
    f7t3.extend(ictal_channel(
        profile,
        seizure_duration_secs,
        fs,
        lateral_left.max(0.4),
        rng,
    ));
    f8t4.extend(ictal_channel(
        profile,
        seizure_duration_secs,
        fs,
        lateral_right.max(0.4),
        rng,
    ));
    if post_secs > 0.0 {
        f7t3.extend(background_channel(profile, post_secs, fs, rng));
        f8t4.extend(background_channel(profile, post_secs, fs, rng));
    }

    // Background artifacts across the whole record.
    let mut artifact_onsets = add_artifacts(&mut f7t3, profile, fs, rng);
    artifact_onsets.extend(add_artifacts(&mut f8t4, profile, fs, rng));
    sort_onsets(&mut artifact_onsets);

    // Optionally place a large confounding burst near the seizure. The burst is
    // long, strong and partly rhythmic (movement artifacts on scalp EEG often
    // contain quasi-periodic components), so in the ten-feature space it can
    // compete with the genuine seizure — the failure mode the paper reports for
    // its three mislabeled seizures.
    let near_seizure_burst = rng.gen_bool(profile.near_seizure_burst_probability.clamp(0.0, 1.0));
    if near_seizure_burst {
        let offset = rng.gen_range(30.0..180.0);
        let before = rng.gen_bool(0.5);
        let burst_time = if before {
            (seizure_onset_secs - offset).max(0.0)
        } else {
            (seizure_onset_secs + seizure_duration_secs + offset).min(total_secs - 30.0)
        };
        let burst_secs = rng.gen_range(10.0..25.0);
        let burst_len = (burst_secs * fs) as usize;
        let start = ((burst_time * fs) as usize).min(f7t3.len().saturating_sub(burst_len + 1));
        // The confounding burst is strong and appears on both channels.
        let strong = PatientProfile {
            artifact_gain: profile.artifact_gain * 2.2,
            ..profile.clone()
        };
        apply_burst(&mut f7t3, start, burst_len, &strong, rng);
        apply_burst(&mut f8t4, start, burst_len, &strong, rng);
        // Rhythmic low-frequency component riding on the broadband burst.
        let rhythm_freq = rng.gen_range(2.0..6.0);
        let rhythm_amp = profile.background_amplitude * profile.artifact_gain;
        let phase = rng.gen_range(0.0..std::f64::consts::TAU);
        for i in 0..burst_len {
            let t = i as f64 / fs;
            let envelope = (std::f64::consts::PI * i as f64 / burst_len as f64).sin();
            let rhythm =
                rhythm_amp * envelope * (std::f64::consts::TAU * rhythm_freq * t + phase).sin();
            f7t3[start + i] += rhythm;
            f8t4[start + i] += 0.8 * rhythm;
        }
        artifact_onsets.push(burst_time);
    }

    let signal = EegSignal::new(f7t3, f8t4, fs)?;
    let annotation = SeizureAnnotation::new(
        seizure_onset_secs,
        seizure_onset_secs + seizure_duration_secs,
    )?;
    Ok(GeneratedRecord {
        signal,
        annotation,
        artifact_onsets,
        near_seizure_burst,
    })
}

/// Generates a seizure-free background recording of `total_secs` seconds
/// (used to build the non-seizure half of balanced training sets).
///
/// # Errors
///
/// Returns [`DataError::InvalidParameter`] if the duration or `fs` is not
/// positive.
pub fn generate_background_record<R: Rng + ?Sized>(
    profile: &PatientProfile,
    total_secs: f64,
    fs: f64,
    rng: &mut R,
) -> Result<EegSignal, DataError> {
    if fs <= 0.0 || total_secs <= 0.0 {
        return Err(DataError::InvalidParameter {
            name: "duration",
            reason: "duration and sampling frequency must be positive".to_string(),
        });
    }
    let mut f7t3 = background_channel(profile, total_secs, fs, rng);
    let mut f8t4 = background_channel(profile, total_secs, fs, rng);
    add_artifacts(&mut f7t3, profile, fs, rng);
    add_artifacts(&mut f8t4, profile, fs, rng);
    EegSignal::new(f7t3, f8t4, fs)
}

/// Hostile recording conditions a wearable sees in the field but a clean
/// synthetic cohort never exercises.
///
/// Each variant is a *transform* applied on top of an already generated
/// record ([`apply_scenario`]), so the ground-truth annotation stays valid:
/// the seizure is still where it was, only the recording conditions degrade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostileScenario {
    /// Electrode-contact pops: step discontinuities that decay back to
    /// baseline over a fraction of a second, at many times the signal RMS.
    ElectrodePop,
    /// Mains interference at 50 Hz plus its first harmonic. At the low
    /// sampling rates used on-wrist (e.g. 64 Hz) the hum aliases into the
    /// detector's own passband, which is exactly what makes it hostile.
    MainsHum,
    /// Motion-induced baseline wander: a large slow oscillation plus a leaky
    /// random walk, as from cable sway and skin-potential drift.
    BaselineWander,
    /// One channel flatlines for a long contiguous stretch (lead-off or a
    /// broken wire), holding its last pre-dropout value.
    ChannelDropout,
    /// Amplifier saturation: the front-end gain is too high and the signal
    /// clips against the rails, flattening every large deflection.
    Saturation,
    /// Per-channel gain drift: electrode impedance changes over the record,
    /// ramping each channel's effective gain up or down independently.
    GainDrift,
}

impl HostileScenario {
    /// Every scenario, in a fixed order (useful for benchmark sweeps).
    pub fn all() -> [HostileScenario; 6] {
        [
            HostileScenario::ElectrodePop,
            HostileScenario::MainsHum,
            HostileScenario::BaselineWander,
            HostileScenario::ChannelDropout,
            HostileScenario::Saturation,
            HostileScenario::GainDrift,
        ]
    }

    /// Stable snake_case identifier (used as the key in benchmark reports).
    pub fn name(self) -> &'static str {
        match self {
            HostileScenario::ElectrodePop => "electrode_pop",
            HostileScenario::MainsHum => "mains_hum",
            HostileScenario::BaselineWander => "baseline_wander",
            HostileScenario::ChannelDropout => "channel_dropout",
            HostileScenario::Saturation => "saturation",
            HostileScenario::GainDrift => "gain_drift",
        }
    }
}

/// RMS of a channel, floored away from zero so it can scale interference.
fn channel_rms(channel: &[f64]) -> f64 {
    let n = channel.len().max(1) as f64;
    (channel.iter().map(|v| v * v).sum::<f64>() / n)
        .sqrt()
        .max(1e-9)
}

/// Adds step discontinuities with exponential recovery (electrode pops).
fn add_electrode_pops<R: Rng + ?Sized>(channel: &mut [f64], fs: f64, severity: f64, rng: &mut R) {
    let scale = channel_rms(channel);
    let count = rng.gen_range(3..=8);
    for _ in 0..count {
        if channel.is_empty() {
            return;
        }
        let start = rng.gen_range(0..channel.len());
        let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        let step = sign * scale * rng.gen_range(8.0..20.0) * severity;
        let tau = rng.gen_range(0.1..0.8) * fs;
        for (i, sample) in channel.iter_mut().enumerate().skip(start) {
            let decay = (-((i - start) as f64) / tau).exp();
            if decay < 1e-3 {
                break;
            }
            *sample += step * decay;
        }
    }
}

/// Adds 50 Hz mains hum plus a weaker 100 Hz harmonic.
fn add_mains_hum<R: Rng + ?Sized>(channel: &mut [f64], fs: f64, severity: f64, rng: &mut R) {
    let amp = channel_rms(channel) * rng.gen_range(1.0..2.5) * severity;
    let phase = rng.gen_range(0.0..std::f64::consts::TAU);
    for (i, x) in channel.iter_mut().enumerate() {
        let t = i as f64 / fs;
        *x += amp
            * ((std::f64::consts::TAU * 50.0 * t + phase).sin()
                + 0.3 * (std::f64::consts::TAU * 100.0 * t + 2.0 * phase).sin());
    }
}

/// Adds slow sinusoidal wander plus a leaky random walk (motion baseline).
fn add_baseline_wander<R: Rng + ?Sized>(channel: &mut [f64], fs: f64, severity: f64, rng: &mut R) {
    let scale = channel_rms(channel);
    let amp = scale * rng.gen_range(3.0..6.0) * severity;
    let freq = rng.gen_range(0.2..0.5);
    let phase = rng.gen_range(0.0..std::f64::consts::TAU);
    let mut walk = 0.0;
    for (i, x) in channel.iter_mut().enumerate() {
        let t = i as f64 / fs;
        walk = 0.999 * walk + 0.05 * scale * randn(rng);
        *x += amp * (std::f64::consts::TAU * freq * t + phase).sin() + walk * severity;
    }
}

/// Flatlines a contiguous stretch of the channel at its last live value.
fn add_dropout<R: Rng + ?Sized>(channel: &mut [f64], severity: f64, rng: &mut R) {
    if channel.len() < 4 {
        return;
    }
    // The base draw covers 25–50 % of the record; severity scales the
    // flatlined fraction (clamped so the stretch always fits).
    let fraction = (rng.gen_range(0.25..0.5) * severity).clamp(0.0, 0.9);
    let len = (channel.len() as f64 * fraction) as usize;
    if len == 0 {
        return;
    }
    let start = rng.gen_range(0..channel.len() - len);
    let level = channel[start];
    channel[start..start + len].fill(level);
}

/// Over-amplifies the channel and clips it against the rails.
fn add_saturation<R: Rng + ?Sized>(channel: &mut [f64], severity: f64, rng: &mut R) {
    let rail_factor = rng.gen_range(1.5..2.5);
    let full_gain = rng.gen_range(2.0..4.0);
    if severity <= 0.0 {
        return;
    }
    // Severity interpolates the over-amplification towards unity and pushes
    // the rails outwards, so 0 is the identity and 1 the full clip.
    let gain = 1.0 + (full_gain - 1.0) * severity;
    let rail = channel_rms(channel) * rail_factor * gain / full_gain / severity;
    for x in channel.iter_mut() {
        *x = (*x * gain).clamp(-rail, rail);
    }
}

/// Ramps the channel gain linearly from 1.0 to a drifted endpoint.
fn add_gain_drift<R: Rng + ?Sized>(channel: &mut [f64], severity: f64, rng: &mut R) {
    let full_end_gain = if rng.gen_bool(0.5) {
        rng.gen_range(0.25..0.6)
    } else {
        rng.gen_range(1.6..3.0)
    };
    let end_gain = 1.0 + (full_end_gain - 1.0) * severity;
    let n = channel.len().max(2) as f64;
    for (i, x) in channel.iter_mut().enumerate() {
        let gain = 1.0 + (end_gain - 1.0) * i as f64 / (n - 1.0);
        *x *= gain;
    }
}

/// Applies one [`HostileScenario`] to a signal at full severity, returning
/// the degraded copy. Equivalent to [`apply_scenario_with`] at severity 1.0.
///
/// Lengths, the sampling rate — and therefore any seizure annotation made
/// against the original — are preserved. The transform parameters (pop
/// positions, hum phase, dropout window, drift direction…) are drawn from
/// `rng`, so the same seed reproduces the same degradation.
///
/// # Errors
///
/// Returns [`DataError::InvalidParameter`] only if the input signal itself
/// violates [`EegSignal`]'s invariants (it cannot when built by this module).
pub fn apply_scenario<R: Rng + ?Sized>(
    signal: &EegSignal,
    scenario: HostileScenario,
    rng: &mut R,
) -> Result<EegSignal, DataError> {
    apply_scenario_with(signal, scenario, 1.0, rng)
}

/// [`apply_scenario`] with a severity knob.
///
/// `severity` scales the degradation's magnitude: 1.0 reproduces
/// [`apply_scenario`] exactly (same RNG stream, byte-identical output for
/// the same seed), 0.0 degenerates to (near-)identity, and values above 1.0
/// are harsher than the stock scenario. The annotation-preservation
/// guarantee is severity-independent: lengths and the sampling rate never
/// change.
///
/// # Errors
///
/// Returns [`DataError::InvalidParameter`] if `severity` is negative or not
/// finite, or if the input signal violates [`EegSignal`]'s invariants.
pub fn apply_scenario_with<R: Rng + ?Sized>(
    signal: &EegSignal,
    scenario: HostileScenario,
    severity: f64,
    rng: &mut R,
) -> Result<EegSignal, DataError> {
    if !severity.is_finite() || severity < 0.0 {
        return Err(DataError::InvalidParameter {
            name: "severity",
            reason: format!("severity must be finite and non-negative, got {severity}"),
        });
    }
    let fs = signal.sampling_frequency();
    let mut f7t3 = signal.f7t3().to_vec();
    let mut f8t4 = signal.f8t4().to_vec();
    match scenario {
        HostileScenario::ElectrodePop => {
            add_electrode_pops(&mut f7t3, fs, severity, rng);
            add_electrode_pops(&mut f8t4, fs, severity, rng);
        }
        HostileScenario::MainsHum => {
            add_mains_hum(&mut f7t3, fs, severity, rng);
            add_mains_hum(&mut f8t4, fs, severity, rng);
        }
        HostileScenario::BaselineWander => {
            add_baseline_wander(&mut f7t3, fs, severity, rng);
            add_baseline_wander(&mut f8t4, fs, severity, rng);
        }
        HostileScenario::ChannelDropout => {
            // Lead-off hits one side; the other channel keeps recording.
            if rng.gen_bool(0.5) {
                add_dropout(&mut f7t3, severity, rng);
            } else {
                add_dropout(&mut f8t4, severity, rng);
            }
        }
        HostileScenario::Saturation => {
            add_saturation(&mut f7t3, severity, rng);
            add_saturation(&mut f8t4, severity, rng);
        }
        HostileScenario::GainDrift => {
            add_gain_drift(&mut f7t3, severity, rng);
            add_gain_drift(&mut f8t4, severity, rng);
        }
    }
    EegSignal::new(f7t3, f8t4, fs)
}

/// Seeded convenience wrapper around [`apply_scenario_with`] for callers
/// without their own RNG (examples, quick probes): the degradation is fully
/// determined by `(scenario, severity, seed)`.
///
/// # Errors
///
/// Same conditions as [`apply_scenario_with`].
pub fn degrade_signal(
    signal: &EegSignal,
    scenario: HostileScenario,
    severity: f64,
    seed: u64,
) -> Result<EegSignal, DataError> {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    apply_scenario_with(signal, scenario, severity, &mut rng)
}

/// Two [`HostileScenario`]s overlaid on one record — the field reality where
/// degradations compound (a wander-swamped walk with mains pickup, a
/// saturating front end while an electrode pops loose).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixedScenario {
    /// Applied first, to the pristine signal.
    pub first: HostileScenario,
    /// Applied second, on top of the output of `first` (its interference is
    /// scaled by the *degraded* signal's RMS, compounding the damage).
    pub second: HostileScenario,
}

impl MixedScenario {
    /// Stable `snake_case+snake_case` identifier for benchmark reports.
    pub fn name(self) -> String {
        format!("{}+{}", self.first.name(), self.second.name())
    }

    /// Overlays both scenarios on `signal` at the given severity, drawing
    /// every transform parameter from `rng` — deterministic for a fixed
    /// (seed, severity) pair, and annotation-preserving like
    /// [`apply_scenario_with`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`apply_scenario_with`].
    pub fn apply<R: Rng + ?Sized>(
        self,
        signal: &EegSignal,
        severity: f64,
        rng: &mut R,
    ) -> Result<EegSignal, DataError> {
        let once = apply_scenario_with(signal, self.first, severity, rng)?;
        apply_scenario_with(&once, self.second, severity, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn profile() -> PatientProfile {
        PatientProfile::chb_mit_like_cohort()[0].clone()
    }

    fn rms(x: &[f64]) -> f64 {
        (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt()
    }

    #[test]
    fn pink_noise_has_unit_scale_and_more_low_frequency_energy() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let noise = pink_noise(8192, &mut rng);
        let r = rms(&noise);
        assert!(r > 0.3 && r < 3.0, "rms = {r}");
        // Compare energy in low vs high frequency halves via simple first
        // differences: pink noise has much weaker differences than white noise.
        let diff_energy: f64 = noise.windows(2).map(|w| (w[1] - w[0]).powi(2)).sum();
        let total_energy: f64 = noise.iter().map(|v| v * v).sum();
        assert!(diff_energy < total_energy);
    }

    #[test]
    fn generated_record_has_expected_length_and_annotation() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let rec = generate_record(&profile(), 120.0, 40.0, 30.0, 64.0, &mut rng).unwrap();
        assert_eq!(rec.signal.len(), (120.0 * 64.0) as usize);
        assert_eq!(rec.annotation.onset(), 40.0);
        assert_eq!(rec.annotation.offset(), 70.0);
    }

    #[test]
    fn ictal_segment_has_higher_amplitude_than_background() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let rec = generate_record(&profile(), 180.0, 60.0, 40.0, 64.0, &mut rng).unwrap();
        let fs = 64.0;
        let ictal = &rec.signal.f7t3()[(62.0 * fs) as usize..(98.0 * fs) as usize];
        let background = &rec.signal.f7t3()[0..(50.0 * fs) as usize];
        assert!(rms(ictal) > 1.5 * rms(background));
    }

    #[test]
    fn ictal_activity_appears_on_both_channels() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let rec = generate_record(&profile(), 180.0, 60.0, 40.0, 64.0, &mut rng).unwrap();
        let fs = 64.0;
        for channel in [rec.signal.f7t3(), rec.signal.f8t4()] {
            let ictal = &channel[(62.0 * fs) as usize..(98.0 * fs) as usize];
            let background = &channel[0..(50.0 * fs) as usize];
            assert!(rms(ictal) > 1.3 * rms(background));
        }
    }

    #[test]
    fn generation_is_deterministic_given_a_seed() {
        let mut rng1 = ChaCha8Rng::seed_from_u64(42);
        let mut rng2 = ChaCha8Rng::seed_from_u64(42);
        let a = generate_record(&profile(), 90.0, 30.0, 20.0, 64.0, &mut rng1).unwrap();
        let b = generate_record(&profile(), 90.0, 30.0, 20.0, 64.0, &mut rng2).unwrap();
        assert_eq!(a.signal, b.signal);
        assert_eq!(a.annotation, b.annotation);
    }

    #[test]
    fn different_seeds_give_different_records() {
        let mut rng1 = ChaCha8Rng::seed_from_u64(1);
        let mut rng2 = ChaCha8Rng::seed_from_u64(2);
        let a = generate_record(&profile(), 90.0, 30.0, 20.0, 64.0, &mut rng1).unwrap();
        let b = generate_record(&profile(), 90.0, 30.0, 20.0, 64.0, &mut rng2).unwrap();
        assert_ne!(a.signal, b.signal);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let p = profile();
        assert!(generate_record(&p, 100.0, 90.0, 30.0, 64.0, &mut rng).is_err());
        assert!(generate_record(&p, 0.0, 0.0, 30.0, 64.0, &mut rng).is_err());
        assert!(generate_record(&p, 100.0, 10.0, 0.0, 64.0, &mut rng).is_err());
        assert!(generate_record(&p, 100.0, 10.0, 30.0, 0.0, &mut rng).is_err());
        assert!(generate_background_record(&p, 0.0, 64.0, &mut rng).is_err());
    }

    #[test]
    fn background_record_is_seizure_free_scale() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let p = profile();
        let bg = generate_background_record(&p, 120.0, 64.0, &mut rng).unwrap();
        assert_eq!(bg.len(), (120.0 * 64.0) as usize);
        // The background RMS stays in the vicinity of the configured amplitude.
        let r = rms(bg.f7t3());
        assert!(r > 0.3 * p.background_amplitude && r < 3.0 * p.background_amplitude);
    }

    #[test]
    fn noisy_patient_gets_near_seizure_bursts_sometimes() {
        // Patient 2 has a 45 % near-seizure-burst probability; over 40 records
        // at least one burst should occur and at least one should not.
        let p = PatientProfile::chb_mit_like_cohort()[1].clone();
        let mut with_burst = 0;
        for seed in 0..40 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let rec = generate_record(&p, 150.0, 60.0, 30.0, 32.0, &mut rng).unwrap();
            if rec.near_seizure_burst {
                with_burst += 1;
            }
        }
        assert!(
            with_burst > 0 && with_burst < 40,
            "with_burst = {with_burst}"
        );
    }

    /// Regression for the NaN-unsafe onset sort: a NaN time must sort last
    /// (worst) without panicking and without disturbing the finite order.
    #[test]
    fn onset_sorting_tolerates_nan_without_panicking() {
        let mut onsets = vec![3.5, f64::NAN, 1.0, 2.5];
        sort_onsets(&mut onsets);
        assert_eq!(&onsets[..3], &[1.0, 2.5, 3.5]);
        assert!(onsets[3].is_nan());
    }

    /// Boundary behaviour of the clamped Poisson normal-approx draw: an
    /// absurd rate must not place more bursts than there are samples, and a
    /// negative (NaN-producing) rate must degrade to zero, not panic.
    #[test]
    fn artifact_count_draw_is_clamped_at_both_ends() {
        let fs = 64.0;
        let mut hostile = profile();
        hostile.artifact_rate_per_hour = 1e12;
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let mut channel = vec![0.0; 256];
        let onsets = add_artifacts(&mut channel, &hostile, fs, &mut rng);
        assert!(
            onsets.len() <= channel.len(),
            "placed {} bursts in {} samples",
            onsets.len(),
            channel.len()
        );

        let mut negative = profile();
        negative.artifact_rate_per_hour = -1000.0;
        let mut channel = vec![0.0; 256];
        let onsets = add_artifacts(&mut channel, &negative, fs, &mut rng);
        assert!(onsets.is_empty());
        assert!(channel.iter().all(|v| *v == 0.0));

        // A zero rate draws zero artifacts (sqrt(0) kills the noise term).
        let mut silent = profile();
        silent.artifact_rate_per_hour = 0.0;
        let onsets = add_artifacts(&mut vec![0.0; 256], &silent, fs, &mut rng);
        assert!(onsets.is_empty());
    }

    #[test]
    fn hostile_scenarios_preserve_shape_and_degrade_the_signal() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let rec = generate_record(&profile(), 90.0, 30.0, 20.0, 64.0, &mut rng).unwrap();
        let mut names = std::collections::BTreeSet::new();
        for scenario in HostileScenario::all() {
            names.insert(scenario.name());
            let mut rng = ChaCha8Rng::seed_from_u64(10);
            let degraded = apply_scenario(&rec.signal, scenario, &mut rng).unwrap();
            assert_eq!(degraded.len(), rec.signal.len(), "{}", scenario.name());
            assert_eq!(
                degraded.sampling_frequency(),
                rec.signal.sampling_frequency()
            );
            assert_ne!(degraded, rec.signal, "{} must change data", scenario.name());
            assert!(
                degraded
                    .f7t3()
                    .iter()
                    .chain(degraded.f8t4())
                    .all(|v| v.is_finite()),
                "{} produced non-finite samples",
                scenario.name()
            );
        }
        assert_eq!(names.len(), 6, "scenario names must be distinct");
    }

    #[test]
    fn severity_one_reproduces_the_stock_scenario_byte_for_byte() {
        let mut rng = ChaCha8Rng::seed_from_u64(20);
        let rec = generate_record(&profile(), 90.0, 30.0, 20.0, 64.0, &mut rng).unwrap();
        for scenario in HostileScenario::all() {
            let mut rng1 = ChaCha8Rng::seed_from_u64(21);
            let mut rng2 = ChaCha8Rng::seed_from_u64(21);
            let stock = apply_scenario(&rec.signal, scenario, &mut rng1).unwrap();
            let full = apply_scenario_with(&rec.signal, scenario, 1.0, &mut rng2).unwrap();
            assert_eq!(stock, full, "{}", scenario.name());
        }
    }

    #[test]
    fn severity_zero_is_identity_and_severity_scales_the_damage() {
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let rec = generate_record(&profile(), 90.0, 30.0, 20.0, 64.0, &mut rng).unwrap();
        let distance = |a: &EegSignal, b: &EegSignal| {
            a.f7t3()
                .iter()
                .chain(a.f8t4())
                .zip(b.f7t3().iter().chain(b.f8t4()))
                .map(|(x, y)| (x - y).abs())
                .sum::<f64>()
        };
        for scenario in HostileScenario::all() {
            let mut rng0 = ChaCha8Rng::seed_from_u64(23);
            let none = apply_scenario_with(&rec.signal, scenario, 0.0, &mut rng0).unwrap();
            assert!(
                distance(&none, &rec.signal) < 1e-9 * rec.signal.len() as f64,
                "{} at severity 0 must be (near-)identity",
                scenario.name()
            );
            let mut rng_mild = ChaCha8Rng::seed_from_u64(23);
            let mut rng_full = ChaCha8Rng::seed_from_u64(23);
            let mild = apply_scenario_with(&rec.signal, scenario, 0.3, &mut rng_mild).unwrap();
            let full = apply_scenario_with(&rec.signal, scenario, 1.0, &mut rng_full).unwrap();
            assert!(
                distance(&mild, &rec.signal) < distance(&full, &rec.signal),
                "{}: mild severity must damage less than full",
                scenario.name()
            );
        }
        let mut rng = ChaCha8Rng::seed_from_u64(24);
        assert!(
            apply_scenario_with(&rec.signal, HostileScenario::MainsHum, -0.5, &mut rng).is_err()
        );
        assert!(
            apply_scenario_with(&rec.signal, HostileScenario::MainsHum, f64::NAN, &mut rng)
                .is_err()
        );
    }

    #[test]
    fn mixed_scenarios_compose_deterministically_and_preserve_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(25);
        let rec = generate_record(&profile(), 90.0, 30.0, 20.0, 64.0, &mut rng).unwrap();
        let mixed = MixedScenario {
            first: HostileScenario::BaselineWander,
            second: HostileScenario::MainsHum,
        };
        assert_eq!(mixed.name(), "baseline_wander+mains_hum");
        let mut rng1 = ChaCha8Rng::seed_from_u64(26);
        let mut rng2 = ChaCha8Rng::seed_from_u64(26);
        let a = mixed.apply(&rec.signal, 1.0, &mut rng1).unwrap();
        let b = mixed.apply(&rec.signal, 1.0, &mut rng2).unwrap();
        assert_eq!(a, b, "mixed application must be deterministic");
        assert_eq!(a.len(), rec.signal.len());
        assert_eq!(a.sampling_frequency(), rec.signal.sampling_frequency());
        assert_ne!(a, rec.signal);
        // The overlay equals applying the two scenarios in sequence on the
        // same RNG stream — the compositor adds no hidden transform.
        let mut rng3 = ChaCha8Rng::seed_from_u64(26);
        let once =
            apply_scenario_with(&rec.signal, HostileScenario::BaselineWander, 1.0, &mut rng3)
                .unwrap();
        let twice = apply_scenario_with(&once, HostileScenario::MainsHum, 1.0, &mut rng3).unwrap();
        assert_eq!(a, twice);
    }

    #[test]
    fn scenario_application_is_deterministic_given_a_seed() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let rec = generate_record(&profile(), 90.0, 30.0, 20.0, 64.0, &mut rng).unwrap();
        let mut rng1 = ChaCha8Rng::seed_from_u64(12);
        let mut rng2 = ChaCha8Rng::seed_from_u64(12);
        let a = apply_scenario(&rec.signal, HostileScenario::ElectrodePop, &mut rng1).unwrap();
        let b = apply_scenario(&rec.signal, HostileScenario::ElectrodePop, &mut rng2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn dropout_flatlines_one_channel_only() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let rec = generate_record(&profile(), 90.0, 30.0, 20.0, 64.0, &mut rng).unwrap();
        let degraded =
            apply_scenario(&rec.signal, HostileScenario::ChannelDropout, &mut rng).unwrap();
        let longest_run = |xs: &[f64]| {
            let (mut best, mut run) = (0usize, 1usize);
            for w in xs.windows(2) {
                run = if w[0] == w[1] { run + 1 } else { 1 };
                best = best.max(run);
            }
            best
        };
        let runs = [longest_run(degraded.f7t3()), longest_run(degraded.f8t4())];
        let quarter = degraded.len() / 4;
        assert!(
            runs.iter().filter(|r| **r >= quarter).count() == 1,
            "exactly one channel must flatline, runs = {runs:?}"
        );
    }

    #[test]
    fn saturation_clips_against_symmetric_rails() {
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let rec = generate_record(&profile(), 90.0, 30.0, 20.0, 64.0, &mut rng).unwrap();
        let degraded = apply_scenario(&rec.signal, HostileScenario::Saturation, &mut rng).unwrap();
        for (channel, original) in [
            (degraded.f7t3(), rec.signal.f7t3()),
            (degraded.f8t4(), rec.signal.f8t4()),
        ] {
            let peak = channel.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            let original_peak = original.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            assert!(peak < original_peak, "clipping must cap the peaks");
            // The rail is hit from both sides: many samples sit exactly on it.
            let on_rail = channel.iter().filter(|v| v.abs() == peak).count();
            assert!(on_rail > 10, "only {on_rail} samples on the rail");
        }
    }

    #[test]
    fn randn_has_roughly_standard_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let samples: Vec<f64> = (0..20000).map(|_| randn(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.05);
        assert!((var - 1.0).abs() < 0.1);
    }
}
