//! Ground-truth seizure annotations.

use crate::error::DataError;
use serde::{Deserialize, Serialize};

/// The annotated position of one epileptic seizure inside a recording,
/// expressed in seconds from the start of the recording.
///
/// # Example
///
/// ```
/// use seizure_data::SeizureAnnotation;
///
/// # fn main() -> Result<(), seizure_data::DataError> {
/// let a = SeizureAnnotation::new(120.0, 165.0)?;
/// assert_eq!(a.duration(), 45.0);
/// assert!(a.contains(130.0));
/// assert!(!a.contains(60.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeizureAnnotation {
    onset_sec: f64,
    offset_sec: f64,
}

impl SeizureAnnotation {
    /// Creates an annotation from onset and offset times in seconds.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] if the interval is empty,
    /// negative or contains NaN.
    pub fn new(onset_sec: f64, offset_sec: f64) -> Result<Self, DataError> {
        if onset_sec.is_nan() || offset_sec.is_nan() || onset_sec < 0.0 || offset_sec <= onset_sec {
            return Err(DataError::InvalidParameter {
                name: "annotation",
                reason: format!("invalid seizure interval [{onset_sec}, {offset_sec}]"),
            });
        }
        Ok(Self {
            onset_sec,
            offset_sec,
        })
    }

    /// Seizure onset in seconds.
    pub fn onset(&self) -> f64 {
        self.onset_sec
    }

    /// Seizure offset (end) in seconds.
    pub fn offset(&self) -> f64 {
        self.offset_sec
    }

    /// Seizure duration in seconds.
    pub fn duration(&self) -> f64 {
        self.offset_sec - self.onset_sec
    }

    /// Midpoint of the seizure in seconds.
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.onset_sec + self.offset_sec)
    }

    /// Returns `true` if the time `t` (seconds) falls inside the seizure.
    pub fn contains(&self, t: f64) -> bool {
        t >= self.onset_sec && t <= self.offset_sec
    }

    /// Length in seconds of the overlap between this annotation and another
    /// interval `[start, end]`.
    pub fn overlap_with(&self, start: f64, end: f64) -> f64 {
        let lo = self.onset_sec.max(start);
        let hi = self.offset_sec.min(end);
        (hi - lo).max(0.0)
    }

    /// Returns a copy of the annotation shifted by `delta_sec` (used when a
    /// seizure segment is placed inside a longer synthetic recording).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] if the shifted onset would be
    /// negative.
    pub fn shifted(&self, delta_sec: f64) -> Result<SeizureAnnotation, DataError> {
        SeizureAnnotation::new(self.onset_sec + delta_sec, self.offset_sec + delta_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(SeizureAnnotation::new(10.0, 5.0).is_err());
        assert!(SeizureAnnotation::new(-1.0, 5.0).is_err());
        assert!(SeizureAnnotation::new(5.0, 5.0).is_err());
        assert!(SeizureAnnotation::new(f64::NAN, 5.0).is_err());
        assert!(SeizureAnnotation::new(0.0, 30.0).is_ok());
    }

    #[test]
    fn duration_midpoint_contains() {
        let a = SeizureAnnotation::new(100.0, 140.0).unwrap();
        assert_eq!(a.duration(), 40.0);
        assert_eq!(a.midpoint(), 120.0);
        assert!(a.contains(100.0));
        assert!(a.contains(140.0));
        assert!(!a.contains(99.9));
        assert!(!a.contains(140.1));
    }

    #[test]
    fn overlap_computation() {
        let a = SeizureAnnotation::new(100.0, 140.0).unwrap();
        assert_eq!(a.overlap_with(120.0, 200.0), 20.0);
        assert_eq!(a.overlap_with(0.0, 100.0), 0.0);
        assert_eq!(a.overlap_with(90.0, 150.0), 40.0);
        assert_eq!(a.overlap_with(150.0, 200.0), 0.0);
    }

    #[test]
    fn shifted_moves_both_bounds() {
        let a = SeizureAnnotation::new(10.0, 40.0).unwrap();
        let b = a.shifted(100.0).unwrap();
        assert_eq!(b.onset(), 110.0);
        assert_eq!(b.offset(), 140.0);
        assert!(a.shifted(-20.0).is_err());
    }
}
