//! The CHB-MIT-like synthetic cohort.
//!
//! A [`Cohort`] fixes, deterministically from a seed, the nine patient profiles
//! and the duration of every one of their 45 seizures; evaluation records are
//! then drawn from it with [`Cohort::sample_record`], which mirrors the paper's
//! protocol (a record of random duration containing exactly one seizure).

use crate::error::DataError;
use crate::patient::PatientProfile;
use crate::sampler::{EegRecord, SampleConfig};
use crate::signal::EegSignal;
use crate::synth::{generate_background_record, generate_record, randn};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Fixed metadata of one seizure in the cohort.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeizureSpec {
    /// 1-based patient identifier.
    pub patient_id: usize,
    /// 0-based index of the seizure within the patient.
    pub seizure_index: usize,
    /// Duration of the seizure in seconds.
    pub duration_secs: f64,
}

/// The synthetic nine-patient, 45-seizure cohort.
///
/// # Example
///
/// ```
/// use seizure_data::cohort::Cohort;
///
/// let cohort = Cohort::chb_mit_like(1);
/// assert_eq!(cohort.patients().len(), 9);
/// assert_eq!(cohort.total_seizures(), 45);
/// assert_eq!(cohort.seizures_of(0).unwrap().len(), 7);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cohort {
    seed: u64,
    patients: Vec<PatientProfile>,
    seizures: Vec<Vec<SeizureSpec>>,
}

impl Cohort {
    /// Builds the cohort with per-seizure durations drawn deterministically
    /// from `seed`.
    pub fn chb_mit_like(seed: u64) -> Self {
        let patients = PatientProfile::chb_mit_like_cohort();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut seizures = Vec::with_capacity(patients.len());
        for (p_idx, patient) in patients.iter().enumerate() {
            let mut list = Vec::with_capacity(patient.num_seizures);
            for s_idx in 0..patient.num_seizures {
                let jitter = randn(&mut rng) * patient.seizure_duration_jitter;
                let duration = (patient.mean_seizure_duration + jitter).max(15.0);
                list.push(SeizureSpec {
                    patient_id: p_idx + 1,
                    seizure_index: s_idx,
                    duration_secs: duration,
                });
            }
            seizures.push(list);
        }
        Self {
            seed,
            patients,
            seizures,
        }
    }

    /// Seed the cohort was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The nine patient profiles.
    pub fn patients(&self) -> &[PatientProfile] {
        &self.patients
    }

    /// Profile of the patient at `patient_idx` (0-based).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::IndexOutOfRange`] if the index is out of range.
    pub fn patient(&self, patient_idx: usize) -> Result<&PatientProfile, DataError> {
        self.patients
            .get(patient_idx)
            .ok_or(DataError::IndexOutOfRange {
                entity: "patient",
                index: patient_idx,
                available: self.patients.len(),
            })
    }

    /// Seizure list of the patient at `patient_idx` (0-based).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::IndexOutOfRange`] if the index is out of range.
    pub fn seizures_of(&self, patient_idx: usize) -> Result<&[SeizureSpec], DataError> {
        self.seizures
            .get(patient_idx)
            .map(Vec::as_slice)
            .ok_or(DataError::IndexOutOfRange {
                entity: "patient",
                index: patient_idx,
                available: self.patients.len(),
            })
    }

    /// Metadata of one seizure.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::IndexOutOfRange`] if either index is out of range.
    pub fn seizure(
        &self,
        patient_idx: usize,
        seizure_idx: usize,
    ) -> Result<SeizureSpec, DataError> {
        let list = self.seizures_of(patient_idx)?;
        list.get(seizure_idx)
            .copied()
            .ok_or(DataError::IndexOutOfRange {
                entity: "seizure",
                index: seizure_idx,
                available: list.len(),
            })
    }

    /// Total number of seizures across all patients (45 for the default cohort).
    pub fn total_seizures(&self) -> usize {
        self.seizures.iter().map(Vec::len).sum()
    }

    /// Iterator over all `(patient_idx, seizure_idx)` pairs in the cohort.
    pub fn seizure_indices(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.seizures
            .iter()
            .enumerate()
            .flat_map(|(p, list)| (0..list.len()).map(move |s| (p, s)))
    }

    /// Average seizure duration of a patient in seconds — the quantity a
    /// medical expert provides to the labeling algorithm as the window length
    /// `W`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::IndexOutOfRange`] if the index is out of range.
    pub fn average_seizure_duration(&self, patient_idx: usize) -> Result<f64, DataError> {
        let list = self.seizures_of(patient_idx)?;
        Ok(list.iter().map(|s| s.duration_secs).sum::<f64>() / list.len() as f64)
    }

    /// Generates one evaluation record for the given seizure: a recording of
    /// random duration within the configured range that contains that seizure
    /// at a random position (the paper's §VI-A sampling protocol).
    ///
    /// The record is fully determined by the cohort seed, the seizure identity
    /// and `sample_seed`, so experiments are reproducible.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::IndexOutOfRange`] for invalid indices or
    /// [`DataError::InvalidParameter`] if the configuration cannot accommodate
    /// the seizure (record shorter than the seizure plus margins).
    pub fn sample_record(
        &self,
        patient_idx: usize,
        seizure_idx: usize,
        config: &SampleConfig,
        sample_seed: u64,
    ) -> Result<EegRecord, DataError> {
        let spec = self.seizure(patient_idx, seizure_idx)?;
        let profile = self.patient(patient_idx)?;
        let mut rng = self.record_rng(patient_idx, seizure_idx, sample_seed);

        let margin = config.edge_margin_secs();
        // Only draw record lengths that can actually contain the seizure plus
        // both margins; otherwise the sampled duration would depend on the RNG
        // stream deciding whether the record is feasible at all.
        let min_feasible = spec.duration_secs + 2.0 * margin + 1.0;
        if config.max_duration_secs() < min_feasible {
            return Err(DataError::InvalidParameter {
                name: "config",
                reason: format!(
                    "a {:.0}-second record cannot contain a {:.0}-second seizure with {:.0}-second margins",
                    config.max_duration_secs(),
                    spec.duration_secs,
                    margin
                ),
            });
        }
        let shortest = config.min_duration_secs().max(min_feasible);
        let total_secs = if config.max_duration_secs() > shortest {
            rng.gen_range(shortest..config.max_duration_secs())
        } else {
            shortest
        };
        let latest_onset = total_secs - spec.duration_secs - margin;
        let onset = rng.gen_range(margin..latest_onset);
        let generated = generate_record(
            profile,
            total_secs,
            onset,
            spec.duration_secs,
            config.sampling_frequency(),
            &mut rng,
        )?;
        EegRecord::new(
            generated.signal,
            generated.annotation,
            spec.patient_id,
            spec.seizure_index,
        )
    }

    /// Generates a seizure-free recording of `duration_secs` seconds for the
    /// given patient (used to build the non-seizure half of training sets).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::IndexOutOfRange`] for an invalid patient index or
    /// [`DataError::InvalidParameter`] for a non-positive duration.
    pub fn sample_background(
        &self,
        patient_idx: usize,
        duration_secs: f64,
        fs: f64,
        sample_seed: u64,
    ) -> Result<EegSignal, DataError> {
        let profile = self.patient(patient_idx)?;
        let mut rng = self.record_rng(patient_idx, usize::MAX, sample_seed);
        generate_background_record(profile, duration_secs, fs, &mut rng)
    }

    fn record_rng(&self, patient_idx: usize, seizure_idx: usize, sample_seed: u64) -> ChaCha8Rng {
        // Mix the cohort seed and the record identity into one 64-bit seed.
        let mut h = self.seed ^ 0x9E37_79B9_7F4A_7C15;
        for v in [
            patient_idx as u64 + 1,
            seizure_idx as u64 ^ 0xABCD,
            sample_seed,
        ] {
            h ^= v.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h = h.rotate_left(27).wrapping_mul(0x94D0_49BB_1331_11EB);
        }
        ChaCha8Rng::seed_from_u64(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cohort_structure_matches_table_ii() {
        let cohort = Cohort::chb_mit_like(7);
        assert_eq!(cohort.patients().len(), 9);
        assert_eq!(cohort.total_seizures(), 45);
        let counts: Vec<usize> = (0..9)
            .map(|p| cohort.seizures_of(p).unwrap().len())
            .collect();
        assert_eq!(counts, vec![7, 3, 7, 4, 5, 3, 5, 4, 7]);
        assert_eq!(cohort.seizure_indices().count(), 45);
        assert_eq!(cohort.seed(), 7);
    }

    #[test]
    fn cohort_is_deterministic_in_its_seed() {
        let a = Cohort::chb_mit_like(3);
        let b = Cohort::chb_mit_like(3);
        let c = Cohort::chb_mit_like(4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn seizure_durations_are_positive_and_near_the_profile_mean() {
        let cohort = Cohort::chb_mit_like(11);
        for (p_idx, patient) in cohort.patients().iter().enumerate() {
            let avg = cohort.average_seizure_duration(p_idx).unwrap();
            assert!(avg > 15.0);
            assert!(
                (avg - patient.mean_seizure_duration).abs() < 3.5 * patient.seizure_duration_jitter
            );
            for s in cohort.seizures_of(p_idx).unwrap() {
                assert!(s.duration_secs >= 15.0);
                assert_eq!(s.patient_id, p_idx + 1);
            }
        }
    }

    #[test]
    fn out_of_range_indices_are_rejected() {
        let cohort = Cohort::chb_mit_like(1);
        assert!(cohort.patient(9).is_err());
        assert!(cohort.seizures_of(20).is_err());
        assert!(cohort.seizure(0, 7).is_err());
        assert!(cohort
            .sample_record(12, 0, &SampleConfig::fast_test().unwrap(), 0)
            .is_err());
        assert!(cohort.sample_background(12, 10.0, 64.0, 0).is_err());
    }

    #[test]
    fn sample_record_contains_the_seizure_within_bounds() {
        let cohort = Cohort::chb_mit_like(5);
        let config = SampleConfig::fast_test().unwrap();
        let record = cohort.sample_record(0, 1, &config, 3).unwrap();
        let ann = record.annotation();
        assert!(ann.onset() >= config.edge_margin_secs());
        assert!(ann.offset() <= record.signal().duration_secs());
        assert!(record.signal().duration_secs() >= config.min_duration_secs());
        assert!(record.signal().duration_secs() <= config.max_duration_secs());
        assert_eq!(record.patient_id(), 1);
        assert_eq!(record.seizure_index(), 1);
    }

    #[test]
    fn sample_record_is_reproducible_and_varies_with_sample_seed() {
        let cohort = Cohort::chb_mit_like(5);
        let config = SampleConfig::fast_test().unwrap();
        let a = cohort.sample_record(2, 0, &config, 10).unwrap();
        let b = cohort.sample_record(2, 0, &config, 10).unwrap();
        let c = cohort.sample_record(2, 0, &config, 11).unwrap();
        assert_eq!(a, b);
        assert_ne!(a.signal(), c.signal());
    }

    #[test]
    fn record_too_short_for_seizure_is_rejected() {
        let cohort = Cohort::chb_mit_like(5);
        // 30-second records cannot contain a ~60-second seizure.
        let config = SampleConfig::new(30.0, 31.0, 64.0).unwrap();
        assert!(cohort.sample_record(0, 0, &config, 0).is_err());
    }

    #[test]
    fn sample_background_has_requested_duration() {
        let cohort = Cohort::chb_mit_like(5);
        let bg = cohort.sample_background(3, 90.0, 64.0, 1).unwrap();
        assert_eq!(bg.len(), (90.0 * 64.0) as usize);
    }
}
