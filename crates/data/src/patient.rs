//! Patient profiles controlling the synthetic EEG morphology.
//!
//! Each profile captures the per-patient characteristics that matter to the
//! a-posteriori labeling algorithm: how strongly the ictal EEG differs from the
//! background (amplitude gain, rhythmicity), how long the seizures last, and
//! how much confounding activity (movement artifacts, noise bursts near the
//! seizure) the recording contains. The paper reports that its three mislabeled
//! seizures (one each for patients 2, 3 and 4) were caused by "large bursts of
//! noise in the signal near the epileptic seizure"; the corresponding profiles
//! reproduce that confounder.

use serde::{Deserialize, Serialize};

/// Synthetic-EEG generation parameters for one patient.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatientProfile {
    /// Patient identifier, 1-based as in the paper's tables.
    pub id: usize,
    /// Background EEG RMS amplitude in microvolts.
    pub background_amplitude: f64,
    /// Amplitude gain of ictal EEG relative to background (how "visible" the
    /// seizure is in the raw trace).
    pub ictal_gain: f64,
    /// Dominant ictal rhythm frequency in Hz (spike-wave repetition rate).
    pub ictal_frequency: f64,
    /// Fraction of the ictal amplitude contributed by harmonics/spikes.
    pub spike_sharpness: f64,
    /// Average seizure duration in seconds (the `W` a medical expert provides
    /// to the labeling algorithm).
    pub mean_seizure_duration: f64,
    /// Spread of the individual seizure durations around the mean, in seconds.
    pub seizure_duration_jitter: f64,
    /// Expected number of movement-artifact bursts per hour of background EEG.
    pub artifact_rate_per_hour: f64,
    /// Amplitude gain of artifact bursts relative to background.
    pub artifact_gain: f64,
    /// Probability that a recording contains a large noise burst close to the
    /// seizure (the confounder behind the paper's three mislabeled seizures).
    pub near_seizure_burst_probability: f64,
    /// Number of seizures recorded for this patient.
    pub num_seizures: usize,
}

impl PatientProfile {
    /// Returns the nine-patient cohort used throughout the experiments.
    ///
    /// Seizure counts follow Table II of the paper (7, 3, 7, 4, 5, 3, 5, 4 and
    /// 7 seizures for patients 1–9, 45 in total). Patients 2, 3 and 4 are given
    /// noisier recordings — particularly patient 2, which the paper reports as
    /// the hardest one (δ = 53.2 s) — while patients 8 and 9 are the cleanest.
    pub fn chb_mit_like_cohort() -> Vec<PatientProfile> {
        vec![
            PatientProfile {
                id: 1,
                background_amplitude: 22.0,
                ictal_gain: 2.6,
                ictal_frequency: 3.2,
                spike_sharpness: 0.45,
                mean_seizure_duration: 62.0,
                seizure_duration_jitter: 14.0,
                artifact_rate_per_hour: 7.0,
                artifact_gain: 2.2,
                near_seizure_burst_probability: 0.06,
                num_seizures: 7,
            },
            PatientProfile {
                id: 2,
                background_amplitude: 26.0,
                ictal_gain: 1.7,
                ictal_frequency: 4.1,
                spike_sharpness: 0.30,
                mean_seizure_duration: 55.0,
                seizure_duration_jitter: 18.0,
                artifact_rate_per_hour: 16.0,
                artifact_gain: 3.4,
                near_seizure_burst_probability: 0.45,
                num_seizures: 3,
            },
            PatientProfile {
                id: 3,
                background_amplitude: 20.0,
                ictal_gain: 3.1,
                ictal_frequency: 2.8,
                spike_sharpness: 0.55,
                mean_seizure_duration: 48.0,
                seizure_duration_jitter: 10.0,
                artifact_rate_per_hour: 9.0,
                artifact_gain: 2.8,
                near_seizure_burst_probability: 0.18,
                num_seizures: 7,
            },
            PatientProfile {
                id: 4,
                background_amplitude: 24.0,
                ictal_gain: 2.4,
                ictal_frequency: 3.6,
                spike_sharpness: 0.40,
                mean_seizure_duration: 70.0,
                seizure_duration_jitter: 16.0,
                artifact_rate_per_hour: 11.0,
                artifact_gain: 3.0,
                near_seizure_burst_probability: 0.22,
                num_seizures: 4,
            },
            PatientProfile {
                id: 5,
                background_amplitude: 21.0,
                ictal_gain: 3.0,
                ictal_frequency: 3.0,
                spike_sharpness: 0.50,
                mean_seizure_duration: 58.0,
                seizure_duration_jitter: 9.0,
                artifact_rate_per_hour: 6.0,
                artifact_gain: 2.0,
                near_seizure_burst_probability: 0.05,
                num_seizures: 5,
            },
            PatientProfile {
                id: 6,
                background_amplitude: 23.0,
                ictal_gain: 2.5,
                ictal_frequency: 3.8,
                spike_sharpness: 0.42,
                mean_seizure_duration: 52.0,
                seizure_duration_jitter: 12.0,
                artifact_rate_per_hour: 8.0,
                artifact_gain: 2.4,
                near_seizure_burst_probability: 0.10,
                num_seizures: 3,
            },
            PatientProfile {
                id: 7,
                background_amplitude: 25.0,
                ictal_gain: 2.3,
                ictal_frequency: 3.4,
                spike_sharpness: 0.38,
                mean_seizure_duration: 66.0,
                seizure_duration_jitter: 15.0,
                artifact_rate_per_hour: 10.0,
                artifact_gain: 2.6,
                near_seizure_burst_probability: 0.14,
                num_seizures: 5,
            },
            PatientProfile {
                id: 8,
                background_amplitude: 20.0,
                ictal_gain: 3.4,
                ictal_frequency: 2.6,
                spike_sharpness: 0.60,
                mean_seizure_duration: 60.0,
                seizure_duration_jitter: 8.0,
                artifact_rate_per_hour: 4.0,
                artifact_gain: 1.8,
                near_seizure_burst_probability: 0.03,
                num_seizures: 4,
            },
            PatientProfile {
                id: 9,
                background_amplitude: 22.0,
                ictal_gain: 3.2,
                ictal_frequency: 3.1,
                spike_sharpness: 0.52,
                mean_seizure_duration: 56.0,
                seizure_duration_jitter: 10.0,
                artifact_rate_per_hour: 5.0,
                artifact_gain: 2.0,
                near_seizure_burst_probability: 0.04,
                num_seizures: 7,
            },
        ]
    }

    /// A "difficulty" score in `[0, 1]` summarizing how confounded the
    /// patient's recordings are (higher is harder for the labeling algorithm).
    pub fn difficulty(&self) -> f64 {
        let visibility = (self.ictal_gain - 1.0).max(0.1);
        let noise = self.artifact_rate_per_hour * self.artifact_gain / 60.0
            + self.near_seizure_burst_probability;
        (noise / visibility).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cohort_has_nine_patients_and_45_seizures() {
        let cohort = PatientProfile::chb_mit_like_cohort();
        assert_eq!(cohort.len(), 9);
        let total: usize = cohort.iter().map(|p| p.num_seizures).sum();
        assert_eq!(total, 45);
        // Table II seizure counts per patient.
        let counts: Vec<usize> = cohort.iter().map(|p| p.num_seizures).collect();
        assert_eq!(counts, vec![7, 3, 7, 4, 5, 3, 5, 4, 7]);
    }

    #[test]
    fn ids_are_one_based_and_sequential() {
        let cohort = PatientProfile::chb_mit_like_cohort();
        for (i, p) in cohort.iter().enumerate() {
            assert_eq!(p.id, i + 1);
        }
    }

    #[test]
    fn patient_two_is_the_hardest() {
        let cohort = PatientProfile::chb_mit_like_cohort();
        let difficulties: Vec<f64> = cohort.iter().map(PatientProfile::difficulty).collect();
        // NaN-safe total order: `total_cmp` cannot panic the ranking the way
        // the former `partial_cmp().unwrap()` did.
        let hardest = difficulties
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(cohort[hardest].id, 2);
    }

    /// Regression for the NaN-unsafe difficulty ranking: every profile's
    /// difficulty must be finite, so the `total_cmp` ranking above is a
    /// plain numeric order — a NaN creeping into `difficulty()` would make
    /// the "hardest patient" pick meaningless (and used to panic the old
    /// `partial_cmp().unwrap()` comparator outright).
    #[test]
    fn difficulty_is_finite_for_every_profile() {
        for p in PatientProfile::chb_mit_like_cohort() {
            assert!(p.difficulty().is_finite(), "patient {}", p.id);
        }
    }

    #[test]
    fn clean_patients_are_easier_than_noisy_ones() {
        let cohort = PatientProfile::chb_mit_like_cohort();
        let p2 = cohort.iter().find(|p| p.id == 2).unwrap();
        let p8 = cohort.iter().find(|p| p.id == 8).unwrap();
        assert!(p8.difficulty() < p2.difficulty());
    }

    #[test]
    fn seizure_durations_are_plausible() {
        for p in PatientProfile::chb_mit_like_cohort() {
            assert!(p.mean_seizure_duration > 20.0 && p.mean_seizure_duration < 200.0);
            assert!(p.seizure_duration_jitter < p.mean_seizure_duration);
        }
    }
}
