//! Simple on-disk record format.
//!
//! Records are stored as a plain-text CSV-like file: a small `#`-prefixed
//! header with the metadata (sampling frequency, annotation and provenance)
//! followed by one line per sample with the two channel values. The format is
//! intentionally trivial so that generated datasets can be inspected with
//! standard tools and reloaded without any external dependency.

use crate::annotation::SeizureAnnotation;
use crate::error::DataError;
use crate::sampler::EegRecord;
use crate::signal::EegSignal;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Writes `record` to `writer` in the textual record format.
///
/// A mutable reference to any `Write` implementor can be passed.
///
/// # Errors
///
/// Returns [`DataError::Io`] if writing fails.
pub fn write_record<W: Write>(record: &EegRecord, writer: W) -> Result<(), DataError> {
    let mut w = BufWriter::new(writer);
    let signal = record.signal();
    writeln!(w, "# seizure-record v1")?;
    writeln!(w, "# fs {}", signal.sampling_frequency())?;
    writeln!(w, "# patient {}", record.patient_id())?;
    writeln!(w, "# seizure_index {}", record.seizure_index())?;
    writeln!(
        w,
        "# annotation {} {}",
        record.annotation().onset(),
        record.annotation().offset()
    )?;
    writeln!(w, "# samples {}", signal.len())?;
    for (a, b) in signal.f7t3().iter().zip(signal.f8t4().iter()) {
        writeln!(w, "{a},{b}")?;
    }
    w.flush()?;
    Ok(())
}

/// Writes `record` to the file at `path`.
///
/// # Errors
///
/// Returns [`DataError::Io`] if the file cannot be created or written.
pub fn write_record_file<P: AsRef<Path>>(record: &EegRecord, path: P) -> Result<(), DataError> {
    let file = std::fs::File::create(path)?;
    write_record(record, file)
}

/// Reads a record previously written with [`write_record`].
///
/// A mutable reference to any `Read` implementor can be passed.
///
/// # Errors
///
/// Returns [`DataError::Io`] on read failures and [`DataError::Format`] if the
/// header or the sample lines are malformed.
pub fn read_record<R: Read>(reader: R) -> Result<EegRecord, DataError> {
    let reader = BufReader::new(reader);
    let mut fs: Option<f64> = None;
    let mut patient: Option<usize> = None;
    let mut seizure_index: Option<usize> = None;
    let mut annotation: Option<(f64, f64)> = None;
    let mut f7t3 = Vec::new();
    let mut f8t4 = Vec::new();

    for line in reader.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let mut parts = rest.split_whitespace();
            match parts.next() {
                Some("fs") => fs = parts.next().and_then(|v| v.parse().ok()),
                Some("patient") => patient = parts.next().and_then(|v| v.parse().ok()),
                Some("seizure_index") => seizure_index = parts.next().and_then(|v| v.parse().ok()),
                Some("annotation") => {
                    let onset = parts.next().and_then(|v| v.parse().ok());
                    let offset = parts.next().and_then(|v| v.parse().ok());
                    if let (Some(onset), Some(offset)) = (onset, offset) {
                        annotation = Some((onset, offset));
                    }
                }
                _ => {}
            }
            continue;
        }
        let mut values = line.split(',');
        let a: f64 = values
            .next()
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| DataError::Format {
                detail: format!("malformed sample line: {line}"),
            })?;
        let b: f64 = values
            .next()
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| DataError::Format {
                detail: format!("malformed sample line: {line}"),
            })?;
        f7t3.push(a);
        f8t4.push(b);
    }

    let fs = fs.ok_or_else(|| DataError::Format {
        detail: "missing `# fs` header".to_string(),
    })?;
    let (onset, offset) = annotation.ok_or_else(|| DataError::Format {
        detail: "missing `# annotation` header".to_string(),
    })?;
    let signal = EegSignal::new(f7t3, f8t4, fs)?;
    let annotation = SeizureAnnotation::new(onset, offset)?;
    EegRecord::new(
        signal,
        annotation,
        patient.unwrap_or(0),
        seizure_index.unwrap_or(0),
    )
}

/// Reads a record from the file at `path`.
///
/// # Errors
///
/// Returns [`DataError::Io`] if the file cannot be opened and the errors of
/// [`read_record`] otherwise.
pub fn read_record_file<P: AsRef<Path>>(path: P) -> Result<EegRecord, DataError> {
    let file = std::fs::File::open(path)?;
    read_record(file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cohort::Cohort;
    use crate::sampler::SampleConfig;

    fn small_record() -> EegRecord {
        let cohort = Cohort::chb_mit_like(1);
        let config = SampleConfig::new(120.0, 121.0, 32.0).unwrap();
        cohort.sample_record(0, 0, &config, 0).unwrap()
    }

    #[test]
    fn write_read_roundtrip_in_memory() {
        let record = small_record();
        let mut buf = Vec::new();
        write_record(&record, &mut buf).unwrap();
        let restored = read_record(buf.as_slice()).unwrap();
        assert_eq!(restored.patient_id(), record.patient_id());
        assert_eq!(restored.seizure_index(), record.seizure_index());
        assert_eq!(restored.signal().len(), record.signal().len());
        assert!((restored.annotation().onset() - record.annotation().onset()).abs() < 1e-9);
        // Sample values survive the text round-trip with full precision.
        for (a, b) in restored
            .signal()
            .f7t3()
            .iter()
            .zip(record.signal().f7t3().iter())
        {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn file_roundtrip() {
        let record = small_record();
        let dir = std::env::temp_dir().join("seizure-data-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("record.csv");
        write_record_file(&record, &path).unwrap();
        let restored = read_record_file(&path).unwrap();
        assert_eq!(restored.signal().len(), record.signal().len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_headers_are_rejected() {
        let text = "1.0,2.0\n3.0,4.0\n";
        assert!(matches!(
            read_record(text.as_bytes()),
            Err(DataError::Format { .. })
        ));
        let text = "# fs 256\n1.0,2.0\n";
        assert!(matches!(
            read_record(text.as_bytes()),
            Err(DataError::Format { .. })
        ));
    }

    #[test]
    fn malformed_sample_lines_are_rejected() {
        let text = "# fs 256\n# annotation 0.5 1.0\nnot-a-number,2.0\n";
        assert!(matches!(
            read_record(text.as_bytes()),
            Err(DataError::Format { .. })
        ));
        let text = "# fs 256\n# annotation 0.5 1.0\n1.0\n";
        assert!(matches!(
            read_record(text.as_bytes()),
            Err(DataError::Format { .. })
        ));
    }

    #[test]
    fn nonexistent_file_is_an_io_error() {
        assert!(matches!(
            read_record_file("/definitely/not/here.csv"),
            Err(DataError::Io { .. })
        ));
    }
}
