//! Two-channel EEG signal container.

use crate::error::DataError;
use serde::{Deserialize, Serialize};

/// A two-channel EEG recording over the electrode pairs F7T3 and F8T4, the
/// montage used by the non-invasive wearable platforms the paper targets
/// (e-Glass, in-ear and behind-the-ear sensors).
///
/// # Example
///
/// ```
/// use seizure_data::EegSignal;
///
/// # fn main() -> Result<(), seizure_data::DataError> {
/// let signal = EegSignal::new(vec![0.0; 512], vec![0.0; 512], 256.0)?;
/// assert_eq!(signal.len(), 512);
/// assert!((signal.duration_secs() - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EegSignal {
    f7t3: Vec<f64>,
    f8t4: Vec<f64>,
    fs: f64,
}

impl EegSignal {
    /// Creates a signal from the two channel sample vectors and the sampling
    /// frequency in Hz.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] if the channels have different
    /// lengths, are empty, or `fs` is not strictly positive.
    pub fn new(f7t3: Vec<f64>, f8t4: Vec<f64>, fs: f64) -> Result<Self, DataError> {
        if f7t3.len() != f8t4.len() {
            return Err(DataError::InvalidParameter {
                name: "channels",
                reason: format!(
                    "channel lengths differ: F7T3 has {} samples, F8T4 has {}",
                    f7t3.len(),
                    f8t4.len()
                ),
            });
        }
        if f7t3.is_empty() {
            return Err(DataError::InvalidParameter {
                name: "channels",
                reason: "channels must contain at least one sample".to_string(),
            });
        }
        if fs <= 0.0 || fs.is_nan() {
            return Err(DataError::InvalidParameter {
                name: "fs",
                reason: format!("sampling frequency must be positive, got {fs}"),
            });
        }
        Ok(Self { f7t3, f8t4, fs })
    }

    /// Samples of the F7T3 electrode pair.
    pub fn f7t3(&self) -> &[f64] {
        &self.f7t3
    }

    /// Samples of the F8T4 electrode pair.
    pub fn f8t4(&self) -> &[f64] {
        &self.f8t4
    }

    /// Sampling frequency in Hz.
    pub fn sampling_frequency(&self) -> f64 {
        self.fs
    }

    /// Number of samples per channel.
    pub fn len(&self) -> usize {
        self.f7t3.len()
    }

    /// Returns `true` if the signal contains no samples (cannot happen for
    /// constructed signals, provided for completeness).
    pub fn is_empty(&self) -> bool {
        self.f7t3.is_empty()
    }

    /// Duration of the recording in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.len() as f64 / self.fs
    }

    /// Converts a time in seconds to the nearest sample index, clamped to the
    /// signal length.
    pub fn seconds_to_sample(&self, seconds: f64) -> usize {
        ((seconds * self.fs).round().max(0.0) as usize).min(self.len())
    }

    /// Converts a sample index to seconds.
    pub fn sample_to_seconds(&self, sample: usize) -> f64 {
        sample as f64 / self.fs
    }

    /// Extracts the sub-signal between `start_sec` and `end_sec` (clamped to
    /// the recording bounds).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] if the interval is empty after
    /// clamping.
    pub fn slice_seconds(&self, start_sec: f64, end_sec: f64) -> Result<EegSignal, DataError> {
        let start = self.seconds_to_sample(start_sec.max(0.0));
        let end = self.seconds_to_sample(end_sec);
        if end <= start {
            return Err(DataError::InvalidParameter {
                name: "interval",
                reason: format!("empty interval [{start_sec}, {end_sec}] after clamping"),
            });
        }
        EegSignal::new(
            self.f7t3[start..end].to_vec(),
            self.f8t4[start..end].to_vec(),
            self.fs,
        )
    }

    /// Concatenates `other` after `self`, returning a new signal.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] if the sampling frequencies
    /// differ.
    pub fn concat(&self, other: &EegSignal) -> Result<EegSignal, DataError> {
        if (self.fs - other.fs).abs() > f64::EPSILON {
            return Err(DataError::InvalidParameter {
                name: "fs",
                reason: format!(
                    "cannot concatenate signals with different sampling rates ({} vs {})",
                    self.fs, other.fs
                ),
            });
        }
        let mut f7t3 = self.f7t3.clone();
        f7t3.extend_from_slice(&other.f7t3);
        let mut f8t4 = self.f8t4.clone();
        f8t4.extend_from_slice(&other.f8t4);
        EegSignal::new(f7t3, f8t4, self.fs)
    }

    /// Consumes the signal and returns `(f7t3, f8t4, fs)`.
    pub fn into_parts(self) -> (Vec<f64>, Vec<f64>, f64) {
        (self.f7t3, self.f8t4, self.fs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64).collect()
    }

    #[test]
    fn construction_validation() {
        assert!(EegSignal::new(vec![1.0], vec![1.0, 2.0], 256.0).is_err());
        assert!(EegSignal::new(vec![], vec![], 256.0).is_err());
        assert!(EegSignal::new(vec![1.0], vec![1.0], 0.0).is_err());
        assert!(EegSignal::new(vec![1.0], vec![1.0], f64::NAN).is_err());
        assert!(EegSignal::new(vec![1.0], vec![1.0], 256.0).is_ok());
    }

    #[test]
    fn accessors_and_duration() {
        let s = EegSignal::new(ramp(512), ramp(512), 256.0).unwrap();
        assert_eq!(s.len(), 512);
        assert!(!s.is_empty());
        assert_eq!(s.sampling_frequency(), 256.0);
        assert!((s.duration_secs() - 2.0).abs() < 1e-12);
        assert_eq!(s.f7t3()[10], 10.0);
        assert_eq!(s.f8t4()[20], 20.0);
    }

    #[test]
    fn time_sample_conversions() {
        let s = EegSignal::new(ramp(1024), ramp(1024), 256.0).unwrap();
        assert_eq!(s.seconds_to_sample(1.0), 256);
        assert_eq!(s.seconds_to_sample(100.0), 1024); // clamped
        assert_eq!(s.seconds_to_sample(-1.0), 0);
        assert!((s.sample_to_seconds(512) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn slice_seconds_extracts_expected_samples() {
        let s = EegSignal::new(ramp(1024), ramp(1024), 256.0).unwrap();
        let cut = s.slice_seconds(1.0, 2.0).unwrap();
        assert_eq!(cut.len(), 256);
        assert_eq!(cut.f7t3()[0], 256.0);
        assert!(s.slice_seconds(3.0, 2.0).is_err());
        assert!(s.slice_seconds(10.0, 20.0).is_err());
    }

    #[test]
    fn concat_appends_samples() {
        let a = EegSignal::new(ramp(100), ramp(100), 256.0).unwrap();
        let b = EegSignal::new(vec![7.0; 50], vec![8.0; 50], 256.0).unwrap();
        let c = a.concat(&b).unwrap();
        assert_eq!(c.len(), 150);
        assert_eq!(c.f7t3()[100], 7.0);
        assert_eq!(c.f8t4()[149], 8.0);
        let d = EegSignal::new(vec![1.0; 10], vec![1.0; 10], 128.0).unwrap();
        assert!(a.concat(&d).is_err());
    }

    #[test]
    fn into_parts_round_trips() {
        let s = EegSignal::new(ramp(16), ramp(16), 64.0).unwrap();
        let (a, b, fs) = s.into_parts();
        assert_eq!(a.len(), 16);
        assert_eq!(b.len(), 16);
        assert_eq!(fs, 64.0);
    }
}
