//! Test-sample generation.
//!
//! The paper's evaluation (§VI-A) builds test samples as follows: "Each sample
//! consists of an EEG signal of random duration ranging between 30 minutes and
//! 1 hour that contains a single epileptic seizure. For each one of the 45
//! epileptic seizures contained in the database, 100 different samples were
//! produced." This module provides the sample configuration and the record
//! type produced by [`crate::cohort::Cohort::sample_record`].

use crate::annotation::SeizureAnnotation;
use crate::error::DataError;
use crate::signal::EegSignal;
use serde::{Deserialize, Serialize};

/// Configuration of one evaluation sample: the record duration range and the
/// sampling frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampleConfig {
    min_duration_secs: f64,
    max_duration_secs: f64,
    fs: f64,
    /// Margin in seconds kept between the seizure and both record edges so the
    /// seizure is always fully contained.
    edge_margin_secs: f64,
}

impl SampleConfig {
    /// Creates a configuration with the given duration range (seconds) and
    /// sampling frequency (Hz).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] if the range is empty or
    /// non-positive, or `fs` is not positive.
    pub fn new(min_duration_secs: f64, max_duration_secs: f64, fs: f64) -> Result<Self, DataError> {
        if !(min_duration_secs > 0.0 && max_duration_secs >= min_duration_secs) {
            return Err(DataError::InvalidParameter {
                name: "duration range",
                reason: format!(
                    "invalid duration range [{min_duration_secs}, {max_duration_secs}]"
                ),
            });
        }
        if fs <= 0.0 || fs.is_nan() {
            return Err(DataError::InvalidParameter {
                name: "fs",
                reason: format!("sampling frequency must be positive, got {fs}"),
            });
        }
        Ok(Self {
            min_duration_secs,
            max_duration_secs,
            fs,
            edge_margin_secs: 10.0,
        })
    }

    /// The paper's evaluation configuration: 30–60 minute records at 256 Hz.
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature matches [`SampleConfig::new`].
    pub fn paper_default() -> Result<Self, DataError> {
        Self::new(1800.0, 3600.0, 256.0)
    }

    /// A light-weight configuration (shorter records, lower sampling rate)
    /// useful for fast tests and debug builds while preserving the structure of
    /// the experiment.
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature matches [`SampleConfig::new`].
    pub fn fast_test() -> Result<Self, DataError> {
        Self::new(240.0, 360.0, 64.0)
    }

    /// Minimum record duration in seconds.
    pub fn min_duration_secs(&self) -> f64 {
        self.min_duration_secs
    }

    /// Maximum record duration in seconds.
    pub fn max_duration_secs(&self) -> f64 {
        self.max_duration_secs
    }

    /// Sampling frequency in Hz.
    pub fn sampling_frequency(&self) -> f64 {
        self.fs
    }

    /// Margin kept between the seizure and the record edges, in seconds.
    pub fn edge_margin_secs(&self) -> f64 {
        self.edge_margin_secs
    }

    /// Returns a copy with a different edge margin.
    pub fn with_edge_margin(mut self, margin_secs: f64) -> Self {
        self.edge_margin_secs = margin_secs.max(0.0);
        self
    }
}

/// One generated evaluation record: a signal containing exactly one seizure
/// with its ground-truth annotation and provenance information.
#[derive(Debug, Clone, PartialEq)]
pub struct EegRecord {
    signal: EegSignal,
    annotation: SeizureAnnotation,
    patient_id: usize,
    seizure_index: usize,
}

impl EegRecord {
    /// Assembles a record from its parts (used by the cohort sampler and by
    /// the I/O round-trip).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] if the annotation extends beyond
    /// the end of the signal.
    pub fn new(
        signal: EegSignal,
        annotation: SeizureAnnotation,
        patient_id: usize,
        seizure_index: usize,
    ) -> Result<Self, DataError> {
        if annotation.offset() > signal.duration_secs() + 1e-9 {
            return Err(DataError::InvalidParameter {
                name: "annotation",
                reason: format!(
                    "annotation ends at {:.1}s but the signal lasts {:.1}s",
                    annotation.offset(),
                    signal.duration_secs()
                ),
            });
        }
        Ok(Self {
            signal,
            annotation,
            patient_id,
            seizure_index,
        })
    }

    /// The two-channel EEG signal.
    pub fn signal(&self) -> &EegSignal {
        &self.signal
    }

    /// Ground-truth seizure annotation.
    pub fn annotation(&self) -> &SeizureAnnotation {
        &self.annotation
    }

    /// Identifier of the patient the record belongs to (1-based).
    pub fn patient_id(&self) -> usize {
        self.patient_id
    }

    /// Index of the seizure within the patient's seizure list (0-based).
    pub fn seizure_index(&self) -> usize {
        self.seizure_index
    }

    /// Consumes the record and returns its parts.
    pub fn into_parts(self) -> (EegSignal, SeizureAnnotation, usize, usize) {
        (
            self.signal,
            self.annotation,
            self.patient_id,
            self.seizure_index,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(SampleConfig::new(0.0, 100.0, 256.0).is_err());
        assert!(SampleConfig::new(200.0, 100.0, 256.0).is_err());
        assert!(SampleConfig::new(100.0, 200.0, 0.0).is_err());
        assert!(SampleConfig::new(100.0, 100.0, 256.0).is_ok());
    }

    #[test]
    fn paper_default_matches_evaluation_setup() {
        let cfg = SampleConfig::paper_default().unwrap();
        assert_eq!(cfg.min_duration_secs(), 1800.0);
        assert_eq!(cfg.max_duration_secs(), 3600.0);
        assert_eq!(cfg.sampling_frequency(), 256.0);
    }

    #[test]
    fn fast_test_config_is_shorter() {
        let cfg = SampleConfig::fast_test().unwrap();
        assert!(cfg.max_duration_secs() < 600.0);
        assert!(cfg.sampling_frequency() < 256.0);
    }

    #[test]
    fn edge_margin_is_adjustable() {
        let cfg = SampleConfig::fast_test().unwrap().with_edge_margin(25.0);
        assert_eq!(cfg.edge_margin_secs(), 25.0);
        let cfg = cfg.with_edge_margin(-3.0);
        assert_eq!(cfg.edge_margin_secs(), 0.0);
    }

    #[test]
    fn record_construction_checks_annotation() {
        let signal = EegSignal::new(vec![0.0; 640], vec![0.0; 640], 64.0).unwrap();
        let ok = SeizureAnnotation::new(2.0, 8.0).unwrap();
        let record = EegRecord::new(signal.clone(), ok, 1, 0).unwrap();
        assert_eq!(record.patient_id(), 1);
        assert_eq!(record.seizure_index(), 0);
        assert_eq!(record.signal().len(), 640);
        assert_eq!(record.annotation().duration(), 6.0);

        let too_long = SeizureAnnotation::new(2.0, 100.0).unwrap();
        assert!(EegRecord::new(signal, too_long, 1, 0).is_err());
    }

    #[test]
    fn into_parts_round_trips() {
        let signal = EegSignal::new(vec![0.0; 64], vec![0.0; 64], 64.0).unwrap();
        let ann = SeizureAnnotation::new(0.1, 0.5).unwrap();
        let record = EegRecord::new(signal, ann, 3, 2).unwrap();
        let (_, a, pid, sid) = record.into_parts();
        assert_eq!(a.onset(), 0.1);
        assert_eq!(pid, 3);
        assert_eq!(sid, 2);
    }
}
