//! # seizure-edge
//!
//! Analytic model of the wearable edge platform the paper evaluates on
//! (§V-B, §VI-C): an STM32L151 ultra-low-power microcontroller (ARM
//! Cortex-M3, 32 MHz, 48 KB RAM, 384 KB Flash) paired with an ADS1299
//! biopotential front-end and a 570 mAh battery.
//!
//! The paper's battery-lifetime numbers are themselves computed from per-task
//! currents and duty cycles (Table III); this crate reproduces that
//! computation and exposes it as a reusable model:
//!
//! * [`platform`] — hardware specifications and per-task current draws,
//! * [`tasks`] — duty-cycle derivation for acquisition, real-time detection,
//!   a-posteriori labeling and idle,
//! * [`energy`] — average current, energy breakdown (Fig. 5) and battery
//!   lifetime (Table III) for any seizure frequency,
//! * [`memory`] — RAM/Flash budget of the one-hour feature buffer,
//! * [`timing`] — operation-count model of Algorithm 1 and the real-time
//!   constraint check ("one second of signal is processed in one second").
//!
//! # Example
//!
//! ```
//! use seizure_edge::energy::{EnergyModel, OperatingMode};
//! use seizure_edge::platform::PlatformSpec;
//!
//! # fn main() -> Result<(), seizure_edge::EdgeError> {
//! let model = EnergyModel::new(PlatformSpec::stm32l151_default());
//! // Worst case of the paper: one seizure per day, labeling + detection.
//! let report = model.lifetime(OperatingMode::Combined, 1.0)?;
//! assert!((report.lifetime_days() - 2.59).abs() < 0.05);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod energy;
pub mod error;
pub mod memory;
pub mod platform;
pub mod tasks;
pub mod timing;

pub use energy::{EnergyModel, EnergyReport, OperatingMode};
pub use error::EdgeError;
pub use memory::MemoryModel;
pub use platform::PlatformSpec;
pub use tasks::{Task, TaskSet};
pub use timing::TimingModel;
