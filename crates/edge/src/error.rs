//! Error type for the edge-platform model.

use std::error::Error;
use std::fmt;

/// Error returned by the edge-platform model.
#[derive(Debug, Clone, PartialEq)]
pub enum EdgeError {
    /// A model parameter was out of range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Description of the violated constraint.
        reason: String,
    },
    /// A duty-cycle budget exceeded 100 %.
    DutyCycleOverflow {
        /// Total requested duty cycle (1.0 = 100 %).
        total: f64,
    },
}

impl fmt::Display for EdgeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            EdgeError::DutyCycleOverflow { total } => write!(
                f,
                "cpu duty cycles add up to {:.1} % which exceeds 100 %",
                total * 100.0
            ),
        }
    }
}

impl Error for EdgeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = EdgeError::InvalidParameter {
            name: "battery",
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains("battery"));
        let e = EdgeError::DutyCycleOverflow { total: 1.2 };
        assert!(e.to_string().contains("120.0"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EdgeError>();
    }
}
