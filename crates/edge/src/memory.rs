//! Memory budget of the a-posteriori labeling on the edge device.
//!
//! The labeling algorithm must keep the last hour of (feature-extracted) EEG
//! available when the patient triggers it. The paper states that the required
//! memory for one hour of data is 240 KB on a platform with 48 KB of RAM and
//! 384 KB of Flash — i.e. the hour-long buffer lives in Flash while the
//! per-window working set stays in RAM. This module reproduces that budget.

use crate::error::EdgeError;
use crate::platform::PlatformSpec;
use serde::{Deserialize, Serialize};

/// Memory requirement breakdown for the labeling pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryBudget {
    /// Size of the buffered history (the last hour of data) in bytes; stored in
    /// Flash on the target platform.
    pub history_bytes: usize,
    /// Size of the per-window working set (current window samples, feature
    /// vector and algorithm scratch space) in bytes; must fit in RAM.
    pub working_bytes: usize,
    /// `true` when the history buffer fits in Flash.
    pub fits_flash: bool,
    /// `true` when the working set fits in RAM.
    pub fits_ram: bool,
}

/// Memory model of the labeling pipeline on a given platform.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MemoryModel {
    spec: PlatformSpec,
}

/// Bytes per stored value in the history buffer. The paper's 240 KB/hour figure
/// corresponds to storing the buffered signal in a compressed/decimated form
/// rather than raw 24-bit samples; with 2 channels at 256 Hz for 3600 s this
/// works out to roughly 0.13 byte per raw sample, which matches storing the
/// per-second feature rows (10 features × 4 bytes) together with a decimated
/// 8-bit copy of the signal. We model the history as exactly the paper's
/// per-hour figure scaled by the buffer duration.
pub const PAPER_HISTORY_BYTES_PER_HOUR: usize = 240 * 1024;

/// Exact size in bytes of the quality gate's calibration block inside a
/// persisted detector snapshot (`seizure-core`'s `RealTimeDetector`): a
/// presence flag plus the two per-channel reference log-amplitudes and
/// their accumulated weight. Pinned against the real codec by
/// `tests/edge_platform.rs`.
pub const GATE_STATE_BYTES: usize = 1 + 3 * 8;

/// Per-window quality indicators of `seizure-features`' quality module
/// (seven per channel plus the cross-channel disagreement). Kept as a local
/// constant so the edge crate stays free of the feature crate's machinery;
/// `tests/edge_platform.rs` pins it to the real layout.
const QUALITY_FEATURES: usize = 15;

/// `f64` slots one hop summary of the streaming extractor carries (the raw
/// moment accumulator, the two second-order difference accumulators,
/// partial waveform folds and the eight boundary samples). Mirrors
/// `seizure-features`' `streaming::HOP_SUMMARY_F64_SLOTS`; pinned by
/// `tests/edge_platform.rs`.
const HOP_SUMMARY_F64: usize = 24;

/// `u32` slots per hop summary (zero-crossing count plus the order-3 and
/// order-5 ordinal pattern tables). Mirrors
/// `streaming::HOP_SUMMARY_U32_SLOTS`; pinned by `tests/edge_platform.rs`.
const HOP_SUMMARY_U32: usize = 1 + 6 + 120;

/// The rich feature set decomposes with db4 to at most this many levels.
const STREAM_WAVELET_MAX_LEVELS: usize = 5;

/// db4 filter length, for the `wmaxlev` clamp.
const STREAM_WAVELET_FILTER_LEN: usize = 8;

/// Coarsest detail level the rich set reads Shannon entropies from; the
/// streaming wavelet only maintains detail buffers from here up.
const STREAM_MIN_DETAIL_LEVEL: usize = 3;

impl MemoryModel {
    /// Creates a memory model for the given platform.
    pub fn new(spec: PlatformSpec) -> Self {
        Self { spec }
    }

    /// The platform specification.
    pub fn platform(&self) -> &PlatformSpec {
        &self.spec
    }

    /// Size in bytes of the feature matrix for `buffer_secs` seconds of signal
    /// with `num_features` features extracted every `step_secs` seconds and
    /// stored as `f32`.
    pub fn feature_matrix_bytes(
        &self,
        buffer_secs: f64,
        num_features: usize,
        step_secs: f64,
    ) -> usize {
        if step_secs <= 0.0 || buffer_secs <= 0.0 {
            return 0;
        }
        let rows = (buffer_secs / step_secs).ceil() as usize;
        rows * num_features * std::mem::size_of::<f32>()
    }

    /// Exact size in bytes of a persisted incremental-trainer snapshot
    /// (`seizure-ml`'s `persist::trainer_to_bytes`) for a pool of
    /// `num_samples` samples of `num_features` features, cached as `n_trees`
    /// trees totalling `total_nodes` nodes. Mirrors the format's layout term
    /// by term — envelope, fixed trainer fields, the column-major matrix
    /// with bit-packed labels (the presorted orders are rebuilt on load, not
    /// stored), and the per-tree arenas — so a wearable can budget its Flash
    /// before ever writing a snapshot. An integration test pins this formula
    /// to the real codec's output length.
    pub fn trainer_snapshot_bytes(
        &self,
        num_samples: usize,
        num_features: usize,
        n_trees: usize,
        total_nodes: usize,
    ) -> usize {
        // Envelope: magic 8 + version 2 + kind 2 + payload length 8 +
        // checksum 8.
        const ENVELOPE: usize = 28;
        // Forest config (41) + block_size, seed, last refit count (24) +
        // has-pool flag (1).
        const TRAINER_FIXED: usize = 66;
        // Pool: feature count + two slice length prefixes.
        const POOL_FIXED: usize = 24;
        // Per tree: the two fingerprint fields + five arena length prefixes.
        const PER_TREE: usize = 56;
        // Per node: feature u32 + threshold f64 + children 2xu32 + leaf f64.
        const PER_NODE: usize = 28;
        // An empty trainer (no retrain yet) stores no pool section at all.
        let pool = if num_samples == 0 {
            0
        } else {
            POOL_FIXED + num_samples.div_ceil(8) + 8 * num_samples * num_features
        };
        let trees = 8 + n_trees * PER_TREE + total_nodes * PER_NODE;
        ENVELOPE + TRAINER_FIXED + pool + trees
    }

    /// Exact size in bytes of one delta-journal entry (`seizure-ml`'s
    /// `persist::journal::JournalWriter`) recording a retrain batch of
    /// `batch_samples` rows of `num_features` features plus
    /// `annotation_bytes` of caller state (0 for the detector's entries; 40
    /// for the pipeline's, which annotates the produced seizure label and
    /// the gate calibration reached after the record).
    /// Mirrors the entry layout term by term — envelope, base fingerprint,
    /// pool position, feature count, bit-packed labels, the row matrix, the
    /// annotation — so a wearable can budget the per-seizure Flash append
    /// before writing it. Pinned to the real codec by
    /// `tests/edge_platform.rs`, like
    /// [`MemoryModel::trainer_snapshot_bytes`].
    pub fn journal_entry_bytes(
        &self,
        batch_samples: usize,
        num_features: usize,
        annotation_bytes: usize,
    ) -> usize {
        // Envelope 28 + fingerprint 8 + pool length 8 + feature count 8 +
        // three length prefixes (labels, rows, annotation) of 8 each.
        const ENTRY_FIXED: usize = 28 + 24 + 3 * 8;
        ENTRY_FIXED
            + batch_samples.div_ceil(8)
            + 8 * batch_samples * num_features
            + annotation_bytes
    }

    /// Exact RAM held by a training pool's presorted order storage under the
    /// block-run layout (`seizure-ml`'s `TrainingSet`): one u16 block-relative
    /// id per sample per feature. Runs are the only storage — every block's
    /// base offset is closed-form (`block * run_block * num_features`), so no
    /// offset table exists and the price is independent of the block length.
    /// Pinned byte-for-byte to `TrainingSet::order_bytes` in
    /// `tests/edge_platform.rs`.
    pub fn block_run_order_bytes(&self, num_samples: usize, num_features: usize) -> usize {
        2 * num_samples * num_features
    }

    /// RAM the pre-block-run layout held for the same orders: one flat u32
    /// global id per sample per feature — exactly twice
    /// [`MemoryModel::block_run_order_bytes`]. Kept as the comparison term so
    /// budget reviews can price the layout switch.
    pub fn flat_order_bytes(&self, num_samples: usize, num_features: usize) -> usize {
        4 * num_samples * num_features
    }

    /// [`MemoryModel::budget`] with a persisted-state snapshot stored in
    /// Flash next to the history buffer: the snapshot bytes are added to the
    /// Flash-resident side of the budget, so `fits_flash` answers whether
    /// the platform can hold **both** the last hour of data and the
    /// personalized trainer state across a power cycle.
    ///
    /// # Errors
    ///
    /// Returns [`EdgeError::InvalidParameter`] if the buffer duration is not
    /// positive.
    pub fn budget_with_snapshot(
        &self,
        buffer_secs: f64,
        snapshot_bytes: usize,
    ) -> Result<MemoryBudget, EdgeError> {
        let mut budget = self.budget(buffer_secs)?;
        budget.history_bytes += snapshot_bytes;
        budget.fits_flash = budget.history_bytes <= self.spec.flash_bytes;
        Ok(budget)
    }

    /// [`MemoryModel::budget_with_snapshot`] for delta persistence: Flash
    /// holds the history buffer, the base snapshot **and** the journal
    /// region the per-seizure appends grow into. `journal_bytes` is the
    /// journal region's size (e.g. the compaction policy's worst case:
    /// `max_journal_fraction` of the base, or the sum of
    /// [`MemoryModel::journal_entry_bytes`] over the expected batches).
    ///
    /// # Errors
    ///
    /// Returns [`EdgeError::InvalidParameter`] if the buffer duration is not
    /// positive.
    pub fn budget_with_journal(
        &self,
        buffer_secs: f64,
        snapshot_bytes: usize,
        journal_bytes: usize,
    ) -> Result<MemoryBudget, EdgeError> {
        self.budget_with_snapshot(buffer_secs, snapshot_bytes + journal_bytes)
    }

    /// Exact Flash footprint of `seizure-ml`'s crash-proof A/B store
    /// (`persist::store::FlashStore`) holding base snapshots up to
    /// `base_capacity` bytes next to a `journal_bytes` journal region: two
    /// alternating slots, each a 40-byte header plus the base capacity, and
    /// one journal region. Pinned to the real layout
    /// (`FlashGeometry::total_bytes`) by `tests/edge_platform.rs`.
    pub fn dual_slot_store_bytes(&self, base_capacity: usize, journal_bytes: usize) -> usize {
        // Slot header: magic 8 + sequence 8 + base length 8 + base
        // fingerprint 8 + header checksum 8.
        const SLOT_HEADER: usize = 40;
        2 * (SLOT_HEADER + base_capacity) + journal_bytes
    }

    /// [`MemoryModel::budget_with_journal`] for the crash-proof A/B store:
    /// Flash holds the history buffer plus the full dual-slot image —
    /// **two** base slots (so compaction can write the fresh snapshot beside
    /// the committed one instead of over it) and the journal region.
    /// Crash-proofing doubles the base-snapshot reservation; `fits_flash`
    /// answers whether the platform affords that insurance.
    ///
    /// # Errors
    ///
    /// Returns [`EdgeError::InvalidParameter`] if the buffer duration is not
    /// positive.
    pub fn budget_with_ab_store(
        &self,
        buffer_secs: f64,
        base_capacity: usize,
        journal_bytes: usize,
    ) -> Result<MemoryBudget, EdgeError> {
        self.budget_with_snapshot(
            buffer_secs,
            self.dual_slot_store_bytes(base_capacity, journal_bytes),
        )
    }

    /// RAM scratch of the signal-quality front end over a `buffer_secs`
    /// history buffer: one live `f64` row of [`QUALITY_FEATURES`] indicators
    /// (windows are assessed streaming, so only the current row is resident),
    /// a one-byte verdict per analysis step (one step per second, matching
    /// the detector's 4 s windows at 75 % overlap — the full verdict ribbon
    /// is kept so the a-posteriori labeler can quarantine history windows),
    /// and one two-channel 4-second window copy the slow gain correction
    /// rewrites in place.
    pub fn quality_scratch_bytes(&self, buffer_secs: f64) -> usize {
        if buffer_secs <= 0.0 || buffer_secs.is_nan() {
            return 0;
        }
        let verdict_rows = buffer_secs.ceil() as usize;
        let corrected_window = (4.0 * self.spec.eeg_sampling_hz) as usize * self.spec.num_channels;
        QUALITY_FEATURES * std::mem::size_of::<f64>()
            + verdict_rows
            + corrected_window * std::mem::size_of::<f64>()
    }

    /// [`MemoryModel::budget_with_snapshot`] for a quality-gated detector:
    /// Flash additionally holds the gate's [`GATE_STATE_BYTES`] calibration
    /// block next to the snapshot, and the RAM side grows by
    /// [`MemoryModel::quality_scratch_bytes`] — the per-window indicator
    /// rows, verdicts, and the gain-correction window copy. `fits_ram` and
    /// `fits_flash` answer whether artifact rejection is affordable on the
    /// platform at all.
    ///
    /// # Errors
    ///
    /// Returns [`EdgeError::InvalidParameter`] if the buffer duration is not
    /// positive.
    pub fn budget_with_quality_gate(
        &self,
        buffer_secs: f64,
        snapshot_bytes: usize,
    ) -> Result<MemoryBudget, EdgeError> {
        let mut budget =
            self.budget_with_snapshot(buffer_secs, snapshot_bytes + GATE_STATE_BYTES)?;
        budget.working_bytes += self.quality_scratch_bytes(buffer_secs);
        budget.fits_ram = budget.working_bytes <= self.spec.ram_bytes;
        Ok(budget)
    }

    /// Bytes of state the streaming feature extractor
    /// (`seizure-features`' `StreamingRichExtractor`) carries across hops
    /// for this platform's channel count: per channel, the linearized
    /// window ring buffer, `window / step` hop summaries
    /// ([`HOP_SUMMARY_F64`] `f64` + [`HOP_SUMMARY_U32`] `u32` slots each),
    /// the carried db4 coefficients (approximations on every level, details
    /// from level [`STREAM_MIN_DETAIL_LEVEL`] up) and, when `hop_welch` is
    /// set, the ring of hop periodograms. The formula mirrors the extractor's
    /// own `state_bytes()` byte for byte (`tests/edge_platform.rs` pins the
    /// two against each other); transient FFT scratch is excluded on both
    /// sides. Returns 0 for geometries the streaming extractor rejects
    /// (window not a multiple of the step).
    pub fn streaming_state_bytes(
        &self,
        window_samples: usize,
        step_samples: usize,
        hop_welch: bool,
    ) -> usize {
        if step_samples == 0 || !window_samples.is_multiple_of(step_samples) {
            return 0;
        }
        let k = window_samples / step_samples;
        // db4 `wmaxlev`, clamped to the rich set's decomposition depth.
        let max_level = if window_samples < STREAM_WAVELET_FILTER_LEN {
            0
        } else {
            let ratio = window_samples as f64 / (STREAM_WAVELET_FILTER_LEN as f64 - 1.0);
            ratio.log2().floor().max(0.0) as usize
        };
        let levels = STREAM_WAVELET_MAX_LEVELS.min(max_level).max(1);
        let min_detail = STREAM_MIN_DETAIL_LEVEL.min(levels);
        let mut wavelet_slots = 0usize;
        for level in 1..=levels {
            wavelet_slots += window_samples >> level;
            if level >= min_detail {
                wavelet_slots += window_samples >> level;
            }
        }
        let hop_psd_slots = if hop_welch {
            k * (step_samples / 2 + 1)
        } else {
            0
        };
        let f64_slots = window_samples + k * HOP_SUMMARY_F64 + wavelet_slots + hop_psd_slots;
        let u32_slots = k * HOP_SUMMARY_U32;
        self.spec.num_channels * (f64_slots * std::mem::size_of::<f64>() + u32_slots * 4)
    }

    /// [`MemoryModel::budget_with_quality_gate`] for a detector running the
    /// sample-at-a-time streaming front end: the RAM side additionally holds
    /// [`MemoryModel::streaming_state_bytes`] of carried extraction state
    /// plus one hop of staging samples per channel. On the paper platform
    /// (STM32L151, 48 KB RAM) the full-precision 4 s / 75 % state at 256 Hz
    /// is ~41 KB — streamable on its own, but `fits_ram` turns `false` once
    /// the hour-long quality ribbon shares the RAM, documenting that a
    /// deployment would down-convert the carried state to `f32`.
    ///
    /// # Errors
    ///
    /// Returns [`EdgeError::InvalidParameter`] if the buffer duration is not
    /// positive.
    pub fn budget_with_streaming(
        &self,
        buffer_secs: f64,
        snapshot_bytes: usize,
        window_samples: usize,
        step_samples: usize,
    ) -> Result<MemoryBudget, EdgeError> {
        let mut budget = self.budget_with_quality_gate(buffer_secs, snapshot_bytes)?;
        let staging = self.spec.num_channels * step_samples * std::mem::size_of::<f64>();
        budget.working_bytes +=
            self.streaming_state_bytes(window_samples, step_samples, false) + staging;
        budget.fits_ram = budget.working_bytes <= self.spec.ram_bytes;
        Ok(budget)
    }

    /// Computes the memory budget for a history buffer of `buffer_secs`
    /// seconds (the paper uses one hour, the maximum delay between a missed
    /// seizure and the patient's confirmation).
    ///
    /// # Errors
    ///
    /// Returns [`EdgeError::InvalidParameter`] if the buffer duration is not
    /// positive.
    pub fn budget(&self, buffer_secs: f64) -> Result<MemoryBudget, EdgeError> {
        if buffer_secs <= 0.0 || buffer_secs.is_nan() {
            return Err(EdgeError::InvalidParameter {
                name: "buffer_secs",
                reason: format!("buffer duration must be positive, got {buffer_secs}"),
            });
        }
        let history_bytes =
            (PAPER_HISTORY_BYTES_PER_HOUR as f64 * buffer_secs / 3600.0).ceil() as usize;
        // Working set: one 4-second raw window on both channels (f32), the
        // 10-feature row, and the Algorithm 1 distance/accumulator vectors for
        // one hour of rows.
        let window_samples = (4.0 * self.spec.eeg_sampling_hz) as usize * self.spec.num_channels;
        let rows = (buffer_secs / 1.0).ceil() as usize;
        let working_bytes = window_samples * std::mem::size_of::<f32>()
            + 10 * std::mem::size_of::<f32>()
            + rows * std::mem::size_of::<f32>() // distance array
            + 2 * 10 * std::mem::size_of::<f32>(); // edge + distance_vector
        Ok(MemoryBudget {
            history_bytes,
            working_bytes,
            fits_flash: history_bytes <= self.spec.flash_bytes,
            fits_ram: working_bytes <= self.spec.ram_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> MemoryModel {
        MemoryModel::new(PlatformSpec::stm32l151_default())
    }

    #[test]
    fn one_hour_budget_matches_paper_and_fits_the_platform() {
        let budget = model().budget(3600.0).unwrap();
        assert_eq!(budget.history_bytes, 240 * 1024);
        assert!(budget.fits_flash);
        assert!(budget.fits_ram);
        // The working set is a tiny fraction of the 48 KB RAM.
        assert!(budget.working_bytes < 48 * 1024);
    }

    #[test]
    fn budget_scales_linearly_with_duration() {
        let half = model().budget(1800.0).unwrap();
        let full = model().budget(3600.0).unwrap();
        assert_eq!(half.history_bytes * 2, full.history_bytes);
    }

    #[test]
    fn oversized_buffer_does_not_fit_flash() {
        // Ten hours of history exceed the 384 KB Flash.
        let budget = model().budget(36_000.0).unwrap();
        assert!(!budget.fits_flash);
    }

    #[test]
    fn invalid_duration_is_rejected() {
        assert!(model().budget(0.0).is_err());
        assert!(model().budget(-5.0).is_err());
        assert!(model().budget(f64::NAN).is_err());
    }

    #[test]
    fn feature_matrix_bytes_formula() {
        // One hour, 10 features, one row per second, f32 storage: 144 000 B.
        let bytes = model().feature_matrix_bytes(3600.0, 10, 1.0);
        assert_eq!(bytes, 3600 * 10 * 4);
        assert_eq!(model().feature_matrix_bytes(0.0, 10, 1.0), 0);
        assert_eq!(model().feature_matrix_bytes(10.0, 10, 0.0), 0);
    }

    #[test]
    fn platform_accessor() {
        assert_eq!(model().platform().ram_bytes, 48 * 1024);
    }

    #[test]
    fn snapshot_accounting_extends_the_flash_side_of_the_budget() {
        let model = model();
        // An empty trainer is pure overhead; a paper-scale pool dominates.
        let empty = model.trainer_snapshot_bytes(0, 0, 0, 0);
        assert_eq!(empty, 28 + 66 + 8);
        let pool = model.trainer_snapshot_bytes(4096, 54, 30, 30 * 200);
        assert!(pool > 8 * 4096 * 54);

        // The snapshot lands in Flash next to the history buffer.
        let base = model.budget(3600.0).unwrap();
        let with = model.budget_with_snapshot(3600.0, 64 * 1024).unwrap();
        assert_eq!(with.history_bytes, base.history_bytes + 64 * 1024);
        assert_eq!(with.working_bytes, base.working_bytes);
        assert!(with.fits_flash); // 240 KB + 64 KB < 384 KB
        let too_big = model.budget_with_snapshot(3600.0, 200 * 1024).unwrap();
        assert!(!too_big.fits_flash); // 240 KB + 200 KB > 384 KB
        assert!(model.budget_with_snapshot(0.0, 1).is_err());
    }

    #[test]
    fn journal_accounting_extends_the_snapshot_budget() {
        let model = model();
        // One balanced-seizure batch (~60 windows of 54 features) appends a
        // few tens of KB — an order of magnitude under the paper-scale full
        // snapshot it replaces.
        let entry = model.journal_entry_bytes(60, 54, 16);
        assert_eq!(entry, 76 + 60usize.div_ceil(8) + 8 * 60 * 54 + 16);
        let full = model.trainer_snapshot_bytes(4096, 54, 30, 30 * 200);
        assert!(entry * 5 < full);

        // The journal region sits in Flash next to history + base snapshot.
        let base = model.budget_with_snapshot(1200.0, 64 * 1024).unwrap();
        let with = model
            .budget_with_journal(1200.0, 64 * 1024, 32 * 1024)
            .unwrap();
        assert_eq!(with.history_bytes, base.history_bytes + 32 * 1024);
        assert!(with.fits_flash); // 80 KB + 64 KB + 32 KB < 384 KB
        assert!(
            !model
                .budget_with_journal(3600.0, 100 * 1024, 100 * 1024)
                .unwrap()
                .fits_flash
        ); // 240 + 100 + 100 > 384
        assert!(model.budget_with_journal(0.0, 1, 1).is_err());
    }

    #[test]
    fn quality_gate_accounting_extends_both_sides_of_the_budget() {
        let model = model();
        // Scratch formula: one live indicator row + a verdict byte per
        // second, plus one 4 s two-channel f64 window for the gain
        // correction.
        let scratch = model.quality_scratch_bytes(1200.0);
        assert_eq!(scratch, 15 * 8 + 1200 + 4 * 256 * 2 * 8);
        assert_eq!(model.quality_scratch_bytes(0.0), 0);
        assert_eq!(model.quality_scratch_bytes(f64::NAN), 0);

        // Flash grows by exactly the gate block, RAM by the scratch — and
        // the 20-minute gated budget still fits the platform.
        let base = model.budget_with_snapshot(1200.0, 64 * 1024).unwrap();
        let gated = model.budget_with_quality_gate(1200.0, 64 * 1024).unwrap();
        assert_eq!(gated.history_bytes, base.history_bytes + GATE_STATE_BYTES);
        assert_eq!(gated.working_bytes, base.working_bytes + scratch);
        assert!(gated.fits_flash);
        assert!(gated.fits_ram);
        assert!(model.budget_with_quality_gate(0.0, 1).is_err());

        // Even the full-hour buffer affords the gate: the scratch stays a
        // modest slice of the 48 KB RAM next to the labeler's working set.
        let hour = model.budget_with_quality_gate(3600.0, 0).unwrap();
        assert!(hour.fits_ram, "{} bytes", hour.working_bytes);
    }

    #[test]
    fn ab_store_accounting_doubles_the_base_reservation() {
        let model = model();
        // Layout arithmetic: two (header + base) slots plus the journal.
        assert_eq!(model.dual_slot_store_bytes(0, 0), 80);
        assert_eq!(
            model.dual_slot_store_bytes(64 * 1024, 32 * 1024),
            2 * (40 + 64 * 1024) + 32 * 1024
        );

        // Versus single-slot delta persistence the A/B store costs exactly
        // one more slot: the price of never overwriting the committed base.
        let single = model
            .budget_with_journal(1200.0, 64 * 1024, 32 * 1024)
            .unwrap();
        let ab = model
            .budget_with_ab_store(1200.0, 64 * 1024, 32 * 1024)
            .unwrap();
        assert_eq!(ab.history_bytes, single.history_bytes + 2 * 40 + 64 * 1024);
        assert!(ab.fits_flash); // 80 KB history + 160 KB store < 384 KB
        assert!(
            !model
                .budget_with_ab_store(3600.0, 64 * 1024, 32 * 1024)
                .unwrap()
                .fits_flash
        ); // 240 KB history + 160 KB store > 384 KB
        assert!(model.budget_with_ab_store(0.0, 1, 1).is_err());
    }

    #[test]
    fn streaming_state_closed_form_prices_the_paper_geometry() {
        let model = model();
        // 1024-sample window, 256-sample hop, 5 db4 levels: per channel the
        // window ring (1024 f64), four hop summaries, the carried approx
        // bands 512+256+128+64+32 and detail bands 128+64+32.
        let wavelet_slots = (512 + 256 + 128 + 64 + 32) + (128 + 64 + 32);
        let per_channel =
            (1024 + 4 * HOP_SUMMARY_F64 + wavelet_slots) * 8 + 4 * HOP_SUMMARY_U32 * 4;
        assert_eq!(
            model.streaming_state_bytes(1024, 256, false),
            2 * per_channel
        );
        // Welch-reuse mode adds four hop periodograms of 129 bins each.
        assert_eq!(
            model.streaming_state_bytes(1024, 256, true),
            2 * (per_channel + 4 * 129 * 8)
        );
        // Unstreamable geometries price to zero.
        assert_eq!(model.streaming_state_bytes(1024, 0, false), 0);
        assert_eq!(model.streaming_state_bytes(1024, 300, false), 0);
    }

    #[test]
    fn streaming_budget_extends_ram_and_documents_the_full_hour_boundary() {
        let model = model();
        let gated = model.budget_with_quality_gate(1200.0, 64 * 1024).unwrap();
        let streaming = model
            .budget_with_streaming(1200.0, 64 * 1024, 1024, 256)
            .unwrap();
        assert_eq!(streaming.history_bytes, gated.history_bytes);
        assert_eq!(
            streaming.working_bytes,
            gated.working_bytes + model.streaming_state_bytes(1024, 256, false) + 2 * 256 * 8
        );
        // The carried state alone fits the 48 KB RAM…
        assert!(model.streaming_state_bytes(1024, 256, false) <= 48 * 1024);
        // …but a full-precision f64 deployment next to the hour-long quality
        // ribbon does not: a real deployment stores the carried state as f32.
        let hour = model.budget_with_streaming(3600.0, 0, 1024, 256).unwrap();
        assert!(!hour.fits_ram, "{} bytes", hour.working_bytes);
        assert!(model.budget_with_streaming(0.0, 1, 1024, 256).is_err());
    }
}
