//! Timing model of the labeling algorithm and the real-time detector on the
//! target microcontroller.
//!
//! The paper claims that with complexity `O(L² · W · F)` "one second of signal
//! is processed in one second time" on the wearable platform (§IV), and that
//! the supervised real-time classifier "requires three seconds for processing a
//! four-second window" (§VI-C). This module turns operation counts into cycle
//! and wall-clock estimates so those claims can be checked and swept.

use crate::error::EdgeError;
use crate::platform::PlatformSpec;
use serde::{Deserialize, Serialize};

/// Cost estimate for processing one triggered labeling pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LabelingCost {
    /// Number of elementary operations (absolute differences + additions).
    pub operations: f64,
    /// Estimated CPU cycles.
    pub cycles: f64,
    /// Estimated wall-clock seconds at the platform's clock frequency.
    pub seconds: f64,
    /// Seconds of processing per second of buffered signal.
    pub seconds_per_signal_second: f64,
}

/// Timing model for the labeling algorithm and the real-time detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    spec: PlatformSpec,
    /// Average CPU cycles spent per elementary operation of the inner loop
    /// (load, subtract, absolute value, accumulate). A Cortex-M3 without an
    /// FPU spends on the order of tens of cycles per software floating-point
    /// operation; the default is calibrated so that one hour of buffered
    /// signal takes roughly one hour to process, matching the paper's
    /// real-time claim.
    pub cycles_per_operation: f64,
    /// Seconds of CPU time the real-time detector needs per analysis window
    /// (paper: 3 s per 4 s window).
    pub detection_seconds_per_window: f64,
    /// Analysis window length of the real-time detector in seconds.
    pub detection_window_secs: f64,
}

impl TimingModel {
    /// Creates a timing model with the paper-calibrated defaults.
    pub fn new(spec: PlatformSpec) -> Self {
        Self {
            spec,
            cycles_per_operation: 35.0,
            detection_seconds_per_window: 3.0,
            detection_window_secs: 4.0,
        }
    }

    /// Number of elementary operations of Algorithm 1 for a feature matrix of
    /// `rows` rows (`L`), a seizure window of `window_rows` rows (`W`) and
    /// `features` features (`F`), with the outside points subsampled by
    /// `subsample_step`: `(L − W) · W · F · (L − W) / step`.
    pub fn labeling_operations(
        rows: usize,
        window_rows: usize,
        features: usize,
        subsample_step: usize,
    ) -> f64 {
        if rows <= window_rows || subsample_step == 0 {
            return 0.0;
        }
        let candidates = (rows - window_rows) as f64;
        candidates * window_rows as f64 * features as f64 * candidates / subsample_step as f64
    }

    /// Estimates the cost of one labeling pass over `buffer_secs` seconds of
    /// signal with a seizure window of `window_secs` seconds and `features`
    /// features (one feature row per second, as in the paper's pipeline).
    ///
    /// # Errors
    ///
    /// Returns [`EdgeError::InvalidParameter`] if the durations are not
    /// positive or the window does not fit in the buffer.
    pub fn labeling_cost(
        &self,
        buffer_secs: f64,
        window_secs: f64,
        features: usize,
    ) -> Result<LabelingCost, EdgeError> {
        if buffer_secs <= 0.0 || window_secs <= 0.0 || buffer_secs.is_nan() || window_secs.is_nan()
        {
            return Err(EdgeError::InvalidParameter {
                name: "durations",
                reason: "buffer and window durations must be positive".to_string(),
            });
        }
        if window_secs >= buffer_secs {
            return Err(EdgeError::InvalidParameter {
                name: "window_secs",
                reason: format!(
                    "the {window_secs}-second window does not fit in a {buffer_secs}-second buffer"
                ),
            });
        }
        let rows = buffer_secs.round() as usize;
        let window_rows = window_secs.round().max(1.0) as usize;
        let operations = Self::labeling_operations(rows, window_rows, features, 4);
        let cycles = operations * self.cycles_per_operation;
        let seconds = cycles / self.spec.cpu_frequency_hz;
        Ok(LabelingCost {
            operations,
            cycles,
            seconds,
            seconds_per_signal_second: seconds / buffer_secs,
        })
    }

    /// CPU duty cycle of the real-time detector
    /// (`detection_seconds_per_window / detection_window_secs`).
    pub fn detection_duty_cycle(&self) -> f64 {
        (self.detection_seconds_per_window / self.detection_window_secs).clamp(0.0, 1.0)
    }

    /// Returns `true` when the labeling pass over a buffer of `buffer_secs`
    /// seconds finishes in at most `buffer_secs` seconds — the paper's
    /// "one second of signal is processed in one second" real-time property.
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of [`TimingModel::labeling_cost`].
    pub fn labeling_is_real_time(
        &self,
        buffer_secs: f64,
        window_secs: f64,
        features: usize,
    ) -> Result<bool, EdgeError> {
        Ok(self
            .labeling_cost(buffer_secs, window_secs, features)?
            .seconds_per_signal_second
            <= 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TimingModel {
        TimingModel::new(PlatformSpec::stm32l151_default())
    }

    #[test]
    fn operation_count_formula() {
        // L = 100, W = 10, F = 10, step 4: 90 * 10 * 10 * 22.5 = 202 500.
        let ops = TimingModel::labeling_operations(100, 10, 10, 4);
        assert!((ops - 202_500.0).abs() < 1e-6);
        assert_eq!(TimingModel::labeling_operations(10, 10, 10, 4), 0.0);
        assert_eq!(TimingModel::labeling_operations(100, 10, 10, 0), 0.0);
    }

    #[test]
    fn one_hour_buffer_is_processed_in_about_an_hour() {
        // One hour of signal, 60-second seizure window, 10 features.
        let cost = model().labeling_cost(3600.0, 60.0, 10).unwrap();
        // The paper claims ~1 s of processing per second of signal; with the
        // calibrated cycles-per-operation this lands near 1 (within 2x).
        assert!(
            cost.seconds_per_signal_second > 0.4 && cost.seconds_per_signal_second < 2.0,
            "seconds per signal second = {}",
            cost.seconds_per_signal_second
        );
        assert!(cost.operations > 0.0);
        assert!(cost.cycles > cost.operations);
    }

    #[test]
    fn shorter_buffers_are_processed_faster_than_real_time() {
        // The cost is quadratic in the buffer length, so a 10-minute buffer is
        // comfortably faster than real time.
        assert!(model().labeling_is_real_time(600.0, 60.0, 10).unwrap());
    }

    #[test]
    fn detection_duty_cycle_matches_paper() {
        assert!((model().detection_duty_cycle() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let m = model();
        assert!(m.labeling_cost(0.0, 60.0, 10).is_err());
        assert!(m.labeling_cost(3600.0, 0.0, 10).is_err());
        assert!(m.labeling_cost(100.0, 200.0, 10).is_err());
        assert!(m.labeling_cost(f64::NAN, 60.0, 10).is_err());
    }

    #[test]
    fn cost_grows_quadratically_with_buffer_length() {
        let m = model();
        let short = m.labeling_cost(900.0, 60.0, 10).unwrap();
        let long = m.labeling_cost(1800.0, 60.0, 10).unwrap();
        let ratio = long.operations / short.operations;
        assert!(ratio > 3.5 && ratio < 4.8, "ratio = {ratio}");
    }
}
