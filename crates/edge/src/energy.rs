//! Energy consumption and battery-lifetime model (paper §VI-C, Table III,
//! Fig. 5).

use crate::error::EdgeError;
use crate::platform::PlatformSpec;
use crate::tasks::TaskSet;
use serde::{Deserialize, Serialize};

/// Which subsystems are running.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperatingMode {
    /// Only the a-posteriori labeling algorithm (plus continuous acquisition).
    LabelingOnly,
    /// Only the supervised real-time detection (plus continuous acquisition).
    DetectionOnly,
    /// The full self-learning methodology: detection and labeling.
    Combined,
}

/// Energy/lifetime report for one operating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    mode: OperatingMode,
    seizures_per_day: f64,
    tasks: TaskSet,
    average_current_ma: f64,
    lifetime_hours: f64,
}

impl EnergyReport {
    /// Operating mode the report was computed for.
    pub fn mode(&self) -> OperatingMode {
        self.mode
    }

    /// Seizure frequency (seizures per day) the report was computed for.
    pub fn seizures_per_day(&self) -> f64 {
        self.seizures_per_day
    }

    /// The task set with per-task currents and duty cycles (Table III rows).
    pub fn tasks(&self) -> &TaskSet {
        &self.tasks
    }

    /// Total average current in mA.
    pub fn average_current_ma(&self) -> f64 {
        self.average_current_ma
    }

    /// Battery lifetime in hours.
    pub fn lifetime_hours(&self) -> f64 {
        self.lifetime_hours
    }

    /// Battery lifetime in days.
    pub fn lifetime_days(&self) -> f64 {
        self.lifetime_hours / 24.0
    }

    /// Percentage of the total energy consumed by each task (Fig. 5 series),
    /// aligned with `tasks().tasks()`.
    pub fn energy_percentages(&self) -> Vec<f64> {
        self.tasks
            .energy_fractions()
            .into_iter()
            .map(|f| f * 100.0)
            .collect()
    }
}

/// The battery-lifetime model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyModel {
    spec: PlatformSpec,
}

impl EnergyModel {
    /// Creates a model for the given platform.
    pub fn new(spec: PlatformSpec) -> Self {
        Self { spec }
    }

    /// The platform specification the model was built with.
    pub fn platform(&self) -> &PlatformSpec {
        &self.spec
    }

    /// Computes the energy report for an operating mode and a seizure
    /// frequency (seizures per day; ignored in detection-only mode).
    ///
    /// # Errors
    ///
    /// Propagates [`EdgeError`] from the task-set construction (negative
    /// frequency or duty-cycle overflow).
    pub fn lifetime(
        &self,
        mode: OperatingMode,
        seizures_per_day: f64,
    ) -> Result<EnergyReport, EdgeError> {
        let tasks = match mode {
            OperatingMode::LabelingOnly => TaskSet::labeling_only(&self.spec, seizures_per_day)?,
            OperatingMode::DetectionOnly => TaskSet::detection_only(&self.spec)?,
            OperatingMode::Combined => TaskSet::combined(&self.spec, seizures_per_day)?,
        };
        let average = tasks.total_average_current_ma();
        Ok(EnergyReport {
            mode,
            seizures_per_day,
            tasks,
            average_current_ma: average,
            lifetime_hours: self.spec.lifetime_hours(average),
        })
    }

    /// Sweeps the seizure frequency from `min_per_day` to `max_per_day`
    /// (inclusive) in `steps` points and returns one report per point —
    /// the data behind the paper's "631.46 to 430.16 hours" and
    /// "2.71 to 2.59 days" ranges.
    ///
    /// # Errors
    ///
    /// Returns [`EdgeError::InvalidParameter`] if the range is malformed or
    /// `steps < 2`, and propagates task-set errors otherwise.
    pub fn lifetime_sweep(
        &self,
        mode: OperatingMode,
        min_per_day: f64,
        max_per_day: f64,
        steps: usize,
    ) -> Result<Vec<EnergyReport>, EdgeError> {
        if steps < 2 {
            return Err(EdgeError::InvalidParameter {
                name: "steps",
                reason: format!("a sweep needs at least 2 points, got {steps}"),
            });
        }
        if !(min_per_day >= 0.0 && max_per_day >= min_per_day) {
            return Err(EdgeError::InvalidParameter {
                name: "frequency range",
                reason: format!("invalid range [{min_per_day}, {max_per_day}]"),
            });
        }
        let mut reports = Vec::with_capacity(steps);
        for i in 0..steps {
            let f = min_per_day + (max_per_day - min_per_day) * i as f64 / (steps - 1) as f64;
            reports.push(self.lifetime(mode, f)?);
        }
        Ok(reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EnergyModel {
        EnergyModel::new(PlatformSpec::stm32l151_default())
    }

    #[test]
    fn table_iii_worst_case_lifetime() {
        let report = model().lifetime(OperatingMode::Combined, 1.0).unwrap();
        assert!(
            (report.lifetime_days() - 2.59).abs() < 0.02,
            "{}",
            report.lifetime_days()
        );
        assert!((report.average_current_ma() - 9.19).abs() < 0.02);
        assert_eq!(report.tasks().tasks().len(), 4);
        assert_eq!(report.mode(), OperatingMode::Combined);
        assert_eq!(report.seizures_per_day(), 1.0);
    }

    #[test]
    fn combined_lifetime_range_matches_paper() {
        // One seizure per month: 2.71 days; one per day: 2.59 days.
        let monthly = model()
            .lifetime(OperatingMode::Combined, 1.0 / 30.0)
            .unwrap();
        let daily = model().lifetime(OperatingMode::Combined, 1.0).unwrap();
        assert!((monthly.lifetime_days() - 2.71).abs() < 0.02);
        assert!((daily.lifetime_days() - 2.59).abs() < 0.02);
        assert!(monthly.lifetime_days() > daily.lifetime_days());
    }

    #[test]
    fn labeling_only_lifetime_range_matches_paper() {
        // 631.46 h (26.31 days) at one seizure per month, 430.16 h (17.92 days)
        // at one per day.
        let monthly = model()
            .lifetime(OperatingMode::LabelingOnly, 1.0 / 30.0)
            .unwrap();
        let daily = model().lifetime(OperatingMode::LabelingOnly, 1.0).unwrap();
        assert!(
            (monthly.lifetime_hours() - 631.0).abs() < 10.0,
            "{}",
            monthly.lifetime_hours()
        );
        assert!(
            (daily.lifetime_hours() - 430.0).abs() < 5.0,
            "{}",
            daily.lifetime_hours()
        );
        assert!((monthly.lifetime_days() - 26.3).abs() < 0.5);
        assert!((daily.lifetime_days() - 17.9).abs() < 0.3);
    }

    #[test]
    fn detection_only_lifetime_matches_paper() {
        // 65.15 hours = 2.71 days.
        let report = model().lifetime(OperatingMode::DetectionOnly, 0.0).unwrap();
        assert!((report.lifetime_hours() - 65.1).abs() < 0.5);
        assert!((report.lifetime_days() - 2.71).abs() < 0.02);
    }

    #[test]
    fn energy_percentages_match_figure_five() {
        let report = model().lifetime(OperatingMode::Combined, 1.0).unwrap();
        let pct = report.energy_percentages();
        assert!((pct[0] - 9.47).abs() < 0.2);
        assert!((pct[1] - 85.72).abs() < 0.2);
        assert!((pct[2] - 4.77).abs() < 0.2);
        assert!(pct[3] < 0.1);
    }

    #[test]
    fn lifetime_decreases_with_seizure_frequency() {
        let sweep = model()
            .lifetime_sweep(OperatingMode::Combined, 1.0 / 30.0, 1.0, 10)
            .unwrap();
        assert_eq!(sweep.len(), 10);
        for pair in sweep.windows(2) {
            assert!(pair[0].lifetime_hours() >= pair[1].lifetime_hours());
        }
    }

    #[test]
    fn sweep_validation() {
        let m = model();
        assert!(m
            .lifetime_sweep(OperatingMode::Combined, 0.0, 1.0, 1)
            .is_err());
        assert!(m
            .lifetime_sweep(OperatingMode::Combined, 2.0, 1.0, 5)
            .is_err());
        assert!(m
            .lifetime_sweep(OperatingMode::Combined, -1.0, 1.0, 5)
            .is_err());
        assert!(m.lifetime(OperatingMode::Combined, -0.5).is_err());
    }

    #[test]
    fn platform_accessor() {
        let m = model();
        assert_eq!(m.platform().battery_mah, 570.0);
    }
}
