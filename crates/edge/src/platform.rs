//! Hardware specification of the target wearable platform.

use serde::{Deserialize, Serialize};

/// Specification of the wearable platform (microcontroller + analog front-end
/// + battery) used for the energy, memory and timing models.
///
/// The default values follow the paper's §V-B and Table III: an STM32L151
/// (Cortex-M3 at 32 MHz, 48 KB RAM, 384 KB Flash), an ADS1299-family
/// biopotential ADC acquiring two electrode pairs, and a 570 mAh battery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// Maximum CPU clock frequency in Hz.
    pub cpu_frequency_hz: f64,
    /// On-chip SRAM in bytes.
    pub ram_bytes: usize,
    /// On-chip Flash in bytes.
    pub flash_bytes: usize,
    /// Battery capacity in mAh.
    pub battery_mah: f64,
    /// EEG sampling frequency in Hz.
    pub eeg_sampling_hz: f64,
    /// Number of acquired electrode pairs.
    pub num_channels: usize,
    /// ADC resolution in bits.
    pub adc_bits: u32,
    /// Current drawn by EEG acquisition (both channels) in mA; runs at a 100 %
    /// duty cycle.
    pub acquisition_current_ma: f64,
    /// Current drawn by the CPU while actively processing (detection or
    /// labeling) in mA.
    pub active_current_ma: f64,
    /// Current drawn while idle in mA.
    pub idle_current_ma: f64,
}

impl PlatformSpec {
    /// The paper's representative platform (STM32L151 + ADS1299, 570 mAh).
    pub fn stm32l151_default() -> Self {
        Self {
            cpu_frequency_hz: 32.0e6,
            ram_bytes: 48 * 1024,
            flash_bytes: 384 * 1024,
            battery_mah: 570.0,
            eeg_sampling_hz: 256.0,
            num_channels: 2,
            adc_bits: 24,
            acquisition_current_ma: 0.870,
            active_current_ma: 10.5,
            idle_current_ma: 0.018,
        }
    }

    /// Raw EEG data rate in bytes per second, assuming samples are stored with
    /// `ceil(adc_bits / 8)` bytes each.
    pub fn raw_data_rate_bytes_per_sec(&self) -> f64 {
        let bytes_per_sample = self.adc_bits.div_ceil(8) as f64;
        self.eeg_sampling_hz * self.num_channels as f64 * bytes_per_sample
    }

    /// Battery capacity expressed in mA·hours divided by an average current in
    /// mA gives a lifetime in hours.
    pub fn lifetime_hours(&self, average_current_ma: f64) -> f64 {
        if average_current_ma <= 0.0 {
            f64::INFINITY
        } else {
            self.battery_mah / average_current_ma
        }
    }
}

impl Default for PlatformSpec {
    fn default() -> Self {
        Self::stm32l151_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_specification() {
        let spec = PlatformSpec::stm32l151_default();
        assert_eq!(spec.cpu_frequency_hz, 32.0e6);
        assert_eq!(spec.ram_bytes, 49_152);
        assert_eq!(spec.flash_bytes, 393_216);
        assert_eq!(spec.battery_mah, 570.0);
        assert_eq!(spec.num_channels, 2);
        assert_eq!(spec.adc_bits, 24);
        assert_eq!(spec.acquisition_current_ma, 0.870);
        assert_eq!(spec.active_current_ma, 10.5);
        assert_eq!(spec.idle_current_ma, 0.018);
        assert_eq!(PlatformSpec::default(), spec);
    }

    #[test]
    fn raw_data_rate() {
        let spec = PlatformSpec::stm32l151_default();
        // 256 Hz * 2 channels * 3 bytes = 1536 B/s.
        assert_eq!(spec.raw_data_rate_bytes_per_sec(), 1536.0);
    }

    #[test]
    fn lifetime_hours_from_average_current() {
        let spec = PlatformSpec::stm32l151_default();
        assert!((spec.lifetime_hours(570.0) - 1.0).abs() < 1e-12);
        assert!((spec.lifetime_hours(9.187) - 62.04).abs() < 0.1);
        assert!(spec.lifetime_hours(0.0).is_infinite());
    }
}
