//! Tasks and duty cycles.
//!
//! The platform runs four tasks (paper Table III): continuous EEG acquisition
//! on the analog front-end, the supervised real-time detection (75 % CPU duty
//! cycle — three seconds of processing per four-second window), the
//! a-posteriori labeling (triggered once per missed seizure; one hour of signal
//! is processed in roughly one hour, so its duty cycle equals the seizure
//! frequency expressed as hours-per-day / 24), and idle.

use crate::error::EdgeError;
use crate::platform::PlatformSpec;
use serde::{Deserialize, Serialize};

/// One platform task with its current draw and duty cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Human-readable task name (matches the rows of Table III).
    pub name: String,
    /// Current drawn while the task is active, in mA.
    pub current_ma: f64,
    /// Fraction of time the task is active (1.0 = 100 %).
    pub duty_cycle: f64,
}

impl Task {
    /// Creates a task.
    ///
    /// # Errors
    ///
    /// Returns [`EdgeError::InvalidParameter`] if the current is negative or
    /// the duty cycle lies outside `[0, 1]`.
    pub fn new(
        name: impl Into<String>,
        current_ma: f64,
        duty_cycle: f64,
    ) -> Result<Self, EdgeError> {
        if current_ma < 0.0 || current_ma.is_nan() {
            return Err(EdgeError::InvalidParameter {
                name: "current_ma",
                reason: format!("current must be non-negative, got {current_ma}"),
            });
        }
        if !(0.0..=1.0).contains(&duty_cycle) || duty_cycle.is_nan() {
            return Err(EdgeError::InvalidParameter {
                name: "duty_cycle",
                reason: format!("duty cycle must lie in [0, 1], got {duty_cycle}"),
            });
        }
        Ok(Self {
            name: name.into(),
            current_ma,
            duty_cycle,
        })
    }

    /// Average current contributed by the task (`current × duty cycle`), in mA.
    pub fn average_current_ma(&self) -> f64 {
        self.current_ma * self.duty_cycle
    }
}

/// The set of tasks running on the platform in a given operating mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSet {
    tasks: Vec<Task>,
}

/// CPU duty cycle of the supervised real-time detection: the detector needs
/// three seconds to process each four-second window (paper §VI-C).
pub const DETECTION_DUTY_CYCLE: f64 = 0.75;

/// Converts a seizure frequency (seizures per day) into the labeling duty
/// cycle: each triggered labeling pass processes one hour of signal in
/// roughly one hour of CPU time, so the duty cycle is `seizures_per_day / 24`.
pub fn labeling_duty_cycle(seizures_per_day: f64) -> f64 {
    (seizures_per_day / 24.0).clamp(0.0, 1.0)
}

impl TaskSet {
    /// Builds the task set for a platform running **only** the a-posteriori
    /// labeling (plus continuous acquisition), as in the first lifetime
    /// analysis of §VI-C.
    ///
    /// # Errors
    ///
    /// Returns [`EdgeError::InvalidParameter`] for a negative seizure frequency
    /// and [`EdgeError::DutyCycleOverflow`] if the labeling duty cycle would
    /// exceed 100 %.
    pub fn labeling_only(spec: &PlatformSpec, seizures_per_day: f64) -> Result<Self, EdgeError> {
        validate_frequency(seizures_per_day)?;
        let labeling = labeling_duty_cycle(seizures_per_day);
        Self::from_cpu_tasks(spec, &[("EEG Labeling", labeling)])
    }

    /// Builds the task set for a platform running **only** the supervised
    /// real-time detection (plus continuous acquisition).
    ///
    /// # Errors
    ///
    /// Returns [`EdgeError::DutyCycleOverflow`] if the detection duty cycle
    /// would exceed 100 % (cannot happen with the default constant).
    pub fn detection_only(spec: &PlatformSpec) -> Result<Self, EdgeError> {
        Self::from_cpu_tasks(spec, &[("EEG Sup. Detection", DETECTION_DUTY_CYCLE)])
    }

    /// Builds the complete task set of the self-learning methodology: real-time
    /// detection plus a-posteriori labeling at the given seizure frequency
    /// (Table III uses one seizure per day as the worst case).
    ///
    /// # Errors
    ///
    /// Returns [`EdgeError::InvalidParameter`] for a negative seizure frequency
    /// and [`EdgeError::DutyCycleOverflow`] if the combined CPU duty cycles
    /// exceed 100 %.
    pub fn combined(spec: &PlatformSpec, seizures_per_day: f64) -> Result<Self, EdgeError> {
        validate_frequency(seizures_per_day)?;
        let labeling = labeling_duty_cycle(seizures_per_day);
        Self::from_cpu_tasks(
            spec,
            &[
                ("EEG Sup. Detection", DETECTION_DUTY_CYCLE),
                ("EEG Labeling", labeling),
            ],
        )
    }

    fn from_cpu_tasks(spec: &PlatformSpec, cpu_tasks: &[(&str, f64)]) -> Result<Self, EdgeError> {
        let busy: f64 = cpu_tasks.iter().map(|(_, d)| d).sum();
        if busy > 1.0 + 1e-9 {
            return Err(EdgeError::DutyCycleOverflow { total: busy });
        }
        let mut tasks = vec![Task::new(
            "EEG Acquisition (x2)",
            spec.acquisition_current_ma,
            1.0,
        )?];
        for (name, duty) in cpu_tasks {
            tasks.push(Task::new(*name, spec.active_current_ma, *duty)?);
        }
        tasks.push(Task::new(
            "Idle",
            spec.idle_current_ma,
            (1.0 - busy).max(0.0),
        )?);
        Ok(Self { tasks })
    }

    /// The tasks of the set, in Table III order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Total average current of the task set in mA.
    pub fn total_average_current_ma(&self) -> f64 {
        self.tasks.iter().map(Task::average_current_ma).sum()
    }

    /// Fraction of the total energy consumed by each task (the series plotted
    /// in Fig. 5), in the same order as [`TaskSet::tasks`].
    pub fn energy_fractions(&self) -> Vec<f64> {
        let total = self.total_average_current_ma();
        if total <= 0.0 {
            return vec![0.0; self.tasks.len()];
        }
        self.tasks
            .iter()
            .map(|t| t.average_current_ma() / total)
            .collect()
    }
}

fn validate_frequency(seizures_per_day: f64) -> Result<(), EdgeError> {
    if seizures_per_day < 0.0 || seizures_per_day.is_nan() {
        return Err(EdgeError::InvalidParameter {
            name: "seizures_per_day",
            reason: format!("seizure frequency must be non-negative, got {seizures_per_day}"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_validation() {
        assert!(Task::new("x", -1.0, 0.5).is_err());
        assert!(Task::new("x", 1.0, 1.5).is_err());
        assert!(Task::new("x", 1.0, -0.1).is_err());
        let t = Task::new("x", 10.0, 0.25).unwrap();
        assert_eq!(t.average_current_ma(), 2.5);
    }

    #[test]
    fn labeling_duty_cycle_matches_paper_values() {
        // One seizure per day -> 4.17 %.
        assert!((labeling_duty_cycle(1.0) - 0.0417).abs() < 0.0003);
        // One seizure per month -> 0.14 %.
        assert!((labeling_duty_cycle(1.0 / 30.0) - 0.0014).abs() < 0.0001);
        assert_eq!(labeling_duty_cycle(0.0), 0.0);
        assert_eq!(labeling_duty_cycle(100.0), 1.0);
    }

    #[test]
    fn combined_task_set_matches_table_iii() {
        let spec = PlatformSpec::stm32l151_default();
        let set = TaskSet::combined(&spec, 1.0).unwrap();
        let tasks = set.tasks();
        assert_eq!(tasks.len(), 4);
        assert_eq!(tasks[0].name, "EEG Acquisition (x2)");
        assert!((tasks[0].average_current_ma() - 0.870).abs() < 1e-9);
        assert_eq!(tasks[1].name, "EEG Sup. Detection");
        assert!((tasks[1].average_current_ma() - 7.875).abs() < 1e-9);
        assert_eq!(tasks[2].name, "EEG Labeling");
        assert!((tasks[2].average_current_ma() - 0.4375).abs() < 1e-3);
        assert_eq!(tasks[3].name, "Idle");
        assert!((tasks[3].duty_cycle - 0.2083).abs() < 1e-3);
        // Table III total average current is about 9.19 mA.
        assert!((set.total_average_current_ma() - 9.19).abs() < 0.01);
    }

    #[test]
    fn energy_fractions_match_figure_five() {
        let spec = PlatformSpec::stm32l151_default();
        let set = TaskSet::combined(&spec, 1.0).unwrap();
        let fractions = set.energy_fractions();
        assert_eq!(fractions.len(), 4);
        assert!((fractions[0] - 0.0947).abs() < 0.002); // acquisition 9.47 %
        assert!((fractions[1] - 0.8572).abs() < 0.002); // detection 85.72 %
        assert!((fractions[2] - 0.0477).abs() < 0.002); // labeling 4.77 %
        assert!(fractions[3] < 0.001); // idle 0.04 %
        assert!((fractions.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn labeling_only_and_detection_only_sets() {
        let spec = PlatformSpec::stm32l151_default();
        let labeling = TaskSet::labeling_only(&spec, 1.0).unwrap();
        assert_eq!(labeling.tasks().len(), 3);
        assert!((labeling.total_average_current_ma() - 1.325).abs() < 0.01);

        let detection = TaskSet::detection_only(&spec).unwrap();
        assert_eq!(detection.tasks().len(), 3);
        assert!((detection.total_average_current_ma() - 8.75).abs() < 0.01);
    }

    #[test]
    fn invalid_frequencies_and_overflow_are_rejected() {
        let spec = PlatformSpec::stm32l151_default();
        assert!(TaskSet::combined(&spec, -1.0).is_err());
        assert!(TaskSet::labeling_only(&spec, f64::NAN).is_err());
        // A pathological frequency that saturates the CPU together with
        // detection must overflow.
        assert!(matches!(
            TaskSet::combined(&spec, 24.0),
            Err(EdgeError::DutyCycleOverflow { .. })
        ));
    }

    #[test]
    fn zero_total_current_edge_case() {
        let mut spec = PlatformSpec::stm32l151_default();
        spec.acquisition_current_ma = 0.0;
        spec.active_current_ma = 0.0;
        spec.idle_current_ma = 0.0;
        let set = TaskSet::detection_only(&spec).unwrap();
        assert_eq!(set.total_average_current_ma(), 0.0);
        assert!(set.energy_fractions().iter().all(|&f| f == 0.0));
    }
}
