//! # seizure-parallel
//!
//! Dependency-free data parallelism for the batch inference engine.
//!
//! The build environment has no crates.io access, so instead of `rayon` the
//! batch paths fan out over [`std::thread::scope`]: a flat row-major output
//! buffer is split into contiguous row blocks, one per worker, and each
//! worker processes its block with a private scratch workspace. This is
//! exactly the shape the feature extractor and the flat forest need — disjoint
//! output rows, shared read-only input — so a full work-stealing pool would
//! buy nothing on these regular workloads.

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;

/// Number of worker threads to fan out across: the machine's available
/// parallelism, overridable (and capped to 1) with the
/// `SEIZURE_NUM_THREADS` environment variable.
pub fn num_threads() -> usize {
    if let Ok(value) = std::env::var("SEIZURE_NUM_THREADS") {
        if let Ok(n) = value.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Minimum number of rows per worker below which threading overhead is not
/// worth paying and the work runs on the calling thread.
const MIN_ROWS_PER_WORKER: usize = 8;

/// Processes a flat row-major buffer in parallel.
///
/// `data` is interpreted as rows of `row_len` values. The buffer is split
/// into contiguous blocks of rows, and `f` is invoked once per block with the
/// index of the block's first row and the mutable block slice. Workers run on
/// scoped threads; the first error (in row order) is returned.
///
/// `f` typically creates one scratch workspace per invocation, so per-window
/// state is allocated once per worker rather than once per row.
///
/// # Panics
///
/// Panics if `row_len` is zero or does not divide `data.len()`.
pub fn par_process_rows<E, F>(data: &mut [f64], row_len: usize, f: F) -> Result<(), E>
where
    F: Fn(usize, &mut [f64]) -> Result<(), E> + Sync,
    E: Send,
{
    assert!(row_len > 0, "row_len must be positive");
    assert_eq!(
        data.len() % row_len,
        0,
        "buffer length must be a multiple of row_len"
    );
    let rows = data.len() / row_len;
    let workers = num_threads().min(rows / MIN_ROWS_PER_WORKER.max(1)).max(1);
    if workers <= 1 {
        return f(0, data);
    }
    let rows_per_block = rows.div_ceil(workers);
    let block_len = rows_per_block * row_len;
    let mut results: Vec<Option<Result<(), E>>> = Vec::new();
    results.resize_with(workers, || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for (block_idx, block) in data.chunks_mut(block_len).enumerate() {
            let f = &f;
            handles.push(scope.spawn(move || (block_idx, f(block_idx * rows_per_block, block))));
        }
        for handle in handles {
            let (block_idx, result) = handle.join().expect("parallel worker panicked");
            results[block_idx] = Some(result);
        }
    });
    for result in results.into_iter().flatten() {
        result?;
    }
    Ok(())
}

/// Maps `f` over the indices `0..count` in parallel, with one lazily created
/// per-worker state shared by all indices a worker processes.
///
/// The index range is split into contiguous blocks, one per scoped worker
/// thread; each worker builds its state once with `make_state` and then maps
/// its block in order. Results come back in index order. The first error (in
/// index order, whether from `make_state` or from `f`) is returned.
///
/// This is the task-parallel sibling of [`par_process_rows`]: instead of
/// disjoint rows of one flat `f64` buffer, each index produces an owned value
/// (e.g. one fitted decision tree), so the training engine can fan tree
/// fitting out across cores while every tree keeps its own deterministic RNG
/// stream.
///
/// `min_per_worker` controls the serial cutoff: when fewer than that many
/// indices would land on each worker, everything runs on the calling thread.
pub fn par_map_init<S, T, E, MS, F>(
    count: usize,
    min_per_worker: usize,
    make_state: MS,
    f: F,
) -> Result<Vec<T>, E>
where
    MS: Fn() -> Result<S, E> + Sync,
    F: Fn(&mut S, usize) -> Result<T, E> + Sync,
    T: Send,
    E: Send,
{
    let run_block = |range: std::ops::Range<usize>| -> Result<Vec<T>, E> {
        if range.is_empty() {
            return Ok(Vec::new());
        }
        let mut state = make_state()?;
        let mut out = Vec::with_capacity(range.len());
        for i in range {
            out.push(f(&mut state, i)?);
        }
        Ok(out)
    };
    let workers = num_threads().min(count / min_per_worker.max(1)).max(1);
    if workers <= 1 {
        return run_block(0..count);
    }
    let per_block = count.div_ceil(workers);
    let mut results: Vec<Option<Result<Vec<T>, E>>> = Vec::new();
    results.resize_with(workers, || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for block_idx in 0..workers {
            let run_block = &run_block;
            let start = block_idx * per_block;
            let end = (start + per_block).min(count);
            handles.push(scope.spawn(move || (block_idx, run_block(start..end))));
        }
        for handle in handles {
            let (block_idx, result) = handle.join().expect("parallel worker panicked");
            results[block_idx] = Some(result);
        }
    });
    let mut out = Vec::with_capacity(count);
    for result in results.into_iter().flatten() {
        out.extend(result?);
    }
    Ok(out)
}

/// Fills `out` by evaluating `f` on every index in parallel.
///
/// Convenience wrapper over [`par_fill_slice`] for `f64` outputs (e.g.
/// per-sample class probabilities).
pub fn par_fill<F>(out: &mut [f64], f: F)
where
    F: Fn(usize) -> f64 + Sync,
{
    par_fill_slice(out, f);
}

/// Fills a slice of any `Send` element type by evaluating `f` on every index
/// in parallel — the generic sibling of [`par_fill`], used by the prediction
/// into-variants to write class labels (`bool`) without a staging `f64`
/// buffer.
///
/// The slice is split into contiguous blocks, one per scoped worker thread;
/// small slices run on the calling thread.
pub fn par_fill_slice<T, F>(out: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let n = out.len();
    let workers = num_threads().min(n / MIN_ROWS_PER_WORKER).max(1);
    let fill_block = |start: usize, block: &mut [T]| {
        for (offset, slot) in block.iter_mut().enumerate() {
            *slot = f(start + offset);
        }
    };
    if workers <= 1 {
        fill_block(0, out);
        return;
    }
    let per_block = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for (block_idx, block) in out.chunks_mut(per_block).enumerate() {
            let fill_block = &fill_block;
            scope.spawn(move || fill_block(block_idx * per_block, block));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processes_every_row_exactly_once() {
        let rows = 1000;
        let row_len = 3;
        let mut data = vec![0.0; rows * row_len];
        par_process_rows::<std::convert::Infallible, _>(&mut data, row_len, |start, block| {
            for (r, row) in block.chunks_mut(row_len).enumerate() {
                for (c, v) in row.iter_mut().enumerate() {
                    *v = (start + r) as f64 * 10.0 + c as f64;
                }
            }
            Ok(())
        })
        .unwrap();
        for r in 0..rows {
            for c in 0..row_len {
                assert_eq!(data[r * row_len + c], r as f64 * 10.0 + c as f64);
            }
        }
    }

    #[test]
    fn small_batches_run_serially() {
        let mut data = vec![0.0; 4];
        par_process_rows::<std::convert::Infallible, _>(&mut data, 1, |start, block| {
            assert_eq!(start, 0);
            assert_eq!(block.len(), 4);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn first_error_in_row_order_wins() {
        let mut data = vec![0.0; 64];
        let err = par_process_rows(&mut data, 1, |start, _block| {
            if start == 0 {
                Err("first")
            } else {
                Err("later")
            }
        });
        // Serial fallback or parallel: the reported error must be the one
        // from the earliest failing block.
        assert_eq!(err.unwrap_err(), "first");
    }

    #[test]
    fn par_map_init_preserves_index_order() {
        let results = par_map_init::<u32, usize, &str, _, _>(
            97,
            1,
            || Ok(0u32),
            |state, i| {
                *state += 1;
                Ok(i * 3)
            },
        )
        .unwrap();
        assert_eq!(results.len(), 97);
        for (i, v) in results.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn par_map_init_handles_empty_and_errors() {
        let empty = par_map_init::<(), usize, &str, _, _>(0, 1, || Ok(()), |_, i| Ok(i)).unwrap();
        assert!(empty.is_empty());
        let err = par_map_init::<(), usize, _, _, _>(
            64,
            1,
            || Ok(()),
            |_, i| if i >= 10 { Err(i) } else { Ok(i) },
        );
        // First error in index order wins regardless of worker count.
        assert_eq!(err.unwrap_err(), 10);
    }

    #[test]
    fn par_fill_slice_fills_non_f64_outputs() {
        let mut flags = vec![false; 777];
        par_fill_slice(&mut flags, |i| i % 3 == 0);
        for (i, v) in flags.iter().enumerate() {
            assert_eq!(*v, i % 3 == 0);
        }
        // Small slices run serially and empty slices are a no-op.
        let mut small = vec![0usize; 3];
        par_fill_slice(&mut small, |i| i + 1);
        assert_eq!(small, vec![1, 2, 3]);
        let mut empty: Vec<bool> = Vec::new();
        par_fill_slice(&mut empty, |_| true);
        assert!(empty.is_empty());
    }

    #[test]
    fn par_fill_matches_serial_map() {
        let mut out = vec![0.0; 513];
        par_fill(&mut out, |i| (i * i) as f64);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as f64);
        }
    }

    #[test]
    #[should_panic(expected = "multiple of row_len")]
    fn rejects_misaligned_buffer() {
        let mut data = vec![0.0; 5];
        let _ = par_process_rows::<std::convert::Infallible, _>(&mut data, 2, |_, _| Ok(()));
    }
}
