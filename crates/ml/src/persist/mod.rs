//! Versioned binary persistence for the training and inference engines.
//!
//! The paper's wearable personalizes its forest over days of wear, but until
//! this module the [`IncrementalTrainer`]'s sample pool lived only in process
//! memory — one power cycle and the accumulated personalization was gone.
//! This module is a self-contained little-endian codec (the workspace's
//! vendored `serde` is a non-deriving stub, so nothing here depends on it)
//! that snapshots and restores [`FlatForest`], [`TrainingSet`] and the full
//! [`IncrementalTrainer`] state, so a device can power down mid-lifetime and
//! resume retraining exactly where it left off.
//!
//! Full snapshots are O(pool) to write; the [`journal`] submodule layers an
//! append-only delta journal of `retrain` batches on top, so the per-seizure
//! Flash write of a self-learning wearable is O(batch) between full
//! snapshots.
//!
//! # Envelope format
//!
//! Every snapshot is a byte string with the layout (all integers
//! little-endian):
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 8    | magic `b"SZRSNAP\0"` |
//! | 8      | 2    | format version ([`FORMAT_VERSION`]) |
//! | 10     | 2    | payload kind ([`SnapshotKind`]) |
//! | 12     | 8    | payload length `L` |
//! | 20     | `L`  | payload |
//! | 20+L   | 8    | FNV-1a 64 checksum of bytes `0 .. 20+L` |
//!
//! [`SnapshotReader::open`] validates the envelope front to back — magic,
//! version, length consistency, checksum, kind — and returns a **typed**
//! [`PersistError`] for every way a file can be wrong (truncated, foreign,
//! from a future format, bit-flipped, or of another payload kind). Corrupted
//! input never panics and never allocates unbounded buffers: every array
//! length read from a payload is bounds-checked against the bytes that are
//! actually present before anything is reserved.
//!
//! # Versioning policy
//!
//! The format version is bumped on **any** layout change; readers accept
//! exactly the version they were built for (wearable firmware pins one
//! format, migration happens off-device). The magic and the envelope layout
//! up to the version field are frozen forever, so any reader can at least
//! say "this is a snapshot, but from another format generation".
//!
//! # What is (and isn't) stored
//!
//! * [`FlatForest`] — everything (struct-of-arrays nodes, roots, feature
//!   count).
//! * [`TrainingSet`] — the design matrix (serialized feature-major, the v2
//!   wire layout, regardless of the in-memory block-major storage) and the
//!   labels. The per-block sorted id runs are **rebuilt** on load rather
//!   than stored: they are fully determined by the columns and the block
//!   length (`f64::total_cmp` with stable ties), rebuilding sorts each
//!   block independently (O(n log block), cheaper than the global sort the
//!   flat orders needed), and dropping them shrinks the snapshot — the
//!   deciding factor against a 384 KB-Flash budget (see `seizure-edge`'s
//!   `MemoryModel::trainer_snapshot_bytes`). A trainer snapshot rebuilds
//!   its runs with the trainer's own `block_size`, so the restored set is
//!   `==`-identical to the saved one.
//! * [`IncrementalTrainer`] — config, seed, the training set, every cached
//!   per-tree arena together with its `(blocks_owned, pool_len)` draw-stream
//!   fingerprint, and the last refit count. A restored trainer is
//!   `==`-identical to the saved one, so `save → load → retrain(new rows)`
//!   emits a forest node-identical to the uninterrupted trainer for **any**
//!   split point of any grow schedule (property-tested; see
//!   `crates/ml/tests/properties.rs`).
//!
//! # Example
//!
//! ```
//! use seizure_ml::persist::{trainer_from_bytes, trainer_to_bytes};
//! use seizure_ml::training::{IncrementalTrainer, IncrementalTrainerConfig};
//! use seizure_ml::RandomForestConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = IncrementalTrainerConfig {
//!     forest: RandomForestConfig { n_trees: 4, ..RandomForestConfig::default() },
//!     block_size: 8,
//! };
//! let mut trainer = IncrementalTrainer::new(config, 7);
//! let rows: Vec<f64> = (0..32).map(f64::from).collect();
//! let labels: Vec<bool> = (0..32).map(|i| i % 2 == 0).collect();
//! trainer.retrain(&rows, 1, &labels)?;
//!
//! // Across a process boundary the pool and every fitted tree survive.
//! let snapshot = trainer_to_bytes(&trainer);
//! let restored = trainer_from_bytes(&snapshot)?;
//! assert_eq!(restored, trainer);
//! # Ok(())
//! # }
//! ```

use crate::flat::{FlatForest, LEAF};
use crate::forest::RandomForestConfig;
use crate::incremental::{IncrementalTrainer, IncrementalTrainerConfig, TreeState};
use crate::training::{NodeArena, TrainingSet, MAX_RUN_BLOCK};
use std::error::Error;
use std::fmt;

pub mod journal;
pub mod store;

/// Magic bytes opening every snapshot.
pub const MAGIC: [u8; 8] = *b"SZRSNAP\0";

/// Current snapshot format version. Bumped on any layout change; readers
/// accept exactly this version (see the module docs for the policy).
/// Version 2 added the real-time detector's quality-gate block (enable flag
/// plus calibrated amplitude reference) ahead of the model marker.
pub const FORMAT_VERSION: u16 = 2;

/// Size of the envelope header (magic + version + kind + payload length).
const HEADER_LEN: usize = 8 + 2 + 2 + 8;

/// Size of the trailing checksum.
const CHECKSUM_LEN: usize = 8;

/// Total envelope overhead around a payload.
pub const ENVELOPE_LEN: usize = HEADER_LEN + CHECKSUM_LEN;

/// What a snapshot contains, stored in the envelope header so a reader can
/// refuse payloads of the wrong kind before decoding a single body byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum SnapshotKind {
    /// A compiled [`FlatForest`].
    FlatForest = 1,
    /// A [`TrainingSet`] (design matrix + labels; orders rebuilt on load).
    TrainingSet = 2,
    /// A full [`IncrementalTrainer`] (pool + cached trees + fingerprints).
    IncrementalTrainer = 3,
    /// A `seizure-core` real-time detector (forest or trainer + scaling
    /// statistics); the payload is encoded by that crate.
    RealTimeDetector = 4,
    /// A `seizure-core` self-learning pipeline; the payload is encoded by
    /// that crate.
    SelfLearningPipeline = 5,
    /// One delta-journal entry (a single `retrain` batch bound to its base
    /// snapshot); see [`journal`].
    JournalEntry = 6,
}

impl SnapshotKind {
    fn from_u16(v: u16) -> Option<Self> {
        match v {
            1 => Some(Self::FlatForest),
            2 => Some(Self::TrainingSet),
            3 => Some(Self::IncrementalTrainer),
            4 => Some(Self::RealTimeDetector),
            5 => Some(Self::SelfLearningPipeline),
            6 => Some(Self::JournalEntry),
            _ => None,
        }
    }
}

/// Typed decoding failure. Corrupted input of any shape maps to one of these
/// variants — never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The byte string ends before the envelope or a declared payload does.
    Truncated {
        /// Bytes required by the structure being read.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The first eight bytes are not [`MAGIC`] — not a snapshot at all.
    BadMagic {
        /// The bytes found in place of the magic.
        found: [u8; 8],
    },
    /// The snapshot was written by a different format generation.
    UnsupportedVersion {
        /// The version stored in the envelope.
        found: u16,
    },
    /// The envelope is authentic but holds another payload kind.
    WrongKind {
        /// The kind the caller asked for.
        expected: SnapshotKind,
        /// The kind tag stored in the envelope.
        found: u16,
    },
    /// The trailing checksum does not match the stored bytes.
    ChecksumMismatch {
        /// Checksum stored in the snapshot.
        stored: u64,
        /// Checksum recomputed over the received bytes.
        computed: u64,
    },
    /// The payload decodes to structurally inconsistent data.
    Corrupted {
        /// Description of the inconsistency.
        detail: String,
    },
    /// Neither base slot of a dual-slot Flash store holds a committed
    /// snapshot — the store cannot mount (see [`store::FlashStore::mount`]).
    NoValidSlot {
        /// Why slot A was rejected.
        slot_a: String,
        /// Why slot B was rejected.
        slot_b: String,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Truncated { needed, available } => {
                write!(
                    f,
                    "snapshot truncated: needed {needed} bytes, got {available}"
                )
            }
            PersistError::BadMagic { found } => {
                write!(f, "not a snapshot: bad magic {found:02x?}")
            }
            PersistError::UnsupportedVersion { found } => write!(
                f,
                "unsupported snapshot format version {found} (this build reads {FORMAT_VERSION})"
            ),
            PersistError::WrongKind { expected, found } => write!(
                f,
                "snapshot holds payload kind {found}, expected {expected:?}"
            ),
            PersistError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            PersistError::Corrupted { detail } => write!(f, "corrupted snapshot: {detail}"),
            PersistError::NoValidSlot { slot_a, slot_b } => write!(
                f,
                "no valid base slot: slot A rejected ({slot_a}); slot B rejected ({slot_b})"
            ),
        }
    }
}

impl Error for PersistError {}

/// FNV-1a 64-bit hash — the envelope checksum. Public so tests (and external
/// tooling) can craft or verify envelopes byte by byte.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Little-endian payload writer. The envelope header is laid down up front
/// and the payload is written **directly behind it** in one buffer;
/// [`SnapshotWriter::finish`] back-patches the kind and length fields and
/// appends the checksum, so producing a snapshot never copies the payload.
/// Compound snapshots nest children the same way: [`SnapshotWriter::begin_nested`] /
/// [`SnapshotWriter::end_nested`] write the child envelope in place and
/// back-patch its length prefix, length field and checksum, instead of
/// materializing the child in its own buffer and memcpying it into the
/// parent (which cost ~4 extra O(pool) copies per pipeline save).
#[derive(Debug)]
pub struct SnapshotWriter {
    /// Envelope header followed by the payload written so far. The kind and
    /// payload-length fields hold placeholders until `finish`.
    buf: Vec<u8>,
    /// Number of nested envelopes currently open — sealing is strictly
    /// LIFO, so closing a handle out of order (which would checksum another
    /// child's placeholder header) panics at write time instead of emitting
    /// a corrupt snapshot.
    open_nested: usize,
}

/// Handle for a nested envelope opened with [`SnapshotWriter::begin_nested`];
/// must be closed with [`SnapshotWriter::end_nested`]. Nested envelopes may
/// nest further, but handles must be closed innermost-first —
/// `end_nested` panics on a handle closed out of order.
#[derive(Debug)]
#[must_use = "a nested envelope must be closed with end_nested"]
pub struct NestedEnvelope {
    /// Offset of the 8-byte nested length prefix.
    prefix_at: usize,
    /// Offset of the child envelope's first byte (its magic).
    start: usize,
    /// The kind back-patched into the child header on close.
    kind: SnapshotKind,
    /// Nesting depth at which this handle was opened (for the LIFO check).
    depth: usize,
}

impl Default for SnapshotWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl SnapshotWriter {
    /// Creates a writer with an empty payload.
    pub fn new() -> Self {
        let mut buf = Vec::new();
        push_envelope_header(&mut buf);
        Self {
            buf,
            open_nested: 0,
        }
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a little-endian `u64` (the format is
    /// pointer-width independent).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` through its IEEE-754 bit pattern (bit-exact for
    /// every value, NaN payloads included).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Appends a length-prefixed `u32` slice.
    pub fn slice_u32(&mut self, s: &[u32]) {
        self.usize(s.len());
        for &v in s {
            self.u32(v);
        }
    }

    /// Appends a length-prefixed `f64` slice (bit-exact).
    pub fn slice_f64(&mut self, s: &[f64]) {
        self.usize(s.len());
        for &v in s {
            self.f64(v);
        }
    }

    /// Appends a length-prefixed, bit-packed `bool` slice (eight labels per
    /// byte — labels dominate no snapshot, but a wearable's Flash budget is
    /// small enough to care).
    pub fn bools(&mut self, s: &[bool]) {
        self.usize(s.len());
        let mut byte = 0u8;
        for (i, &b) in s.iter().enumerate() {
            byte |= (b as u8) << (i % 8);
            if i % 8 == 7 {
                self.buf.push(byte);
                byte = 0;
            }
        }
        if !s.len().is_multiple_of(8) {
            self.buf.push(byte);
        }
    }

    /// Appends a length-prefixed opaque byte block — used to nest one
    /// complete pre-built snapshot (envelope included) inside another, so
    /// compound payloads get defense-in-depth validation of their parts.
    /// When the child is encoded by this crate prefer
    /// [`SnapshotWriter::begin_nested`], which produces the same bytes
    /// without materializing the child in its own buffer first.
    pub fn nested(&mut self, bytes: &[u8]) {
        self.usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Opens a nested child envelope **in place**: writes the length prefix
    /// and the child header directly into this writer's buffer and returns a
    /// handle. Everything written until the matching
    /// [`SnapshotWriter::end_nested`] becomes the child's payload. The bytes
    /// produced are identical to `self.nested(&child.finish(kind))` with a
    /// separately built child writer — minus the extra payload-sized copies.
    pub fn begin_nested(&mut self, kind: SnapshotKind) -> NestedEnvelope {
        let prefix_at = self.buf.len();
        self.buf.extend_from_slice(&0u64.to_le_bytes());
        let start = self.buf.len();
        push_envelope_header(&mut self.buf);
        self.open_nested += 1;
        NestedEnvelope {
            prefix_at,
            start,
            kind,
            depth: self.open_nested,
        }
    }

    /// Closes a nested child envelope: back-patches the child's kind and
    /// payload-length fields, appends its checksum, and back-patches the
    /// outer length prefix written by [`SnapshotWriter::begin_nested`].
    ///
    /// # Panics
    ///
    /// When `child` is not the innermost open envelope — sealing out of
    /// order would checksum another child's placeholder header, emitting a
    /// snapshot that only fails at decode time (or worse, after it reached
    /// device Flash).
    pub fn end_nested(&mut self, child: NestedEnvelope) {
        let NestedEnvelope {
            prefix_at,
            start,
            kind,
            depth,
        } = child;
        assert_eq!(
            depth, self.open_nested,
            "nested envelopes must be closed innermost-first"
        );
        self.open_nested -= 1;
        seal_envelope(&mut self.buf, start, kind);
        let nested_len = (self.buf.len() - start) as u64;
        self.buf[prefix_at..prefix_at + 8].copy_from_slice(&nested_len.to_le_bytes());
    }

    /// Seals the envelope: back-patches the `kind` and payload-length fields
    /// of the header written at creation, appends the checksum, and returns
    /// the snapshot bytes. The payload is never copied.
    ///
    /// # Panics
    ///
    /// When a nested envelope opened with [`SnapshotWriter::begin_nested`]
    /// was never closed (its length and checksum fields still hold
    /// placeholders).
    pub fn finish(mut self, kind: SnapshotKind) -> Vec<u8> {
        assert_eq!(
            self.open_nested, 0,
            "every nested envelope must be closed before finish"
        );
        seal_envelope(&mut self.buf, 0, kind);
        self.buf
    }
}

/// Appends an envelope header with placeholder kind and payload-length
/// fields (back-patched by [`seal_envelope`]).
fn push_envelope_header(buf: &mut Vec<u8>) {
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    buf.extend_from_slice(&0u16.to_le_bytes()); // kind, patched on seal
    buf.extend_from_slice(&0u64.to_le_bytes()); // payload length, patched on seal
}

/// Seals the envelope starting at `start` (whose header was written by
/// [`push_envelope_header`] and whose payload ends at the buffer's current
/// end): back-patches kind and payload length, then appends the FNV-1a
/// checksum of the envelope bytes.
fn seal_envelope(buf: &mut Vec<u8>, start: usize, kind: SnapshotKind) {
    let payload_len = (buf.len() - start - HEADER_LEN) as u64;
    buf[start + 10..start + 12].copy_from_slice(&(kind as u16).to_le_bytes());
    buf[start + 12..start + 20].copy_from_slice(&payload_len.to_le_bytes());
    let checksum = fnv1a(&buf[start..]);
    buf.extend_from_slice(&checksum.to_le_bytes());
}

/// Little-endian payload reader over a validated envelope.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    payload: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// Validates the envelope front to back — length, magic, version,
    /// declared payload length, checksum, kind — and returns a reader over
    /// the payload.
    ///
    /// # Errors
    ///
    /// One typed [`PersistError`] per failure mode; see the variant docs.
    pub fn open(bytes: &'a [u8], kind: SnapshotKind) -> Result<Self, PersistError> {
        if bytes.len() < ENVELOPE_LEN {
            return Err(PersistError::Truncated {
                needed: ENVELOPE_LEN,
                available: bytes.len(),
            });
        }
        // lint: allow(panic-free-decode) — len >= ENVELOPE_LEN checked on entry
        if bytes[..8] != MAGIC {
            let mut found = [0u8; 8];
            // lint: allow(panic-free-decode) — len >= ENVELOPE_LEN checked on entry
            found.copy_from_slice(&bytes[..8]);
            return Err(PersistError::BadMagic { found });
        }
        // lint: allow(panic-free-decode) — len >= ENVELOPE_LEN checked on entry
        let version = u16::from_le_bytes([bytes[8], bytes[9]]);
        if version != FORMAT_VERSION {
            return Err(PersistError::UnsupportedVersion { found: version });
        }
        // lint: allow(panic-free-decode) — len >= ENVELOPE_LEN checked on entry
        let found_kind = u16::from_le_bytes([bytes[10], bytes[11]]);
        // lint: allow(panic-free-decode) — fixed 8-byte read inside the validated header
        let declared = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        let body_end = bytes.len() - CHECKSUM_LEN;
        let actual = (body_end - HEADER_LEN) as u64;
        if declared > actual {
            return Err(PersistError::Truncated {
                // Saturate: a corrupt length field must produce this typed
                // error, not an overflow panic while describing it.
                needed: (declared as usize).saturating_add(ENVELOPE_LEN),
                available: bytes.len(),
            });
        }
        if declared < actual {
            return Err(PersistError::Corrupted {
                detail: format!("payload declares {declared} bytes but {actual} are present"),
            });
        }
        // lint: allow(panic-free-decode) — body_end = len - CHECKSUM_LEN, len >= ENVELOPE_LEN
        let stored = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 bytes"));
        let computed = fnv1a(&bytes[..body_end]);
        if stored != computed {
            return Err(PersistError::ChecksumMismatch { stored, computed });
        }
        if found_kind != kind as u16 {
            return Err(PersistError::WrongKind {
                expected: kind,
                found: found_kind,
            });
        }
        Ok(Self {
            payload: &bytes[HEADER_LEN..body_end],
            pos: 0,
        })
    }

    /// The payload kind stored in an envelope, without full validation —
    /// lets a dispatcher route bytes of unknown kind.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Truncated`] / [`PersistError::BadMagic`] when
    /// there is no envelope to inspect.
    pub fn peek_kind(bytes: &[u8]) -> Result<Option<SnapshotKind>, PersistError> {
        if bytes.len() < ENVELOPE_LEN {
            return Err(PersistError::Truncated {
                needed: ENVELOPE_LEN,
                available: bytes.len(),
            });
        }
        // lint: allow(panic-free-decode) — len >= ENVELOPE_LEN checked on entry
        if bytes[..8] != MAGIC {
            let mut found = [0u8; 8];
            // lint: allow(panic-free-decode) — len >= ENVELOPE_LEN checked on entry
            found.copy_from_slice(&bytes[..8]);
            return Err(PersistError::BadMagic { found });
        }
        Ok(SnapshotKind::from_u16(u16::from_le_bytes([
            // lint: allow(panic-free-decode) — len >= ENVELOPE_LEN checked on entry
            bytes[10], bytes[11],
        ])))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).ok_or(PersistError::Corrupted {
            detail: "payload offset overflow".to_string(),
        })?;
        if end > self.payload.len() {
            return Err(PersistError::Corrupted {
                detail: format!(
                    "payload field needs {n} bytes at offset {} but only {} remain",
                    self.pos,
                    self.payload.len() - self.pos
                ),
            });
        }
        let slice = &self.payload[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupted`] when the payload is exhausted.
    pub fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupted`] when the payload is exhausted.
    pub fn u16(&mut self) -> Result<u16, PersistError> {
        // lint: allow(panic-free-decode) — take(2) guarantees exactly 2 bytes
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupted`] when the payload is exhausted.
    pub fn u32(&mut self) -> Result<u32, PersistError> {
        // lint: allow(panic-free-decode) — take(4) guarantees exactly 4 bytes
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupted`] when the payload is exhausted.
    pub fn u64(&mut self) -> Result<u64, PersistError> {
        // lint: allow(panic-free-decode) — take(8) guarantees exactly 8 bytes
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads a `u64` and narrows it to `usize`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupted`] on exhaustion or when the value exceeds
    /// the platform's address width.
    pub fn usize(&mut self) -> Result<usize, PersistError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| PersistError::Corrupted {
            detail: format!("length {v} exceeds this platform's address width"),
        })
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupted`] when the payload is exhausted.
    pub fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool` (rejecting bytes other than 0/1, which can only come
    /// from corruption).
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupted`] on exhaustion or a non-boolean byte.
    pub fn bool(&mut self) -> Result<bool, PersistError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(PersistError::Corrupted {
                detail: format!("boolean field holds byte {b}"),
            }),
        }
    }

    /// Reads a length prefix for elements of `elem_size` bytes,
    /// bounds-checked against the remaining payload **before** any
    /// allocation, so corrupt lengths cannot trigger huge reservations.
    fn len_prefix(&mut self, elem_size: usize) -> Result<usize, PersistError> {
        let len = self.usize()?;
        let bytes = len.checked_mul(elem_size).ok_or(PersistError::Corrupted {
            detail: format!("slice length {len} overflows"),
        })?;
        if bytes > self.payload.len() - self.pos {
            return Err(PersistError::Corrupted {
                detail: format!(
                    "slice declares {bytes} bytes but only {} remain",
                    self.payload.len() - self.pos
                ),
            });
        }
        Ok(len)
    }

    /// Reads a length-prefixed `u32` slice.
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupted`] on exhaustion or an oversized length.
    pub fn slice_u32(&mut self) -> Result<Vec<u32>, PersistError> {
        let len = self.len_prefix(4)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.u32()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed `f64` slice (bit-exact).
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupted`] on exhaustion or an oversized length.
    pub fn slice_f64(&mut self) -> Result<Vec<f64>, PersistError> {
        let len = self.len_prefix(8)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed, bit-packed `bool` slice.
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupted`] on exhaustion or an oversized length.
    pub fn bools(&mut self) -> Result<Vec<bool>, PersistError> {
        let len = self.usize()?;
        let packed = len.div_ceil(8);
        if packed > self.payload.len() - self.pos {
            return Err(PersistError::Corrupted {
                detail: format!(
                    "bit-packed slice declares {packed} bytes but only {} remain",
                    self.payload.len() - self.pos
                ),
            });
        }
        let bytes = self.take(packed)?;
        Ok((0..len).map(|i| bytes[i / 8] >> (i % 8) & 1 == 1).collect())
    }

    /// Reads a length-prefixed opaque byte block (a nested snapshot).
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupted`] on exhaustion or an oversized length.
    pub fn nested(&mut self) -> Result<&'a [u8], PersistError> {
        let len = self.len_prefix(1)?;
        self.take(len)
    }

    /// Asserts the payload was consumed exactly — trailing bytes mean the
    /// reader and writer disagree about the layout.
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupted`] when bytes remain.
    pub fn finish(self) -> Result<(), PersistError> {
        if self.pos != self.payload.len() {
            return Err(PersistError::Corrupted {
                detail: format!(
                    "{} unread trailing bytes after the payload",
                    self.payload.len() - self.pos
                ),
            });
        }
        Ok(())
    }
}

/// Writes a [`RandomForestConfig`] in fixed-size form (41 bytes: the
/// `max_features` option always occupies flag + value). Public so
/// `seizure-core` can embed detector configurations in its own payloads.
pub fn write_forest_config(w: &mut SnapshotWriter, config: &RandomForestConfig) {
    w.usize(config.n_trees);
    w.usize(config.max_depth);
    w.usize(config.min_samples_split);
    w.bool(config.max_features.is_some());
    w.usize(config.max_features.unwrap_or(0));
    w.f64(config.bootstrap_fraction);
}

/// Reads a [`RandomForestConfig`] written by [`write_forest_config`].
///
/// # Errors
///
/// Propagates the reader's [`PersistError`]s.
pub fn read_forest_config(r: &mut SnapshotReader<'_>) -> Result<RandomForestConfig, PersistError> {
    let n_trees = r.usize()?;
    let max_depth = r.usize()?;
    let min_samples_split = r.usize()?;
    let has_max_features = r.bool()?;
    let max_features_value = r.usize()?;
    let bootstrap_fraction = r.f64()?;
    Ok(RandomForestConfig {
        n_trees,
        max_depth,
        min_samples_split,
        max_features: has_max_features.then_some(max_features_value),
        bootstrap_fraction,
    })
}

fn write_arena(w: &mut SnapshotWriter, arena: &NodeArena) {
    w.slice_u32(&arena.feature);
    w.slice_f64(&arena.threshold);
    w.slice_u32(&arena.left);
    w.slice_u32(&arena.right);
    w.slice_f64(&arena.leaf_prob);
}

fn read_arena(r: &mut SnapshotReader<'_>) -> Result<NodeArena, PersistError> {
    let feature = r.slice_u32()?;
    let threshold = r.slice_f64()?;
    let left = r.slice_u32()?;
    let right = r.slice_u32()?;
    let leaf_prob = r.slice_f64()?;
    let n = feature.len();
    if [threshold.len(), left.len(), right.len(), leaf_prob.len()] != [n; 4] {
        return Err(PersistError::Corrupted {
            detail: "tree arena arrays disagree on node count".to_string(),
        });
    }
    Ok(NodeArena {
        feature,
        threshold,
        left,
        right,
        leaf_prob,
    })
}

/// Validates the structural invariants of flat node storage: per-node arrays
/// of one length, in-bounds roots, in-bounds split features, and children
/// that point strictly forward. Both tree builders emit nodes in DFS
/// preorder, so every authentic child index exceeds its parent's; enforcing
/// that here makes decoded trees provably acyclic — a crafted snapshot with
/// a back-pointing child must fail with a typed error, not hang the first
/// prediction.
fn check_nodes(
    num_features: usize,
    roots: &[u32],
    feature: &[u32],
    left: &[u32],
    right: &[u32],
) -> Result<(), PersistError> {
    let n = feature.len();
    if roots.iter().any(|&r| r as usize >= n) {
        return Err(PersistError::Corrupted {
            detail: "tree root index out of bounds".to_string(),
        });
    }
    for i in 0..n {
        if feature[i] == LEAF {
            continue;
        }
        if feature[i] as usize >= num_features || left[i] as usize >= n || right[i] as usize >= n {
            return Err(PersistError::Corrupted {
                detail: format!("split node {i} references out-of-bounds data"),
            });
        }
        if left[i] as usize <= i || right[i] as usize <= i {
            return Err(PersistError::Corrupted {
                detail: format!(
                    "split node {i} has a non-forward child, breaking DFS preorder acyclicity"
                ),
            });
        }
    }
    Ok(())
}

/// Writes the payload of a [`FlatForest`] snapshot into `w`. Public for the
/// same reason as [`write_trainer_body`]: compound snapshots in
/// `seizure-core` nest the forest in place instead of copying a separately
/// finished child.
pub fn write_forest_body(w: &mut SnapshotWriter, forest: &FlatForest) {
    w.usize(forest.num_features);
    w.slice_u32(&forest.roots);
    w.slice_u32(&forest.feature);
    w.slice_f64(&forest.threshold);
    w.slice_u32(&forest.left);
    w.slice_u32(&forest.right);
    w.slice_f64(&forest.leaf_prob);
}

/// Snapshots a [`FlatForest`].
pub fn forest_to_bytes(forest: &FlatForest) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    write_forest_body(&mut w, forest);
    w.finish(SnapshotKind::FlatForest)
}

/// Restores a [`FlatForest`] snapshot, validating node-storage invariants so
/// a decoded forest can never walk out of bounds.
///
/// # Errors
///
/// A typed [`PersistError`] for any malformed input; see the module docs.
pub fn forest_from_bytes(bytes: &[u8]) -> Result<FlatForest, PersistError> {
    let mut r = SnapshotReader::open(bytes, SnapshotKind::FlatForest)?;
    let num_features = r.usize()?;
    let roots = r.slice_u32()?;
    let feature = r.slice_u32()?;
    let threshold = r.slice_f64()?;
    let left = r.slice_u32()?;
    let right = r.slice_u32()?;
    let leaf_prob = r.slice_f64()?;
    r.finish()?;
    let n = feature.len();
    if [threshold.len(), left.len(), right.len(), leaf_prob.len()] != [n; 4] {
        return Err(PersistError::Corrupted {
            detail: "forest node arrays disagree on node count".to_string(),
        });
    }
    check_nodes(num_features, &roots, &feature, &left, &right)?;
    Ok(FlatForest::from_raw_parts(
        num_features,
        roots,
        feature,
        threshold,
        left,
        right,
        leaf_prob,
    ))
}

fn write_training_set_body(w: &mut SnapshotWriter, set: &TrainingSet) {
    w.usize(set.num_features());
    w.bools(set.labels());
    // The v2 wire layout is one flat feature-major f64 slice. The in-memory
    // storage is block-major, but iterating feature → ascending blocks walks
    // the samples of each feature in global order, so the emitted bytes are
    // identical to `slice_f64` over the old flat columns.
    w.usize(set.len() * set.num_features());
    for f in 0..set.num_features() {
        for b in 0..set.num_blocks() {
            for &v in set.block_values(f, b) {
                w.f64(v);
            }
        }
    }
}

fn read_training_set_body(
    r: &mut SnapshotReader<'_>,
    run_block: usize,
) -> Result<TrainingSet, PersistError> {
    let num_features = r.usize()?;
    let labels = r.bools()?;
    let columns = r.slice_f64()?;
    TrainingSet::from_columns(columns, num_features, labels, run_block).map_err(|e| {
        PersistError::Corrupted {
            detail: format!("training set does not reconstruct: {e}"),
        }
    })
}

/// Snapshots a [`TrainingSet`]. Only the feature-major matrix and the labels
/// are stored; the per-block sorted id runs are rebuilt on load (see the
/// module docs for why).
pub fn training_set_to_bytes(set: &TrainingSet) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    write_training_set_body(&mut w, set);
    w.finish(SnapshotKind::TrainingSet)
}

/// Restores a [`TrainingSet`] snapshot. The rebuilt sorted runs are
/// identical to the saved set's (the runs are a pure function of the columns
/// and the block length; standalone sets use the default maximum block), so
/// the restored set is `==`-identical to the original.
///
/// # Errors
///
/// A typed [`PersistError`] for any malformed input; see the module docs.
pub fn training_set_from_bytes(bytes: &[u8]) -> Result<TrainingSet, PersistError> {
    let mut r = SnapshotReader::open(bytes, SnapshotKind::TrainingSet)?;
    let set = read_training_set_body(&mut r, MAX_RUN_BLOCK)?;
    r.finish()?;
    Ok(set)
}

/// Writes the payload of an [`IncrementalTrainer`] snapshot into `w` —
/// configuration, seed, the accumulated pool, every cached tree arena with
/// its `(blocks_owned, pool_len)` draw-stream fingerprint, and the last
/// refit count. Public so `seizure-core` can nest a trainer inside its own
/// envelopes through [`SnapshotWriter::begin_nested`] without materializing
/// the O(pool) payload in a separate buffer first.
pub fn write_trainer_body(w: &mut SnapshotWriter, trainer: &IncrementalTrainer) {
    let (config, seed, set, trees, last_refit) = trainer.snapshot_parts();
    write_forest_config(w, &config.forest);
    w.usize(config.block_size);
    w.u64(seed);
    w.usize(last_refit);
    w.bool(set.is_some());
    if let Some(set) = set {
        write_training_set_body(w, set);
    }
    w.usize(trees.len());
    for t in trees {
        w.usize(t.blocks_owned);
        w.usize(t.pool_len);
        write_arena(w, &t.arena);
    }
}

/// Snapshots the full state of an [`IncrementalTrainer`]: configuration,
/// seed, the accumulated pool, every cached tree arena with its
/// `(blocks_owned, pool_len)` draw-stream fingerprint, and the last refit
/// count.
pub fn trainer_to_bytes(trainer: &IncrementalTrainer) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    write_trainer_body(&mut w, trainer);
    w.finish(SnapshotKind::IncrementalTrainer)
}

/// Restores an [`IncrementalTrainer`] snapshot. The restored trainer is
/// `==`-identical to the saved one, so continuing to retrain it is
/// node-identical to never having stopped (property-tested).
///
/// # Errors
///
/// A typed [`PersistError`] for any malformed input; see the module docs.
pub fn trainer_from_bytes(bytes: &[u8]) -> Result<IncrementalTrainer, PersistError> {
    let mut r = SnapshotReader::open(bytes, SnapshotKind::IncrementalTrainer)?;
    let forest = read_forest_config(&mut r)?;
    let block_size = r.usize()?;
    let seed = r.u64()?;
    let last_refit = r.usize()?;
    let set = if r.bool()? {
        // Rebuild the sorted runs aligned with the trainer's ownership
        // blocks. A pathological persisted block_size (zero or beyond the
        // u16-relative-id ceiling) is clamped here so decode stays total;
        // `retrain` re-validates the configured value before using it.
        Some(read_training_set_body(&mut r, block_size.clamp(1, MAX_RUN_BLOCK))?)
    } else {
        None
    };
    let n_trees = r.usize()?;
    let mut trees = Vec::with_capacity(n_trees.min(1024));
    for _ in 0..n_trees {
        let blocks_owned = r.usize()?;
        let pool_len = r.usize()?;
        let arena = read_arena(&mut r)?;
        trees.push(TreeState {
            arena,
            blocks_owned,
            pool_len,
        });
    }
    r.finish()?;
    if !trees.is_empty() && trees.len() != forest.n_trees {
        return Err(PersistError::Corrupted {
            detail: format!(
                "snapshot caches {} trees but the configuration declares {}",
                trees.len(),
                forest.n_trees
            ),
        });
    }
    // A pool without trees is reachable (a retrain that failed hyper-
    // parameter validation after installing the pool); trees without a pool
    // are not.
    if !trees.is_empty() && set.is_none() {
        return Err(PersistError::Corrupted {
            detail: "cached trees require the training pool they were fitted on".to_string(),
        });
    }
    if last_refit > trees.len() {
        return Err(PersistError::Corrupted {
            detail: format!(
                "last refit count {last_refit} exceeds the {} cached trees",
                trees.len()
            ),
        });
    }
    if let Some(set) = &set {
        let num_features = set.num_features();
        for (t, state) in trees.iter().enumerate() {
            if state.pool_len > set.len() {
                return Err(PersistError::Corrupted {
                    detail: format!("tree {t} fingerprints a pool larger than the training set"),
                });
            }
            let roots = [0u32];
            check_nodes(
                num_features,
                if state.arena.feature.is_empty() {
                    &[]
                } else {
                    &roots
                },
                &state.arena.feature,
                &state.arena.left,
                &state.arena.right,
            )
            .map_err(|e| PersistError::Corrupted {
                detail: format!("tree {t}: {e}"),
            })?;
        }
    }
    Ok(IncrementalTrainer::from_snapshot_parts(
        IncrementalTrainerConfig { forest, block_size },
        seed,
        set,
        trees,
        last_refit,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::train_forest;

    fn rows_and_labels(n: usize) -> (Vec<f64>, Vec<bool>) {
        let mut rows = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let noise = ((i * 37 + 11) % 23) as f64 / 23.0;
            let positive = i % 2 == 0;
            rows.push(if positive { 4.0 + noise } else { noise });
            rows.push(((i * 7) % 13) as f64);
            labels.push(positive);
        }
        (rows, labels)
    }

    fn small_trainer(n: usize) -> IncrementalTrainer {
        let (rows, labels) = rows_and_labels(n);
        let config = IncrementalTrainerConfig {
            forest: RandomForestConfig {
                n_trees: 5,
                max_depth: 5,
                ..RandomForestConfig::default()
            },
            block_size: 16,
        };
        let mut trainer = IncrementalTrainer::new(config, 11);
        trainer.retrain(&rows, 2, &labels).unwrap();
        trainer
    }

    #[test]
    fn forest_round_trips_bit_identically() {
        let (rows, labels) = rows_and_labels(80);
        let set = TrainingSet::from_rows(&rows, 2, &labels).unwrap();
        let config = RandomForestConfig {
            n_trees: 7,
            max_depth: 6,
            ..RandomForestConfig::default()
        };
        let forest = train_forest(&set, &config, 3).unwrap();
        let restored = forest_from_bytes(&forest_to_bytes(&forest)).unwrap();
        assert_eq!(restored, forest);
        // Bit-identical predictions, probability included.
        for row in rows.chunks_exact(2).take(10) {
            assert_eq!(
                restored.predict_proba(row).to_bits(),
                forest.predict_proba(row).to_bits()
            );
        }
    }

    #[test]
    fn training_set_round_trips_with_rebuilt_orders() {
        // Heavy ties + a NaN exercise the presort rebuild's total order.
        let mut rows: Vec<f64> = (0..120).map(|i| ((i * 7) % 5) as f64 * 0.5).collect();
        rows[13] = f64::NAN;
        let labels: Vec<bool> = (0..60).map(|i| i % 3 == 0).collect();
        let set = TrainingSet::from_rows(&rows, 2, &labels).unwrap();
        let restored = training_set_from_bytes(&training_set_to_bytes(&set)).unwrap();
        // Structural identity covering columns, labels AND the presorted
        // order arrays; compared through Debug because derived `PartialEq`
        // can never equate the NaN column with itself.
        assert_eq!(format!("{restored:?}"), format!("{set:?}"));
    }

    #[test]
    fn grown_training_set_round_trips_like_a_rebuilt_one() {
        let (rows, labels) = rows_and_labels(50);
        let mut grown = TrainingSet::from_rows(&rows[..40], 2, &labels[..20]).unwrap();
        grown.append_rows(&rows[40..], &labels[20..]).unwrap();
        let restored = training_set_from_bytes(&training_set_to_bytes(&grown)).unwrap();
        assert_eq!(restored, grown);
    }

    #[test]
    fn empty_trainer_round_trips() {
        let config = IncrementalTrainerConfig::default();
        let trainer = IncrementalTrainer::new(config, 99);
        let restored = trainer_from_bytes(&trainer_to_bytes(&trainer)).unwrap();
        assert_eq!(restored, trainer);
        assert_eq!(restored.num_samples(), 0);
        assert!(restored.current_forest().is_none());
    }

    #[test]
    fn pool_without_trees_round_trips() {
        // A first retrain that fails hyper-parameter validation leaves the
        // pool installed with no fitted trees — a reachable state that must
        // survive persistence too.
        let config = IncrementalTrainerConfig {
            forest: RandomForestConfig {
                n_trees: 0,
                ..RandomForestConfig::default()
            },
            block_size: 16,
        };
        let (rows, labels) = rows_and_labels(30);
        let mut trainer = IncrementalTrainer::new(config, 1);
        assert!(trainer.retrain(&rows, 2, &labels).is_err());
        assert_eq!(trainer.num_samples(), 30);
        let restored = trainer_from_bytes(&trainer_to_bytes(&trainer)).unwrap();
        assert_eq!(restored, trainer);
    }

    #[test]
    fn fitted_trainer_round_trips_and_keeps_its_forest() {
        let trainer = small_trainer(100);
        let restored = trainer_from_bytes(&trainer_to_bytes(&trainer)).unwrap();
        assert_eq!(restored, trainer);
        assert_eq!(restored.current_forest(), trainer.current_forest());
        assert_eq!(restored.last_refit_count(), trainer.last_refit_count());
    }

    #[test]
    fn resumed_trainer_retrains_node_identically() {
        let (rows, labels) = rows_and_labels(200);
        let config = IncrementalTrainerConfig {
            forest: RandomForestConfig {
                n_trees: 6,
                max_depth: 5,
                ..RandomForestConfig::default()
            },
            block_size: 16,
        };
        let mut uninterrupted = IncrementalTrainer::new(config, 4);
        uninterrupted
            .retrain(&rows[..240], 2, &labels[..120])
            .unwrap();
        let snapshot = trainer_to_bytes(&uninterrupted);
        let reference = uninterrupted
            .retrain(&rows[240..], 2, &labels[120..])
            .unwrap();

        let mut resumed = trainer_from_bytes(&snapshot).unwrap();
        let continued = resumed.retrain(&rows[240..], 2, &labels[120..]).unwrap();
        assert_eq!(continued, reference);
        assert_eq!(resumed, uninterrupted);
    }

    /// The narrow (u16) and wide (u32) id-width regimes are chosen from the
    /// pool size at fit time; snapshots on both sides of the 65536-sample
    /// boundary must restore to trainers that keep retraining identically.
    #[test]
    fn trainer_round_trips_across_the_id_width_boundary() {
        for n in [65_535usize, 65_537] {
            let mut rows = Vec::with_capacity(n * 2);
            let mut labels = Vec::with_capacity(n);
            for i in 0..n {
                let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                rows.push((h % 9973) as f64);
                rows.push(((h >> 32) % 101) as f64);
                labels.push(i % 2 == 0);
            }
            let config = IncrementalTrainerConfig {
                forest: RandomForestConfig {
                    n_trees: 2,
                    max_depth: 3,
                    bootstrap_fraction: 0.02,
                    max_features: Some(2),
                    ..RandomForestConfig::default()
                },
                block_size: 4096,
            };
            let mut uninterrupted = IncrementalTrainer::new(config, 5);
            uninterrupted
                .retrain(&rows[..(n - 64) * 2], 2, &labels[..n - 64])
                .unwrap();
            let restored = trainer_from_bytes(&trainer_to_bytes(&uninterrupted)).unwrap();
            assert_eq!(restored, uninterrupted);
            let mut resumed = restored;
            let continued = resumed
                .retrain(&rows[(n - 64) * 2..], 2, &labels[n - 64..])
                .unwrap();
            let reference = uninterrupted
                .retrain(&rows[(n - 64) * 2..], 2, &labels[n - 64..])
                .unwrap();
            assert_eq!(continued, reference, "n = {n}");
        }
    }

    /// The zero-copy nesting path (`begin_nested` / `end_nested` writing the
    /// child payload straight into the parent buffer and back-patching
    /// length + checksum) must emit exactly the bytes of the copying path
    /// (`nested` over a separately finished child) — the compound snapshot
    /// formats of `seizure-core` are pinned to that layout.
    #[test]
    fn in_place_nesting_is_byte_identical_to_the_copying_path() {
        let trainer = small_trainer(60);

        let mut copying = SnapshotWriter::new();
        copying.u32(7);
        copying.nested(&trainer_to_bytes(&trainer));
        copying.u8(9);
        let copying = copying.finish(SnapshotKind::RealTimeDetector);

        let mut in_place = SnapshotWriter::new();
        in_place.u32(7);
        let child = in_place.begin_nested(SnapshotKind::IncrementalTrainer);
        write_trainer_body(&mut in_place, &trainer);
        in_place.end_nested(child);
        in_place.u8(9);
        let in_place = in_place.finish(SnapshotKind::RealTimeDetector);
        assert_eq!(in_place, copying);

        // The nested block still round-trips through the validating reader.
        let mut r = SnapshotReader::open(&in_place, SnapshotKind::RealTimeDetector).unwrap();
        assert_eq!(r.u32().unwrap(), 7);
        let restored = trainer_from_bytes(r.nested().unwrap()).unwrap();
        assert_eq!(restored, trainer);
        assert_eq!(r.u8().unwrap(), 9);
        r.finish().unwrap();
    }

    /// Two levels of in-place nesting (the pipeline > detector > trainer
    /// shape) seal inner envelopes first and keep every checksum valid.
    #[test]
    fn doubly_nested_envelopes_seal_inside_out() {
        let trainer = small_trainer(40);

        let mut copying = SnapshotWriter::new();
        let mut inner = SnapshotWriter::new();
        inner.bool(true);
        inner.nested(&trainer_to_bytes(&trainer));
        copying.nested(&inner.finish(SnapshotKind::RealTimeDetector));
        let copying = copying.finish(SnapshotKind::SelfLearningPipeline);

        let mut w = SnapshotWriter::new();
        let detector = w.begin_nested(SnapshotKind::RealTimeDetector);
        w.bool(true);
        let inner = w.begin_nested(SnapshotKind::IncrementalTrainer);
        write_trainer_body(&mut w, &trainer);
        w.end_nested(inner);
        w.end_nested(detector);
        let bytes = w.finish(SnapshotKind::SelfLearningPipeline);
        assert_eq!(bytes, copying);

        let mut outer = SnapshotReader::open(&bytes, SnapshotKind::SelfLearningPipeline).unwrap();
        let detector_bytes = outer.nested().unwrap();
        outer.finish().unwrap();
        let mut mid = SnapshotReader::open(detector_bytes, SnapshotKind::RealTimeDetector).unwrap();
        assert!(mid.bool().unwrap());
        assert_eq!(trainer_from_bytes(mid.nested().unwrap()).unwrap(), trainer);
        mid.finish().unwrap();
    }

    /// Sealing out of order would checksum the outer child's placeholder
    /// header — the writer must refuse at write time, not hand corrupt
    /// bytes to the device.
    #[test]
    #[should_panic(expected = "innermost-first")]
    fn out_of_order_nested_closure_panics() {
        let mut w = SnapshotWriter::new();
        let outer = w.begin_nested(SnapshotKind::RealTimeDetector);
        let inner = w.begin_nested(SnapshotKind::IncrementalTrainer);
        w.end_nested(outer);
        w.end_nested(inner);
    }

    #[test]
    #[should_panic(expected = "must be closed")]
    fn unclosed_nested_envelope_panics_at_finish() {
        let mut w = SnapshotWriter::new();
        let _open = w.begin_nested(SnapshotKind::FlatForest);
        let _ = w.finish(SnapshotKind::RealTimeDetector);
    }

    #[test]
    fn truncated_snapshots_are_rejected_at_every_length() {
        let trainer = small_trainer(60);
        let bytes = trainer_to_bytes(&trainer);
        // A handful of prefixes across the whole envelope, including cuts
        // inside the header, the payload and the checksum.
        for cut in [0, 7, 12, 19, 27, bytes.len() / 2, bytes.len() - 1] {
            let err = trainer_from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    PersistError::Truncated { .. } | PersistError::ChecksumMismatch { .. }
                ),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn foreign_bytes_are_rejected_as_bad_magic() {
        let err = trainer_from_bytes(b"definitely not a snapshot, way too long").unwrap_err();
        assert!(matches!(err, PersistError::BadMagic { .. }), "{err}");
        assert!(SnapshotReader::peek_kind(b"nope").is_err());
    }

    #[test]
    fn future_format_versions_are_rejected() {
        let mut bytes = trainer_to_bytes(&small_trainer(40));
        // Bump the version field and re-sign the envelope, emulating a
        // snapshot from a future build whose checksum is itself valid.
        bytes[8..10].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        let body_end = bytes.len() - 8;
        let checksum = fnv1a(&bytes[..body_end]).to_le_bytes();
        bytes[body_end..].copy_from_slice(&checksum);
        let err = trainer_from_bytes(&bytes).unwrap_err();
        assert_eq!(
            err,
            PersistError::UnsupportedVersion {
                found: FORMAT_VERSION + 1
            }
        );
    }

    #[test]
    fn corrupt_length_fields_do_not_overflow() {
        // An all-ones payload-length field must yield the typed truncation
        // error, not an integer-overflow panic while building it.
        let mut bytes = trainer_to_bytes(&small_trainer(40));
        bytes[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = trainer_from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, PersistError::Truncated { .. }), "{err}");
    }

    #[test]
    fn bit_flips_are_caught_by_the_checksum() {
        let mut bytes = trainer_to_bytes(&small_trainer(40));
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let err = trainer_from_bytes(&bytes).unwrap_err();
        assert!(
            matches!(err, PersistError::ChecksumMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn cyclic_node_graphs_are_rejected() {
        // A validly-signed envelope whose single split node points at
        // itself: bounds-legal, but traversal would never terminate.
        let mut w = SnapshotWriter::new();
        w.usize(1); // num_features
        w.slice_u32(&[0]); // roots
        w.slice_u32(&[0]); // node 0 splits on feature 0
        w.slice_f64(&[0.5]);
        w.slice_u32(&[0]); // left child: itself
        w.slice_u32(&[0]); // right child: itself
        w.slice_f64(&[0.0]);
        let err = forest_from_bytes(&w.finish(SnapshotKind::FlatForest)).unwrap_err();
        assert!(matches!(err, PersistError::Corrupted { .. }), "{err}");
    }

    #[test]
    fn wrong_payload_kinds_are_rejected() {
        let (rows, labels) = rows_and_labels(30);
        let set = TrainingSet::from_rows(&rows, 2, &labels).unwrap();
        let bytes = training_set_to_bytes(&set);
        let err = trainer_from_bytes(&bytes).unwrap_err();
        assert_eq!(
            err,
            PersistError::WrongKind {
                expected: SnapshotKind::IncrementalTrainer,
                found: SnapshotKind::TrainingSet as u16,
            }
        );
        assert_eq!(
            SnapshotReader::peek_kind(&bytes).unwrap(),
            Some(SnapshotKind::TrainingSet)
        );
    }

    #[test]
    fn error_display_is_informative() {
        for (err, needle) in [
            (
                PersistError::Truncated {
                    needed: 28,
                    available: 3,
                },
                "truncated",
            ),
            (PersistError::BadMagic { found: [0; 8] }, "magic"),
            (PersistError::UnsupportedVersion { found: 9 }, "version 9"),
            (
                PersistError::ChecksumMismatch {
                    stored: 1,
                    computed: 2,
                },
                "checksum",
            ),
            (
                PersistError::Corrupted {
                    detail: "boom".into(),
                },
                "boom",
            ),
            (
                PersistError::WrongKind {
                    expected: SnapshotKind::FlatForest,
                    found: 3,
                },
                "kind",
            ),
        ] {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
