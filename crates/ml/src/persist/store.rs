//! Crash-proof A/B Flash store for base snapshots plus a delta journal.
//!
//! The delta-journal layer ([`crate::persist::journal`]) already survives a
//! torn *append*: a power loss mid-entry leaves a recognizable partial frame
//! that replay drops. What it cannot survive is a torn *compaction* — the
//! naive device rewrites its single base region in place, and a power loss
//! halfway through the rewrite destroys the only copy of the pool.
//!
//! [`FlashStore`] closes that hole with the classic dual-bank scheme:
//!
//! * Two **base slots** (A and B) alternate. A compaction writes the fresh
//!   base into the *inactive* slot while the active slot stays untouched,
//!   then commits by programming a slot header whose wrapping **sequence
//!   number** is one above the active slot's. The header is the last thing
//!   written — until it lands (magic, checksum and base fingerprint all
//!   valid), mount keeps selecting the old slot, so a crash at any byte of
//!   the rewrite can only lose the *new* base, never the old one.
//! * A **journal region** follows the slots. Entries bind to their base by
//!   fingerprint (the base's trailing FNV-1a checksum, see
//!   [`journal::base_fingerprint`]), so mount can always tell whether the
//!   journal belongs to the slot it selected: after a crash between the
//!   header commit and the journal erase, the stale entries point at the
//!   now-inactive slot and are discarded instead of mis-applied.
//!
//! Mount arbitration validates, per slot: header magic + header checksum,
//! base length against the slot capacity, the full envelope checksum of the
//! base bytes, and the header fingerprint against the base's actual trailing
//! checksum. Of the valid slots the one with the newer sequence (serial-number
//! arithmetic, so the order survives wraparound) wins; if the newer slot is
//! corrupt the store falls back to the older slot and the journal prefix
//! bound to it. If neither slot validates, mount returns the typed
//! [`PersistError::NoValidSlot`] — never a panic.
//!
//! The Flash itself is abstracted behind the byte-addressed [`Flash`] trait
//! so tests can swap the real device for [`FaultyFlash`], a test double that
//! injects power loss at any byte offset, torn multi-sector writes (sectors
//! programmed out of order) and bit flips. The crash-injection suite sweeps
//! a power-loss cut across every byte of a save/compact/append stream and
//! asserts the invariant: remount yields either the pre-operation or the
//! fully committed state, never a panic and never silent corruption.

use super::journal::{self, JournalEntry};
use super::{fnv1a, PersistError, ENVELOPE_LEN};

/// Magic opening a slot header: `SZRSLOT\0`.
pub const SLOT_MAGIC: [u8; 8] = *b"SZRSLOT\0";

/// Byte length of a slot header: magic (8) + sequence (8) + base length (8)
/// + base fingerprint (8) + FNV-1a checksum over the first 32 bytes (8).
///
/// `seizure-edge`'s memory model mirrors this constant in its dual-slot
/// Flash budget; `tests/edge_platform.rs` pins the two against each other.
pub const SLOT_HEADER_LEN: usize = 40;

/// Which of the two alternating base slots is meant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotId {
    /// First slot, at byte offset 0 of the Flash image.
    A,
    /// Second slot, directly after slot A.
    B,
}

impl SlotId {
    /// The other slot — compaction always writes there.
    pub fn other(self) -> SlotId {
        match self {
            SlotId::A => SlotId::B,
            SlotId::B => SlotId::A,
        }
    }
}

/// Byte layout of a [`FlashStore`] image: two equally sized base slots
/// followed by one journal region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashGeometry {
    /// Bytes reserved per base slot, *including* the [`SLOT_HEADER_LEN`]
    /// header.
    pub slot_bytes: usize,
    /// Bytes reserved for the journal region.
    pub journal_bytes: usize,
}

impl FlashGeometry {
    /// Geometry sized for base snapshots up to `base_capacity` bytes plus a
    /// journal region of `journal_bytes`.
    pub fn for_base(base_capacity: usize, journal_bytes: usize) -> FlashGeometry {
        FlashGeometry {
            slot_bytes: SLOT_HEADER_LEN + base_capacity,
            journal_bytes,
        }
    }

    /// Largest base snapshot a slot can hold.
    pub fn base_capacity(&self) -> usize {
        self.slot_bytes.saturating_sub(SLOT_HEADER_LEN)
    }

    /// Total bytes of Flash the layout occupies.
    pub fn total_bytes(&self) -> usize {
        2 * self.slot_bytes + self.journal_bytes
    }

    /// Byte offset of a slot's header.
    pub fn slot_offset(&self, slot: SlotId) -> usize {
        match slot {
            SlotId::A => 0,
            SlotId::B => self.slot_bytes,
        }
    }

    /// Byte offset of the journal region.
    pub fn journal_offset(&self) -> usize {
        2 * self.slot_bytes
    }

    fn validate(&self, flash_capacity: usize) -> Result<(), PersistError> {
        if self.base_capacity() < ENVELOPE_LEN {
            return Err(PersistError::Corrupted {
                detail: format!(
                    "slot of {} bytes cannot hold a header plus any envelope",
                    self.slot_bytes
                ),
            });
        }
        if self.total_bytes() > flash_capacity {
            return Err(PersistError::Truncated {
                needed: self.total_bytes(),
                available: flash_capacity,
            });
        }
        Ok(())
    }
}

/// Byte-addressed Flash device: the store reads anywhere and programs or
/// erases byte ranges. Real NOR parts program in pages and erase in blocks;
/// the trait keeps byte granularity so the fault injector can cut a write at
/// *any* byte, which is strictly harsher than page granularity.
pub trait Flash {
    /// Total device capacity in bytes.
    fn capacity(&self) -> usize;

    /// Reads `len` bytes starting at `offset`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] when the range leaves the device, or the
    /// implementation's failure mode (a dead [`FaultyFlash`] refuses reads).
    fn read(&self, offset: usize, len: usize) -> Result<Vec<u8>, PersistError>;

    /// Programs `data` at `offset`, overwriting what is there.
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] out of range, or an injected fault.
    fn program(&mut self, offset: usize, data: &[u8]) -> Result<(), PersistError>;

    /// Erases `len` bytes at `offset` back to `0xFF`.
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] out of range, or an injected fault.
    fn erase(&mut self, offset: usize, len: usize) -> Result<(), PersistError>;
}

/// In-memory [`Flash`] with no failure modes — the baseline backing store
/// for hosts, benches and happy-path tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemFlash {
    image: Vec<u8>,
}

impl MemFlash {
    /// A device of `capacity` bytes, fully erased.
    pub fn new(capacity: usize) -> MemFlash {
        MemFlash {
            image: vec![0xFF; capacity],
        }
    }

    /// Wraps an existing image (for example bytes read back from a file).
    pub fn from_image(image: Vec<u8>) -> MemFlash {
        MemFlash { image }
    }

    /// The raw device contents.
    pub fn image(&self) -> &[u8] {
        &self.image
    }

    /// Consumes the device and returns the raw contents.
    pub fn into_image(self) -> Vec<u8> {
        self.image
    }
}

fn check_range(capacity: usize, offset: usize, len: usize) -> Result<(), PersistError> {
    let end = offset.saturating_add(len);
    if end > capacity {
        return Err(PersistError::Truncated {
            needed: end,
            available: capacity,
        });
    }
    Ok(())
}

impl Flash for MemFlash {
    fn capacity(&self) -> usize {
        self.image.len()
    }

    fn read(&self, offset: usize, len: usize) -> Result<Vec<u8>, PersistError> {
        check_range(self.image.len(), offset, len)?;
        Ok(self.image[offset..offset + len].to_vec())
    }

    fn program(&mut self, offset: usize, data: &[u8]) -> Result<(), PersistError> {
        check_range(self.image.len(), offset, data.len())?;
        self.image[offset..offset + data.len()].copy_from_slice(data);
        Ok(())
    }

    fn erase(&mut self, offset: usize, len: usize) -> Result<(), PersistError> {
        check_range(self.image.len(), offset, len)?;
        self.image[offset..offset + len].fill(0xFF);
        Ok(())
    }
}

/// Fault-injecting [`Flash`] test double.
///
/// Three fault families, all deterministic:
///
/// * **Power loss at any byte offset** — [`FaultyFlash::power_loss_after`]
///   arms a budget of bytes that may still be programmed or erased; the
///   write that exhausts it lands only partially and every later operation
///   (including reads) fails, modelling a dead device. Sweep the budget
///   across `0..=bytes_written` of a fault-free run to hit every possible
///   tear point.
/// * **Torn multi-sector writes** — [`FaultyFlash::scrambled`] programs the
///   sectors of each multi-sector write in a seed-dependent order, so a
///   power loss can leave *later* sectors written while *earlier* ones are
///   not, as real controllers with write reordering do.
/// * **Bit flips** — [`FaultyFlash::flip_bit`] corrupts retention directly.
///
/// After a simulated crash, [`FaultyFlash::reboot`] keeps the (possibly
/// torn) image but clears the fault plan, modelling the next power cycle.
#[derive(Debug, Clone)]
pub struct FaultyFlash {
    image: Vec<u8>,
    sector_bytes: usize,
    budget: Option<usize>,
    scramble_seed: Option<u64>,
    dead: bool,
    bytes_written: usize,
    write_ops: u64,
}

impl FaultyFlash {
    /// Default sector size for torn-write splitting.
    pub const DEFAULT_SECTOR_BYTES: usize = 64;

    /// A fault-free device of `capacity` erased bytes.
    pub fn new(capacity: usize) -> FaultyFlash {
        FaultyFlash::from_image(vec![0xFF; capacity])
    }

    /// Wraps an existing image with no faults armed.
    pub fn from_image(image: Vec<u8>) -> FaultyFlash {
        FaultyFlash {
            image,
            sector_bytes: FaultyFlash::DEFAULT_SECTOR_BYTES,
            budget: None,
            scramble_seed: None,
            dead: false,
            bytes_written: 0,
            write_ops: 0,
        }
    }

    /// Overrides the sector size used to split multi-sector writes.
    pub fn with_sector_bytes(mut self, sector_bytes: usize) -> FaultyFlash {
        assert!(sector_bytes > 0, "sector size must be positive");
        self.sector_bytes = sector_bytes;
        self
    }

    /// Arms a power loss: after `bytes` more programmed or erased bytes the
    /// device dies mid-write.
    pub fn power_loss_after(mut self, bytes: usize) -> FaultyFlash {
        self.budget = Some(bytes);
        self
    }

    /// Arms torn multi-sector writes: sectors of each write are programmed
    /// in a `seed`-dependent order.
    pub fn scrambled(mut self, seed: u64) -> FaultyFlash {
        self.scramble_seed = Some(seed);
        self
    }

    /// Flips one bit of the image in place (retention corruption).
    pub fn flip_bit(&mut self, offset: usize, bit: u32) {
        self.image[offset] ^= 1u8 << (bit % 8);
    }

    /// Total bytes programmed or erased so far (partial writes count the
    /// bytes that actually landed). Run an operation stream fault-free and
    /// use this to size a power-loss sweep.
    pub fn bytes_written(&self) -> usize {
        self.bytes_written
    }

    /// `true` once an armed power loss has fired.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// The raw device contents, torn writes and all.
    pub fn image(&self) -> &[u8] {
        &self.image
    }

    /// Power-cycles the device: the image (including any torn write) is
    /// kept, the fault plan and death flag are cleared.
    pub fn reboot(self) -> FaultyFlash {
        FaultyFlash {
            sector_bytes: self.sector_bytes,
            ..FaultyFlash::from_image(self.image)
        }
    }

    fn power_loss_error(offset: usize) -> PersistError {
        PersistError::Corrupted {
            detail: format!("injected power loss during Flash write at offset {offset}"),
        }
    }

    /// Splits `[offset, offset + len)` at sector boundaries and returns the
    /// chunks in program order (scrambled when armed).
    fn chunks(&mut self, offset: usize, len: usize) -> Vec<(usize, usize)> {
        let mut chunks = Vec::new();
        let mut at = offset;
        while at < offset + len {
            let sector_end = (at / self.sector_bytes + 1) * self.sector_bytes;
            let end = sector_end.min(offset + len);
            chunks.push((at, end - at));
            at = end;
        }
        if let Some(seed) = self.scramble_seed {
            // Deterministic Fisher–Yates driven by SplitMix64 over the seed
            // and a per-write counter, so each write gets its own order.
            self.write_ops += 1;
            let mut state = seed ^ self.write_ops.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut next = move || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            for i in (1..chunks.len()).rev() {
                let j = (next() % (i as u64 + 1)) as usize;
                chunks.swap(i, j);
            }
        }
        chunks
    }

    /// Applies one write-like operation (`value = None` programs `data`,
    /// `Some(0xFF)` erases) under the fault plan.
    fn write_bytes(
        &mut self,
        offset: usize,
        data: Option<&[u8]>,
        len: usize,
    ) -> Result<(), PersistError> {
        if self.dead {
            return Err(FaultyFlash::power_loss_error(offset));
        }
        check_range(self.image.len(), offset, len)?;
        for (at, chunk_len) in self.chunks(offset, len) {
            let writable = match self.budget {
                Some(budget) => budget.min(chunk_len),
                None => chunk_len,
            };
            for i in 0..writable {
                self.image[at + i] = match data {
                    Some(bytes) => bytes[at - offset + i],
                    None => 0xFF,
                };
            }
            self.bytes_written += writable;
            if let Some(budget) = self.budget.as_mut() {
                *budget -= writable;
                if writable < chunk_len {
                    self.dead = true;
                    return Err(FaultyFlash::power_loss_error(at + writable));
                }
            }
        }
        Ok(())
    }
}

impl Flash for FaultyFlash {
    fn capacity(&self) -> usize {
        self.image.len()
    }

    fn read(&self, offset: usize, len: usize) -> Result<Vec<u8>, PersistError> {
        if self.dead {
            return Err(FaultyFlash::power_loss_error(offset));
        }
        check_range(self.image.len(), offset, len)?;
        Ok(self.image[offset..offset + len].to_vec())
    }

    fn program(&mut self, offset: usize, data: &[u8]) -> Result<(), PersistError> {
        self.write_bytes(offset, Some(data), data.len())
    }

    fn erase(&mut self, offset: usize, len: usize) -> Result<(), PersistError> {
        self.write_bytes(offset, None, len)
    }
}

/// What a store-routed delta save actually wrote — returned by
/// `seizure-core`'s `save_to_store` entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreSave {
    /// Nothing changed since the last save; nothing was written.
    Clean,
    /// One O(batch) append landed in the journal region.
    Appended,
    /// The state was compacted into the inactive base slot (A/B commit).
    Rebased,
}

/// Decoded slot header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SlotHeader {
    sequence: u64,
    base_len: u64,
    base_fingerprint: u64,
}

impl SlotHeader {
    fn encode(&self) -> [u8; SLOT_HEADER_LEN] {
        let mut bytes = [0u8; SLOT_HEADER_LEN];
        // lint: allow(panic-free-decode) — encode fills a fixed SLOT_HEADER_LEN array
        bytes[..8].copy_from_slice(&SLOT_MAGIC);
        // lint: allow(panic-free-decode) — encode fills a fixed SLOT_HEADER_LEN array
        bytes[8..16].copy_from_slice(&self.sequence.to_le_bytes());
        // lint: allow(panic-free-decode) — encode fills a fixed SLOT_HEADER_LEN array
        bytes[16..24].copy_from_slice(&self.base_len.to_le_bytes());
        // lint: allow(panic-free-decode) — encode fills a fixed SLOT_HEADER_LEN array
        bytes[24..32].copy_from_slice(&self.base_fingerprint.to_le_bytes());
        // lint: allow(panic-free-decode) — encode fills a fixed SLOT_HEADER_LEN array
        let checksum = fnv1a(&bytes[..32]);
        // lint: allow(panic-free-decode) — encode fills a fixed SLOT_HEADER_LEN array
        bytes[32..].copy_from_slice(&checksum.to_le_bytes());
        bytes
    }

    fn decode(bytes: &[u8]) -> Result<SlotHeader, PersistError> {
        if bytes.len() < SLOT_HEADER_LEN {
            return Err(PersistError::Truncated {
                needed: SLOT_HEADER_LEN,
                available: bytes.len(),
            });
        }
        // lint: allow(panic-free-decode) — len >= SLOT_HEADER_LEN checked on entry
        if bytes[..8] != SLOT_MAGIC {
            let mut found = [0u8; 8];
            // lint: allow(panic-free-decode) — len >= SLOT_HEADER_LEN checked on entry
            found.copy_from_slice(&bytes[..8]);
            return Err(PersistError::BadMagic { found });
        }
        // lint: allow(panic-free-decode) — fixed 8-byte read, len >= SLOT_HEADER_LEN
        let stored = u64::from_le_bytes(bytes[32..40].try_into().expect("8 bytes"));
        // lint: allow(panic-free-decode) — len >= SLOT_HEADER_LEN checked on entry
        let computed = fnv1a(&bytes[..32]);
        if stored != computed {
            return Err(PersistError::ChecksumMismatch { stored, computed });
        }
        Ok(SlotHeader {
            // lint: allow(panic-free-decode) — fixed 8-byte read, len >= SLOT_HEADER_LEN
            sequence: u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")),
            // lint: allow(panic-free-decode) — fixed 8-byte read, len >= SLOT_HEADER_LEN
            base_len: u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes")),
            // lint: allow(panic-free-decode) — fixed 8-byte read, len >= SLOT_HEADER_LEN
            base_fingerprint: u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes")),
        })
    }
}

/// `true` when sequence `a` is newer than `b` under serial-number
/// arithmetic, so the A/B ordering survives `u64` wraparound (a slot at
/// `u64::MAX` loses to a slot at `0`).
fn sequence_newer(a: u64, b: u64) -> bool {
    a != b && a.wrapping_sub(b) < u64::MAX / 2
}

/// What [`FlashStore::mount`] found and decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MountReport {
    /// The slot selected as the live base.
    pub active_slot: SlotId,
    /// Sequence number of the selected slot.
    pub sequence: u64,
    /// `true` when a slot that *looked* committed (its header magic was
    /// present) failed validation and the store recovered on the other
    /// slot — a torn compaction or retention corruption was survived.
    pub fell_back: bool,
    /// Journal entries bound to the selected base.
    pub journal_entries: usize,
    /// Bytes of those entries (the valid journal prefix).
    pub journal_len: usize,
    /// Journal bytes discarded: torn tails, entries bound to another base
    /// (a stale epoch), or frames breaking the pool chain.
    pub journal_discarded: usize,
}

/// Crash-proof dual-slot store over a [`Flash`] device.
///
/// The store always holds exactly one committed base (invariant established
/// by [`FlashStore::format`]) plus the journal entries appended since.
/// [`FlashStore::commit_base`] performs the A/B compaction,
/// [`FlashStore::append_journal`] the O(batch) delta append, and
/// [`FlashStore::mount`] re-arbitrates after a power cycle.
#[derive(Debug, Clone)]
pub struct FlashStore<F: Flash> {
    flash: F,
    geometry: FlashGeometry,
    active: SlotId,
    sequence: u64,
    base_len: usize,
    base_fingerprint: u64,
    journal_len: usize,
    journal_entries: usize,
    /// Journal bytes past `journal_len` may hold stale frames (after a
    /// mount that discarded entries); the next append erases them first so
    /// an old frame can never be parsed as the continuation of a new one.
    tail_dirty: bool,
}

impl<F: Flash> FlashStore<F> {
    /// Formats the device (erases the whole image) and commits `base` into
    /// slot A with sequence 1.
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] when the geometry does not fit the
    /// device, [`PersistError::Corrupted`] when `base` does not fit a slot
    /// or is not an envelope, or any Flash failure.
    pub fn format(
        mut flash: F,
        geometry: FlashGeometry,
        base: &[u8],
    ) -> Result<Self, PersistError> {
        geometry.validate(flash.capacity())?;
        flash.erase(0, geometry.total_bytes())?;
        let mut store = FlashStore {
            flash,
            geometry,
            // Pseudo-state: the first commit targets `active.other()` = A
            // with sequence `0 + 1`.
            active: SlotId::B,
            sequence: 0,
            base_len: 0,
            base_fingerprint: 0,
            journal_len: 0,
            journal_entries: 0,
            tail_dirty: false,
        };
        store.commit_base(base)?;
        Ok(store)
    }

    /// Mounts an existing image, arbitrating slots and journal as described
    /// in the module docs.
    ///
    /// # Errors
    ///
    /// [`PersistError::NoValidSlot`] when neither slot holds a committed
    /// base; otherwise only Flash read failures. Corruption anywhere short
    /// of that is *recovered from*, not reported as an error.
    pub fn mount(flash: F, geometry: FlashGeometry) -> Result<(Self, MountReport), PersistError> {
        geometry.validate(flash.capacity())?;
        let slot_a = Self::read_slot(&flash, &geometry, SlotId::A);
        let slot_b = Self::read_slot(&flash, &geometry, SlotId::B);
        let (active, header, fell_back) = match (slot_a, slot_b) {
            (Ok(a), Ok(b)) => {
                if sequence_newer(b.sequence, a.sequence) {
                    (SlotId::B, b, false)
                } else {
                    (SlotId::A, a, false)
                }
            }
            (Ok(a), Err(_)) => {
                let looked_committed = Self::header_magic_present(&flash, &geometry, SlotId::B);
                (SlotId::A, a, looked_committed)
            }
            (Err(_), Ok(b)) => {
                let looked_committed = Self::header_magic_present(&flash, &geometry, SlotId::A);
                (SlotId::B, b, looked_committed)
            }
            (Err(ea), Err(eb)) => {
                return Err(PersistError::NoValidSlot {
                    slot_a: ea.to_string(),
                    slot_b: eb.to_string(),
                })
            }
        };

        // Journal: keep the longest prefix of checksum-valid frames whose
        // entries bind to the selected base and chain their pool positions.
        let raw = flash.read(geometry.journal_offset(), geometry.journal_bytes)?;
        let mut journal_len = 0usize;
        let mut journal_entries = 0usize;
        let mut expected_pool: Option<usize> = None;
        let mut frame_extent = 0usize;
        while let Some((entry, frame_len)) = Self::next_frame(&raw[frame_extent..]) {
            frame_extent += frame_len;
            if entry.base_fingerprint != header.base_fingerprint {
                break;
            }
            if expected_pool.is_some_and(|pool| entry.pool_len_before != pool) {
                break;
            }
            expected_pool = Some(entry.pool_len_before + entry.labels.len());
            journal_entries += 1;
            journal_len = frame_extent;
        }
        let tail_dirty = raw[journal_len..].iter().any(|&b| b != 0xFF);
        let discarded = raw[journal_len..]
            .iter()
            .rev()
            .skip_while(|&&b| b == 0xFF)
            .count();

        let report = MountReport {
            active_slot: active,
            sequence: header.sequence,
            fell_back,
            journal_entries,
            journal_len,
            journal_discarded: discarded,
        };
        Ok((
            FlashStore {
                flash,
                geometry,
                active,
                sequence: header.sequence,
                base_len: header.base_len as usize,
                base_fingerprint: header.base_fingerprint,
                journal_len,
                journal_entries,
                tail_dirty,
            },
            report,
        ))
    }

    /// Validates one slot end to end and returns its header.
    fn read_slot(
        flash: &F,
        geometry: &FlashGeometry,
        slot: SlotId,
    ) -> Result<SlotHeader, PersistError> {
        let offset = geometry.slot_offset(slot);
        let header = SlotHeader::decode(&flash.read(offset, SLOT_HEADER_LEN)?)?;
        let base_len = header.base_len as usize;
        if base_len < ENVELOPE_LEN || base_len > geometry.base_capacity() {
            return Err(PersistError::Corrupted {
                detail: format!(
                    "slot header declares a {}-byte base outside [{}, {}]",
                    base_len,
                    ENVELOPE_LEN,
                    geometry.base_capacity()
                ),
            });
        }
        let base = flash.read(offset + SLOT_HEADER_LEN, base_len)?;
        // Checks length and magic, returns the trailing checksum.
        let fingerprint = journal::base_fingerprint(&base)?;
        if fingerprint != header.base_fingerprint {
            return Err(PersistError::Corrupted {
                detail: format!(
                    "slot header fingerprint {:#018x} does not match the base's {fingerprint:#018x}",
                    header.base_fingerprint
                ),
            });
        }
        let computed = fnv1a(&base[..base_len - 8]);
        if computed != fingerprint {
            return Err(PersistError::ChecksumMismatch {
                stored: fingerprint,
                computed,
            });
        }
        Ok(header)
    }

    fn header_magic_present(flash: &F, geometry: &FlashGeometry, slot: SlotId) -> bool {
        flash
            .read(geometry.slot_offset(slot), SLOT_MAGIC.len())
            .is_ok_and(|bytes| bytes == SLOT_MAGIC)
    }

    /// Parses one journal frame from the front of `bytes`: checksum-valid
    /// envelope holding a decodable journal entry. `None` on anything else
    /// (erased space, torn tail, corruption) — the caller stops there.
    fn next_frame(bytes: &[u8]) -> Option<(JournalEntry, usize)> {
        // lint: allow(panic-free-decode) — len >= ENVELOPE_LEN checked in the same condition
        if bytes.len() < ENVELOPE_LEN || bytes[..8] != super::MAGIC {
            return None;
        }
        // lint: allow(panic-free-decode) — fixed 8-byte read, len >= ENVELOPE_LEN
        let declared = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
        let frame_len = declared.checked_add(ENVELOPE_LEN)?;
        if bytes.len() < frame_len {
            return None;
        }
        let frame = &bytes[..frame_len];
        // lint: allow(panic-free-decode) — frame_len >= ENVELOPE_LEN > 8 by construction
        let stored = u64::from_le_bytes(frame[frame_len - 8..].try_into().expect("8 bytes"));
        if fnv1a(&frame[..frame_len - 8]) != stored {
            return None;
        }
        let scan = journal::scan_journal(frame).ok()?;
        let entry = scan.entries.into_iter().next()?;
        Some((entry, frame_len))
    }

    /// Compacts: writes `base` into the inactive slot and commits it by
    /// programming the slot header with the next sequence number, then
    /// erases the journal region. The active base stays untouched until the
    /// header lands, so a crash at any byte leaves the previous state
    /// recoverable.
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupted`] when `base` is not an envelope or
    /// exceeds the slot capacity, or any Flash failure.
    pub fn commit_base(&mut self, base: &[u8]) -> Result<(), PersistError> {
        let fingerprint = journal::base_fingerprint(base)?;
        if base.len() > self.geometry.base_capacity() {
            return Err(PersistError::Corrupted {
                detail: format!(
                    "base snapshot of {} bytes exceeds the {}-byte slot capacity",
                    base.len(),
                    self.geometry.base_capacity()
                ),
            });
        }
        let target = self.active.other();
        let offset = self.geometry.slot_offset(target);
        // 1. Invalidate the target header so a torn base write can never
        //    masquerade as committed under the stale header.
        self.flash.erase(offset, SLOT_HEADER_LEN)?;
        // 2. The base payload.
        self.flash.program(offset + SLOT_HEADER_LEN, base)?;
        // 3. Commit point: the header with the next sequence number.
        let header = SlotHeader {
            sequence: self.sequence.wrapping_add(1),
            base_len: base.len() as u64,
            base_fingerprint: fingerprint,
        };
        self.flash.program(offset, &header.encode())?;
        // The commit is durable from here on; reflect it in RAM before the
        // journal erase so an erase failure cannot desynchronize us.
        self.active = target;
        self.sequence = header.sequence;
        self.base_len = base.len();
        self.base_fingerprint = fingerprint;
        self.journal_len = 0;
        self.journal_entries = 0;
        self.tail_dirty = true;
        // 4. Drop the stale journal (its entries bind to the old base; a
        //    crash before this completes only leaves entries mount will
        //    discard by fingerprint).
        self.flash
            .erase(self.geometry.journal_offset(), self.geometry.journal_bytes)?;
        self.tail_dirty = false;
        Ok(())
    }

    /// Appends journal bytes (one or more frames from a
    /// [`journal::DeltaSave::Append`]) after the current journal prefix.
    ///
    /// # Errors
    ///
    /// [`PersistError::Corrupted`] when the bytes do not fit the journal
    /// region (compact instead), or any Flash failure.
    pub fn append_journal(&mut self, entry: &[u8]) -> Result<(), PersistError> {
        if entry.is_empty() {
            return Ok(());
        }
        if entry.len() > self.journal_remaining() {
            return Err(PersistError::Corrupted {
                detail: format!(
                    "journal append of {} bytes exceeds the {} bytes left in the region",
                    entry.len(),
                    self.journal_remaining()
                ),
            });
        }
        let offset = self.geometry.journal_offset() + self.journal_len;
        if self.tail_dirty {
            // Stale frames beyond the valid prefix (discarded at mount)
            // must go before new ones land, or an old same-sized frame
            // could be parsed as the continuation of the new journal.
            self.flash
                .erase(offset, self.geometry.journal_bytes - self.journal_len)?;
            self.tail_dirty = false;
        }
        self.flash.program(offset, entry)?;
        self.journal_len += entry.len();
        self.journal_entries += 1;
        Ok(())
    }

    /// The committed base snapshot.
    ///
    /// # Errors
    ///
    /// Flash read failures only — validation happened at mount/commit.
    pub fn base(&self) -> Result<Vec<u8>, PersistError> {
        self.flash.read(
            self.geometry.slot_offset(self.active) + SLOT_HEADER_LEN,
            self.base_len,
        )
    }

    /// The valid journal prefix bound to the committed base.
    ///
    /// # Errors
    ///
    /// Flash read failures only.
    pub fn journal(&self) -> Result<Vec<u8>, PersistError> {
        self.flash
            .read(self.geometry.journal_offset(), self.journal_len)
    }

    /// A [`journal::CompactionPolicy`] matched to this store's geometry:
    /// compact once the journal prefix passes three quarters of the region,
    /// regardless of the base size (the region is the binding constraint
    /// on-device).
    pub fn compaction_policy(&self) -> journal::CompactionPolicy {
        journal::CompactionPolicy {
            max_journal_fraction: 0.0,
            min_journal_bytes: (self.geometry.journal_bytes * 3 / 4).max(1),
        }
    }

    /// Bytes still free in the journal region.
    pub fn journal_remaining(&self) -> usize {
        self.geometry.journal_bytes - self.journal_len
    }

    /// The slot holding the committed base.
    pub fn active_slot(&self) -> SlotId {
        self.active
    }

    /// Sequence number of the committed base.
    pub fn sequence(&self) -> u64 {
        self.sequence
    }

    /// Byte length of the committed base.
    pub fn base_len(&self) -> usize {
        self.base_len
    }

    /// Fingerprint (trailing checksum) of the committed base.
    pub fn base_fingerprint(&self) -> u64 {
        self.base_fingerprint
    }

    /// Bytes of journal entries bound to the committed base.
    pub fn journal_len(&self) -> usize {
        self.journal_len
    }

    /// Number of journal entries bound to the committed base.
    pub fn journal_entries(&self) -> usize {
        self.journal_entries
    }

    /// The store's layout.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geometry
    }

    /// Borrows the underlying device.
    pub fn flash(&self) -> &F {
        &self.flash
    }

    /// Consumes the store and returns the device (for crash tests: retrieve
    /// the torn image after a simulated power loss).
    pub fn into_flash(self) -> F {
        self.flash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::RandomForestConfig;
    use crate::incremental::{IncrementalTrainer, IncrementalTrainerConfig};
    use crate::persist::journal::JournalWriter;
    use crate::persist::trainer_to_bytes;

    fn rows_and_labels(n: usize) -> (Vec<f64>, Vec<bool>) {
        let mut rows = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let noise = ((i * 37 + 11) % 23) as f64 / 23.0;
            let positive = i % 2 == 0;
            rows.push(if positive { 2.0 + noise } else { -1.0 - noise });
            rows.push(noise);
            labels.push(positive);
        }
        (rows, labels)
    }

    fn trainer_config() -> IncrementalTrainerConfig {
        IncrementalTrainerConfig {
            forest: RandomForestConfig {
                n_trees: 3,
                max_depth: 3,
                ..RandomForestConfig::default()
            },
            block_size: 8,
        }
    }

    /// A base snapshot over `n` pool samples plus a writer armed on it.
    fn base_and_writer(n: usize) -> (Vec<u8>, JournalWriter, IncrementalTrainer) {
        let (rows, labels) = rows_and_labels(n);
        let mut trainer = IncrementalTrainer::new(trainer_config(), 11);
        trainer.retrain(&rows, 2, &labels).unwrap();
        let base = trainer_to_bytes(&trainer);
        let writer = JournalWriter::new(&base, trainer.num_samples()).unwrap();
        (base, writer, trainer)
    }

    /// One journal frame extending `writer`/`trainer` by `extra` samples.
    fn entry_frame(
        writer: &mut JournalWriter,
        trainer: &mut IncrementalTrainer,
        extra: usize,
        salt: usize,
    ) -> Vec<u8> {
        let (rows, labels) = rows_and_labels(extra + salt);
        let (rows, labels) = (&rows[salt * 2..], &labels[salt..]);
        trainer.retrain(rows, 2, labels).unwrap();
        writer.append_retrain(rows, 2, labels).unwrap();
        writer.take_unflushed()
    }

    fn small_geometry(base: &[u8]) -> FlashGeometry {
        FlashGeometry::for_base(base.len() + 256, 1024)
    }

    fn formatted(base: &[u8]) -> FlashStore<FaultyFlash> {
        let geometry = small_geometry(base);
        let flash = FaultyFlash::new(geometry.total_bytes());
        FlashStore::format(flash, geometry, base).unwrap()
    }

    fn remount(store: FlashStore<FaultyFlash>) -> (FlashStore<FaultyFlash>, MountReport) {
        let geometry = *store.geometry();
        FlashStore::mount(store.into_flash().reboot(), geometry).unwrap()
    }

    #[test]
    fn format_commits_into_slot_a_with_sequence_one() {
        let (base, _, _) = base_and_writer(8);
        let store = formatted(&base);
        assert_eq!(store.active_slot(), SlotId::A);
        assert_eq!(store.sequence(), 1);
        assert_eq!(store.base().unwrap(), base);
        assert_eq!(store.journal().unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn mount_round_trips_base_and_journal() {
        let (base, mut writer, mut trainer) = base_and_writer(8);
        let mut store = formatted(&base);
        let frame = entry_frame(&mut writer, &mut trainer, 4, 0);
        store.append_journal(&frame).unwrap();
        let (store, report) = remount(store);
        assert_eq!(report.active_slot, SlotId::A);
        assert_eq!(report.journal_entries, 1);
        assert_eq!(report.journal_discarded, 0);
        assert!(!report.fell_back);
        assert_eq!(store.base().unwrap(), base);
        assert_eq!(store.journal().unwrap(), frame);
        // The journal replays against the base it binds to.
        let replayed = journal::replay(&base, &frame).unwrap();
        assert_eq!(replayed.report.entries_applied, 1);
    }

    #[test]
    fn commit_alternates_slots_and_bumps_sequence() {
        let (base, mut writer, mut trainer) = base_and_writer(8);
        let mut store = formatted(&base);
        store
            .append_journal(&entry_frame(&mut writer, &mut trainer, 4, 0))
            .unwrap();
        let base2 = trainer_to_bytes(&trainer);
        store.commit_base(&base2).unwrap();
        assert_eq!(store.active_slot(), SlotId::B);
        assert_eq!(store.sequence(), 2);
        assert_eq!(store.base().unwrap(), base2);
        assert_eq!(store.journal_len(), 0);
        let (store, report) = remount(store);
        assert_eq!(report.active_slot, SlotId::B);
        assert_eq!(report.sequence, 2);
        assert_eq!(report.journal_entries, 0);
        assert_eq!(store.base().unwrap(), base2);
    }

    #[test]
    fn oversized_base_and_overfull_journal_are_rejected() {
        let (base, _, _) = base_and_writer(8);
        let mut store = formatted(&base);
        let oversized = vec![0u8; store.geometry().base_capacity() + 1];
        assert!(matches!(
            store.commit_base(&oversized),
            Err(PersistError::BadMagic { .. }) | Err(PersistError::Corrupted { .. })
        ));
        let too_big = vec![0u8; store.journal_remaining() + 1];
        assert!(matches!(
            store.append_journal(&too_big),
            Err(PersistError::Corrupted { .. })
        ));
        // The store is still intact.
        assert_eq!(store.base().unwrap(), base);
    }

    #[test]
    fn both_slots_corrupt_is_a_typed_error_not_a_panic() {
        let (base, _, _) = base_and_writer(8);
        let store = formatted(&base);
        let geometry = *store.geometry();
        let mut flash = store.into_flash();
        // Flip one bit in slot A's base payload; slot B never committed.
        flash.flip_bit(SLOT_HEADER_LEN + 5, 0);
        let err = FlashStore::mount(flash, geometry).unwrap_err();
        assert!(matches!(err, PersistError::NoValidSlot { .. }));
        let message = err.to_string();
        assert!(message.contains("slot A"), "unhelpful error: {message}");
        assert!(message.contains("slot B"), "unhelpful error: {message}");
    }

    #[test]
    fn journal_pointing_at_the_inactive_slot_is_discarded() {
        let (base, mut writer, mut trainer) = base_and_writer(8);
        let mut store = formatted(&base);
        store
            .append_journal(&entry_frame(&mut writer, &mut trainer, 4, 0))
            .unwrap();
        let journal_before = store.journal_len();
        // Commit the compacted base but crash before the journal erase:
        // allow exactly the header erase + base program + header program.
        let base2 = trainer_to_bytes(&trainer);
        let geometry = *store.geometry();
        let budget = SLOT_HEADER_LEN + base2.len() + SLOT_HEADER_LEN;
        let flash = store.into_flash().reboot().power_loss_after(budget);
        let (mut store, _) = FlashStore::mount(flash, geometry).unwrap();
        let err = store.commit_base(&base2).unwrap_err();
        assert!(matches!(err, PersistError::Corrupted { .. }));
        // Reboot: the commit landed (header programmed), the stale journal
        // still physically present — and bound to the inactive slot A.
        let (store, report) = remount(store);
        assert_eq!(report.active_slot, SlotId::B);
        assert_eq!(report.sequence, 2);
        assert_eq!(report.journal_entries, 0, "stale entries must not replay");
        assert_eq!(report.journal_discarded, journal_before);
        assert_eq!(store.base().unwrap(), base2);
    }

    #[test]
    fn stale_slot_with_newer_journal_fingerprint_recovers_old_state() {
        // Same torn-compaction image as above, but the *new* slot then rots:
        // mount must fall back to the old slot and replay the journal that
        // binds to it.
        let (base, mut writer, mut trainer) = base_and_writer(8);
        let mut store = formatted(&base);
        let frame = entry_frame(&mut writer, &mut trainer, 4, 0);
        store.append_journal(&frame).unwrap();
        let base2 = trainer_to_bytes(&trainer);
        let geometry = *store.geometry();
        let budget = SLOT_HEADER_LEN + base2.len() + SLOT_HEADER_LEN;
        let flash = store.into_flash().reboot().power_loss_after(budget);
        let (mut store, _) = FlashStore::mount(flash, geometry).unwrap();
        store.commit_base(&base2).unwrap_err();
        let mut flash = store.into_flash().reboot();
        // Retention corruption in the freshly committed slot B base.
        flash.flip_bit(geometry.slot_offset(SlotId::B) + SLOT_HEADER_LEN + 3, 2);
        let (store, report) = FlashStore::mount(flash, geometry).unwrap();
        assert_eq!(report.active_slot, SlotId::A);
        assert_eq!(report.sequence, 1);
        assert!(report.fell_back);
        assert_eq!(report.journal_entries, 1);
        assert_eq!(store.base().unwrap(), base);
        assert_eq!(store.journal().unwrap(), frame);
        let replayed = journal::replay(&base, &frame).unwrap();
        // The fallback state is the pre-compaction state, node-identically.
        assert_eq!(trainer_to_bytes(&replayed.trainer), base2);
    }

    #[test]
    fn sequence_wraparound_prefers_the_wrapped_slot() {
        assert!(sequence_newer(0, u64::MAX));
        assert!(!sequence_newer(u64::MAX, 0));
        assert!(sequence_newer(5, 4));
        assert!(!sequence_newer(4, 5));
        assert!(!sequence_newer(7, 7));

        // Build an image by hand: slot A at u64::MAX, slot B wrapped to 0.
        let (base_a, _, mut trainer) = base_and_writer(8);
        let (rows, labels) = rows_and_labels(4);
        trainer.retrain(&rows, 2, &labels).unwrap();
        let base_b = trainer_to_bytes(&trainer);
        let geometry = FlashGeometry::for_base(base_a.len().max(base_b.len()) + 64, 256);
        let mut flash = MemFlash::new(geometry.total_bytes());
        for (slot, sequence, base) in [(SlotId::A, u64::MAX, &base_a), (SlotId::B, 0u64, &base_b)] {
            let offset = geometry.slot_offset(slot);
            flash.program(offset + SLOT_HEADER_LEN, base).unwrap();
            let header = SlotHeader {
                sequence,
                base_len: base.len() as u64,
                base_fingerprint: journal::base_fingerprint(base).unwrap(),
            };
            flash.program(offset, &header.encode()).unwrap();
        }
        let (store, report) = FlashStore::mount(flash, geometry).unwrap();
        assert_eq!(report.active_slot, SlotId::B, "0 is newer than u64::MAX");
        assert_eq!(store.base().unwrap(), base_b);
        // And the next commit continues the wrapped numbering.
        let mut store = store;
        store.commit_base(&base_a).unwrap();
        assert_eq!(store.sequence(), 1);
        assert_eq!(store.active_slot(), SlotId::A);
    }

    #[test]
    fn dirty_tail_is_erased_before_the_next_append() {
        // A mid-journal corruption leaves later frames physically intact; a
        // same-sized replacement append must not let the old successor frame
        // be parsed as the continuation of the new journal.
        let (base, mut writer, mut trainer) = base_and_writer(8);
        let mut store = formatted(&base);
        let frame1 = entry_frame(&mut writer, &mut trainer, 4, 0);
        let frame2 = entry_frame(&mut writer, &mut trainer, 4, 4);
        store.append_journal(&frame1).unwrap();
        store.append_journal(&frame2).unwrap();
        let geometry = *store.geometry();
        let mut flash = store.into_flash();
        // Corrupt frame 1 (first journal byte's neighbour inside its body).
        flash.flip_bit(geometry.journal_offset() + 24, 1);
        let (mut store, report) = FlashStore::mount(flash.reboot(), geometry).unwrap();
        assert_eq!(report.journal_entries, 0);
        assert!(report.journal_discarded > 0);
        // Append a replacement frame of the exact same length as frame 1.
        let (base_check, mut writer2, mut trainer2) = base_and_writer(8);
        assert_eq!(base_check, base);
        let replacement = entry_frame(&mut writer2, &mut trainer2, 4, 0);
        assert_eq!(replacement.len(), frame1.len());
        store.append_journal(&replacement).unwrap();
        let (store, report) = remount(store);
        assert_eq!(
            report.journal_entries, 1,
            "the stale frame2 must not survive behind the new append"
        );
        assert_eq!(store.journal().unwrap(), replacement);
    }

    #[test]
    fn torn_append_is_dropped_on_mount() {
        let (base, mut writer, mut trainer) = base_and_writer(8);
        let mut store = formatted(&base);
        let frame1 = entry_frame(&mut writer, &mut trainer, 4, 0);
        store.append_journal(&frame1).unwrap();
        let frame2 = entry_frame(&mut writer, &mut trainer, 4, 4);
        for torn in 1..frame2.len() {
            let geometry = *store.geometry();
            let flash = store.into_flash().reboot().power_loss_after(torn);
            let (mut interrupted, _) = FlashStore::mount(flash, geometry).unwrap();
            assert!(interrupted.append_journal(&frame2).is_err());
            let (mounted, report) = remount(interrupted);
            assert_eq!(report.journal_entries, 1, "torn at byte {torn}");
            assert_eq!(mounted.journal().unwrap(), frame1);
            store = mounted;
        }
    }

    #[test]
    fn faulty_flash_scrambles_sectors_deterministically() {
        let data: Vec<u8> = (0..=255).collect();
        let mut plain = FaultyFlash::new(1024).with_sector_bytes(32);
        plain.program(100, &data).unwrap();
        let mut torn = FaultyFlash::new(1024)
            .with_sector_bytes(32)
            .scrambled(7)
            .power_loss_after(100);
        let err = torn.program(100, &data).unwrap_err();
        assert!(matches!(err, PersistError::Corrupted { .. }));
        assert!(torn.is_dead());
        assert!(torn.read(0, 1).is_err(), "dead device must refuse reads");
        let rebooted = torn.reboot();
        // Exactly 100 bytes landed, but not necessarily the first 100.
        let written: usize = rebooted.image()[100..356]
            .iter()
            .zip(&data)
            .filter(|(a, b)| a == b)
            .count();
        assert!(
            written >= 100 - 32,
            "partial write lost too much: {written}"
        );
        assert_ne!(
            &rebooted.image()[100..356],
            &plain.image()[100..356],
            "a torn scrambled write must differ from the complete one"
        );
        // Same seed, same tear.
        let mut again = FaultyFlash::new(1024)
            .with_sector_bytes(32)
            .scrambled(7)
            .power_loss_after(100);
        again.program(100, &data).unwrap_err();
        assert_eq!(again.image(), torn_image(&rebooted));

        fn torn_image(flash: &FaultyFlash) -> &[u8] {
            flash.image()
        }
    }

    #[test]
    fn out_of_range_accesses_are_typed_errors() {
        let mut flash = MemFlash::new(64);
        assert!(matches!(
            flash.read(60, 8),
            Err(PersistError::Truncated { .. })
        ));
        assert!(matches!(
            flash.program(64, &[1]),
            Err(PersistError::Truncated { .. })
        ));
        assert!(matches!(
            flash.erase(0, 65),
            Err(PersistError::Truncated { .. })
        ));
        let geometry = FlashGeometry::for_base(1024, 1024);
        let err = FlashStore::mount(MemFlash::new(64), geometry).unwrap_err();
        assert!(matches!(err, PersistError::Truncated { .. }));
    }
}
