//! Append-only delta journal of `retrain` batches between full snapshots.
//!
//! A full [`IncrementalTrainer`] snapshot is O(pool) to write, but the
//! paper's self-learning loop grows the pool by one balanced batch per
//! missed seizure — a few hundred rows against thousands. Re-writing the
//! whole pool to Flash after every seizure wears the device for no reason:
//! everything except the freshly appended batch is already on Flash, inside
//! the previous snapshot. This module makes the per-seizure write O(batch):
//! a [`JournalWriter`] emits one checksummed, length-prefixed entry per
//! [`IncrementalTrainer::retrain`] call, and [`replay`] folds a base
//! snapshot plus its journal back into the exact trainer state — applying
//! each entry through the same `retrain` call that produced it, so the
//! reconstruction is **node-identical** to the trainer that never lost power
//! (property-tested over random grow schedules, split points and journal
//! truncation points; see `crates/ml/tests/properties.rs`). Replay also
//! reconstructs the pool's block-local presorted runs: the decoded base
//! snapshot rebuilds its runs on the trainer's own ownership block size and
//! every replayed batch re-enters through `retrain`'s O(batch) block-run
//! append, so the replayed trainer's runs — and therefore every future
//! owned-block refit, including pools past 65 536 rows — match the
//! uninterrupted trainer bit for bit.
//!
//! # Journal format
//!
//! A journal is a plain concatenation of entries. Each entry is a complete
//! snapshot envelope (see the [module docs](super)) of kind
//! [`SnapshotKind::JournalEntry`] whose payload is:
//!
//! | field | encoding |
//! |-------|----------|
//! | base fingerprint | `u64` — the trailing checksum of the base snapshot |
//! | pool length before the batch | `u64` |
//! | feature count | `u64` |
//! | labels | length-prefixed bit-packed bools |
//! | rows | length-prefixed `f64` slice (row-major, bit-exact) |
//! | annotation | length-prefixed opaque bytes (callers layer their own per-batch state; empty when unused) |
//!
//! The fingerprint binds every entry to the one base snapshot it extends;
//! the pool length pins its position in the grow schedule. An entry that
//! reaches [`replay`] against the wrong base, out of order, or bit-flipped
//! fails with a typed [`PersistError`] **before** anything is applied — a
//! batch is either applied whole or not at all.
//!
//! # Crash safety
//!
//! The journal is designed for the one failure append-only Flash writes
//! actually produce: power loss mid-append leaves a **torn final entry** — a
//! strict prefix of a valid entry at the journal's tail. [`scan_journal`]
//! detects the torn tail (header incomplete, or fewer bytes than the
//! declared entry size remain) and drops it, reporting the valid prefix
//! length so the device can truncate the journal file before appending
//! again. Anything that is *not* a clean tail tear — bad magic, a foreign
//! format version, a checksum mismatch, garbage between entries — is
//! corruption and fails with the matching typed error instead of being
//! silently skipped.
//!
//! # Compaction
//!
//! Replay costs one `retrain` per entry at boot, so the journal must not
//! grow without bound. [`CompactionPolicy`] decides when the accumulated
//! journal should be folded into a fresh full snapshot (one O(pool) write
//! that empties the journal); `seizure-core`'s
//! `RealTimeDetector::save_delta` and `SelfLearningPipeline::save_delta`
//! apply it automatically and tell the caller which kind of Flash write to
//! perform through [`DeltaSave`].
//!
//! # Example
//!
//! ```
//! use seizure_ml::persist::journal::{replay, JournalWriter};
//! use seizure_ml::persist::trainer_to_bytes;
//! use seizure_ml::training::{IncrementalTrainer, IncrementalTrainerConfig};
//! use seizure_ml::RandomForestConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = IncrementalTrainerConfig {
//!     forest: RandomForestConfig { n_trees: 4, ..RandomForestConfig::default() },
//!     block_size: 8,
//! };
//! let mut trainer = IncrementalTrainer::new(config, 7);
//! let rows: Vec<f64> = (0..32).map(f64::from).collect();
//! let labels: Vec<bool> = (0..32).map(|i| i % 2 == 0).collect();
//! trainer.retrain(&rows, 1, &labels)?;
//!
//! // One O(pool) base snapshot, then O(batch) journal entries: the device
//! // appends each writer batch to its journal region on Flash.
//! let base = trainer_to_bytes(&trainer);
//! let mut writer = JournalWriter::new(&base, trainer.num_samples())?;
//! trainer.retrain(&[40.0, 1.0], 1, &[true, false])?;
//! writer.append_retrain(&[40.0, 1.0], 1, &[true, false])?;
//! let mut journal_region: Vec<u8> = Vec::new();
//! journal_region.extend_from_slice(&writer.take_unflushed());
//!
//! // After a power cycle: base + journal fold back into the same trainer.
//! let replayed = replay(&base, &journal_region)?;
//! assert_eq!(replayed.trainer, trainer);
//! # Ok(())
//! # }
//! ```

use super::{
    trainer_from_bytes, PersistError, SnapshotKind, SnapshotReader, SnapshotWriter, ENVELOPE_LEN,
    FORMAT_VERSION, MAGIC,
};
use crate::error::MlError;
use crate::incremental::IncrementalTrainer;

/// One decoded journal entry: a single `retrain` batch bound to its base
/// snapshot and its position in the grow schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Trailing checksum of the base snapshot this entry extends.
    pub base_fingerprint: u64,
    /// Pool length the batch was appended at (enforces replay order).
    pub pool_len_before: usize,
    /// Feature count of the batch rows.
    pub num_features: usize,
    /// Row-major batch matrix (`labels.len() * num_features` values).
    pub rows: Vec<f64>,
    /// Per-row labels.
    pub labels: Vec<bool>,
    /// Opaque per-batch caller state (`seizure-core`'s pipeline stores the
    /// produced seizure label here); empty when unused.
    pub annotation: Vec<u8>,
}

/// Result of [`scan_journal`]: the decoded entries plus where the valid
/// prefix ends.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalScan {
    /// Every complete, validated entry, in journal order.
    pub entries: Vec<JournalEntry>,
    /// Byte length of the valid prefix (the entries end exactly here). A
    /// device resuming after a torn append should truncate its journal file
    /// to this length before appending again.
    pub valid_len: usize,
    /// Bytes of a torn final entry that were detected and dropped (0 when
    /// the journal ends cleanly at an entry boundary).
    pub torn_bytes: usize,
}

/// What a journal replay did, reported alongside the reconstructed state by
/// [`replay`] and by `seizure-core`'s `load_with_journal` /
/// `resume_with_journal`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalReplayReport {
    /// Entries applied on top of the base snapshot.
    pub entries_applied: usize,
    /// Byte length of the journal's valid prefix; truncate the journal file
    /// to this length before appending further entries.
    pub valid_len: usize,
    /// Bytes of a torn final entry that were detected and dropped.
    pub torn_bytes: usize,
}

/// Emits journal entries for the `retrain` batches appended after a base
/// snapshot was written. The writer tracks the pool length itself, so every
/// batch handed to [`JournalWriter::append_retrain`] must also have been
/// handed to the trainer's `retrain` (in the same order) — `seizure-core`'s
/// detector and pipeline couple the two calls.
///
/// Only the **unflushed** entries are held in RAM: once
/// [`JournalWriter::take_unflushed`] / [`JournalWriter::mark_flushed`] hand
/// a batch to stable storage, the writer remembers just its byte length —
/// on a RAM-constrained wearable the armed writer stays O(batch), not
/// O(journal).
#[derive(Debug, Clone, PartialEq)]
pub struct JournalWriter {
    base_fingerprint: u64,
    pool_len: usize,
    /// Entry bytes not yet handed to stable storage.
    unflushed: Vec<u8>,
    /// Bytes already flushed (the journal region's length on Flash).
    flushed_len: usize,
    entries: usize,
}

impl JournalWriter {
    /// Creates a writer for an empty journal extending `base_snapshot`,
    /// whose payload covers a pool of `pool_len` samples.
    ///
    /// The base may be any envelope of this crate's format (the trainer
    /// snapshot itself, or a `seizure-core` detector/pipeline snapshot that
    /// nests one) — the writer only records its fingerprint; `pool_len` is
    /// stated by the caller because only it knows where in the base the
    /// trainer sits.
    ///
    /// # Errors
    ///
    /// [`PersistError::Truncated`] / [`PersistError::BadMagic`] when
    /// `base_snapshot` is not an envelope to fingerprint.
    pub fn new(base_snapshot: &[u8], pool_len: usize) -> Result<Self, PersistError> {
        Ok(Self {
            base_fingerprint: base_fingerprint(base_snapshot)?,
            pool_len,
            unflushed: Vec::new(),
            flushed_len: 0,
            entries: 0,
        })
    }

    /// Resumes a writer over an already-persisted journal: `flushed_len`
    /// must be the valid prefix length reported by [`scan_journal`],
    /// `pool_len` the pool size after its `entries` entries, and
    /// `base_fingerprint` the base snapshot's (see [`base_fingerprint`]).
    /// Appended entries continue the sequence and
    /// [`JournalWriter::unflushed`] starts empty — the valid prefix is
    /// already on stable storage and is *not* re-buffered in RAM. Used by
    /// the layers that replay journals at their own level (`seizure-core`'s
    /// detector and pipeline); [`replay`] calls it for you.
    pub fn resume(
        base_fingerprint: u64,
        pool_len: usize,
        flushed_len: usize,
        entries: usize,
    ) -> Self {
        Self {
            base_fingerprint,
            pool_len,
            unflushed: Vec::new(),
            flushed_len,
            entries,
        }
    }

    /// Appends one entry recording a `retrain` batch (no annotation).
    ///
    /// # Errors
    ///
    /// [`MlError::DimensionMismatch`] when `rows` is not
    /// `labels.len() * num_features` values, and [`MlError::InvalidDataset`]
    /// for an empty batch — the same shapes `retrain` itself rejects, so a
    /// batch the trainer accepted always journals cleanly.
    pub fn append_retrain(
        &mut self,
        rows: &[f64],
        num_features: usize,
        labels: &[bool],
    ) -> Result<(), MlError> {
        self.append_with(rows, num_features, labels, &[])
    }

    /// [`JournalWriter::append_retrain`] with an opaque per-batch
    /// `annotation` replayed back to the caller (see
    /// [`JournalEntry::annotation`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`JournalWriter::append_retrain`].
    pub fn append_with(
        &mut self,
        rows: &[f64],
        num_features: usize,
        labels: &[bool],
        annotation: &[u8],
    ) -> Result<(), MlError> {
        if labels.is_empty() {
            return Err(MlError::InvalidDataset {
                detail: "a journal entry must record at least one sample".to_string(),
            });
        }
        if rows.len() != labels.len() * num_features {
            return Err(MlError::DimensionMismatch {
                detail: format!(
                    "batch has {} values but {} labels x {num_features} features require {}",
                    rows.len(),
                    labels.len(),
                    labels.len() * num_features
                ),
            });
        }
        let mut w = SnapshotWriter::new();
        w.u64(self.base_fingerprint);
        w.usize(self.pool_len);
        w.usize(num_features);
        w.bools(labels);
        w.slice_f64(rows);
        w.nested(annotation);
        self.unflushed
            .extend_from_slice(&w.finish(SnapshotKind::JournalEntry));
        self.pool_len += labels.len();
        self.entries += 1;
        Ok(())
    }

    /// Entry bytes appended since the last flush — exactly what a delta
    /// save must append to the journal's Flash region.
    pub fn unflushed(&self) -> &[u8] {
        &self.unflushed
    }

    /// Hands the unflushed entries to the caller (to append to stable
    /// storage) and marks them flushed — only their byte length stays in
    /// RAM.
    pub fn take_unflushed(&mut self) -> Vec<u8> {
        self.flushed_len += self.unflushed.len();
        std::mem::take(&mut self.unflushed)
    }

    /// Marks everything written so far as flushed to stable storage,
    /// dropping the buffered bytes (use [`JournalWriter::take_unflushed`]
    /// to receive them instead).
    pub fn mark_flushed(&mut self) {
        self.take_unflushed();
    }

    /// Number of entries written (including entries resumed from Flash).
    pub fn num_entries(&self) -> usize {
        self.entries
    }

    /// Pool length after every journaled batch.
    pub fn pool_len(&self) -> usize {
        self.pool_len
    }

    /// Fingerprint of the base snapshot this journal extends.
    pub fn base_fingerprint(&self) -> u64 {
        self.base_fingerprint
    }

    /// Total journal length in bytes (flushed + unflushed).
    pub fn len(&self) -> usize {
        self.flushed_len + self.unflushed.len()
    }

    /// `true` when no entry has been written or resumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Journal bookkeeping between delta saves: the writer holding the entries
/// appended since the base snapshot, plus the base's size (the compaction
/// policy compares the journal against it). `seizure-core`'s detector and
/// pipeline both drive their delta saves through
/// [`DeltaState::save`], so the Clean / Append / compact state machine
/// exists once.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaState {
    /// Writer over the journal region.
    pub writer: JournalWriter,
    /// Byte length of the base snapshot the journal extends.
    pub base_len: usize,
}

impl DeltaState {
    /// The delta decision for the current state: `Some(Clean)` when nothing
    /// is unflushed, `Some(Append)` with the unflushed entries (consumed)
    /// while the journal stays within `policy`, and `None` when the journal
    /// has outgrown the policy — the caller must fold it into a fresh full
    /// base snapshot and re-arm.
    pub fn save(&mut self, policy: CompactionPolicy) -> Option<DeltaSave> {
        if self.unflushed_is_empty() {
            return Some(DeltaSave::Clean);
        }
        if policy.should_compact(self.base_len, self.writer.len()) {
            return None;
        }
        Some(DeltaSave::Append(self.writer.take_unflushed()))
    }

    fn unflushed_is_empty(&self) -> bool {
        self.writer.unflushed().is_empty()
    }
}

/// The fingerprint journal entries are bound to: the trailing FNV-1a
/// checksum of the base snapshot. Only the envelope's presence is checked
/// here (length and magic) — full validation happens when the base itself is
/// decoded.
///
/// # Errors
///
/// [`PersistError::Truncated`] / [`PersistError::BadMagic`] when the bytes
/// cannot be an envelope.
pub fn base_fingerprint(base_snapshot: &[u8]) -> Result<u64, PersistError> {
    if base_snapshot.len() < ENVELOPE_LEN {
        return Err(PersistError::Truncated {
            needed: ENVELOPE_LEN,
            available: base_snapshot.len(),
        });
    }
    // lint: allow(panic-free-decode) — len >= ENVELOPE_LEN checked on entry
    if base_snapshot[..8] != MAGIC {
        let mut found = [0u8; 8];
        // lint: allow(panic-free-decode) — len >= ENVELOPE_LEN checked on entry
        found.copy_from_slice(&base_snapshot[..8]);
        return Err(PersistError::BadMagic { found });
    }
    let tail = &base_snapshot[base_snapshot.len() - 8..];
    // lint: allow(panic-free-decode) — tail slice is exactly 8 bytes by construction
    Ok(u64::from_le_bytes(tail.try_into().expect("8 bytes")))
}

/// Walks a journal front to back, validating and decoding every complete
/// entry (magic, version, declared length, checksum, kind, payload shape)
/// and detecting a torn final entry, which is dropped — never misapplied.
///
/// # Errors
///
/// A typed [`PersistError`] for anything that is not a clean tail tear:
/// [`PersistError::BadMagic`] for garbage between entries,
/// [`PersistError::UnsupportedVersion`] for an entry from another format
/// generation, [`PersistError::ChecksumMismatch`] for bit flips,
/// [`PersistError::WrongKind`] for a non-entry envelope, and
/// [`PersistError::Corrupted`] for structurally inconsistent payloads.
pub fn scan_journal(journal: &[u8]) -> Result<JournalScan, PersistError> {
    let mut entries = Vec::new();
    let mut pos = 0;
    while pos < journal.len() {
        let rest = &journal[pos..];
        // A torn final entry is a strict prefix of a valid one: give the
        // typed errors precedence over the tear verdict wherever enough
        // bytes survive to tell the difference.
        if rest.len() < 8 {
            if rest == &MAGIC[..rest.len()] {
                break; // torn inside the magic
            }
            let mut found = [0u8; 8];
            found[..rest.len()].copy_from_slice(rest);
            return Err(PersistError::BadMagic { found });
        }
        // lint: allow(panic-free-decode) — rest.len() >= 8 checked above
        if rest[..8] != MAGIC {
            let mut found = [0u8; 8];
            // lint: allow(panic-free-decode) — rest.len() >= 8 checked above
            found.copy_from_slice(&rest[..8]);
            return Err(PersistError::BadMagic { found });
        }
        if rest.len() >= 10 {
            // lint: allow(panic-free-decode) — guarded by rest.len() >= 10
            let version = u16::from_le_bytes([rest[8], rest[9]]);
            if version != FORMAT_VERSION {
                return Err(PersistError::UnsupportedVersion { found: version });
            }
        }
        if rest.len() < 20 {
            break; // torn inside the header
        }
        // lint: allow(panic-free-decode) — guarded by rest.len() >= 20
        let declared = u64::from_le_bytes(rest[12..20].try_into().expect("8 bytes"));
        let entry_len = (declared as usize).saturating_add(ENVELOPE_LEN);
        if rest.len() < entry_len {
            break; // torn inside the payload or the checksum
        }
        entries.push(read_entry(&rest[..entry_len], entries.len())?);
        pos += entry_len;
    }
    Ok(JournalScan {
        entries,
        valid_len: pos,
        torn_bytes: journal.len() - pos,
    })
}

/// Decodes one complete entry envelope (full validation via
/// [`SnapshotReader::open`]).
fn read_entry(bytes: &[u8], index: usize) -> Result<JournalEntry, PersistError> {
    let mut r = SnapshotReader::open(bytes, SnapshotKind::JournalEntry)?;
    let base_fingerprint = r.u64()?;
    let pool_len_before = r.usize()?;
    let num_features = r.usize()?;
    let labels = r.bools()?;
    let rows = r.slice_f64()?;
    let annotation = r.nested()?.to_vec();
    r.finish()?;
    if rows.len() != labels.len() * num_features {
        return Err(PersistError::Corrupted {
            detail: format!(
                "journal entry {index} holds {} values for {} labels x {num_features} features",
                rows.len(),
                labels.len()
            ),
        });
    }
    if labels.is_empty() {
        return Err(PersistError::Corrupted {
            detail: format!("journal entry {index} records an empty batch"),
        });
    }
    Ok(JournalEntry {
        base_fingerprint,
        pool_len_before,
        num_features,
        rows,
        labels,
        annotation,
    })
}

/// A replayed trainer together with a writer positioned to keep appending.
#[derive(Debug, Clone, PartialEq)]
pub struct Replayed {
    /// The reconstructed trainer — node-identical to the uninterrupted one.
    pub trainer: IncrementalTrainer,
    /// A writer resumed at the journal's valid end (its unflushed region is
    /// empty; new appends extend the same sequence).
    pub writer: JournalWriter,
    /// What the replay did, including the valid length to truncate the
    /// journal file to.
    pub report: JournalReplayReport,
}

/// Reconstructs trainer state from a full base snapshot plus its delta
/// journal, applying each entry through [`IncrementalTrainer::retrain`] —
/// the state after replay is node-identical to the trainer that executed
/// those retrains without interruption. A torn final entry (power loss
/// mid-append) is detected and dropped; every other malformation fails with
/// a typed error before any partial application becomes observable.
///
/// # Errors
///
/// Propagates base-snapshot decoding errors ([`trainer_from_bytes`]) and
/// journal scan errors ([`scan_journal`]), plus [`PersistError::Corrupted`]
/// when an entry is bound to a different base snapshot, applies at the wrong
/// pool length, or no longer re-applies through `retrain`.
pub fn replay(base_snapshot: &[u8], journal: &[u8]) -> Result<Replayed, PersistError> {
    let mut trainer = trainer_from_bytes(base_snapshot)?;
    let fingerprint = base_fingerprint(base_snapshot)?;
    let scan = scan_journal(journal)?;
    for (i, entry) in scan.entries.iter().enumerate() {
        apply_entry(&mut trainer, entry, fingerprint, i)?;
    }
    let entries_applied = scan.entries.len();
    let writer = JournalWriter::resume(
        fingerprint,
        trainer.num_samples(),
        scan.valid_len,
        entries_applied,
    );
    Ok(Replayed {
        trainer,
        writer,
        report: JournalReplayReport {
            entries_applied,
            valid_len: scan.valid_len,
            torn_bytes: scan.torn_bytes,
        },
    })
}

/// Validates an entry's bindings — the base fingerprint it extends and the
/// pool length it applies at. Shared by [`apply_entry`] and `seizure-core`'s
/// detector/pipeline resume paths (which re-apply batches at their own
/// layer), so a future tightening of the binding rules cannot diverge
/// between them.
pub fn validate_entry(
    entry: &JournalEntry,
    fingerprint: u64,
    pool_len: usize,
    index: usize,
) -> Result<(), PersistError> {
    if entry.base_fingerprint != fingerprint {
        return Err(PersistError::Corrupted {
            detail: format!(
                "journal entry {index} extends base snapshot {:#018x}, not {fingerprint:#018x}",
                entry.base_fingerprint
            ),
        });
    }
    if entry.pool_len_before != pool_len {
        return Err(PersistError::Corrupted {
            detail: format!(
                "journal entry {index} applies at pool length {} but the replayed pool \
                 holds {pool_len}",
                entry.pool_len_before
            ),
        });
    }
    Ok(())
}

/// Validates an entry's bindings ([`validate_entry`]) and re-applies its
/// batch through [`IncrementalTrainer::retrain`]; used by [`replay`].
pub fn apply_entry(
    trainer: &mut IncrementalTrainer,
    entry: &JournalEntry,
    fingerprint: u64,
    index: usize,
) -> Result<(), PersistError> {
    validate_entry(entry, fingerprint, trainer.num_samples(), index)?;
    trainer
        .retrain(&entry.rows, entry.num_features, &entry.labels)
        .map_err(|e| PersistError::Corrupted {
            detail: format!("journal entry {index} does not re-apply: {e}"),
        })?;
    Ok(())
}

/// When to fold the journal into a fresh full snapshot. Replay costs one
/// `retrain` per entry at boot and the journal occupies Flash next to the
/// base, so the journal is compacted once it stops being small relative to
/// the snapshot it extends.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionPolicy {
    /// Compact once the journal exceeds this fraction of the base
    /// snapshot's size. At the default (0.5), resume replays at most ~half a
    /// pool's worth of batches and the journal region never needs more than
    /// half the base's Flash.
    pub max_journal_fraction: f64,
    /// Never compact below this journal size — for small pools the full
    /// snapshot is cheap anyway, and thrashing O(pool) writes to save a few
    /// hundred journal bytes would defeat the point.
    pub min_journal_bytes: usize,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        Self {
            max_journal_fraction: 0.5,
            min_journal_bytes: 8 * 1024,
        }
    }
}

impl CompactionPolicy {
    /// `true` when a journal of `journal_len` bytes over a base of
    /// `base_len` bytes should be folded into a fresh full snapshot.
    pub fn should_compact(&self, base_len: usize, journal_len: usize) -> bool {
        journal_len >= self.min_journal_bytes
            && journal_len as f64 > self.max_journal_fraction * base_len as f64
    }
}

/// The Flash write a delta save asks the caller to perform —
/// `seizure-core`'s `save_delta` entry points return this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaSave {
    /// Replace the base-snapshot region with these bytes and erase the
    /// journal region (first save, or a compaction folding the journal into
    /// a fresh full snapshot). O(pool).
    Full(Vec<u8>),
    /// Append these bytes to the journal region. O(batch) — the steady
    /// state of the per-seizure save.
    Append(Vec<u8>),
    /// Nothing changed since the last save; write nothing.
    Clean,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::RandomForestConfig;
    use crate::incremental::IncrementalTrainerConfig;
    use crate::persist::trainer_to_bytes;

    fn rows_and_labels(n: usize) -> (Vec<f64>, Vec<bool>) {
        let mut rows = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let noise = ((i * 37 + 11) % 23) as f64 / 23.0;
            let positive = i % 2 == 0;
            rows.push(if positive { 4.0 + noise } else { noise });
            rows.push(((i * 7) % 13) as f64);
            labels.push(positive);
        }
        (rows, labels)
    }

    fn config() -> IncrementalTrainerConfig {
        IncrementalTrainerConfig {
            forest: RandomForestConfig {
                n_trees: 5,
                max_depth: 5,
                ..RandomForestConfig::default()
            },
            block_size: 16,
        }
    }

    /// Base trainer on the first `base` samples plus a journal covering the
    /// rest in `steps` batches; returns (base bytes, journal bytes — the
    /// Flash region's contents, flushed entry by entry like a device would —
    /// the flushed writer, and the final uninterrupted trainer).
    fn journaled(
        n: usize,
        base: usize,
        steps: usize,
    ) -> (Vec<u8>, Vec<u8>, JournalWriter, IncrementalTrainer) {
        let (rows, labels) = rows_and_labels(n);
        let mut trainer = IncrementalTrainer::new(config(), 11);
        trainer
            .retrain(&rows[..base * 2], 2, &labels[..base])
            .unwrap();
        let snapshot = trainer_to_bytes(&trainer);
        let mut writer = JournalWriter::new(&snapshot, trainer.num_samples()).unwrap();
        let mut journal = Vec::new();
        let per = (n - base).div_ceil(steps);
        let mut at = base;
        while at < n {
            let to = (at + per).min(n);
            let (r, l) = (&rows[at * 2..to * 2], &labels[at..to]);
            trainer.retrain(r, 2, l).unwrap();
            writer.append_retrain(r, 2, l).unwrap();
            journal.extend_from_slice(&writer.take_unflushed());
            at = to;
        }
        (snapshot, journal, writer, trainer)
    }

    #[test]
    fn replay_reconstructs_the_uninterrupted_trainer() {
        let (base, journal, writer, uninterrupted) = journaled(120, 60, 3);
        assert_eq!(writer.num_entries(), 3);
        assert_eq!(writer.pool_len(), 120);
        assert_eq!(writer.len(), journal.len());
        let replayed = replay(&base, &journal).unwrap();
        assert_eq!(replayed.trainer, uninterrupted);
        assert_eq!(
            replayed.trainer.current_forest(),
            uninterrupted.current_forest()
        );
        assert_eq!(replayed.report.entries_applied, 3);
        assert_eq!(replayed.report.valid_len, writer.len());
        assert_eq!(replayed.report.torn_bytes, 0);
        // The resumed writer continues the same sequence.
        assert_eq!(replayed.writer.pool_len(), 120);
        assert_eq!(replayed.writer.num_entries(), 3);
        assert!(replayed.writer.unflushed().is_empty());
    }

    #[test]
    fn empty_journal_replays_to_the_base() {
        let (rows, labels) = rows_and_labels(50);
        let mut trainer = IncrementalTrainer::new(config(), 3);
        trainer.retrain(&rows, 2, &labels).unwrap();
        let base = trainer_to_bytes(&trainer);
        let replayed = replay(&base, &[]).unwrap();
        assert_eq!(replayed.trainer, trainer);
        assert_eq!(replayed.report.entries_applied, 0);
    }

    #[test]
    fn torn_final_entry_is_dropped_at_every_cut() {
        let (base, journal, _, _) = journaled(100, 50, 2);
        let journal = &journal[..];
        let scan = scan_journal(journal).unwrap();
        assert_eq!(scan.entries.len(), 2);
        // The first entry boundary, from its declared payload length.
        let first_len =
            u64::from_le_bytes(journal[12..20].try_into().unwrap()) as usize + ENVELOPE_LEN;
        // Every cut strictly inside the second entry tears it: replay keeps
        // exactly the first entry and reports the dropped tail.
        for cut in [
            first_len + 1,
            first_len + 7,
            first_len + 9,
            first_len + 21,
            journal.len() - 1,
        ] {
            let replayed = replay(&base, &journal[..cut]).unwrap();
            assert_eq!(replayed.report.entries_applied, 1, "cut {cut}");
            assert_eq!(replayed.report.valid_len, first_len, "cut {cut}");
            assert_eq!(replayed.report.torn_bytes, cut - first_len, "cut {cut}");
        }
        // A cut at the entry boundary is clean.
        let replayed = replay(&base, &journal[..first_len]).unwrap();
        assert_eq!(replayed.report.entries_applied, 1);
        assert_eq!(replayed.report.torn_bytes, 0);
    }

    #[test]
    fn resumed_writer_extends_a_torn_journal_consistently() {
        let (base, journal, _, _) = journaled(100, 50, 2);
        // Tear mid-way through the final entry, resume, re-append the lost
        // batch: truncating the "file" to the reported valid length and
        // appending the fresh entry must replay to the original state.
        let replayed = replay(&base, &journal[..journal.len() - 5]).unwrap();
        let mut resumed_writer = replayed.writer;
        let mut trainer = replayed.trainer;
        let (rows, labels) = rows_and_labels(100);
        let (r, l) = (&rows[75 * 2..], &labels[75..]);
        trainer.retrain(r, 2, l).unwrap();
        resumed_writer.append_retrain(r, 2, l).unwrap();
        assert_eq!(
            resumed_writer.unflushed().len(),
            resumed_writer.len() - replayed.report.valid_len
        );
        let mut recovered = journal[..replayed.report.valid_len].to_vec();
        recovered.extend_from_slice(&resumed_writer.take_unflushed());
        let full = replay(&base, &recovered).unwrap();
        assert_eq!(full.trainer, trainer);
    }

    #[test]
    fn corruption_battery_yields_typed_errors_and_never_applies() {
        let (base, journal, _, _) = journaled(100, 50, 2);

        // Bad magic: garbage at an entry boundary is corruption, not a tear.
        let mut bad_magic = journal.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            replay(&base, &bad_magic).unwrap_err(),
            PersistError::BadMagic { .. }
        ));
        // Short garbage that cannot be a magic prefix is still bad magic.
        assert!(matches!(
            scan_journal(b"junk").unwrap_err(),
            PersistError::BadMagic { .. }
        ));

        // Future format version, with the checksum re-signed so only the
        // version field disagrees.
        let mut future = journal.clone();
        future[8] = (FORMAT_VERSION + 1) as u8;
        assert!(matches!(
            replay(&base, &future).unwrap_err(),
            PersistError::UnsupportedVersion { .. }
        ));

        // Bit flip inside an entry payload: checksum mismatch.
        let mut flipped = journal.clone();
        let mid = journal.len() / 4;
        flipped[mid] ^= 0x20;
        assert!(matches!(
            replay(&base, &flipped).unwrap_err(),
            PersistError::ChecksumMismatch { .. }
        ));

        // A non-entry envelope in the journal stream: wrong kind.
        let not_entry = trainer_to_bytes(&trainer_from_bytes(&base).unwrap());
        assert!(matches!(
            replay(&base, &not_entry).unwrap_err(),
            PersistError::WrongKind { .. }
        ));

        // An entry bound to another base snapshot: fingerprint mismatch.
        let (other_base, other_journal, _, _) = journaled(80, 40, 1);
        let err = replay(&base, &other_journal).unwrap_err();
        assert!(matches!(err, PersistError::Corrupted { .. }), "{err}");
        assert!(err.to_string().contains("base snapshot"), "{err}");
        // ...and the converse direction fails the same way.
        assert!(replay(&other_base, &journal).is_err());

        // Entries applied out of order: pool-length mismatch.
        let first_len =
            u64::from_le_bytes(journal[12..20].try_into().unwrap()) as usize + ENVELOPE_LEN;
        let err = replay(&base, &journal[first_len..]).unwrap_err();
        assert!(matches!(err, PersistError::Corrupted { .. }), "{err}");
        assert!(err.to_string().contains("pool length"), "{err}");

        // A truncated entry that is *not* at the tail (valid bytes follow)
        // cannot be a clean tear: the scanner reads past the cut into the
        // next entry and the checksum exposes it.
        let mut truncated_mid = journal[..first_len - 6].to_vec();
        truncated_mid.extend_from_slice(&journal[first_len..]);
        assert!(replay(&base, &truncated_mid).is_err());
    }

    #[test]
    fn writer_rejects_malformed_batches() {
        let (base, journal, mut writer, _) = journaled(60, 60, 1);
        assert!(writer.append_retrain(&[1.0, 2.0], 2, &[]).is_err());
        assert!(writer
            .append_retrain(&[1.0, 2.0, 3.0], 2, &[true, false])
            .is_err());
        // Nothing was appended by the rejected calls.
        assert_eq!(writer.num_entries(), 0);
        assert!(writer.is_empty());
        assert!(journal.is_empty());
        assert_eq!(replay(&base, &journal).unwrap().report.entries_applied, 0);
        // And a writer refuses a base that is not an envelope.
        assert!(JournalWriter::new(b"nope", 0).is_err());
        assert!(JournalWriter::new(b"definitely not a snapshot....", 0).is_err());
    }

    #[test]
    fn annotations_round_trip() {
        let (rows, labels) = rows_and_labels(80);
        let mut trainer = IncrementalTrainer::new(config(), 5);
        trainer.retrain(&rows[..80], 2, &labels[..40]).unwrap();
        let base = trainer_to_bytes(&trainer);
        let mut writer = JournalWriter::new(&base, 40).unwrap();
        writer
            .append_with(&rows[80..], 2, &labels[40..], b"onset=12.5")
            .unwrap();
        let scan = scan_journal(writer.unflushed()).unwrap();
        assert_eq!(scan.entries[0].annotation, b"onset=12.5");
        assert_eq!(scan.entries[0].pool_len_before, 40);
        let replayed = replay(&base, writer.unflushed()).unwrap();
        assert_eq!(
            replayed.trainer,
            trainer_from_bytes(&base)
                .map(|mut t| {
                    t.retrain(&rows[80..], 2, &labels[40..]).unwrap();
                    t
                })
                .unwrap()
        );
    }

    #[test]
    fn unflushed_tracks_the_delta_between_saves() {
        let (_, _, mut writer, _) = journaled(60, 60, 1);
        assert!(writer.unflushed().is_empty());
        let (rows, labels) = rows_and_labels(70);
        writer
            .append_retrain(&rows[120..], 2, &labels[60..])
            .unwrap();
        let first = writer.unflushed().to_vec();
        assert_eq!(first.len(), writer.len());
        writer.mark_flushed();
        assert!(writer.unflushed().is_empty());
        writer
            .append_retrain(&rows[120..], 2, &labels[60..])
            .unwrap();
        assert_eq!(writer.unflushed().len(), writer.len() - first.len());
    }

    #[test]
    fn compaction_policy_thresholds() {
        let policy = CompactionPolicy::default();
        // Below the absolute floor: never compact.
        assert!(!policy.should_compact(1000, 4096));
        // Above the floor and above the fraction: compact.
        assert!(policy.should_compact(10_000, 8192));
        // Above the floor but still small next to a big base: keep appending.
        assert!(!policy.should_compact(100_000, 9000));
        let strict = CompactionPolicy {
            max_journal_fraction: 0.1,
            min_journal_bytes: 0,
        };
        assert!(strict.should_compact(100, 11));
        assert!(!strict.should_compact(100, 10));
    }
}
