//! Logistic-regression baseline.
//!
//! A simple gradient-descent logistic regression used as an additional
//! supervised baseline next to the random forest; it also doubles as a sanity
//! check that the feature space is (close to) linearly separable between ictal
//! and interictal windows.

use crate::dataset::Dataset;
use crate::error::MlError;

/// Hyper-parameters of [`LogisticRegression::fit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogisticRegressionConfig {
    /// Gradient-descent learning rate.
    pub learning_rate: f64,
    /// Number of full-batch gradient-descent epochs.
    pub epochs: usize,
    /// L2 regularization strength.
    pub l2: f64,
}

impl Default for LogisticRegressionConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.1,
            epochs: 300,
            l2: 1e-4,
        }
    }
}

/// A fitted logistic-regression model.
///
/// # Example
///
/// ```
/// use seizure_ml::Dataset;
/// use seizure_ml::linear::{LogisticRegression, LogisticRegressionConfig};
///
/// # fn main() -> Result<(), seizure_ml::MlError> {
/// let data = Dataset::new(
///     (0..20).map(|i| vec![i as f64 / 10.0]).collect(),
///     (0..20).map(|i| i >= 10).collect(),
/// )?;
/// let model = LogisticRegression::fit(&data, &LogisticRegressionConfig::default())?;
/// assert!(model.predict(&[1.9]));
/// assert!(!model.predict(&[0.0]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl LogisticRegression {
    /// Fits the model with full-batch gradient descent. Features are
    /// internally standardized per epoch computation using the raw values, so
    /// callers should pre-scale features for best results.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidParameter`] if the learning rate or epoch
    /// count is not positive.
    pub fn fit(data: &Dataset, config: &LogisticRegressionConfig) -> Result<Self, MlError> {
        if config.learning_rate <= 0.0 || config.learning_rate.is_nan() {
            return Err(MlError::InvalidParameter {
                name: "learning_rate",
                reason: format!("must be positive, got {}", config.learning_rate),
            });
        }
        if config.epochs == 0 {
            return Err(MlError::InvalidParameter {
                name: "epochs",
                reason: "at least one epoch is required".to_string(),
            });
        }
        let n = data.len() as f64;
        let f = data.num_features();
        let mut weights = vec![0.0; f];
        let mut bias = 0.0;
        for _ in 0..config.epochs {
            let mut grad_w = vec![0.0; f];
            let mut grad_b = 0.0;
            for (row, &label) in data.features().iter().zip(data.labels()) {
                let z = bias
                    + row
                        .iter()
                        .zip(weights.iter())
                        .map(|(x, w)| x * w)
                        .sum::<f64>();
                let error = sigmoid(z) - if label { 1.0 } else { 0.0 };
                for (g, x) in grad_w.iter_mut().zip(row.iter()) {
                    *g += error * x;
                }
                grad_b += error;
            }
            for (w, g) in weights.iter_mut().zip(grad_w.iter()) {
                *w -= config.learning_rate * (g / n + config.l2 * *w);
            }
            bias -= config.learning_rate * grad_b / n;
        }
        Ok(Self { weights, bias })
    }

    /// Model weights (one per feature).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Model bias (intercept).
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Probability that `sample` belongs to the positive class.
    pub fn predict_proba(&self, sample: &[f64]) -> f64 {
        let z = self.bias
            + sample
                .iter()
                .zip(self.weights.iter())
                .map(|(x, w)| x * w)
                .sum::<f64>();
        sigmoid(z)
    }

    /// Class prediction with a 0.5 threshold.
    pub fn predict(&self, sample: &[f64]) -> bool {
        self.predict_proba(sample) >= 0.5
    }

    /// Predicts a batch of samples.
    pub fn predict_batch(&self, samples: &[Vec<f64>]) -> Vec<bool> {
        samples.iter().map(|s| self.predict(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable() -> Dataset {
        Dataset::new(
            (0..40)
                .map(|i| vec![i as f64 / 10.0 - 2.0, ((i * 7) % 5) as f64 / 5.0])
                .collect(),
            (0..40).map(|i| i >= 20).collect(),
        )
        .unwrap()
    }

    #[test]
    fn learns_separable_data() {
        let data = separable();
        let model = LogisticRegression::fit(&data, &LogisticRegressionConfig::default()).unwrap();
        let correct = data
            .features()
            .iter()
            .zip(data.labels())
            .filter(|(row, &label)| model.predict(row) == label)
            .count();
        assert!(correct as f64 / data.len() as f64 > 0.9);
    }

    #[test]
    fn probabilities_are_monotone_along_the_discriminative_axis() {
        let data = separable();
        let model = LogisticRegression::fit(&data, &LogisticRegressionConfig::default()).unwrap();
        let p_low = model.predict_proba(&[-2.0, 0.5]);
        let p_mid = model.predict_proba(&[0.0, 0.5]);
        let p_high = model.predict_proba(&[2.0, 0.5]);
        assert!(p_low < p_mid && p_mid < p_high);
    }

    #[test]
    fn invalid_hyper_parameters_rejected() {
        let data = separable();
        let bad_lr = LogisticRegressionConfig {
            learning_rate: 0.0,
            ..Default::default()
        };
        assert!(LogisticRegression::fit(&data, &bad_lr).is_err());
        let bad_epochs = LogisticRegressionConfig {
            epochs: 0,
            ..Default::default()
        };
        assert!(LogisticRegression::fit(&data, &bad_epochs).is_err());
    }

    #[test]
    fn accessors_and_batch_prediction() {
        let data = separable();
        let model = LogisticRegression::fit(&data, &LogisticRegressionConfig::default()).unwrap();
        assert_eq!(model.weights().len(), 2);
        assert!(model.bias().is_finite());
        let batch = model.predict_batch(data.features());
        assert_eq!(batch.len(), data.len());
    }

    #[test]
    fn l2_regularization_shrinks_weights() {
        let data = separable();
        let strong = LogisticRegressionConfig {
            l2: 1.0,
            ..Default::default()
        };
        let weak = LogisticRegressionConfig {
            l2: 0.0,
            ..Default::default()
        };
        let w_strong = LogisticRegression::fit(&data, &strong).unwrap();
        let w_weak = LogisticRegression::fit(&data, &weak).unwrap();
        let norm = |w: &LogisticRegression| w.weights().iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(norm(&w_strong) < norm(&w_weak));
    }
}
