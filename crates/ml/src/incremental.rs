//! Incremental forest retraining engine.
//!
//! The paper's self-learning loop retrains its random forest every time a
//! missed seizure is observed, even though the personalized training set only
//! ever *grows*. [`IncrementalTrainer`] is a stateful retraining engine built
//! on the scratch machinery of [`crate::training`]: it owns a growable
//! [`TrainingSet`] whose per-block sorted runs are **aligned with the
//! ownership blocks below** (appends sort only the touched tail/new block
//! runs, no prefix re-sort), and caches one fitted arena per tree together
//! with a fingerprint of the sample pool the tree's bootstrap stream drew
//! from. On [`IncrementalTrainer::retrain`] only the trees whose pools were
//! touched by the growth are refitted; the rest are reused verbatim. A
//! refitted tree hands `fit_tree_jobs` exactly its owned block list, so its
//! scratch load k-way-merges O(owned blocks) of presorted runs instead of
//! scanning the whole pool — the per-seizure retrain cost is O(batch) end to
//! end, independent of how large the pool has grown.
//!
//! # Pool partitioning
//!
//! The sample pool is cut into contiguous **blocks** of
//! [`IncrementalTrainerConfig::block_size`] samples; block `b` is owned by
//! tree `b % n_trees`, and each tree bootstraps (with replacement, scaled by
//! `bootstrap_fraction`) from the union of its blocks. A tree that owns no
//! block yet — fewer blocks than trees, the cold-start regime — falls back to
//! bootstrapping from the **whole pool**, so small ensembles behave like a
//! classic bagged forest until enough data arrives for trees to specialize.
//! Appending samples therefore touches exactly: the owner of the final
//! (possibly partial) block, the owners of newly created blocks, and the
//! full-pool fallback trees. Everything else is reused.
//!
//! # Equivalence guarantee
//!
//! Every retrained state is a pure function of `(final training set, config,
//! seed)`: block ownership depends only on the final sample count, each
//! tree's bootstrap draws replay a private ChaCha8 stream parameterized by
//! its pool length, [`TrainingSet::append_rows`] reproduces the exact
//! per-block sorted runs a from-scratch build would produce, and the
//! owned-run k-way merge reproduces the whole-pool `(value, id)` sort over
//! the owned subset. Consequently a
//! trainer grown through **any** schedule of appends emits a [`FlatForest`]
//! identical — node for node, hence prediction-equivalent on any matrix — to
//! a fresh trainer fitted once on the final dataset with the same seed (a
//! property-tested invariant; see `crates/ml/tests/properties.rs`).
//!
//! # Example
//!
//! ```
//! use seizure_ml::training::{IncrementalTrainer, IncrementalTrainerConfig};
//! use seizure_ml::RandomForestConfig;
//!
//! # fn main() -> Result<(), seizure_ml::MlError> {
//! let config = IncrementalTrainerConfig {
//!     forest: RandomForestConfig { n_trees: 4, ..RandomForestConfig::default() },
//!     block_size: 8,
//! };
//! let mut trainer = IncrementalTrainer::new(config, 7);
//!
//! // Initial fit: one feature, 32 samples.
//! let rows: Vec<f64> = (0..32).map(f64::from).collect();
//! let labels: Vec<bool> = (0..32).map(|i| i >= 16).collect();
//! let forest = trainer.retrain(&rows, 1, &labels)?;
//! assert!(forest.predict(&[30.0]));
//!
//! // Growing the pool refits only the affected trees.
//! let forest = trainer.retrain(&[40.0, 41.0], 1, &[true, true])?;
//! assert!(trainer.last_refit_count() < trainer.num_trees());
//! assert!(forest.predict(&[40.5]));
//! # Ok(())
//! # }
//! ```

use crate::error::MlError;
use crate::flat::FlatForest;
use crate::forest::RandomForestConfig;
use crate::training::{
    fit_tree_jobs, resolve_tree_config, stitch_forest, tree_stream_seed, IdWidth, NodeArena,
    TrainingSet, TreeJob, MAX_RUN_BLOCK,
};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration of an [`IncrementalTrainer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IncrementalTrainerConfig {
    /// Hyper-parameters shared with the batch forest engines.
    pub forest: RandomForestConfig,
    /// Samples per ownership block (at most 65 536 — block-relative sample
    /// ids are u16). Smaller blocks spread fresh data over more (cheaper)
    /// trees and reach tree specialization sooner; larger blocks keep each
    /// tree's pool bigger. The default (128) puts every tree of a 30-tree
    /// ensemble on its own data once ~4k samples arrived. The training set's
    /// per-block sorted runs are aligned with these blocks.
    pub block_size: usize,
}

impl Default for IncrementalTrainerConfig {
    fn default() -> Self {
        Self {
            forest: RandomForestConfig::default(),
            block_size: 128,
        }
    }
}

/// One cached tree: its fitted arena plus the fingerprint of the pool the
/// bootstrap stream drew from. A tree is refitted exactly when its
/// fingerprint changes (pools only ever grow, so equal fingerprints imply an
/// identical pool).
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct TreeState {
    pub(crate) arena: NodeArena,
    pub(crate) blocks_owned: usize,
    pub(crate) pool_len: usize,
}

/// Stateful incremental retraining engine — see the [module docs](self) for
/// the pool partitioning scheme and the from-scratch equivalence guarantee.
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalTrainer {
    config: IncrementalTrainerConfig,
    seed: u64,
    set: Option<TrainingSet>,
    trees: Vec<TreeState>,
    last_refit: usize,
    /// Diagnostic mode: refitted trees select the **whole pool** and draw
    /// global ids (the pre-block-run behaviour), emulating the old O(pool)
    /// scratch load. Output forests are bit-identical to the owned-block
    /// path; the retrain bench uses this as its speedup baseline. Never
    /// persisted; restored trainers reset to `false`.
    reference_loads: bool,
}

impl IncrementalTrainer {
    /// Creates an empty trainer; the first [`IncrementalTrainer::retrain`]
    /// call builds the training set and fits every tree.
    pub fn new(config: IncrementalTrainerConfig, seed: u64) -> Self {
        Self {
            config,
            seed,
            set: None,
            trees: Vec::new(),
            last_refit: 0,
            reference_loads: false,
        }
    }

    /// Switches between owned-block scratch loads (`false`, the default) and
    /// the whole-pool reference loads described on the field — forests are
    /// bit-identical either way; only the retrain cost differs.
    pub fn set_reference_loads(&mut self, on: bool) {
        self.reference_loads = on;
    }

    /// The trainer's configuration.
    pub fn config(&self) -> &IncrementalTrainerConfig {
        &self.config
    }

    /// Number of trees in the ensemble.
    pub fn num_trees(&self) -> usize {
        self.config.forest.n_trees
    }

    /// Number of samples accumulated so far.
    pub fn num_samples(&self) -> usize {
        self.set.as_ref().map_or(0, TrainingSet::len)
    }

    /// The accumulated training set, once the first retrain happened.
    pub fn training_set(&self) -> Option<&TrainingSet> {
        self.set.as_ref()
    }

    /// How many trees the last [`IncrementalTrainer::retrain`] actually
    /// refitted (the remaining `num_trees - last_refit_count` were reused).
    pub fn last_refit_count(&self) -> usize {
        self.last_refit
    }

    /// The seed the per-tree draw and feature-subsampling streams derive
    /// from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Re-stitches the forest the last [`IncrementalTrainer::retrain`]
    /// emitted from the cached per-tree arenas (`None` until the first
    /// retrain). Used when restoring a persisted trainer, whose snapshot
    /// stores the arenas but not the stitched copy.
    pub fn current_forest(&self) -> Option<FlatForest> {
        let set = self.set.as_ref()?;
        if self.trees.len() != self.config.forest.n_trees || self.trees.is_empty() {
            return None;
        }
        let refs: Vec<&NodeArena> = self.trees.iter().map(|s| &s.arena).collect();
        Some(stitch_forest(set.num_features(), &refs))
    }

    /// Decomposes the trainer into the parts the persistence codec stores:
    /// configuration, seed, pool, cached trees with their draw-stream
    /// fingerprints, and the last refit count.
    pub(crate) fn snapshot_parts(
        &self,
    ) -> (
        &IncrementalTrainerConfig,
        u64,
        Option<&TrainingSet>,
        &[TreeState],
        usize,
    ) {
        (
            &self.config,
            self.seed,
            self.set.as_ref(),
            &self.trees,
            self.last_refit,
        )
    }

    /// Reassembles a trainer from persisted parts (the codec validates the
    /// cross-field invariants before calling this).
    pub(crate) fn from_snapshot_parts(
        config: IncrementalTrainerConfig,
        seed: u64,
        set: Option<TrainingSet>,
        trees: Vec<TreeState>,
        last_refit: usize,
    ) -> Self {
        Self {
            config,
            seed,
            set,
            trees,
            last_refit,
            reference_loads: false,
        }
    }

    /// Appends new samples (flat row-major, `labels.len() * num_features`
    /// values) to the pool, refits exactly the trees whose bootstrap pools
    /// were affected by the growth, and emits the full flat forest.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidParameter`] for a zero `block_size`, a
    /// `block_size` above 65 536 (block-relative ids are u16) or
    /// invalid forest hyper-parameters, [`MlError::DimensionMismatch`] if
    /// the matrix does not match `labels.len() * num_features` or
    /// `num_features` differs from earlier appends, and
    /// [`MlError::InvalidDataset`] for an empty append — or for a
    /// **single-class** append longer than `block_size`: such a batch fills
    /// whole ownership blocks with one label, so every block-specialized
    /// tree drawing from them would silently degrade into a single-class
    /// stump. The error is raised before the pool is touched; interleave
    /// classes in the batch (the pipeline's balanced batches do) or raise
    /// `block_size` above the stream's longest single-class run.
    pub fn retrain(
        &mut self,
        rows: &[f64],
        num_features: usize,
        labels: &[bool],
    ) -> Result<FlatForest, MlError> {
        let block = self.config.block_size;
        if block == 0 {
            return Err(MlError::InvalidParameter {
                name: "block_size",
                reason: "ownership blocks must hold at least one sample".to_string(),
            });
        }
        if block > MAX_RUN_BLOCK {
            return Err(MlError::InvalidParameter {
                name: "block_size",
                reason: format!(
                    "ownership blocks are limited to {MAX_RUN_BLOCK} samples (block-relative \
                     u16 ids), got {block}"
                ),
            });
        }
        if self.config.forest.n_trees > 1
            && labels.len() > block
            && labels.windows(2).all(|w| w[0] == w[1])
        {
            return Err(MlError::InvalidDataset {
                detail: format!(
                    "single-class append of {} samples exceeds block_size {}: every ownership \
                     block it fills holds one label only, silently degrading block-specialized \
                     tree diversity; interleave both classes in the batch or raise block_size \
                     above the stream's longest single-class run",
                    labels.len(),
                    block
                ),
            });
        }
        match &mut self.set {
            // Align the set's sorted-run blocks with the ownership blocks,
            // so a tree's owned pool is exactly a list of presorted runs.
            None => {
                self.set = Some(TrainingSet::from_rows_in_blocks(
                    rows,
                    num_features,
                    labels,
                    block,
                )?)
            }
            Some(set) => {
                if num_features != set.num_features() {
                    return Err(MlError::DimensionMismatch {
                        detail: format!(
                            "append has {num_features} features but the pool was built with {}",
                            set.num_features()
                        ),
                    });
                }
                set.append_rows(rows, labels)?;
            }
        }
        let set = self.set.as_ref().expect("training set installed above");
        debug_assert_eq!(set.run_block(), block, "run blocks track ownership blocks");
        let tree_config = resolve_tree_config(set, &self.config.forest)?;
        let n = set.len();
        let n_trees = self.config.forest.n_trees;
        let num_blocks = n.div_ceil(block);
        let tail_short = num_blocks * block - n;

        // Fingerprint every tree's pool and draw fresh bootstrap streams for
        // the ones whose pool grew (or that were never fitted). Draws are
        // **selection-local**: a tree's owned blocks (ascending `t,
        // t + n_trees, ...`) are all full except possibly the global tail,
        // so local id `j` addresses the `j`-th sample of their concatenation
        // and the draw maps onto the owned pool with no arithmetic at all.
        let mut draw_buf: Vec<u32> = Vec::new();
        let mut block_buf: Vec<u32> = Vec::new();
        // (tree index, draw range, block range, new fingerprint) per
        // refitted tree.
        type Pending = (usize, std::ops::Range<usize>, std::ops::Range<usize>, TreeState);
        let mut pending: Vec<Pending> = Vec::new();
        for t in 0..n_trees {
            let blocks_owned = if t < num_blocks {
                (num_blocks - 1 - t) / n_trees + 1
            } else {
                0
            };
            let owns_tail = num_blocks >= 1 && (num_blocks - 1) % n_trees == t;
            let pool_len = if blocks_owned == 0 {
                // Cold start: no block reached this tree yet, bootstrap from
                // the whole pool like a classic bagged forest.
                n
            } else {
                blocks_owned * block - if owns_tail { tail_short } else { 0 }
            };
            let unchanged = self
                .trees
                .get(t)
                .is_some_and(|s| s.blocks_owned == blocks_owned && s.pool_len == pool_len);
            if unchanged {
                continue;
            }
            let block_start = block_buf.len();
            if blocks_owned == 0 || self.reference_loads {
                block_buf.extend(0..num_blocks as u32);
            } else {
                block_buf.extend((0..blocks_owned).map(|i| (t + i * n_trees) as u32));
            }
            let m =
                ((pool_len as f64 * self.config.forest.bootstrap_fraction).round() as usize).max(1);
            let start = draw_buf.len();
            let mut rng = ChaCha8Rng::seed_from_u64(draw_stream_seed(self.seed, t));
            for _ in 0..m {
                let j = rng.gen_range(0..pool_len);
                let id = if blocks_owned > 0 && self.reference_loads {
                    // Reference mode selects the whole pool, so the draw must
                    // be mapped back to a global id (the old O(pool) layout);
                    // the drawn sample is the same either way.
                    let b = t + (j / block) * n_trees;
                    b * block + j % block
                } else {
                    j
                };
                draw_buf.push(id as u32);
            }
            pending.push((
                t,
                start..draw_buf.len(),
                block_start..block_buf.len(),
                TreeState {
                    arena: NodeArena::default(),
                    blocks_owned,
                    pool_len,
                },
            ));
        }

        let jobs: Vec<TreeJob<'_>> = pending
            .iter()
            .map(|(t, draws, blocks, _)| TreeJob {
                blocks: &block_buf[blocks.clone()],
                draws: &draw_buf[draws.clone()],
                seed: tree_stream_seed(self.seed, *t),
            })
            .collect();
        let arenas = fit_tree_jobs(set, &tree_config, &jobs, IdWidth::Auto)?;

        self.trees.resize(n_trees, TreeState::default());
        self.last_refit = pending.len();
        for ((t, _, _, mut state), arena) in pending.into_iter().zip(arenas) {
            state.arena = arena;
            self.trees[t] = state;
        }

        let refs: Vec<&NodeArena> = self.trees.iter().map(|s| &s.arena).collect();
        Ok(stitch_forest(set.num_features(), &refs))
    }
}

/// The per-tree bootstrap-draw stream seed, decoupled from the tree's
/// feature-subsampling stream so the two never correlate.
fn draw_stream_seed(seed: u64, t: usize) -> u64 {
    tree_stream_seed(seed, t) ^ 0x5851_F42D_4C95_7F2D
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic two-class rows: one informative feature, one noisy.
    fn rows_and_labels(n: usize) -> (Vec<f64>, Vec<bool>) {
        let mut rows = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let noise = ((i * 37 + 11) % 23) as f64 / 23.0;
            let positive = i % 2 == 0;
            rows.push(if positive { 4.0 + noise } else { noise });
            rows.push(((i * 7) % 13) as f64);
            labels.push(positive);
        }
        (rows, labels)
    }

    fn small_config() -> IncrementalTrainerConfig {
        IncrementalTrainerConfig {
            forest: RandomForestConfig {
                n_trees: 6,
                max_depth: 5,
                ..RandomForestConfig::default()
            },
            block_size: 16,
        }
    }

    #[test]
    fn incremental_equals_from_scratch() {
        let (rows, labels) = rows_and_labels(200);
        for cuts in [vec![200], vec![120, 200], vec![50, 60, 130, 200]] {
            let mut trainer = IncrementalTrainer::new(small_config(), 9);
            let mut prev = 0;
            let mut forest = None;
            for cut in cuts {
                forest = Some(
                    trainer
                        .retrain(&rows[prev * 2..cut * 2], 2, &labels[prev..cut])
                        .unwrap(),
                );
                prev = cut;
            }
            let mut scratch = IncrementalTrainer::new(small_config(), 9);
            let reference = scratch.retrain(&rows, 2, &labels).unwrap();
            assert_eq!(forest.unwrap(), reference);
        }
    }

    #[test]
    fn small_appends_reuse_most_trees() {
        let (rows, labels) = rows_and_labels(400);
        let mut trainer = IncrementalTrainer::new(small_config(), 3);
        trainer.retrain(&rows[..768], 2, &labels[..384]).unwrap();
        // 384 samples / block 16 = 24 blocks over 6 trees: every tree owns
        // blocks, none is on the full-pool fallback. Appending one block's
        // worth of samples touches the tail owner and one fresh block owner.
        assert_eq!(trainer.last_refit_count(), 6);
        trainer.retrain(&rows[768..], 2, &labels[384..]).unwrap();
        assert!(
            trainer.last_refit_count() <= 2,
            "refit {} of {} trees",
            trainer.last_refit_count(),
            trainer.num_trees()
        );
        assert_eq!(trainer.num_samples(), 400);
    }

    #[test]
    fn cold_start_falls_back_to_full_pool() {
        let (rows, labels) = rows_and_labels(20);
        let mut trainer = IncrementalTrainer::new(small_config(), 1);
        let forest = trainer.retrain(&rows, 2, &labels).unwrap();
        // 20 samples -> 2 blocks, so 4 of 6 trees bootstrap the whole pool;
        // the ensemble still separates the classes.
        assert_eq!(forest.num_trees(), 6);
        assert!(forest.predict(&[4.5, 1.0]));
        assert!(!forest.predict(&[0.1, 1.0]));
    }

    #[test]
    fn retrain_validation() {
        let mut trainer = IncrementalTrainer::new(small_config(), 0);
        assert!(trainer.retrain(&[], 2, &[]).is_err());
        assert!(trainer.retrain(&[1.0], 2, &[true]).is_err());
        let (rows, labels) = rows_and_labels(20);
        trainer.retrain(&rows, 2, &labels).unwrap();
        // Feature-count drift across appends is rejected.
        assert!(trainer.retrain(&[1.0, 2.0, 3.0], 3, &[true]).is_err());
        let mut zero_block = IncrementalTrainer::new(
            IncrementalTrainerConfig {
                block_size: 0,
                ..small_config()
            },
            0,
        );
        assert!(zero_block.retrain(&rows, 2, &labels).is_err());
        let mut zero_trees = IncrementalTrainer::new(
            IncrementalTrainerConfig {
                forest: RandomForestConfig {
                    n_trees: 0,
                    ..RandomForestConfig::default()
                },
                ..small_config()
            },
            0,
        );
        assert!(zero_trees.retrain(&rows, 2, &labels).is_err());
    }

    #[test]
    fn single_class_append_longer_than_a_block_is_rejected() {
        // block_size 16 (small_config); a 17-sample one-label batch would
        // fill a whole ownership block with a single class.
        let (rows, labels) = rows_and_labels(40);
        let mut trainer = IncrementalTrainer::new(small_config(), 2);
        trainer.retrain(&rows, 2, &labels).unwrap();
        let bad_rows: Vec<f64> = (0..34).map(f64::from).collect();
        let err = trainer.retrain(&bad_rows, 2, &[true; 17]).unwrap_err();
        assert!(matches!(err, MlError::InvalidDataset { .. }));
        assert!(err.to_string().contains("block_size"), "{err}");
        // The rejected batch never touched the pool.
        assert_eq!(trainer.num_samples(), 40);
        // At exactly block_size a single-class batch is still allowed...
        let ok_rows: Vec<f64> = (0..32).map(f64::from).collect();
        trainer.retrain(&ok_rows, 2, &[true; 16]).unwrap();
        // ...as is a longer batch that mixes classes.
        let mut mixed = vec![true; 17];
        mixed[8] = false;
        trainer.retrain(&bad_rows, 2, &mixed).unwrap();
        assert_eq!(trainer.num_samples(), 40 + 16 + 17);
        // Single-tree ensembles always bootstrap the whole pool, so the
        // block-diversity concern (and the guard) do not apply.
        let mut single = IncrementalTrainer::new(
            IncrementalTrainerConfig {
                forest: RandomForestConfig {
                    n_trees: 1,
                    ..RandomForestConfig::default()
                },
                block_size: 4,
            },
            0,
        );
        single.retrain(&rows, 2, &labels).unwrap();
        single.retrain(&bad_rows, 2, &[true; 17]).unwrap();
    }

    #[test]
    fn current_forest_matches_last_retrain_output() {
        let mut trainer = IncrementalTrainer::new(small_config(), 5);
        assert!(trainer.current_forest().is_none());
        let (rows, labels) = rows_and_labels(60);
        let emitted = trainer.retrain(&rows, 2, &labels).unwrap();
        assert_eq!(trainer.current_forest().unwrap(), emitted);
        assert_eq!(trainer.seed(), 5);
    }

    #[test]
    fn accessors_report_state() {
        let mut trainer = IncrementalTrainer::new(small_config(), 5);
        assert_eq!(trainer.num_samples(), 0);
        assert!(trainer.training_set().is_none());
        assert_eq!(trainer.num_trees(), 6);
        let (rows, labels) = rows_and_labels(40);
        trainer.retrain(&rows, 2, &labels).unwrap();
        assert_eq!(trainer.num_samples(), 40);
        assert_eq!(trainer.training_set().unwrap().num_features(), 2);
        assert_eq!(trainer.config().block_size, 16);
    }
}
