//! k-medoids clustering (PAM-style alternating optimization).
//!
//! Together with k-means, k-medoids is the unsupervised baseline the paper's
//! related work reports as the best-performing clustering approach for seizure
//! detection; unlike k-means its cluster centres are actual data points, which
//! makes it more robust to the heavy-tailed artifacts present in EEG features.

use crate::error::MlError;
use crate::kmeans::{squared_distance, validate_points};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Hyper-parameters of [`KMedoids::fit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMedoidsConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum number of alternating assignment/update sweeps.
    pub max_iterations: usize,
}

impl Default for KMedoidsConfig {
    fn default() -> Self {
        Self {
            k: 2,
            max_iterations: 50,
        }
    }
}

/// A fitted k-medoids model.
///
/// # Example
///
/// ```
/// use seizure_ml::kmedoids::{KMedoids, KMedoidsConfig};
///
/// # fn main() -> Result<(), seizure_ml::MlError> {
/// let points = vec![
///     vec![0.0], vec![0.2], vec![-0.1],
///     vec![8.0], vec![8.2], vec![7.9],
/// ];
/// let model = KMedoids::fit(&points, &KMedoidsConfig::default(), 0)?;
/// assert_ne!(model.predict(&[0.0]), model.predict(&[8.0]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KMedoids {
    medoids: Vec<Vec<f64>>,
    medoid_indices: Vec<usize>,
    total_cost: f64,
}

impl KMedoids {
    /// Fits k-medoids to `points`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidDataset`] for empty/inconsistent points and
    /// [`MlError::InvalidParameter`] if `k` is zero or exceeds the number of
    /// points.
    pub fn fit(points: &[Vec<f64>], config: &KMedoidsConfig, seed: u64) -> Result<Self, MlError> {
        validate_points(points)?;
        if config.k == 0 || config.k > points.len() {
            return Err(MlError::InvalidParameter {
                name: "k",
                reason: format!("k must lie in [1, {}], got {}", points.len(), config.k),
            });
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut all_indices: Vec<usize> = (0..points.len()).collect();
        all_indices.shuffle(&mut rng);
        let mut medoid_indices: Vec<usize> = all_indices[..config.k].to_vec();

        let mut assignments = vec![0usize; points.len()];
        for _ in 0..config.max_iterations {
            // Assignment step.
            for (i, p) in points.iter().enumerate() {
                assignments[i] = nearest_medoid(p, points, &medoid_indices).0;
            }
            // Update step: for each cluster pick the member minimizing the
            // total distance to the other members.
            let mut changed = false;
            for (cluster, medoid) in medoid_indices.iter_mut().enumerate() {
                let members: Vec<usize> = assignments
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &a)| (a == cluster).then_some(i))
                    .collect();
                if members.is_empty() {
                    continue;
                }
                let mut best = (*medoid, f64::INFINITY);
                for &candidate in &members {
                    let cost: f64 = members
                        .iter()
                        .map(|&m| squared_distance(&points[candidate], &points[m]))
                        .sum();
                    if cost < best.1 {
                        best = (candidate, cost);
                    }
                }
                if best.0 != *medoid {
                    *medoid = best.0;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        let total_cost = points
            .iter()
            .map(|p| nearest_medoid(p, points, &medoid_indices).1)
            .sum();
        Ok(Self {
            medoids: medoid_indices.iter().map(|&i| points[i].clone()).collect(),
            medoid_indices,
            total_cost,
        })
    }

    /// The medoid points (actual members of the training data).
    pub fn medoids(&self) -> &[Vec<f64>] {
        &self.medoids
    }

    /// Indices of the medoids within the training data.
    pub fn medoid_indices(&self) -> &[usize] {
        &self.medoid_indices
    }

    /// Total squared distance of every training point to its medoid.
    pub fn total_cost(&self) -> f64 {
        self.total_cost
    }

    /// Index of the medoid closest to `point`.
    pub fn predict(&self, point: &[f64]) -> usize {
        let mut best = (0usize, f64::INFINITY);
        for (i, m) in self.medoids.iter().enumerate() {
            let d = squared_distance(point, m);
            if d < best.1 {
                best = (i, d);
            }
        }
        best.0
    }

    /// Cluster assignment for a batch of points.
    pub fn predict_batch(&self, points: &[Vec<f64>]) -> Vec<usize> {
        points.iter().map(|p| self.predict(p)).collect()
    }
}

fn nearest_medoid(point: &[f64], points: &[Vec<f64>], medoids: &[usize]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (cluster, &m) in medoids.iter().enumerate() {
        let d = squared_distance(point, &points[m]);
        if d < best.1 {
            best = (cluster, d);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut points = Vec::new();
        for i in 0..25 {
            let j = (i * 13 % 11) as f64 / 11.0 - 0.5;
            points.push(vec![j, j * 0.5]);
            points.push(vec![6.0 + j, 6.0 - j]);
        }
        points
    }

    #[test]
    fn separates_two_blobs() {
        let points = two_blobs();
        let model = KMedoids::fit(&points, &KMedoidsConfig::default(), 1).unwrap();
        let a = model.predict(&[0.0, 0.0]);
        let b = model.predict(&[6.0, 6.0]);
        assert_ne!(a, b);
        for (i, p) in points.iter().enumerate() {
            let expected = if i % 2 == 0 { a } else { b };
            assert_eq!(model.predict(p), expected);
        }
    }

    #[test]
    fn medoids_are_actual_data_points() {
        let points = two_blobs();
        let model = KMedoids::fit(&points, &KMedoidsConfig::default(), 2).unwrap();
        for (medoid, &idx) in model.medoids().iter().zip(model.medoid_indices()) {
            assert_eq!(medoid, &points[idx]);
        }
    }

    #[test]
    fn robust_to_a_far_outlier() {
        // k-medoids keeps its centre at a data point, so one extreme outlier
        // cannot drag the medoid off the blob.
        let mut points = two_blobs();
        points.push(vec![1e6, 1e6]);
        let model = KMedoids::fit(&points, &KMedoidsConfig::default(), 1).unwrap();
        let medoid_norms: Vec<f64> = model
            .medoids()
            .iter()
            .map(|m| m.iter().map(|v| v * v).sum::<f64>().sqrt())
            .collect();
        // At least one medoid stays near a blob (norm well below the outlier).
        assert!(medoid_norms.iter().any(|&n| n < 100.0));
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(KMedoids::fit(&[], &KMedoidsConfig::default(), 0).is_err());
        let points = vec![vec![1.0], vec![2.0]];
        assert!(KMedoids::fit(
            &points,
            &KMedoidsConfig {
                k: 0,
                ..Default::default()
            },
            0
        )
        .is_err());
        assert!(KMedoids::fit(
            &points,
            &KMedoidsConfig {
                k: 3,
                ..Default::default()
            },
            0
        )
        .is_err());
    }

    #[test]
    fn deterministic_in_seed_and_batch_consistency() {
        let points = two_blobs();
        let a = KMedoids::fit(&points, &KMedoidsConfig::default(), 5).unwrap();
        let b = KMedoids::fit(&points, &KMedoidsConfig::default(), 5).unwrap();
        assert_eq!(a, b);
        let batch = a.predict_batch(&points);
        for (p, &c) in points.iter().zip(batch.iter()) {
            assert_eq!(a.predict(p), c);
        }
        assert!(a.total_cost() >= 0.0);
    }
}
