//! Flat, cache-friendly compilation of fitted random forests.
//!
//! The boxed [`DecisionTree`] representation chases a `Box<Node>` pointer per
//! split, so every level of every tree of every window prediction is a
//! dependent cache miss. [`FlatForest`] compiles a fitted ensemble into
//! struct-of-arrays node storage — split feature, threshold, child indices
//! and leaf probability each in one contiguous `Vec` — and predicts batches
//! over a single flat row-major feature matrix, parallel across samples.
//!
//! Predictions are **bit-identical** to the boxed forest: node traversal
//! applies the same `<=` comparisons in the same order and the ensemble
//! probability is accumulated in the same tree order with the same floating
//! point operations (a property-tested invariant).

use crate::error::MlError;
use crate::forest::RandomForest;
use crate::tree::Node;

/// Sentinel marking a leaf in the `feature` array.
pub(crate) const LEAF: u32 = u32::MAX;

/// A fitted random forest compiled into struct-of-arrays node storage.
///
/// # Example
///
/// ```
/// use seizure_ml::{Dataset, FlatForest, RandomForest, RandomForestConfig};
///
/// # fn main() -> Result<(), seizure_ml::MlError> {
/// let data = Dataset::new(
///     (0..30).map(|i| vec![i as f64, (i * 7 % 5) as f64]).collect(),
///     (0..30).map(|i| i >= 15).collect(),
/// )?;
/// let forest = RandomForest::fit(&data, &RandomForestConfig::default(), 1)?;
/// let flat = FlatForest::from_forest(&forest);
///
/// // Same predictions, flat batch input: two samples ([29, 1] and [1, 3]).
/// let matrix = [29.0, 1.0, 1.0, 3.0];
/// let probas = flat.predict_proba_batch(&matrix, 2)?;
/// assert_eq!(probas[0], forest.predict_proba(&[29.0, 1.0]));
/// assert_eq!(probas[1], forest.predict_proba(&[1.0, 3.0]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FlatForest {
    pub(crate) num_features: usize,
    /// Index of each tree's root node in the node arrays.
    pub(crate) roots: Vec<u32>,
    /// Split feature per node; [`LEAF`] marks leaves.
    pub(crate) feature: Vec<u32>,
    /// Split threshold per node (unused for leaves).
    pub(crate) threshold: Vec<f64>,
    /// Left child (taken when `sample[feature] <= threshold`).
    pub(crate) left: Vec<u32>,
    /// Right child.
    pub(crate) right: Vec<u32>,
    /// Positive-class probability for leaves (unused for splits).
    pub(crate) leaf_prob: Vec<f64>,
}

impl FlatForest {
    /// Compiles a fitted boxed forest into flat node storage.
    pub fn from_forest(forest: &RandomForest) -> Self {
        let mut flat = Self {
            num_features: forest.num_features(),
            roots: Vec::with_capacity(forest.num_trees()),
            feature: Vec::new(),
            threshold: Vec::new(),
            left: Vec::new(),
            right: Vec::new(),
            leaf_prob: Vec::new(),
        };
        for tree in forest.trees() {
            let root = flat.flatten(tree.root());
            flat.roots.push(root);
        }
        flat
    }

    /// Assembles a flat forest directly from struct-of-arrays node storage.
    /// Used by the training engine, which grows trees in arena layout and
    /// never materializes boxed nodes.
    pub(crate) fn from_raw_parts(
        num_features: usize,
        roots: Vec<u32>,
        feature: Vec<u32>,
        threshold: Vec<f64>,
        left: Vec<u32>,
        right: Vec<u32>,
        leaf_prob: Vec<f64>,
    ) -> Self {
        Self {
            num_features,
            roots,
            feature,
            threshold,
            left,
            right,
            leaf_prob,
        }
    }

    fn push_node(&mut self, feature: u32, threshold: f64, prob: f64) -> u32 {
        let idx = self.feature.len() as u32;
        assert!(idx < LEAF, "forest exceeds u32 node indexing");
        self.feature.push(feature);
        self.threshold.push(threshold);
        self.left.push(0);
        self.right.push(0);
        self.leaf_prob.push(prob);
        idx
    }

    fn flatten(&mut self, node: &Node) -> u32 {
        match node {
            Node::Leaf { probability } => self.push_node(LEAF, 0.0, *probability),
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                let idx = self.push_node(*feature as u32, *threshold, 0.0);
                let left_idx = self.flatten(left);
                let right_idx = self.flatten(right);
                self.left[idx as usize] = left_idx;
                self.right[idx as usize] = right_idx;
                idx
            }
        }
    }

    /// Number of trees in the compiled ensemble.
    pub fn num_trees(&self) -> usize {
        self.roots.len()
    }

    /// Number of features the forest was trained on.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Total number of nodes across all trees.
    pub fn num_nodes(&self) -> usize {
        self.feature.len()
    }

    /// Positive-class probability of one tree for one sample.
    // lint: hot-path
    #[inline]
    fn tree_proba(&self, root: u32, sample: &[f64]) -> f64 {
        let mut idx = root as usize;
        loop {
            let feature = self.feature[idx];
            if feature == LEAF {
                return self.leaf_prob[idx];
            }
            idx = if sample[feature as usize] <= self.threshold[idx] {
                self.left[idx] as usize
            } else {
                self.right[idx] as usize
            };
        }
    }

    /// Average positive-class probability over all trees — bit-identical to
    /// [`RandomForest::predict_proba`].
    ///
    /// # Panics
    ///
    /// Panics if the sample has fewer features than the training data.
    // lint: hot-path
    pub fn predict_proba(&self, sample: &[f64]) -> f64 {
        let sum: f64 = self.roots.iter().map(|&r| self.tree_proba(r, sample)).sum();
        sum / self.roots.len() as f64
    }

    /// Majority-vote class prediction — identical to
    /// [`RandomForest::predict`].
    pub fn predict(&self, sample: &[f64]) -> bool {
        2 * self.votes(sample) >= self.roots.len()
    }

    // lint: hot-path
    fn votes(&self, sample: &[f64]) -> usize {
        self.roots
            .iter()
            .filter(|&&r| self.tree_proba(r, sample) >= 0.5)
            .count()
    }

    fn validate_matrix(&self, matrix: &[f64], num_features: usize) -> Result<usize, MlError> {
        if num_features != self.num_features {
            return Err(MlError::DimensionMismatch {
                detail: format!(
                    "matrix has {num_features} features but the forest was trained on {}",
                    self.num_features
                ),
            });
        }
        if num_features == 0 || !matrix.len().is_multiple_of(num_features) {
            return Err(MlError::DimensionMismatch {
                detail: format!(
                    "flat matrix of {} values is not a multiple of {num_features} features",
                    matrix.len()
                ),
            });
        }
        Ok(matrix.len() / num_features)
    }

    /// Predicts class probabilities for every row of a flat row-major matrix
    /// (`num_samples * num_features` values), parallel over samples. Each
    /// probability is bit-identical to [`RandomForest::predict_proba`] on the
    /// corresponding row.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] if `num_features` does not
    /// match the training data or does not divide `matrix.len()`.
    pub fn predict_proba_batch(
        &self,
        matrix: &[f64],
        num_features: usize,
    ) -> Result<Vec<f64>, MlError> {
        let mut out = Vec::new();
        self.predict_proba_batch_into(matrix, num_features, &mut out)?;
        Ok(out)
    }

    /// Allocation-free twin of [`FlatForest::predict_proba_batch`]: clears
    /// `out` and refills it in place, so a buffer reused across calls only
    /// allocates when a batch first outgrows it.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] under the same conditions as
    /// [`FlatForest::predict_proba_batch`] (leaving `out` untouched).
    // lint: hot-path
    pub fn predict_proba_batch_into(
        &self,
        matrix: &[f64],
        num_features: usize,
        out: &mut Vec<f64>,
    ) -> Result<(), MlError> {
        let samples = self.validate_matrix(matrix, num_features)?;
        out.clear();
        out.resize(samples, 0.0);
        seizure_parallel::par_fill(out, |i| {
            self.predict_proba(&matrix[i * num_features..(i + 1) * num_features])
        });
        Ok(())
    }

    /// Majority-vote predictions for every row of a flat row-major matrix,
    /// parallel over samples.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] under the same conditions as
    /// [`FlatForest::predict_proba_batch`].
    pub fn predict_batch(&self, matrix: &[f64], num_features: usize) -> Result<Vec<bool>, MlError> {
        let mut out = Vec::new();
        self.predict_batch_into(matrix, num_features, &mut out)?;
        Ok(out)
    }

    /// Allocation-free twin of [`FlatForest::predict_batch`]: clears `out`
    /// and refills it in place (votes are compared against the majority
    /// threshold directly in the parallel fill, no staging buffer).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] under the same conditions as
    /// [`FlatForest::predict_proba_batch`] (leaving `out` untouched).
    // lint: hot-path
    pub fn predict_batch_into(
        &self,
        matrix: &[f64],
        num_features: usize,
        out: &mut Vec<bool>,
    ) -> Result<(), MlError> {
        let samples = self.validate_matrix(matrix, num_features)?;
        out.clear();
        out.resize(samples, false);
        seizure_parallel::par_fill_slice(out, |i| {
            2 * self.votes(&matrix[i * num_features..(i + 1) * num_features]) >= self.roots.len()
        });
        Ok(())
    }
}

impl From<&RandomForest> for FlatForest {
    fn from(forest: &RandomForest) -> Self {
        Self::from_forest(forest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::forest::RandomForestConfig;

    fn blob_dataset(n_per_class: usize, separation: f64) -> Dataset {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_per_class {
            let jitter1 = ((i * 37 + 13) % 101) as f64 / 101.0 - 0.5;
            let jitter2 = ((i * 53 + 29) % 97) as f64 / 97.0 - 0.5;
            rows.push(vec![jitter1, jitter2, ((i % 7) as f64) / 7.0]);
            labels.push(false);
            rows.push(vec![
                separation + jitter2,
                separation + jitter1,
                ((i % 5) as f64) / 5.0,
            ]);
            labels.push(true);
        }
        Dataset::new(rows, labels).unwrap()
    }

    fn fitted(seed: u64) -> (Dataset, RandomForest) {
        let data = blob_dataset(40, 2.0);
        let config = RandomForestConfig {
            n_trees: 15,
            max_depth: 7,
            ..RandomForestConfig::default()
        };
        let forest = RandomForest::fit(&data, &config, seed).unwrap();
        (data, forest)
    }

    #[test]
    fn compilation_preserves_shape() {
        let (_, forest) = fitted(1);
        let flat = FlatForest::from_forest(&forest);
        assert_eq!(flat.num_trees(), forest.num_trees());
        assert_eq!(flat.num_features(), forest.num_features());
        assert!(flat.num_nodes() >= flat.num_trees());
        let also_flat: FlatForest = (&forest).into();
        assert_eq!(also_flat, flat);
    }

    #[test]
    fn predictions_are_bit_identical_to_boxed_forest() {
        let (data, forest) = fitted(2);
        let flat = FlatForest::from_forest(&forest);
        for row in data.features() {
            assert_eq!(
                forest.predict_proba(row).to_bits(),
                flat.predict_proba(row).to_bits()
            );
            assert_eq!(forest.predict(row), flat.predict(row));
        }
    }

    #[test]
    fn batch_predictions_match_per_sample_paths() {
        let (data, forest) = fitted(3);
        let flat = FlatForest::from_forest(&forest);
        let matrix: Vec<f64> = data.features().iter().flatten().copied().collect();
        let probas = flat.predict_proba_batch(&matrix, 3).unwrap();
        let classes = flat.predict_batch(&matrix, 3).unwrap();
        assert_eq!(probas.len(), data.len());
        assert_eq!(classes.len(), data.len());
        for ((row, p), c) in data.features().iter().zip(&probas).zip(&classes) {
            assert_eq!(forest.predict_proba(row).to_bits(), p.to_bits());
            assert_eq!(forest.predict(row), *c);
        }
    }

    #[test]
    fn into_variants_reuse_buffers_across_batches() {
        let (data, forest) = fitted(5);
        let flat = FlatForest::from_forest(&forest);
        let matrix: Vec<f64> = data.features().iter().flatten().copied().collect();
        let mut probas = Vec::new();
        let mut classes = Vec::new();
        // Shrinking and growing batches through the same buffers.
        for take in [data.len(), 3, data.len() / 2] {
            let slice = &matrix[..take * 3];
            flat.predict_proba_batch_into(slice, 3, &mut probas)
                .unwrap();
            flat.predict_batch_into(slice, 3, &mut classes).unwrap();
            assert_eq!(probas, flat.predict_proba_batch(slice, 3).unwrap());
            assert_eq!(classes, flat.predict_batch(slice, 3).unwrap());
        }
        // Errors leave the buffers untouched.
        let before = classes.clone();
        assert!(flat
            .predict_batch_into(&[1.0, 2.0], 2, &mut classes)
            .is_err());
        assert_eq!(classes, before);
    }

    #[test]
    fn batch_rejects_bad_matrices() {
        let (_, forest) = fitted(4);
        let flat = FlatForest::from_forest(&forest);
        // Wrong feature count.
        assert!(flat.predict_proba_batch(&[1.0, 2.0], 2).is_err());
        // Right feature count, misaligned buffer.
        assert!(flat.predict_proba_batch(&[1.0, 2.0, 3.0, 4.0], 3).is_err());
        assert!(flat.predict_batch(&[1.0, 2.0, 3.0, 4.0], 3).is_err());
        // Empty batch is fine.
        assert_eq!(flat.predict_proba_batch(&[], 3).unwrap().len(), 0);
    }

    #[test]
    fn single_leaf_forest_flattens() {
        let data = Dataset::new(vec![vec![1.0], vec![2.0]], vec![true, true]).unwrap();
        let config = RandomForestConfig {
            n_trees: 3,
            ..RandomForestConfig::default()
        };
        let forest = RandomForest::fit(&data, &config, 0).unwrap();
        let flat = FlatForest::from_forest(&forest);
        assert_eq!(flat.num_nodes(), 3);
        assert_eq!(flat.predict_proba(&[5.0]), 1.0);
        assert!(flat.predict(&[0.0]));
    }
}
