//! k-means clustering.
//!
//! k-means (with k-means++ initialization) is one of the two unsupervised
//! baselines the paper's related work identifies as the best-performing
//! clustering approach for seizure detection (Smart & Chen, CIBCB 2015); the
//! baseline experiment compares it against the supervised random forest.

use crate::error::MlError;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Hyper-parameters of [`KMeans::fit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum number of Lloyd iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on the total centroid movement.
    pub tolerance: f64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            k: 2,
            max_iterations: 100,
            tolerance: 1e-6,
        }
    }
}

/// A fitted k-means model.
///
/// # Example
///
/// ```
/// use seizure_ml::kmeans::{KMeans, KMeansConfig};
///
/// # fn main() -> Result<(), seizure_ml::MlError> {
/// let points = vec![
///     vec![0.0, 0.0], vec![0.1, -0.1], vec![-0.2, 0.1],
///     vec![5.0, 5.0], vec![5.1, 4.9], vec![4.8, 5.2],
/// ];
/// let model = KMeans::fit(&points, &KMeansConfig::default(), 1)?;
/// let a = model.predict(&[0.0, 0.1]);
/// let b = model.predict(&[5.0, 5.0]);
/// assert_ne!(a, b);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KMeans {
    centroids: Vec<Vec<f64>>,
    inertia: f64,
    iterations: usize,
}

/// Squared Euclidean distance between two equally long vectors.
pub(crate) fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl KMeans {
    /// Fits k-means to `points` with k-means++ initialization.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidDataset`] if `points` is empty or rows have
    /// inconsistent lengths, and [`MlError::InvalidParameter`] if `k` is zero
    /// or exceeds the number of points.
    pub fn fit(points: &[Vec<f64>], config: &KMeansConfig, seed: u64) -> Result<Self, MlError> {
        validate_points(points)?;
        if config.k == 0 || config.k > points.len() {
            return Err(MlError::InvalidParameter {
                name: "k",
                reason: format!("k must lie in [1, {}], got {}", points.len(), config.k),
            });
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut centroids = plus_plus_init(points, config.k, &mut rng);
        let mut assignments = vec![0usize; points.len()];
        let mut iterations = 0;

        for iter in 0..config.max_iterations {
            iterations = iter + 1;
            // Assignment step.
            for (i, p) in points.iter().enumerate() {
                assignments[i] = nearest_centroid(p, &centroids).0;
            }
            // Update step.
            let mut new_centroids = vec![vec![0.0; points[0].len()]; config.k];
            let mut counts = vec![0usize; config.k];
            for (p, &a) in points.iter().zip(assignments.iter()) {
                counts[a] += 1;
                for (acc, v) in new_centroids[a].iter_mut().zip(p.iter()) {
                    *acc += v;
                }
            }
            for (c, (centroid, count)) in new_centroids.iter_mut().zip(counts.iter()).enumerate() {
                if *count == 0 {
                    // Re-seed an empty cluster at a random point.
                    let idx = rng.gen_range(0..points.len());
                    *centroid = points[idx].clone();
                } else {
                    for v in centroid.iter_mut() {
                        *v /= *count as f64;
                    }
                    let _ = c;
                }
            }
            let movement: f64 = centroids
                .iter()
                .zip(new_centroids.iter())
                .map(|(a, b)| squared_distance(a, b))
                .sum();
            centroids = new_centroids;
            if movement < config.tolerance {
                break;
            }
        }

        let inertia = points
            .iter()
            .map(|p| nearest_centroid(p, &centroids).1)
            .sum();
        Ok(Self {
            centroids,
            inertia,
            iterations,
        })
    }

    /// Cluster centroids.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Sum of squared distances of every training point to its centroid.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Number of Lloyd iterations performed during fitting.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Index of the centroid closest to `point`.
    pub fn predict(&self, point: &[f64]) -> usize {
        nearest_centroid(point, &self.centroids).0
    }

    /// Cluster assignment for a batch of points.
    pub fn predict_batch(&self, points: &[Vec<f64>]) -> Vec<usize> {
        points.iter().map(|p| self.predict(p)).collect()
    }
}

pub(crate) fn validate_points(points: &[Vec<f64>]) -> Result<(), MlError> {
    if points.is_empty() {
        return Err(MlError::InvalidDataset {
            detail: "clustering needs at least one point".to_string(),
        });
    }
    let width = points[0].len();
    if width == 0 || points.iter().any(|p| p.len() != width) {
        return Err(MlError::InvalidDataset {
            detail: "points must be non-empty and of equal dimension".to_string(),
        });
    }
    Ok(())
}

fn nearest_centroid(point: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d = squared_distance(point, c);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

fn plus_plus_init<R: Rng>(points: &[Vec<f64>], k: usize, rng: &mut R) -> Vec<Vec<f64>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    while centroids.len() < k {
        let distances: Vec<f64> = points
            .iter()
            .map(|p| nearest_centroid(p, &centroids).1)
            .collect();
        let total: f64 = distances.iter().sum();
        if total <= 0.0 {
            // All points coincide with existing centroids; duplicate one.
            centroids.push(points[rng.gen_range(0..points.len())].clone());
            continue;
        }
        let mut target = rng.gen_range(0.0..total);
        let mut chosen = points.len() - 1;
        for (i, d) in distances.iter().enumerate() {
            if target <= *d {
                chosen = i;
                break;
            }
            target -= d;
        }
        centroids.push(points[chosen].clone());
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut points = Vec::new();
        for i in 0..30 {
            let j = (i * 17 % 7) as f64 / 7.0 - 0.5;
            points.push(vec![j * 0.5, -j * 0.3]);
            points.push(vec![10.0 + j * 0.5, 10.0 - j * 0.4]);
        }
        points
    }

    #[test]
    fn separates_two_well_separated_blobs() {
        let points = two_blobs();
        let model = KMeans::fit(&points, &KMeansConfig::default(), 3).unwrap();
        let near_origin = model.predict(&[0.0, 0.0]);
        let far = model.predict(&[10.0, 10.0]);
        assert_ne!(near_origin, far);
        // All points in each blob share their blob's cluster.
        for (i, p) in points.iter().enumerate() {
            let expected = if i % 2 == 0 { near_origin } else { far };
            assert_eq!(model.predict(p), expected);
        }
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let points = two_blobs();
        let k1 = KMeans::fit(
            &points,
            &KMeansConfig {
                k: 1,
                ..Default::default()
            },
            1,
        )
        .unwrap();
        let k2 = KMeans::fit(
            &points,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
            1,
        )
        .unwrap();
        let k4 = KMeans::fit(
            &points,
            &KMeansConfig {
                k: 4,
                ..Default::default()
            },
            1,
        )
        .unwrap();
        assert!(k2.inertia() < k1.inertia());
        assert!(k4.inertia() <= k2.inertia() + 1e-9);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(KMeans::fit(&[], &KMeansConfig::default(), 0).is_err());
        let points = vec![vec![1.0], vec![1.0, 2.0]];
        assert!(KMeans::fit(&points, &KMeansConfig::default(), 0).is_err());
        let points = vec![vec![1.0], vec![2.0]];
        assert!(KMeans::fit(
            &points,
            &KMeansConfig {
                k: 0,
                ..Default::default()
            },
            0
        )
        .is_err());
        assert!(KMeans::fit(
            &points,
            &KMeansConfig {
                k: 5,
                ..Default::default()
            },
            0
        )
        .is_err());
    }

    #[test]
    fn fit_is_deterministic_in_seed() {
        let points = two_blobs();
        let a = KMeans::fit(&points, &KMeansConfig::default(), 7).unwrap();
        let b = KMeans::fit(&points, &KMeansConfig::default(), 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn identical_points_do_not_panic() {
        let points = vec![vec![3.0, 3.0]; 10];
        let model = KMeans::fit(
            &points,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
            0,
        )
        .unwrap();
        assert_eq!(model.centroids().len(), 3);
        assert!(model.inertia() < 1e-9);
    }

    #[test]
    fn predict_batch_matches_predict() {
        let points = two_blobs();
        let model = KMeans::fit(&points, &KMeansConfig::default(), 2).unwrap();
        let batch = model.predict_batch(&points);
        for (p, &b) in points.iter().zip(batch.iter()) {
            assert_eq!(model.predict(p), b);
        }
        assert!(model.iterations() >= 1);
    }
}
