//! Error type for the machine-learning substrate.

use std::error::Error;
use std::fmt;

/// Error returned by the machine-learning substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// The dataset is empty or its rows/labels are inconsistent.
    InvalidDataset {
        /// Description of the problem.
        detail: String,
    },
    /// A hyper-parameter was out of range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Description of the violated constraint.
        reason: String,
    },
    /// The model has not been fitted or received incompatible input at
    /// prediction time.
    DimensionMismatch {
        /// Description of the mismatch.
        detail: String,
    },
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::InvalidDataset { detail } => write!(f, "invalid dataset: {detail}"),
            MlError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            MlError::DimensionMismatch { detail } => write!(f, "dimension mismatch: {detail}"),
        }
    }
}

impl Error for MlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(MlError::InvalidDataset {
            detail: "empty".into()
        }
        .to_string()
        .contains("empty"));
        assert!(MlError::InvalidParameter {
            name: "n_trees",
            reason: "must be positive".into()
        }
        .to_string()
        .contains("n_trees"));
        assert!(MlError::DimensionMismatch {
            detail: "3 vs 4".into()
        }
        .to_string()
        .contains("3 vs 4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MlError>();
    }
}
