//! Parallel, scratch-backed random-forest training engine.
//!
//! [`RandomForest::fit`](crate::forest::RandomForest::fit) re-sorts the
//! node's samples for every candidate feature of every split and allocates a
//! boxed node per tree position, which makes retraining the dominant cost of
//! the paper's self-learning loop. This module is the training twin of
//! [`FlatForest`]: a [`TrainingSet`] stores the design matrix column-major
//! and presorts every feature column **once**; tree growth then runs on a
//! reusable [`SplitScratch`] whose per-feature index segments are kept sorted
//! by stable partitioning at each split (no per-node sorting), and nodes are
//! appended to a [`NodeArena`] in DFS preorder (no per-node boxing). Trees
//! are fitted in parallel over the `seizure-parallel` scoped threads.
//!
//! Two refinements serve the self-learning loop, whose training set only
//! ever *grows*:
//!
//! * [`TrainingSet::append_rows`] merges new sample ids into the presorted
//!   per-feature index arrays instead of re-sorting the untouched prefix, so
//!   growing the pool costs one linear merge per feature;
//! * the segment/partition buffers store **u16 sample ids** whenever the set
//!   holds fewer than 65 536 samples ([`IdWidth::Auto`]), halving the memory
//!   traffic of every stable partition; the wide (u32) path packs the label
//!   into bit 31 and both widths produce bit-identical forests (a
//!   property-tested invariant).
//!
//! The engine is **bit-identical** to the boxed path: bootstrap draws come
//! from the same shared RNG stream consumed in tree order, each tree's
//! feature subsampling replays the same per-tree ChaCha8 stream, and the
//! split scan applies the same floating-point operations in the same order as
//! [`DecisionTree::fit_with_indices`](crate::tree::DecisionTree::fit_with_indices),
//! so [`train_forest`] equals `FlatForest::from_forest(&RandomForest::fit(..))`
//! node for node (a property-tested invariant).
//!
//! For retraining that reuses trees across pool growth instead of refitting
//! the whole ensemble, see
//! [`IncrementalTrainer`](crate::incremental::IncrementalTrainer), which is
//! built on the same scratch machinery.

use crate::dataset::Dataset;
use crate::error::MlError;
use crate::flat::{FlatForest, LEAF};
use crate::forest::RandomForestConfig;
use crate::tree::{gini, DecisionTreeConfig};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

pub use crate::incremental::{IncrementalTrainer, IncrementalTrainerConfig};

/// A design matrix prepared for scratch-backed tree growth: column-major
/// feature storage plus one presorted index array per feature, shared
/// read-only by every tree of the ensemble.
///
/// # Example
///
/// ```
/// use seizure_ml::{RandomForestConfig, TrainingSet};
///
/// # fn main() -> Result<(), seizure_ml::MlError> {
/// // Four samples of two features, row-major.
/// let rows = [0.0, 1.0, 0.2, 0.8, 0.9, 0.1, 1.0, 0.0];
/// let set = TrainingSet::from_rows(&rows, 2, &[false, false, true, true])?;
/// let config = RandomForestConfig { n_trees: 5, ..RandomForestConfig::default() };
/// let forest = seizure_ml::train_forest(&set, &config, 1)?;
/// assert_eq!(forest.num_trees(), 5);
/// assert!(forest.predict(&[0.95, 0.05]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingSet {
    num_samples: usize,
    num_features: usize,
    /// Column-major feature values: `columns[f * n + i]` is feature `f` of
    /// sample `i`.
    columns: Vec<f64>,
    labels: Vec<bool>,
    /// Per-feature presorted sample ids: `order[f * n ..][..n]` lists the
    /// sample indices in ascending order of feature `f` (total order by
    /// `(value, id)` — `f64::total_cmp` with stable ties).
    order: Vec<u32>,
}

impl TrainingSet {
    /// Builds a training set from a flat row-major matrix
    /// (`labels.len() * num_features` values) and presorts every column.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidDataset`] for an empty set or zero feature
    /// count and [`MlError::DimensionMismatch`] if the buffer length does not
    /// equal `labels.len() * num_features`.
    pub fn from_rows(rows: &[f64], num_features: usize, labels: &[bool]) -> Result<Self, MlError> {
        if num_features == 0 {
            return Err(MlError::InvalidDataset {
                detail: "training set must contain at least one feature".to_string(),
            });
        }
        let n = labels.len();
        if rows.len() != n * num_features {
            return Err(MlError::DimensionMismatch {
                detail: format!(
                    "flat matrix of {} values does not cover {n} samples x {num_features} features",
                    rows.len()
                ),
            });
        }
        let mut columns = vec![0.0; n * num_features];
        for (i, row) in rows.chunks_exact(num_features).enumerate() {
            for (f, &x) in row.iter().enumerate() {
                columns[f * n + i] = x;
            }
        }
        Self::from_columns(columns, num_features, labels.to_vec())
    }

    /// Builds a training set from column-major storage (`columns[f * n + i]`
    /// is feature `f` of sample `i`), presorting every column. This is the
    /// layout [`TrainingSet`] keeps internally, so the persistence codec
    /// restores snapshots through this constructor without a row-major
    /// round-trip; the presort is a pure function of the columns, making the
    /// rebuilt order arrays identical to the saved set's.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TrainingSet::from_rows`].
    pub(crate) fn from_columns(
        columns: Vec<f64>,
        num_features: usize,
        labels: Vec<bool>,
    ) -> Result<Self, MlError> {
        if labels.is_empty() {
            return Err(MlError::InvalidDataset {
                detail: "training set must contain at least one sample".to_string(),
            });
        }
        if num_features == 0 {
            return Err(MlError::InvalidDataset {
                detail: "training set must contain at least one feature".to_string(),
            });
        }
        let n = labels.len();
        if columns.len() != n * num_features {
            return Err(MlError::DimensionMismatch {
                detail: format!(
                    "column storage of {} values does not cover {n} samples x {num_features} features",
                    columns.len()
                ),
            });
        }
        if n > (u32::MAX >> 1) as usize {
            return Err(MlError::InvalidDataset {
                detail: "training sets are limited to 2^31 samples (31-bit ids + label bit)"
                    .to_string(),
            });
        }
        let mut order = Vec::with_capacity(n * num_features);
        let mut ids: Vec<u32> = Vec::with_capacity(n);
        for f in 0..num_features {
            let col = &columns[f * n..(f + 1) * n];
            ids.clear();
            ids.extend(0..n as u32);
            // NaN-safe total order (same comparator as the boxed split
            // finder); the stable sort breaks value ties by sample id, which
            // is what `append_rows`'s merge reproduces.
            ids.sort_by(|&a, &b| col[a as usize].total_cmp(&col[b as usize]));
            order.extend_from_slice(&ids);
        }
        Ok(Self {
            num_samples: n,
            num_features,
            columns,
            labels,
            order,
        })
    }

    /// Builds a training set from a row-vector [`Dataset`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`TrainingSet::from_rows`].
    pub fn from_dataset(data: &Dataset) -> Result<Self, MlError> {
        let num_features = data.num_features();
        let mut rows = Vec::with_capacity(data.len() * num_features);
        for row in data.features() {
            rows.extend_from_slice(row);
        }
        Self::from_rows(&rows, num_features, data.labels())
    }

    /// Appends new samples (flat row-major, `labels.len() * num_features`
    /// values) to the set **without re-sorting the untouched prefix**: the
    /// new ids are sorted among themselves and merged into each presorted
    /// per-feature index array in one linear pass, so the result is exactly
    /// the set [`TrainingSet::from_rows`] would build from the concatenated
    /// matrix (value ties keep ascending sample ids).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidDataset`] for an empty append and
    /// [`MlError::DimensionMismatch`] if the buffer length does not equal
    /// `labels.len() * num_features` features.
    pub fn append_rows(&mut self, rows: &[f64], labels: &[bool]) -> Result<(), MlError> {
        if labels.is_empty() {
            return Err(MlError::InvalidDataset {
                detail: "append requires at least one sample".to_string(),
            });
        }
        let k = labels.len();
        if rows.len() != k * self.num_features {
            return Err(MlError::DimensionMismatch {
                detail: format!(
                    "flat matrix of {} values does not cover {k} samples x {} features",
                    rows.len(),
                    self.num_features
                ),
            });
        }
        let n = self.num_samples;
        let total = n + k;
        if total > (u32::MAX >> 1) as usize {
            return Err(MlError::InvalidDataset {
                detail: "training sets are limited to 2^31 samples (31-bit ids + label bit)"
                    .to_string(),
            });
        }

        // Re-lay the column-major storage for the grown sample count and
        // scatter the appended rows behind each column's existing values.
        let mut columns = vec![0.0; total * self.num_features];
        for f in 0..self.num_features {
            columns[f * total..f * total + n].copy_from_slice(&self.columns[f * n..(f + 1) * n]);
        }
        for (i, row) in rows.chunks_exact(self.num_features).enumerate() {
            for (f, &x) in row.iter().enumerate() {
                columns[f * total + n + i] = x;
            }
        }

        // Merge the new ids into every presorted order array. The existing
        // run is already sorted by (value, id) and every new id is larger
        // than every existing one, so taking the existing side on value ties
        // reproduces the full stable sort exactly.
        let mut order = vec![0u32; total * self.num_features];
        let mut fresh: Vec<u32> = Vec::with_capacity(k);
        for f in 0..self.num_features {
            let col = &columns[f * total..(f + 1) * total];
            fresh.clear();
            fresh.extend(n as u32..total as u32);
            fresh.sort_by(|&a, &b| col[a as usize].total_cmp(&col[b as usize]));
            let old = &self.order[f * n..(f + 1) * n];
            let dst = &mut order[f * total..(f + 1) * total];
            let (mut i, mut j) = (0usize, 0usize);
            for slot in dst.iter_mut() {
                let take_old = i < n
                    && (j >= k
                        || col[old[i] as usize].total_cmp(&col[fresh[j] as usize])
                            != std::cmp::Ordering::Greater);
                if take_old {
                    *slot = old[i];
                    i += 1;
                } else {
                    *slot = fresh[j];
                    j += 1;
                }
            }
        }

        self.columns = columns;
        self.order = order;
        self.labels.extend_from_slice(labels);
        self.num_samples = total;
        Ok(())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.num_samples
    }

    /// Returns `true` if the set holds no samples (never: construction
    /// rejects empty sets).
    pub fn is_empty(&self) -> bool {
        self.num_samples == 0
    }

    /// Number of features per sample.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Labels, in sample order.
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// Column-major feature storage (`columns[f * n + i]` is feature `f` of
    /// sample `i`) — the persisted representation of the set.
    pub(crate) fn columns(&self) -> &[f64] {
        &self.columns
    }

    /// Value of `feature` for `sample`, off the column-major storage.
    #[cfg(test)]
    fn value(&self, feature: usize, sample: u32) -> f64 {
        self.columns[feature * self.num_samples + sample as usize]
    }
}

/// Mask extracting the sample id from a packed wide (u32) id+label word.
const ID_MASK: u32 = u32::MAX >> 1;

/// Sample-id word of the tree-growth scratch. The wide word (`u32`) packs
/// the sample's label into bit 31 so the split scan never gathers from the
/// label array; the narrow word (`u16`) holds the bare id — half the
/// partition traffic — and reads the label from the (cache-resident, at most
/// 64 KiB) label table instead.
pub(crate) trait SampleWord: Copy + Default + Send + 'static {
    /// Packs a sample id (wide words also pack the label).
    fn pack(id: u32, label: bool) -> Self;
    /// The sample id.
    fn id(self) -> usize;
    /// The sample's label as 0/1.
    fn label(self, labels: &[bool]) -> usize;
}

impl SampleWord for u32 {
    #[inline]
    fn pack(id: u32, label: bool) -> Self {
        id | ((label as u32) << 31)
    }

    #[inline]
    fn id(self) -> usize {
        (self & ID_MASK) as usize
    }

    #[inline]
    fn label(self, _labels: &[bool]) -> usize {
        (self >> 31) as usize
    }
}

impl SampleWord for u16 {
    #[inline]
    fn pack(id: u32, _label: bool) -> Self {
        id as u16
    }

    #[inline]
    fn id(self) -> usize {
        self as usize
    }

    #[inline]
    fn label(self, labels: &[bool]) -> usize {
        labels[self as usize] as usize
    }
}

/// Largest sample count the narrow (u16) id word can address.
const NARROW_LIMIT: usize = u16::MAX as usize + 1;

/// Width of the sample-id words in the tree-growth scratch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IdWidth {
    /// Narrow (u16) ids whenever the set holds fewer than 65 536 samples,
    /// wide (u32) ids otherwise.
    #[default]
    Auto,
    /// Force u16 ids (errors when the set exceeds 65 536 samples).
    Narrow,
    /// Force u32 ids.
    Wide,
}

/// Reusable per-worker scratch for growing one tree at a time: the per-tree
/// bootstrap multiset orders (one sorted segment per feature), the stable
/// partition buffer, the bootstrap count table and the candidate-feature
/// list. One scratch serves every tree a worker fits, so tree growth touches
/// the heap only when a buffer first grows.
#[derive(Debug, Default)]
struct SplitScratch<W> {
    /// Per-feature bootstrap multiset, column-major: `order[f * m ..][..m]`
    /// lists the drawn sample ids in ascending order of feature `f` as
    /// [`SampleWord`]s, so the split scan reads labels without a second
    /// gather (wide words) or from the small label table (narrow words).
    order: Vec<W>,
    /// Stable-partition staging buffer (`m` ids).
    buf: Vec<W>,
    /// Bootstrap multiplicity per sample (`n` counts).
    counts: Vec<u32>,
    /// Split-side table per sample (1 = left), evaluated once per split so
    /// partitioning the feature segments never re-gathers the split column.
    side: Vec<u8>,
    /// Candidate feature list shuffled per node.
    features: Vec<usize>,
}

impl<W: SampleWord> SplitScratch<W> {
    /// Prepares the scratch for one tree: zeroes the count table, tallies the
    /// bootstrap draws and materializes the per-feature sorted multisets from
    /// the training set's presorted columns.
    fn load_tree(&mut self, set: &TrainingSet, draws: &[u32]) {
        let n = set.num_samples;
        let m = draws.len();
        self.counts.clear();
        self.counts.resize(n, 0);
        for &d in draws {
            self.counts[d as usize] += 1;
        }
        self.buf.resize(m, W::default());
        self.side.clear();
        self.side.resize(n, 0);
        // Three spare slots absorb the unconditional overflow writes of the
        // branch-light emit below.
        let need = set.num_features * m + 3;
        if self.order.len() != need {
            self.order.resize(need, W::default());
        }
        let mut k = 0usize;
        for f in 0..set.num_features {
            for &s in &set.order[f * n..(f + 1) * n] {
                let c = self.counts[s as usize] as usize;
                let packed = W::pack(s, set.labels[s as usize]);
                // Branch-light emit: bootstrap multiplicities are almost
                // always <= 3, so three unconditional stores cover ~98% of
                // samples without a data-dependent branch; slots written past
                // `k + c` are overwritten by the following samples (or land
                // in the spare tail).
                let end = k + c;
                self.order[k] = packed;
                self.order[k + 1] = packed;
                self.order[k + 2] = packed;
                if c > 3 {
                    for slot in &mut self.order[k + 3..end] {
                        *slot = packed;
                    }
                }
                k = end;
            }
        }
        debug_assert_eq!(k, set.num_features * m);
    }
}

/// Append-only struct-of-arrays node storage for one growing tree, mirroring
/// the [`FlatForest`] layout (DFS preorder, [`LEAF`] sentinel in `feature`).
#[derive(Debug, Default, Clone, PartialEq)]
pub(crate) struct NodeArena {
    pub(crate) feature: Vec<u32>,
    pub(crate) threshold: Vec<f64>,
    pub(crate) left: Vec<u32>,
    pub(crate) right: Vec<u32>,
    pub(crate) leaf_prob: Vec<f64>,
}

impl NodeArena {
    fn push(&mut self, feature: u32, threshold: f64, prob: f64) -> u32 {
        let idx = self.feature.len() as u32;
        self.feature.push(feature);
        self.threshold.push(threshold);
        self.left.push(0);
        self.right.push(0);
        self.leaf_prob.push(prob);
        idx
    }

    pub(crate) fn len(&self) -> usize {
        self.feature.len()
    }
}

/// The per-tree seed feeding each tree's private feature-subsampling stream
/// (the same mixing the boxed forest applies).
pub(crate) fn tree_stream_seed(seed: u64, t: usize) -> u64 {
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(t as u64)
}

/// Validates the forest hyper-parameters against `set` and resolves them
/// into the per-tree configuration (shared by [`train_forest`] and the
/// incremental trainer).
pub(crate) fn resolve_tree_config(
    set: &TrainingSet,
    config: &RandomForestConfig,
) -> Result<DecisionTreeConfig, MlError> {
    if config.n_trees == 0 {
        return Err(MlError::InvalidParameter {
            name: "n_trees",
            reason: "the ensemble needs at least one tree".to_string(),
        });
    }
    if !(config.bootstrap_fraction > 0.0 && config.bootstrap_fraction <= 1.0) {
        return Err(MlError::InvalidParameter {
            name: "bootstrap_fraction",
            reason: format!("must lie in (0, 1], got {}", config.bootstrap_fraction),
        });
    }
    if config.max_depth == 0 {
        return Err(MlError::InvalidParameter {
            name: "max_depth",
            reason: "maximum depth must be at least 1".to_string(),
        });
    }
    let max_features = match config.max_features {
        Some(k) => {
            if k == 0 || k > set.num_features() {
                return Err(MlError::InvalidParameter {
                    name: "max_features",
                    reason: format!("must lie in [1, {}], got {k}", set.num_features()),
                });
            }
            k
        }
        None => ((set.num_features() as f64).sqrt().ceil() as usize).max(1),
    };
    Ok(DecisionTreeConfig {
        max_depth: config.max_depth,
        min_samples_split: config.min_samples_split,
        max_features: Some(max_features),
    })
}

/// One tree-fitting job: the bootstrap draw multiset (global sample ids,
/// repetitions allowed) and the seed of the tree's feature-subsampling
/// stream.
pub(crate) struct TreeJob<'a> {
    pub draws: &'a [u32],
    pub seed: u64,
}

/// Fits one arena per job in parallel (per-worker scratch, deterministic
/// per-tree RNG streams), dispatching on the sample-id width. Both widths
/// produce bit-identical arenas; the narrow path merely halves the partition
/// traffic.
pub(crate) fn fit_tree_jobs(
    set: &TrainingSet,
    tree_config: &DecisionTreeConfig,
    jobs: &[TreeJob<'_>],
    width: IdWidth,
) -> Result<Vec<NodeArena>, MlError> {
    let narrow = match width {
        IdWidth::Auto => set.len() < NARROW_LIMIT,
        IdWidth::Wide => false,
        IdWidth::Narrow => {
            if set.len() > NARROW_LIMIT {
                return Err(MlError::InvalidParameter {
                    name: "id_width",
                    reason: format!(
                        "narrow (u16) ids address at most {NARROW_LIMIT} samples, got {}",
                        set.len()
                    ),
                });
            }
            true
        }
    };
    if narrow {
        fit_tree_jobs_with::<u16>(set, tree_config, jobs)
    } else {
        fit_tree_jobs_with::<u32>(set, tree_config, jobs)
    }
}

fn fit_tree_jobs_with<W: SampleWord>(
    set: &TrainingSet,
    tree_config: &DecisionTreeConfig,
    jobs: &[TreeJob<'_>],
) -> Result<Vec<NodeArena>, MlError> {
    seizure_parallel::par_map_init::<_, _, MlError, _, _>(
        jobs.len(),
        1,
        || Ok(SplitScratch::<W>::default()),
        |scratch, t| {
            Ok(build_tree(
                set,
                jobs[t].draws,
                tree_config,
                jobs[t].seed,
                scratch,
            ))
        },
    )
}

/// Stitches per-tree arenas into one flat forest, offsetting split children
/// by each tree's base index (leaves keep the 0/0 children the boxed
/// compiler leaves behind, preserving exact equality).
pub(crate) fn stitch_forest(num_features: usize, trees: &[&NodeArena]) -> FlatForest {
    let total: usize = trees.iter().map(|t| t.len()).sum();
    assert!(
        (total as u64) < LEAF as u64,
        "forest exceeds u32 node indexing"
    );
    let mut roots = Vec::with_capacity(trees.len());
    let mut feature = Vec::with_capacity(total);
    let mut threshold = Vec::with_capacity(total);
    let mut left = Vec::with_capacity(total);
    let mut right = Vec::with_capacity(total);
    let mut leaf_prob = Vec::with_capacity(total);
    for tree in trees {
        let base = feature.len() as u32;
        roots.push(base);
        for i in 0..tree.len() {
            let is_split = tree.feature[i] != LEAF;
            feature.push(tree.feature[i]);
            threshold.push(tree.threshold[i]);
            left.push(if is_split { tree.left[i] + base } else { 0 });
            right.push(if is_split { tree.right[i] + base } else { 0 });
            leaf_prob.push(tree.leaf_prob[i]);
        }
    }
    FlatForest::from_raw_parts(
        num_features,
        roots,
        feature,
        threshold,
        left,
        right,
        leaf_prob,
    )
}

/// Fits a random forest on a prepared [`TrainingSet`], producing the flat
/// compiled representation directly. Trees are fitted in parallel (one
/// deterministic RNG stream per tree), and the result is bit-identical to
/// `FlatForest::from_forest(&RandomForest::fit(..))` with the same
/// configuration and seed. Sample ids are sized automatically
/// ([`IdWidth::Auto`]).
///
/// The bit-identity contract holds for feature matrices without NaN values
/// (every real feature path). With NaNs, both split finders are panic-free
/// and deterministic (`f64::total_cmp` total order), but the global presort
/// here and the boxed path's per-node sorts may order bit-identical NaNs
/// differently within a tie group and then choose different (degenerate)
/// splits.
///
/// # Errors
///
/// Returns [`MlError::InvalidParameter`] under the same conditions as
/// [`RandomForest::fit`](crate::forest::RandomForest::fit): zero `n_trees`,
/// a bootstrap fraction outside `(0, 1]`, zero `max_depth` or an
/// out-of-range `max_features`.
pub fn train_forest(
    set: &TrainingSet,
    config: &RandomForestConfig,
    seed: u64,
) -> Result<FlatForest, MlError> {
    train_forest_with_width(set, config, seed, IdWidth::Auto)
}

/// [`train_forest`] with an explicit sample-id width — both widths produce
/// bit-identical forests; this entry point exists so the equivalence is
/// testable and the wide path remains reachable below the auto threshold.
///
/// # Errors
///
/// Same conditions as [`train_forest`], plus [`MlError::InvalidParameter`]
/// when [`IdWidth::Narrow`] cannot address the set's samples.
pub fn train_forest_with_width(
    set: &TrainingSet,
    config: &RandomForestConfig,
    seed: u64,
    width: IdWidth,
) -> Result<FlatForest, MlError> {
    let tree_config = resolve_tree_config(set, config)?;

    // Bootstrap draws replay the boxed path's shared RNG stream: all trees'
    // indices are drawn sequentially up front so the fan-out cannot perturb
    // the sequence.
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let sample_count = ((set.len() as f64 * config.bootstrap_fraction).round() as usize).max(1);
    let mut draws: Vec<u32> = Vec::with_capacity(config.n_trees * sample_count);
    for _ in 0..config.n_trees * sample_count {
        draws.push(rng.gen_range(0..set.len()) as u32);
    }

    let jobs: Vec<TreeJob<'_>> = (0..config.n_trees)
        .map(|t| TreeJob {
            draws: &draws[t * sample_count..(t + 1) * sample_count],
            seed: tree_stream_seed(seed, t),
        })
        .collect();
    let trees = fit_tree_jobs(set, &tree_config, &jobs, width)?;
    let refs: Vec<&NodeArena> = trees.iter().collect();
    Ok(stitch_forest(set.num_features(), &refs))
}

/// Grows one tree on the scratch and returns its arena.
fn build_tree<W: SampleWord>(
    set: &TrainingSet,
    draws: &[u32],
    config: &DecisionTreeConfig,
    tree_seed: u64,
    scratch: &mut SplitScratch<W>,
) -> NodeArena {
    scratch.load_tree(set, draws);
    let mut rng = ChaCha8Rng::seed_from_u64(tree_seed);
    let mut arena = NodeArena::default();
    let pos: usize = scratch.order[..draws.len()]
        .iter()
        .map(|&s| s.label(&set.labels))
        .sum();
    build_node(
        set,
        scratch,
        &mut arena,
        config,
        NodeSpan {
            lo: 0,
            hi: draws.len(),
            pos,
        },
        0,
        &mut rng,
    );
    arena
}

/// One node's multiset segment (`[lo, hi)` across every feature's sorted
/// order) plus its positive count, threaded through the recursion so no node
/// recounts its labels.
#[derive(Clone, Copy)]
struct NodeSpan {
    lo: usize,
    hi: usize,
    pos: usize,
}

/// Recursively grows the node covering `span` (the same `[lo, hi)` range
/// across every feature's sorted segment), appending to `arena` in DFS
/// preorder exactly like the boxed builder recursion.
fn build_node<W: SampleWord>(
    set: &TrainingSet,
    scratch: &mut SplitScratch<W>,
    arena: &mut NodeArena,
    config: &DecisionTreeConfig,
    span: NodeSpan,
    depth: usize,
    rng: &mut ChaCha8Rng,
) -> u32 {
    let m = scratch.buf.len();
    let NodeSpan { lo, hi, pos } = span;
    let len = hi - lo;
    let p = pos as f64 / len as f64;
    if depth >= config.max_depth || len < config.min_samples_split || p == 0.0 || p == 1.0 {
        return arena.push(LEAF, 0.0, p);
    }

    let num_features = set.num_features;
    scratch.features.clear();
    scratch.features.extend(0..num_features);
    if let Some(k) = config.max_features {
        scratch.features.shuffle(rng);
        scratch.features.truncate(k);
    }

    let parent_impurity = gini(p);
    let total_pos = pos;
    let labels = &set.labels;
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)

    for &feature in &scratch.features {
        let seg = &scratch.order[feature * m + lo..feature * m + hi];
        let col = &set.columns[feature * set.num_samples..];
        let mut left_pos = 0usize;
        let mut prev_id = seg[0];
        let mut prev = col[prev_id.id()];
        for (split_at, &next_id) in seg.iter().enumerate().skip(1) {
            left_pos += prev_id.label(labels);
            let next = col[next_id.id()];
            if prev == next {
                prev_id = next_id;
                continue; // cannot split between identical values
            }
            let left_n = split_at;
            let right_n = len - split_at;
            let p_left = left_pos as f64 / left_n as f64;
            let p_right = (total_pos - left_pos) as f64 / right_n as f64;
            let weighted =
                (left_n as f64 * gini(p_left) + right_n as f64 * gini(p_right)) / len as f64;
            let gain = parent_impurity - weighted;
            if gain > best.map_or(1e-12, |(_, _, g)| g) {
                best = Some((feature, 0.5 * (prev + next), gain));
            }
            prev_id = next_id;
            prev = next;
        }
    }

    let (feature, threshold) = match best {
        None => return arena.push(LEAF, 0.0, p),
        Some((feature, threshold, _)) => (feature, threshold),
    };

    // Evaluate the split predicate once per element into the side table,
    // counting the left side's size and positives; the boxed builder
    // re-checks emptiness on the partitioned sets because midpoint rounding
    // can push every element to one side.
    let mut left_n = 0usize;
    let mut left_pos = 0usize;
    {
        let SplitScratch { order, side, .. } = scratch;
        let col = &set.columns[feature * set.num_samples..];
        for &s in &order[feature * m + lo..feature * m + hi] {
            let id = s.id();
            let is_left = col[id] <= threshold;
            side[id] = is_left as u8;
            left_n += is_left as usize;
            left_pos += (is_left as usize) & s.label(labels);
        }
    }
    if left_n == 0 || left_n == len {
        return arena.push(LEAF, 0.0, p);
    }
    let right_n = len - left_n;
    let right_pos = pos - left_pos;

    // A child that will immediately become a leaf never reads its sorted
    // segments (and leaves consume no RNG), so when both children are
    // guaranteed leaves the partition below is skipped entirely — the
    // dominant saving on the deepest tree level.
    let is_leaf = |child_len: usize, child_pos: usize| {
        depth + 1 >= config.max_depth
            || child_len < config.min_samples_split
            || child_pos == 0
            || child_pos == child_len
    };
    let partition_needed = !(is_leaf(left_n, left_pos) && is_leaf(right_n, right_pos));

    // Stable-partition every feature's segment by the chosen split so both
    // children keep presorted segments, staging through the scratch buffer.
    if partition_needed {
        let SplitScratch {
            order, buf, side, ..
        } = scratch;
        for f in 0..num_features {
            let seg = &mut order[f * m + lo..f * m + hi];
            buf[..len].copy_from_slice(seg);
            let mut l = 0usize;
            let mut r = left_n;
            for &s in &buf[..len] {
                // Branch-light select: the destination cursor is chosen with
                // a conditional move, so the (data-dependent) split side
                // never costs a branch misprediction.
                let is_left = side[s.id()] as usize;
                let dst = if is_left == 1 { l } else { r };
                seg[dst] = s;
                l += is_left;
                r += 1 - is_left;
            }
        }
    }

    let idx = arena.push(feature as u32, threshold, 0.0);
    let mid = lo + left_n;
    let left_span = NodeSpan {
        lo,
        hi: mid,
        pos: left_pos,
    };
    let right_span = NodeSpan {
        lo: mid,
        hi,
        pos: pos - left_pos,
    };
    let left_idx = build_node(set, scratch, arena, config, left_span, depth + 1, rng);
    let right_idx = build_node(set, scratch, arena, config, right_span, depth + 1, rng);
    arena.left[idx as usize] = left_idx;
    arena.right[idx as usize] = right_idx;
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::RandomForest;

    fn blob_dataset(n_per_class: usize, separation: f64) -> Dataset {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_per_class {
            let jitter1 = ((i * 37 + 13) % 101) as f64 / 101.0 - 0.5;
            let jitter2 = ((i * 53 + 29) % 97) as f64 / 97.0 - 0.5;
            rows.push(vec![jitter1, jitter2, ((i % 7) as f64) / 7.0]);
            labels.push(false);
            rows.push(vec![
                separation + jitter2,
                separation + jitter1,
                ((i % 5) as f64) / 5.0,
            ]);
            labels.push(true);
        }
        Dataset::new(rows, labels).unwrap()
    }

    #[test]
    fn training_set_validation() {
        assert!(TrainingSet::from_rows(&[], 1, &[]).is_err());
        assert!(TrainingSet::from_rows(&[1.0], 0, &[true]).is_err());
        assert!(TrainingSet::from_rows(&[1.0, 2.0, 3.0], 2, &[true, false]).is_err());
        let set = TrainingSet::from_rows(&[1.0, 2.0, 3.0, 4.0], 2, &[true, false]).unwrap();
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        assert_eq!(set.num_features(), 2);
        assert_eq!(set.labels(), &[true, false]);
    }

    #[test]
    fn training_set_presorts_columns() {
        let rows = [3.0, 0.5, 1.0, 0.7, 2.0, 0.1];
        let set = TrainingSet::from_rows(&rows, 2, &[true, false, true]).unwrap();
        // Column 0 holds [3, 1, 2] -> ascending order 1, 2, 0.
        assert_eq!(&set.order[..3], &[1, 2, 0]);
        // Column 1 holds [0.5, 0.7, 0.1] -> ascending order 2, 0, 1.
        assert_eq!(&set.order[3..], &[2, 0, 1]);
        assert_eq!(set.value(0, 2), 2.0);
        assert_eq!(set.value(1, 0), 0.5);
    }

    #[test]
    fn append_rows_matches_full_rebuild() {
        // Values with heavy ties across the prefix/suffix boundary exercise
        // the merge's stable tie-breaking.
        let full_rows: Vec<f64> = (0..60).map(|i| ((i * 7) % 5) as f64 * 0.5).collect();
        let full_labels: Vec<bool> = (0..30).map(|i| i % 3 == 0).collect();
        for cut in [1usize, 10, 17, 29] {
            let mut grown =
                TrainingSet::from_rows(&full_rows[..cut * 2], 2, &full_labels[..cut]).unwrap();
            grown
                .append_rows(&full_rows[cut * 2..], &full_labels[cut..])
                .unwrap();
            let rebuilt = TrainingSet::from_rows(&full_rows, 2, &full_labels).unwrap();
            assert_eq!(grown, rebuilt, "cut {cut}");
        }
    }

    #[test]
    fn append_rows_validation() {
        let mut set = TrainingSet::from_rows(&[1.0, 2.0], 2, &[true]).unwrap();
        assert!(set.append_rows(&[], &[]).is_err());
        assert!(set.append_rows(&[1.0], &[true]).is_err());
        assert!(set.append_rows(&[1.0, 2.0, 3.0], &[true]).is_err());
        set.append_rows(&[3.0, 4.0], &[false]).unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.labels(), &[true, false]);
    }

    #[test]
    fn engine_matches_boxed_forest_exactly() {
        let data = blob_dataset(40, 1.5);
        let config = RandomForestConfig {
            n_trees: 13,
            max_depth: 7,
            ..RandomForestConfig::default()
        };
        for seed in [0, 1, 7, 42] {
            let boxed = RandomForest::fit(&data, &config, seed).unwrap();
            let reference = FlatForest::from_forest(&boxed);
            let set = TrainingSet::from_dataset(&data).unwrap();
            let engine = train_forest(&set, &config, seed).unwrap();
            assert_eq!(engine, reference, "seed {seed}");
        }
    }

    #[test]
    fn narrow_and_wide_ids_produce_identical_forests() {
        let data = blob_dataset(35, 1.2);
        let set = TrainingSet::from_dataset(&data).unwrap();
        let config = RandomForestConfig {
            n_trees: 9,
            max_depth: 6,
            ..RandomForestConfig::default()
        };
        for seed in [0, 5, 11] {
            let narrow = train_forest_with_width(&set, &config, seed, IdWidth::Narrow).unwrap();
            let wide = train_forest_with_width(&set, &config, seed, IdWidth::Wide).unwrap();
            assert_eq!(narrow, wide, "seed {seed}");
            // Auto picks the narrow path here (70 samples).
            assert_eq!(train_forest(&set, &config, seed).unwrap(), narrow);
        }
    }

    #[test]
    fn engine_handles_duplicate_feature_values() {
        // Constant column plus a discrete column with heavy ties.
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![1.0, (i % 3) as f64, (i % 5) as f64])
            .collect();
        let labels: Vec<bool> = (0..30).map(|i| i % 3 == 0).collect();
        let data = Dataset::new(rows, labels).unwrap();
        let config = RandomForestConfig {
            n_trees: 9,
            max_depth: 5,
            ..RandomForestConfig::default()
        };
        let reference = FlatForest::from_forest(&RandomForest::fit(&data, &config, 3).unwrap());
        let set = TrainingSet::from_dataset(&data).unwrap();
        assert_eq!(train_forest(&set, &config, 3).unwrap(), reference);
    }

    #[test]
    fn engine_rejects_invalid_parameters() {
        let set = TrainingSet::from_rows(&[1.0, 2.0], 1, &[true, false]).unwrap();
        let bad = |config: RandomForestConfig| train_forest(&set, &config, 0).is_err();
        assert!(bad(RandomForestConfig {
            n_trees: 0,
            ..RandomForestConfig::default()
        }));
        assert!(bad(RandomForestConfig {
            bootstrap_fraction: 0.0,
            ..RandomForestConfig::default()
        }));
        assert!(bad(RandomForestConfig {
            bootstrap_fraction: 1.5,
            ..RandomForestConfig::default()
        }));
        assert!(bad(RandomForestConfig {
            max_depth: 0,
            ..RandomForestConfig::default()
        }));
        assert!(bad(RandomForestConfig {
            max_features: Some(0),
            ..RandomForestConfig::default()
        }));
        assert!(bad(RandomForestConfig {
            max_features: Some(9),
            ..RandomForestConfig::default()
        }));
    }

    #[test]
    fn pure_training_set_yields_single_leaves() {
        let set = TrainingSet::from_rows(&[1.0, 2.0, 3.0], 1, &[true, true, true]).unwrap();
        let config = RandomForestConfig {
            n_trees: 4,
            ..RandomForestConfig::default()
        };
        let forest = train_forest(&set, &config, 0).unwrap();
        assert_eq!(forest.num_nodes(), 4);
        assert_eq!(forest.predict_proba(&[9.0]), 1.0);
    }

    #[test]
    fn nan_features_train_without_panicking() {
        // A column of NaNs cannot anchor a usable split; training must fall
        // back to the clean column instead of panicking mid-retrain.
        let rows: Vec<f64> = (0..40)
            .flat_map(|i| [if i % 4 == 0 { f64::NAN } else { 0.5 }, i as f64])
            .collect();
        let labels: Vec<bool> = (0..40).map(|i| i >= 20).collect();
        let set = TrainingSet::from_rows(&rows, 2, &labels).unwrap();
        let config = RandomForestConfig {
            n_trees: 5,
            max_depth: 4,
            max_features: Some(2),
            ..RandomForestConfig::default()
        };
        let forest = train_forest(&set, &config, 1).unwrap();
        assert!(forest.predict(&[0.5, 39.0]));
        assert!(!forest.predict(&[0.5, 0.0]));
    }
}
